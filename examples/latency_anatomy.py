#!/usr/bin/env python3
"""Where do the nanoseconds go?  PFI latency, decomposed.

Every delivered packet's latency splits into four pipeline stages --
batch fill, frame fill, HBM round-trip wait, egress drain.  This example
sweeps the load, prints the measured decomposition next to the
first-order queueing model, and shows the crossover the paper's latency
discussion implies: aggregation dominates at light load, queueing at
heavy load, and the HBM itself is never the problem.

Run:  python examples/latency_anatomy.py
"""

from repro.analysis.queueing import pfi_latency_model
from repro.config import scaled_router
from repro.core import HBMSwitch, PFIOptions
from repro.reporting import Table
from repro.traffic import FixedSize, TrafficGenerator, uniform_matrix
from repro.units import format_time

DURATION_NS = 80_000.0


def run_at(config, load):
    generator = TrafficGenerator(
        n_ports=config.n_ports,
        port_rate_bps=config.port_rate_bps,
        matrix=uniform_matrix(config.n_ports, load),
        size_dist=FixedSize(1500),
        seed=17,
    )
    packets = generator.generate(DURATION_NS)
    switch = HBMSwitch(config, PFIOptions(padding=True, bypass=True))
    return switch.run(packets, DURATION_NS)


def main() -> None:
    config = scaled_router().switch
    table = Table(
        "Measured latency decomposition (mean ns per stage)",
        ["load", "batch fill", "frame fill", "HBM wait", "egress", "total"],
    )
    model_table = Table(
        "First-order queueing model (same stages)",
        ["load", "batch fill", "frame fill", "HBM wait", "egress", "total"],
    )
    for load in (0.1, 0.3, 0.6, 0.9):
        report = run_at(config, load)
        b = report.latency_breakdown
        table.add(
            f"{load:.1f}",
            f"{b['batch_fill']:.0f}",
            f"{b['frame_fill']:.0f}",
            f"{b['hbm_wait']:.0f}",
            f"{b['egress']:.0f}",
            format_time(report.latency["mean_ns"]),
        )
        model = pfi_latency_model(config, load)
        model_table.add(
            f"{load:.1f}",
            f"{model.batch_fill_ns:.0f}",
            f"{model.frame_fill_ns:.0f}",
            f"{model.hbm_wait_ns:.0f}",
            f"{model.egress_ns:.0f}",
            format_time(model.total_ns),
        )
    table.show()
    model_table.show()
    print(
        "\nAggregation (batch + frame fill) dominates at light load --\n"
        "capped by the padding deadline and the bypass path, which is\n"
        "why the model's HBM-wait term overshoots there.  At heavy load\n"
        "the measured decomposition converges to the queueing model:\n"
        "the delays are queueing physics, not simulator artifacts."
    )


if __name__ == "__main__":
    main()
