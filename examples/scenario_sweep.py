#!/usr/bin/env python3
"""Scenario runtime tour: cached, resumable, sharded load sweeps.

Declares a grid of router scenarios, runs it cold through a
content-addressed cache, then demonstrates the three runtime
properties on the same grid:

- a warm rerun recalls every cell without executing anything;
- a "killed" sweep (half the cells pre-populated) resumes by
  executing only the missing cells;
- three shard runs plus one merge run reproduce the single-shot
  aggregate exactly.

Run:  python examples/scenario_sweep.py
"""

import json
import tempfile

from repro import Runtime, scaled_router
from repro.reporting import Table
from repro.runtime import router_scenario


def build_grid(config, loads, seed=7, duration_ns=10_000.0):
    return [
        router_scenario(config, load=load, duration_ns=duration_ns, seed=seed)
        for load in loads
    ]


def aggregate(payloads):
    """The deterministic merge: payload values in grid order."""
    return json.dumps(
        [p["report"]["delivery_fraction"] for p in payloads], sort_keys=True
    )


def main() -> None:
    config = scaled_router()
    loads = [0.3, 0.5, 0.7, 0.9]
    grid = build_grid(config, loads)

    with tempfile.TemporaryDirectory(prefix="repro-example-cache-") as cache_dir:
        # Cold: every cell executes and is persisted as it finishes.
        runtime = Runtime(cache_dir=cache_dir)
        cold = runtime.map(grid)
        single_shot = aggregate(cold)
        print(f"cold sweep: {runtime.cache.stats()}")

        table = Table("Load sweep (router)", ["load", "delivered", "p99 latency"])
        for load, payload in zip(loads, cold):
            report = payload["report"]
            table.add(
                f"{load:.1f}",
                f"{report['delivery_fraction']:.2%}",
                f"{report['latency']['p99_ns']:.0f} ns",
            )
        table.show()

        # Warm: a fresh Runtime on the same cache resolves every cell
        # as a hit -- nothing executes, the aggregate is byte-identical.
        warm_runtime = Runtime(cache_dir=cache_dir)
        warm = warm_runtime.map(grid)
        assert aggregate(warm) == single_shot
        print(f"warm sweep: {warm_runtime.cache.stats()} (no cell executed)")

    with tempfile.TemporaryDirectory(prefix="repro-example-cache-") as cache_dir:
        # Resume: simulate a sweep killed after two cells by caching
        # only those, then rerun the full grid -- the runtime executes
        # exactly the two missing cells.
        partial = Runtime(cache_dir=cache_dir)
        partial.map(grid[:2])
        resumed_runtime = Runtime(cache_dir=cache_dir)
        resumed = resumed_runtime.map(grid)
        assert aggregate(resumed) == single_shot
        stats = resumed_runtime.cache.stats()
        print(
            f"resumed sweep: {stats['hits']} cells recalled, "
            f"{stats['writes']} executed -- aggregate unchanged"
        )

    with tempfile.TemporaryDirectory(prefix="repro-example-cache-") as cache_dir:
        # Shard: three independent runs own cells i % 3 == k; the
        # unsharded merge run finds everything cached and reproduces
        # the single-shot aggregate byte for byte.
        for k in range(3):
            Runtime(cache_dir=cache_dir).map(grid, shard=(k, 3))
        merge_runtime = Runtime(cache_dir=cache_dir)
        merged = merge_runtime.map(grid)
        assert aggregate(merged) == single_shot
        print(
            f"3-shard merge: {merge_runtime.cache.stats()['hits']} hits -- "
            "aggregate byte-identical to single-shot"
        )


if __name__ == "__main__":
    main()
