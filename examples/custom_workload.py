#!/usr/bin/env python3
"""Driving the switch with an external workload trace.

Production users rarely want synthetic matrices only: this example
saves a workload as a portable CSV trace, reloads it, replays it at
three different loads (by time-scaling), and runs each through the HBM
switch with a real FIB classifying every packet.

Run:  python examples/custom_workload.py
"""

import io

from repro.config import scaled_router
from repro.core import HBMSwitch, PFIOptions
from repro.forwarding.table import fib_matching_generator
from repro.reporting import Table
from repro.traffic import (
    ImixSize,
    TrafficGenerator,
    load_trace,
    replay,
    trace_to_string,
    uniform_matrix,
)
from repro.units import format_rate, format_time


def main() -> None:
    config = scaled_router().switch
    duration_ns = 30_000.0

    # 1. Build a workload and serialise it, as a capture pipeline would.
    generator = TrafficGenerator(
        n_ports=config.n_ports,
        port_rate_bps=config.port_rate_bps,
        matrix=uniform_matrix(config.n_ports, 0.9),
        size_dist=ImixSize(),
        seed=31,
    )
    csv_text = trace_to_string(generator.generate(duration_ns))
    print(f"Serialised trace: {len(csv_text.splitlines()) - 1} packets, "
          f"{len(csv_text) / 1024:.0f} KB of CSV\n")

    # 2. Reload and replay at three loads; classify with a real FIB.
    table = Table(
        "Replayed trace through the HBM switch (FIB classification on)",
        ["time scale", "offered", "delivered", "mean latency", "p99"],
    )
    for scale in (1.0, 1.5, 3.0):
        packets = replay(load_trace(io.StringIO(csv_text)), time_scale=scale)
        horizon = duration_ns * scale
        fib = fib_matching_generator(config.n_ports)
        switch = HBMSwitch(config, PFIOptions(padding=True, bypass=True), fib=fib)
        report = switch.run(packets, horizon)
        table.add(
            f"x{scale}",
            format_rate(8e9 * report.offered_bytes / horizon),
            f"{report.delivery_fraction:.1%}",
            format_time(report.latency["mean_ns"]),
            format_time(report.latency["p99_ns"]),
        )
        assert fib.miss_fraction == 0.0
    table.show()
    print(
        "\nThe same packet mix at three loads, every packet classified by\n"
        "a longest-prefix-match lookup in the datapath.  Trace CSVs are\n"
        "plain enough to come from any capture pipeline."
    )


if __name__ == "__main__":
    main()
