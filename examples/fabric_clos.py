#!/usr/bin/env python3
"""Composing routers into a fabric: Clos cell, link cut, VLB vs direct.

The paper's outlook (SS 4) treats the router-in-a-package as the node of
a flat optical DCN.  This example wires four of them into a 2-stage
Clos cell, cuts one leaf-spine link for part of the run, and measures
the delivered-fraction delta between direct (shortest-path ECMP) and
Valiant load balancing -- on the Clos the ECMP split is already
balanced, so VLB buys nothing.  A rotation (Opera-style) fabric under
hot-pair demand then shows the case VLB exists for: direct overloads
the single thin link per pair while VLB spreads the skew and delivers
everything.

Run:  python examples/fabric_clos.py
"""

from repro.config import scaled_router
from repro.fabric import ClosTopology, RotationTopology, simulate_fabric
from repro.faults import FaultSchedule, LinkCut
from repro.reporting import Table
from repro.units import format_rate

CONFIG = scaled_router(fibers_per_ribbon=16, n_switches=4)
DURATION = 50_000.0


def clos_link_cut():
    """4-router Clos (2 leaves, 2 spines), link 0--2 cut on [10, 30) us."""
    topology = ClosTopology(k=2, stages=2)
    schedule = FaultSchedule(
        [LinkCut(a=0, b=2, start_ns=10_000.0, end_ns=30_000.0)]
    )
    table = Table(
        "Clos cell, leaf0--spine0 cut for 40% of the run",
        ["routing", "delivered", "mean hops", "max link util"],
    )
    deltas = {}
    for routing in ("direct", "vlb"):
        report = simulate_fabric(
            CONFIG, topology, routing=routing, load=0.6,
            duration_ns=DURATION, fidelity="flow", schedule=schedule,
        )
        deltas[routing] = report.delivered_fraction
        table.add(
            routing,
            f"{report.delivered_fraction:.4f}",
            f"{report.mean_hops:.2f}",
            f"{report.max_link_utilization:.3f}",
        )
    table.show()
    print(
        f"delta (vlb - direct): {deltas['vlb'] - deltas['direct']:+.4f}  "
        "(ECMP already splits the Clos evenly; VLB reduces to the same "
        "spreading, so the cut costs both policies the same share)\n"
    )


def rotation_hotspot():
    """N=8 rotation fabric, hot-pair demand: the VLB story."""
    topology = RotationTopology(n_routers=8)
    table = Table(
        "Rotation N=8, half of each source's load on its hot pair",
        ["routing", "delivered", "offered", "max link util"],
    )
    deltas = {}
    for routing in ("direct", "vlb"):
        report = simulate_fabric(
            CONFIG, topology, routing=routing, load=0.5,
            duration_ns=DURATION, fidelity="flow", pattern="hotspot",
        )
        deltas[routing] = report.delivered_fraction
        table.add(
            routing,
            f"{report.delivered_fraction:.4f}",
            format_rate(report.offered_bps),
            f"{report.max_link_utilization:.3f}",
        )
    table.show()
    print(
        f"delta (vlb - direct): {deltas['vlb'] - deltas['direct']:+.4f}  "
        "(direct rides each pair's one thin link; VLB relays through a "
        "random intermediate and recovers the uniform-load fabric)"
    )


if __name__ == "__main__":
    clos_link_cut()
    rotation_hotspot()
