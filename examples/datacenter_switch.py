#!/usr/bin/env python3
"""Datacenter variant: smaller frames for lower latency (SS 5).

Datacenter networks care about microseconds, not about 50 ms of
buffering.  The paper suggests HBM switches with smaller frames.  This
example sweeps the frame size on a mid-size switch under a latency-
sensitive workload (small RPC-style packets, bursty arrivals) and shows
the trade the paper describes: smaller frames cut fill-and-cycle
latency, but segments shorter than a DRAM row re-expose per-bank
overhead -- the timing model flags where the staggered schedule stops
being legal at gamma = 4.

Run:  python examples/datacenter_switch.py
"""

import dataclasses

from repro.config import HBMStackConfig, HBMSwitchConfig
from repro.core import HBMSwitch, PFIOptions
from repro.errors import ConfigError
from repro.hbm import HBMTiming, derive_gamma
from repro.reporting import Table
from repro.traffic import ArrivalProcess, FixedSize, TrafficGenerator, uniform_matrix
from repro.units import format_size, format_time, gbps


def build_switch(segment_bytes: int) -> HBMSwitchConfig:
    stack = HBMStackConfig(
        channels=16,
        gbps_per_bit=gbps(2.5),
        banks_per_channel=32,
        capacity_bytes=2**31,
        row_bytes=256,
    )
    return HBMSwitchConfig(
        n_ports=8,
        n_stacks=1,
        batch_bytes=2048,
        segment_bytes=segment_bytes,
        gamma=4,
        port_rate_bps=gbps(160),
        stack=stack,
    )


def main() -> None:
    duration_ns = 60_000.0
    timing = HBMTiming()
    table = Table(
        "Datacenter frame-size sweep (bursty 256 B RPCs, 50% load)",
        ["frame", "segment", "legal @ gamma=4", "mean latency", "p99 latency"],
    )
    for segment in (256, 128, 64):
        config = build_switch(segment)
        seg_time = segment / config.stack.channel_bytes_per_ns
        try:
            legal = derive_gamma(timing, seg_time) <= config.gamma
        except ConfigError:
            legal = False
        generator = TrafficGenerator(
            config.n_ports,
            config.port_rate_bps,
            uniform_matrix(config.n_ports, 0.5),
            FixedSize(256),
            process=ArrivalProcess.ONOFF,
            seed=3,
        )
        packets = generator.generate(duration_ns)
        switch = HBMSwitch(config, PFIOptions(padding=True, bypass=True))
        report = switch.run(packets, duration_ns)
        table.add(
            format_size(config.frame_bytes),
            format_size(segment),
            str(legal),
            format_time(report.latency["mean_ns"]),
            format_time(report.latency["p99_ns"]),
        )
    table.show()
    print(
        "\nSmaller frames cut latency, but sub-row segments break the\n"
        "staggered schedule at gamma = 4 (the random-access tax returns).\n"
        "The paper's alternative: an SPS built from commercial switch\n"
        "chiplets (Tomahawk/Jericho) for radix- and latency-critical\n"
        "datacenter deployments."
    )


if __name__ == "__main__":
    main()
