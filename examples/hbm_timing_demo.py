#!/usr/bin/env python3
"""Inside PFI's staggered bank interleaving (SS 3.2 step 3, Fig. 4).

Prints the actual timed command stream of one frame write on one
channel, executes a write/read frame train on the timing-checked
controller at the full reference geometry (T = 128 channels), and
contrasts it with the worst-case random-access discipline the paper
charges oblivious designs (Challenge 6).

Run:  python examples/hbm_timing_demo.py
"""

from repro.baselines import random_access_reduction, simulate_random_access_channel
from repro.config import HBMSwitchConfig
from repro.hbm import (
    BankGroup,
    HBMController,
    HBMTiming,
    Op,
    bank_group_for_frame,
    derive_gamma,
    first_legal_start,
    generate_frame_schedule,
)
from repro.reporting import Table
from repro.units import format_rate


def show_one_channel_schedule(config: HBMSwitchConfig, timing: HBMTiming) -> None:
    sched = generate_frame_schedule(
        Op.WR,
        channels=[0],
        group=BankGroup(0, config.gamma),
        segment_bytes=config.segment_bytes,
        row=0,
        data_start=first_legal_start(timing),
        timing=timing,
        channel_bytes_per_ns=config.stack.channel_bytes_per_ns,
    )
    table = Table("One frame write, channel 0 (times in ns)", ["t", "command"])
    for cmd in sched.commands:
        table.add(f"{cmd.time:7.1f}", cmd.describe())
    table.show()
    print(
        f"\n  data phase: [{sched.data_start:.1f}, {sched.data_end:.1f}] ns, "
        f"{sched.payload_bytes} B on this channel -- the bus never idles;\n"
        f"  each ACT hides behind the previous bank's transfer, each PRE\n"
        f"  behind the next one's."
    )


def run_reference_train(config: HBMSwitchConfig, timing: HBMTiming) -> None:
    controller = HBMController(config.stack, config.n_stacks, timing)
    start = first_legal_start(timing)
    commands = []
    for i, op in enumerate([Op.WR, Op.RD] * 20):
        group = BankGroup(bank_group_for_frame(i, config.n_bank_groups), config.gamma)
        sched = generate_frame_schedule(
            op, range(controller.n_channels), group, config.segment_bytes,
            row=i % 4, data_start=start, timing=timing,
            channel_bytes_per_ns=config.stack.channel_bytes_per_ns,
        )
        commands.extend(sched.commands)
        start = sched.data_end
    result = controller.execute(commands)
    table = Table("40-frame train, full reference group (T = 128)", ["metric", "value"])
    table.add("peak bandwidth", format_rate(controller.peak_bandwidth_bps))
    table.add("achieved", format_rate(result.achieved_bandwidth_bps))
    table.add("efficiency", f"{result.achieved_bandwidth_bps / controller.peak_bandwidth_bps:.2%}")
    table.add("commands executed", result.commands_executed)
    table.add("max open banks/channel", result.peak_open_banks_per_channel)
    table.show()


def contrast_with_random_access(timing: HBMTiming) -> None:
    table = Table("Worst-case random access (Challenge 6)", ["packet", "analytic", "bank-model sim"])
    for size in (1500, 64):
        table.add(
            f"{size} B",
            f"{random_access_reduction(size).total_reduction:.1f}x slower",
            f"{simulate_random_access_channel(size):.1f}x slower",
        )
    table.add("64 B, 1 channel used", f"{random_access_reduction(64, leverage_parallel_channels=False).total_reduction:.0f}x slower", "-")
    table.show()


def main() -> None:
    config = HBMSwitchConfig()  # full reference geometry
    timing = HBMTiming()
    seg_time = config.segment_bytes / config.stack.channel_bytes_per_ns
    print(
        f"Reference design: S = {config.segment_bytes} B segments "
        f"({seg_time:.1f} ns), tRC = {timing.t_rc:.0f} ns, "
        f"derived gamma = {derive_gamma(timing, seg_time)}, "
        f"K = {config.frame_bytes // 1024} KB frames\n"
    )
    show_one_channel_schedule(config, timing)
    print()
    show_timeline(config, timing)
    print()
    run_reference_train(config, timing)
    print()
    contrast_with_random_access(timing)


def show_timeline(config: HBMSwitchConfig, timing: HBMTiming) -> None:
    """Fig. 4, rendered: two frames of staggered bank interleaving."""
    from repro.reporting import render_bank_timeline, render_bus_utilisation

    commands = []
    start = first_legal_start(timing)
    for i, op in enumerate([Op.WR, Op.RD]):
        sched = generate_frame_schedule(
            op, [0], BankGroup(i, config.gamma), config.segment_bytes,
            row=i, data_start=start, timing=timing,
            channel_bytes_per_ns=config.stack.channel_bytes_per_ns,
        )
        commands.extend(sched.commands)
        start = sched.data_end
    print("Two frames (WR then RD) on channel 0 -- Fig. 4 as ASCII:\n")
    print(render_bank_timeline(commands, timing, channel=0,
                               bytes_per_ns=config.stack.channel_bytes_per_ns))
    print()
    print(render_bus_utilisation(commands, timing, channel=0,
                                 bytes_per_ns=config.stack.channel_bytes_per_ns))


if __name__ == "__main__":
    main()
