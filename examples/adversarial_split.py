#!/usr/bin/env python3
"""Attacking the fiber split (Challenge 4 / Idea 4).

An attacker who knows the router splits fibers contiguously can steer
its flows onto exactly the fibers feeding one internal HBM switch and
saturate it while the other 15 idle.  This example mounts that attack
against both splitters and also shows the benign "first fiber connected
first" operator skew.

Run:  python examples/adversarial_split.py
"""

import numpy as np

from repro.core.fiber_split import (
    ContiguousSplitter,
    PseudoRandomSplitter,
    overload_loss_fraction,
    per_switch_loads,
    per_switch_port_loads,
    split_imbalance,
)
from repro.reporting import Table
from repro.traffic.generators import fiber_load_profile

F, H, RIBBONS = 64, 16, 16


def attack(splitter, target_fibers):
    profiles = [
        fiber_load_profile(F, "adversarial", total_load=1.0, target_fibers=target_fibers)
        for _ in range(RIBBONS)
    ]
    loads = per_switch_loads(splitter, profiles)
    port_loads = per_switch_port_loads(splitter, profiles)
    return (
        split_imbalance(loads),
        overload_loss_fraction(port_loads, port_capacity=1.0 / H),
        loads,
    )


def main() -> None:
    contiguous = ContiguousSplitter(F, H)
    secret = PseudoRandomSplitter(F, H, seed=0x5EC2E7)

    # The attacker targets the first alpha fibers of every ribbon -- the
    # fibers that feed switch 0 under the contiguous pattern.
    target = contiguous.fibers_to(0, 0)
    print(f"Attacker targets fibers {target} of every ribbon\n")

    table = Table("Adversarial attack", ["splitter", "imbalance (max/mean)", "overload loss"])
    for name, splitter in (("contiguous", contiguous), ("pseudo-random (secret seed)", secret)):
        imbalance, loss, loads = attack(splitter, target)
        table.add(name, f"{imbalance:.1f}", f"{loss:.0%}")
    table.show()

    # The benign skew: operators populate the first fibers first.
    rng = np.random.default_rng(1)
    profiles = [
        fiber_load_profile(F, "first-connected", total_load=1.0, skew=8.0, rng=rng)
        for _ in range(RIBBONS)
    ]
    table = Table("Operator 'first-connected' skew (8x front-to-back)",
                  ["splitter", "imbalance (max/mean)"])
    for name, splitter in (("contiguous", contiguous), ("pseudo-random", secret)):
        imbalance = split_imbalance(per_switch_loads(splitter, profiles))
        table.add(name, f"{imbalance:.2f}")
    table.show()

    # And the typical case the paper expects: upstream ECMP/LAG hashing.
    profiles = [fiber_load_profile(F, "ecmp", total_load=1.0, rng=rng) for _ in range(RIBBONS)]
    table = Table("ECMP/LAG-hashed fiber loads (SS 4 typical case)",
                  ["splitter", "imbalance (max/mean)"])
    for name, splitter in (("contiguous", contiguous), ("pseudo-random", secret)):
        imbalance = split_imbalance(per_switch_loads(splitter, profiles))
        table.add(name, f"{imbalance:.3f}")
    table.show()

    print(
        "\nThe contiguous split hands an attacker a 16x concentration;\n"
        "a secret pseudo-random split bounds the damage, and under the\n"
        "typical hashed loads both are essentially perfectly balanced."
    )


if __name__ == "__main__":
    main()
