#!/usr/bin/env python3
"""The petabit reference design, analysed like the paper's SS 4.

Prints every design-analysis table -- I/O budget, power, area, buffer
sizing, SRAM sizing, capacity comparison, roadmap -- for the full
N = 16, F = 64, W = 16, R = 40 Gb/s, H = 16, B = 4 reference design.

Run:  python examples/petabit_reference.py
"""

from repro import reference_router
from repro.analysis import (
    capacity_vs_reference,
    hbm_switch_area,
    hbm_switch_power,
    roadmap_projection,
    router_area,
    router_buffering,
    router_power,
    sram_sizing,
)
from repro.analysis.power import cerebras_power_ratio
from repro.baselines import centralized_feasibility, clos_design, mesh_guaranteed_capacity
from repro.reporting import Table
from repro.units import format_rate, format_size


def main() -> None:
    config = reference_router()

    io = Table("I/O budget (SS 2.2)", ["quantity", "value"])
    io.add("fibers", config.total_fibers)
    io.add("ingress", format_rate(config.io_per_direction_bps))
    io.add("total I/O", format_rate(config.total_io_bps))
    io.add("per-switch memory I/O", format_rate(config.per_switch_io_bps))
    io.add("switch port rate P", format_rate(config.switch_port_rate_bps))
    io.add("frame size K", format_size(config.switch.frame_bytes))
    io.show()

    power = hbm_switch_power(config.switch)
    p = Table("Power (SS 4)", ["component", "per switch", "router (x16)"])
    p.add("processing + SRAM", f"{power.processing_w:.0f} W", f"{16 * power.processing_w / 1e3:.1f} kW")
    p.add("HBM stacks", f"{power.hbm_w:.0f} W", f"{16 * power.hbm_w / 1e3:.1f} kW")
    p.add("OEO conversion", f"{power.oeo_w:.0f} W", f"{16 * power.oeo_w / 1e3:.2f} kW")
    p.add("total", f"{power.total_w:.0f} W", f"{router_power(config).total_w / 1e3:.1f} kW")
    p.add("vs Cerebras WSE-3", "", f"{cerebras_power_ratio(config):.2f}x")
    p.show()

    area = hbm_switch_area(config.switch)
    a = Table("Area (SS 4)", ["component", "value"])
    a.add("per switch", f"{area.total_mm2:.0f} mm^2")
    a.add("router", f"{router_area(config).total_mm2:.0f} mm^2")
    a.add("panel fraction", f"{router_area(config).panel_fraction():.1%}")
    a.show()

    buffering = router_buffering(config)
    b = Table("Buffering (SS 4)", ["quantity", "value"])
    b.add("total HBM", format_size(buffering.total_buffer_bytes))
    b.add("depth", f"{buffering.buffer_ms:.1f} ms")
    b.add("vs Cisco 8201-32FH (5 ms)", f"{buffering.vs_cisco_8201:.1f}x")
    b.show()

    sram = sram_sizing(config.switch)
    s = Table("SRAM (SS 4)", ["stage", "size"])
    s.add("input ports", format_size(sram.input_ports_bytes))
    s.add("tail", format_size(sram.tail_bytes))
    s.add("head", format_size(sram.head_bytes))
    s.add("control", format_size(sram.control_bytes))
    s.add("total", f"{sram.total_mb:.1f} MB")
    s.show()

    cap = capacity_vs_reference(config)
    c = Table("Capacity increase (SS 5)", ["comparison", "value"])
    c.add(cap.reference_name, format_rate(cap.reference_bps))
    c.add("this design", format_rate(cap.ours_bps))
    c.add("speedup", f"{cap.speedup:.1f}x")
    c.show()

    alt = Table("Rejected designs (SS 2.1)", ["design", "why not", "number"])
    alt.add("Design 1: centralized", "memory shortfall",
            f"{centralized_feasibility(config).memory_shortfall:.0f}x")
    alt.add("Design 2: 10x10 mesh", "guaranteed capacity",
            f"{mesh_guaranteed_capacity(10):.0%}")
    alt.add("Design 3: 3-stage Clos", "power",
            f"{clos_design(config).total_power_w / router_power(config).total_w:.1f}x SPS")
    alt.show()

    r = Table("Roadmap (SS 5)", ["generation", "stacks/switch", "HBM W/switch", "buffer/switch"])
    for point in roadmap_projection(config.switch):
        r.add(point.name, point.stacks_per_switch,
              f"{point.hbm_power_w_per_switch:.0f}",
              format_size(point.buffer_bytes_per_switch))
    r.show()


if __name__ == "__main__":
    main()
