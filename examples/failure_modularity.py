#!/usr/bin/env python3
"""Modularity and graceful degradation (SS 2.2, *Modularity*).

SPS switches share nothing, so the 16 switches can ship as one dense
package or 16 small ones with identical totals -- and a switch failure
costs exactly its fibers' traffic while survivors are untouched.  This
example prints the packaging options for the reference design, then
*simulates* a switch failure on a scaled router and shows the isolation.

Run:  python examples/failure_modularity.py
"""

from repro.analysis import degradation_curve, modular_deployments
from repro.config import reference_router, scaled_router
from repro.core import PFIOptions, SplitParallelSwitch
from repro.reporting import Table
from repro.traffic import FixedSize, TrafficGenerator, uniform_matrix
from repro.units import format_rate


def packaging_options() -> None:
    config = reference_router()
    table = Table(
        "Packaging the 16 switches (identical totals)",
        ["packages", "switches/pkg", "capacity/pkg", "power/pkg"],
    )
    for d in modular_deployments(config):
        table.add(
            d.n_packages,
            d.switches_per_package,
            format_rate(d.capacity_per_package_bps),
            f"{d.power_per_package_w / 1e3:.2f} kW",
        )
    table.show()
    curve = degradation_curve(config)
    print(
        "\nGraceful degradation: capacity fraction with k failed switches:\n  "
        + "  ".join(f"k={k}:{frac:.0%}" for k, frac in enumerate(curve[:5]))
        + "  ..."
    )


def simulated_failure() -> None:
    config = scaled_router(n_switches=4, fibers_per_ribbon=16)
    duration_ns = 25_000.0
    generator = TrafficGenerator(
        n_ports=config.n_ribbons,
        port_rate_bps=config.fibers_per_ribbon * config.per_fiber_rate_bps,
        matrix=uniform_matrix(config.n_ribbons, 0.6),
        size_dist=FixedSize(1500),
        seed=11,
        flows_per_pair=256,
    )
    packets = generator.generate(duration_ns)

    healthy = SplitParallelSwitch(
        config, options=PFIOptions(padding=True, bypass=True)
    ).run(packets, duration_ns)

    # Fresh packet objects for the second run (departures are mutated).
    packets2 = TrafficGenerator(
        n_ports=config.n_ribbons,
        port_rate_bps=config.fibers_per_ribbon * config.per_fiber_rate_bps,
        matrix=uniform_matrix(config.n_ribbons, 0.6),
        size_dist=FixedSize(1500),
        seed=11,
        flows_per_pair=256,
    ).generate(duration_ns)
    degraded = SplitParallelSwitch(
        config, options=PFIOptions(padding=True, bypass=True)
    ).run(packets2, duration_ns, failed_switches=[2])

    table = Table("Switch 2 of 4 fails (simulated)", ["metric", "healthy", "degraded"])
    table.add("delivery", f"{healthy.delivery_fraction:.1%}", f"{degraded.delivery_fraction:.1%}")
    table.add(
        "traffic on failed fibers",
        "0",
        f"{degraded.failed_offered_bytes / degraded.offered_bytes:.1%}",
    )
    table.add(
        "survivors' delivery",
        "-",
        f"{min(r.delivery_fraction for r in degraded.switch_reports):.1%}",
    )
    table.add(
        "survivors' reorderings",
        healthy.ordering_violations,
        sum(r.ordering_violations for r in degraded.switch_reports),
    )
    table.show()
    print(
        "\nThe failure removes exactly the failed switch's fiber share;\n"
        "survivors deliver 100% with identical latency -- shared-nothing\n"
        "isolation, the property that also enables modular packaging."
    )


def main() -> None:
    packaging_options()
    print()
    simulated_failure()


if __name__ == "__main__":
    main()
