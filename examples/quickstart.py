#!/usr/bin/env python3
"""Quickstart: simulate a Split-Parallel Switch router end to end.

Builds a scaled SPS router (same structure as the paper's petabit
reference design: pseudo-random fiber split, H independent HBM switches
running PFI with padding and bypass), pushes admissible IMIX traffic
through it, and prints throughput, latency, loss and ordering results.

Run:  python examples/quickstart.py
"""

from repro import PFIOptions, SplitParallelSwitch, scaled_router
from repro.core.sps import assign_fibers
from repro.reporting import Table
from repro.traffic import ImixSize, TrafficGenerator, uniform_matrix
from repro.units import format_rate, format_time


def main() -> None:
    config = scaled_router()
    print("Router configuration")
    print(f"  ribbons (N):          {config.n_ribbons}")
    print(f"  fibers per ribbon:    {config.fibers_per_ribbon}")
    print(f"  HBM switches (H):     {config.n_switches}")
    print(f"  package ingress:      {format_rate(config.io_per_direction_bps)}")
    print(f"  per-switch memory IO: {format_rate(config.per_switch_io_bps)}")

    # Admissible traffic at 80% load: the matrix entries are fractions of
    # one ribbon's rate; upstream ECMP hashes flows across fibers.
    duration_ns = 50_000.0
    generator = TrafficGenerator(
        n_ports=config.n_ribbons,
        port_rate_bps=config.fibers_per_ribbon * config.per_fiber_rate_bps,
        matrix=uniform_matrix(config.n_ribbons, 0.8),
        size_dist=ImixSize(),
        seed=7,
        flows_per_pair=256,
    )
    packets = generator.generate(duration_ns)
    fibers = assign_fibers(packets, config.fibers_per_ribbon)
    print(f"\nGenerated {len(packets)} packets over {format_time(duration_ns)}")

    router = SplitParallelSwitch(config, options=PFIOptions(padding=True, bypass=True))
    report = router.run(packets, duration_ns, fibers=fibers)

    table = Table("Router run", ["metric", "value"])
    table.add("offered", format_rate(8 * report.offered_bytes / duration_ns * 1e9))
    table.add("delivered", f"{report.delivery_fraction:.2%}")
    table.add("dropped bytes", report.dropped_bytes)
    table.add("flow reorderings", report.ordering_violations)
    table.add("per-switch load imbalance", f"{report.load_imbalance:.3f}")
    latency = report.latency_summary()
    table.add("mean latency", format_time(latency["mean_ns"]))
    table.add("p99 latency", format_time(latency["p99_ns"]))
    table.show()

    for h, sub in enumerate(report.switch_reports):
        print(
            f"  switch {h}: {sub.delivered_packets} pkts, "
            f"throughput {sub.normalized_throughput:.2%} of capacity, "
            f"{sub.pfi.frames_written} frames written, "
            f"{sub.pfi.bypassed_frames} bypassed"
        )


if __name__ == "__main__":
    main()
