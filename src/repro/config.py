"""Validated configuration objects for the router, HBM switch and HBM stacks.

The paper's reference design is one point in a parameter space it is
careful to keep symbolic (N, F, W, R, H, B, k, K, S, gamma, T, L...).
These dataclasses carry the symbols, validate the divisibility and timing
relationships the paper states in prose, and derive every aggregate the
paper computes (I/O budgets, interface widths, frame geometry).

Three factories cover the common cases:

- :func:`reference_router` -- the petabit reference design of SS 2.2/SS 3.2.
- :func:`scaled_router` -- a small, fast configuration for tests, shrunk
  along the scale-invariant axes (fewer ports, smaller frames).
- :func:`datacenter_switch_config` -- the SS 5 datacenter variant with
  smaller frames for lower latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .constants import (
    HBM4_BANKS_PER_CHANNEL,
    HBM4_CHANNEL_WIDTH_BITS,
    HBM4_CHANNELS_PER_STACK,
    HBM4_GBPS_PER_BIT,
    HBM4_ROW_BYTES,
    HBM4_STACK_CAPACITY_BYTES,
    SRAM_GBPS_PER_BIT,
)
from .errors import ConfigError
from .units import KB, gbps, rate_to_bytes_per_ns


def _require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class HBMStackConfig:
    """Geometry and rate of one HBM stack.

    Defaults are the HBM4 values the reference design uses: a 2048-bit
    ultra-wide interface organised as 32 channels of 64 bits, over
    10 Gb/s per pin, 64 banks per channel, 64 GB capacity.
    """

    channels: int = HBM4_CHANNELS_PER_STACK
    channel_width_bits: int = HBM4_CHANNEL_WIDTH_BITS
    gbps_per_bit: float = HBM4_GBPS_PER_BIT
    banks_per_channel: int = HBM4_BANKS_PER_CHANNEL
    capacity_bytes: int = HBM4_STACK_CAPACITY_BYTES
    row_bytes: int = HBM4_ROW_BYTES

    def __post_init__(self) -> None:
        _require(self.channels > 0, f"channels must be positive, got {self.channels}")
        _require(
            self.channel_width_bits > 0 and self.channel_width_bits % 8 == 0,
            f"channel width must be a positive multiple of 8 bits, "
            f"got {self.channel_width_bits}",
        )
        _require(self.gbps_per_bit > 0, "per-pin rate must be positive")
        _require(self.banks_per_channel > 0, "banks_per_channel must be positive")
        _require(self.capacity_bytes > 0, "capacity must be positive")
        _require(self.row_bytes > 0, "row_bytes must be positive")

    @property
    def interface_width_bits(self) -> int:
        """Total interface width: 32 x 64 = 2048 bits for HBM4."""
        return self.channels * self.channel_width_bits

    @property
    def channel_bandwidth_bps(self) -> float:
        """Peak bandwidth of one channel (64 bits x 10 Gb/s = 640 Gb/s)."""
        return self.channel_width_bits * self.gbps_per_bit

    @property
    def stack_bandwidth_bps(self) -> float:
        """Peak bandwidth of the whole stack (20.48 Tb/s for HBM4)."""
        return self.interface_width_bits * self.gbps_per_bit

    @property
    def channel_bytes_per_ns(self) -> float:
        """Peak channel rate in bytes/ns (80 B/ns for HBM4)."""
        return rate_to_bytes_per_ns(self.channel_bandwidth_bps)


@dataclass(frozen=True)
class HBMSwitchConfig:
    """One N x N shared-memory HBM switch (Fig. 3).

    Parameters follow the paper's symbols:

    - ``n_ports`` (N): switch ports = fiber ribbons of the router.
    - ``n_stacks`` (B): HBM stacks grouped per switch.
    - ``batch_bytes`` (k): fixed batch size formed at input ports.
    - ``segment_bytes`` (S): per-channel per-bank write/read unit.
    - ``gamma``: banks per interleaving group.
    - ``port_rate_bps`` (P): data rate of one switch port.
    - ``speedup``: internal speedup of the memory phases relative to the
      line rate (Design 6 (6): "with a small speedup ... can mimic an
      ideal OQ shared-memory switch").
    """

    n_ports: int = 16
    n_stacks: int = 4
    batch_bytes: int = 4 * KB
    segment_bytes: int = 1 * KB
    gamma: int = 4
    port_rate_bps: float = gbps(2560)
    speedup: float = 1.0
    stack: HBMStackConfig = field(default_factory=HBMStackConfig)
    sram_gbps_per_bit: float = SRAM_GBPS_PER_BIT

    def __post_init__(self) -> None:
        _require(self.n_ports > 0, f"n_ports must be positive, got {self.n_ports}")
        _require(self.n_stacks > 0, f"n_stacks must be positive, got {self.n_stacks}")
        _require(self.batch_bytes > 0, "batch_bytes must be positive")
        _require(
            self.batch_bytes % self.n_ports == 0,
            f"batch size {self.batch_bytes} must split into n_ports="
            f"{self.n_ports} equal slices",
        )
        _require(self.segment_bytes > 0, "segment_bytes must be positive")
        _require(
            self.stack.row_bytes % self.segment_bytes == 0,
            f"segment ({self.segment_bytes} B) must be a unit fraction of a "
            f"row ({self.stack.row_bytes} B)",
        )
        _require(self.gamma > 0, f"gamma must be positive, got {self.gamma}")
        _require(
            self.stack.banks_per_channel % self.gamma == 0,
            f"banks per channel ({self.stack.banks_per_channel}) must "
            f"partition into groups of gamma={self.gamma}",
        )
        _require(self.port_rate_bps > 0, "port_rate_bps must be positive")
        _require(self.speedup >= 1.0, f"speedup must be >= 1, got {self.speedup}")
        _require(
            self.frame_bytes % self.batch_bytes == 0,
            f"frame ({self.frame_bytes} B) must hold an integer number of "
            f"batches ({self.batch_bytes} B)",
        )

    # -- memory geometry ----------------------------------------------------

    @property
    def total_channels(self) -> int:
        """T: parallel HBM channels across the group (4 x 32 = 128)."""
        return self.n_stacks * self.stack.channels

    @property
    def frame_bytes(self) -> int:
        """K = gamma * T * S: frame size (512 KB in the reference design)."""
        return self.gamma * self.total_channels * self.segment_bytes

    @property
    def batches_per_frame(self) -> int:
        """K/k: batches aggregated into one frame (128 in the reference)."""
        return self.frame_bytes // self.batch_bytes

    @property
    def n_bank_groups(self) -> int:
        """L/gamma: disjoint bank interleaving groups per channel (16)."""
        return self.stack.banks_per_channel // self.gamma

    @property
    def memory_bandwidth_bps(self) -> float:
        """Peak bandwidth of the HBM group (81.92 Tb/s in the reference)."""
        return self.n_stacks * self.stack.stack_bandwidth_bps

    @property
    def memory_capacity_bytes(self) -> int:
        """Total buffering of the HBM group (256 GB in the reference)."""
        return self.n_stacks * self.stack.capacity_bytes

    # -- line-side geometry ---------------------------------------------------

    @property
    def aggregate_port_rate_bps(self) -> float:
        """N * P: total one-direction line rate of the switch."""
        return self.n_ports * self.port_rate_bps

    @property
    def total_io_bps(self) -> float:
        """2 * N * P: combined in+out traffic the memory must support."""
        return 2.0 * self.aggregate_port_rate_bps

    @property
    def slice_bytes(self) -> int:
        """k/N: size of one batch slice sent across the cyclical crossbar."""
        return self.batch_bytes // self.n_ports

    @property
    def batch_time_ns(self) -> float:
        """Time for one port to receive/emit a full batch at line rate."""
        return self.batch_bytes / rate_to_bytes_per_ns(self.port_rate_bps)

    @property
    def frame_write_time_ns(self) -> float:
        """Time to write (or read) one frame at peak HBM rate, pre-speedup."""
        return self.frame_bytes / rate_to_bytes_per_ns(self.memory_bandwidth_bps)

    @property
    def channels_per_module(self) -> int:
        """T/N: HBM channels fed by one tail-SRAM module (8 in reference)."""
        _require(
            self.total_channels % self.n_ports == 0,
            f"channels ({self.total_channels}) must spread evenly over "
            f"{self.n_ports} SRAM modules",
        )
        return self.total_channels // self.n_ports

    # -- SRAM interface arithmetic (SS 3.2, *Batch size* / *Memory width*) --

    @property
    def port_sram_interface_bits(self) -> int:
        """Interface width of one input-port SRAM.

        Must sustain 2P (simultaneous write and read): 5.12 Tb/s over
        2.5 Gb/s per bit = 2048 bits in the reference design.
        """
        width = 2.0 * self.port_rate_bps / self.sram_gbps_per_bit
        return int(round(width))

    @property
    def derived_batch_bytes(self) -> int:
        """The paper's batch-size rule: k = N x interface width (in bytes)."""
        return self.n_ports * self.port_sram_interface_bits // 8


@dataclass(frozen=True)
class RouterConfig:
    """The top-level Split-Parallel Switch package (Fig. 1).

    Symbols match SS 2.2: ``n_ribbons`` (N) fiber-ribbon arrays,
    ``fibers_per_ribbon`` (F), ``wavelengths_per_fiber`` (W) WDM channels
    at ``wavelength_rate_bps`` (R) each, split across ``n_switches`` (H)
    parallel HBM switches.
    """

    n_ribbons: int = 16
    fibers_per_ribbon: int = 64
    wavelengths_per_fiber: int = 16
    wavelength_rate_bps: float = gbps(40)
    n_switches: int = 16
    switch: HBMSwitchConfig = field(default_factory=HBMSwitchConfig)

    def __post_init__(self) -> None:
        _require(self.n_ribbons > 0, "n_ribbons must be positive")
        _require(self.fibers_per_ribbon > 0, "fibers_per_ribbon must be positive")
        _require(self.wavelengths_per_fiber > 0, "wavelengths must be positive")
        _require(self.wavelength_rate_bps > 0, "wavelength rate must be positive")
        _require(self.n_switches > 0, "n_switches must be positive")
        _require(
            self.fibers_per_ribbon % self.n_switches == 0,
            f"F={self.fibers_per_ribbon} fibers must split evenly across "
            f"H={self.n_switches} switches",
        )
        _require(
            self.switch.n_ports == self.n_ribbons,
            f"each HBM switch must be N x N with N={self.n_ribbons} ribbons, "
            f"got {self.switch.n_ports} ports",
        )
        expected_port_rate = self.fibers_per_switch * self.per_fiber_rate_bps
        _require(
            abs(self.switch.port_rate_bps - expected_port_rate)
            <= 1e-6 * expected_port_rate,
            f"switch port rate {self.switch.port_rate_bps:g} b/s does not "
            f"match alpha*W*R = {expected_port_rate:g} b/s",
        )

    # -- fiber plumbing -------------------------------------------------------

    @property
    def fibers_per_switch(self) -> int:
        """alpha = F/H: waveguides from each ribbon to each switch (4)."""
        return self.fibers_per_ribbon // self.n_switches

    @property
    def total_fibers(self) -> int:
        """N * F: fibers entering the package (1024 in the reference)."""
        return self.n_ribbons * self.fibers_per_ribbon

    @property
    def per_fiber_rate_bps(self) -> float:
        """W * R: one fiber's aggregate WDM rate (640 Gb/s)."""
        return self.wavelengths_per_fiber * self.wavelength_rate_bps

    # -- I/O budget (SS 2.2, *Modules*) --------------------------------------

    @property
    def io_per_direction_bps(self) -> float:
        """N*F*W*R: package ingress (= egress) rate, 655.36 Tb/s."""
        return self.total_fibers * self.per_fiber_rate_bps

    @property
    def total_io_bps(self) -> float:
        """Both directions: 1.31 Pb/s in the reference design."""
        return 2.0 * self.io_per_direction_bps

    @property
    def per_switch_io_bps(self) -> float:
        """2*N*F*W*R/H: memory I/O each HBM switch must support, 81.92 Tb/s."""
        return self.total_io_bps / self.n_switches

    @property
    def switch_port_rate_bps(self) -> float:
        """P = alpha*W*R: rate of one HBM-switch port, 2.56 Tb/s."""
        return self.fibers_per_switch * self.per_fiber_rate_bps

    # -- buffering ------------------------------------------------------------

    @property
    def total_buffer_bytes(self) -> int:
        """H * B * stack capacity: total package buffering (4 TiB-class)."""
        return self.n_switches * self.switch.memory_capacity_bytes

    def with_switch(self, **overrides) -> "RouterConfig":
        """Return a copy whose switch config has ``overrides`` applied."""
        return replace(self, switch=replace(self.switch, **overrides))


# --------------------------------------------------------------------------
# Factories
# --------------------------------------------------------------------------


def reference_router() -> RouterConfig:
    """The paper's petabit reference design (SS 2.2 and SS 3.2).

    N = 16 ribbons, F = 64 fibers, W = 16 wavelengths at R = 40 Gb/s,
    H = 16 HBM switches each with B = 4 HBM4 stacks, k = 4 KB batches,
    S = 1 KB segments, gamma = 4, K = 512 KB frames.
    """
    return RouterConfig()


def scaled_router(
    n_ribbons: int = 4,
    fibers_per_ribbon: int = 8,
    wavelengths_per_fiber: int = 4,
    wavelength_rate_bps: float = gbps(10),
    n_switches: int = 2,
    n_stacks: int = 1,
    stack_channels: int = 8,
    stack_gbps_per_bit: float = gbps(2.5),
    banks_per_channel: int = 16,
    batch_bytes: int = 1 * KB,
    segment_bytes: int = 256,
    gamma: int = 4,
    speedup: float = 1.0,
) -> RouterConfig:
    """A shrunk configuration for fast simulation in tests.

    Shrinks only scale-invariant axes (port count, channel count, frame
    geometry); the *structure* -- batches sliced N ways, frames of
    gamma*T segments, bank groups of gamma -- is identical to the
    reference design, so correctness properties proven at this scale
    carry over.  The HBM pin rate is scaled down with the segment size
    so the per-bank segment time stays at the reference 12.8 ns,
    keeping every DRAM timing relationship (tRC coverage, tFAW cadence,
    gamma = 4 minimal) identical to the full design.
    """
    stack = HBMStackConfig(
        channels=stack_channels,
        gbps_per_bit=stack_gbps_per_bit,
        banks_per_channel=banks_per_channel,
        capacity_bytes=HBM4_STACK_CAPACITY_BYTES // 64,
        row_bytes=max(segment_bytes, 256),
    )
    alpha = fibers_per_ribbon // n_switches
    port_rate = alpha * wavelengths_per_fiber * wavelength_rate_bps
    switch = HBMSwitchConfig(
        n_ports=n_ribbons,
        n_stacks=n_stacks,
        batch_bytes=batch_bytes,
        segment_bytes=segment_bytes,
        gamma=gamma,
        port_rate_bps=port_rate,
        speedup=speedup,
        stack=stack,
    )
    return RouterConfig(
        n_ribbons=n_ribbons,
        fibers_per_ribbon=fibers_per_ribbon,
        wavelengths_per_fiber=wavelengths_per_fiber,
        wavelength_rate_bps=wavelength_rate_bps,
        n_switches=n_switches,
        switch=switch,
    )


def datacenter_switch_config(frame_shrink: int = 8) -> HBMSwitchConfig:
    """The SS 5 datacenter variant: smaller frames for lower latency.

    ``frame_shrink`` divides the per-frame segment count by shrinking the
    segment size, trading peak-rate headroom (segments shorter than a row
    pay relatively more per-bank overhead) for a smaller fill-and-wait
    delay.  E14 sweeps this knob.
    """
    base = HBMSwitchConfig()
    _require(
        base.segment_bytes % frame_shrink == 0,
        f"frame_shrink {frame_shrink} must divide the {base.segment_bytes}-B "
        f"segment",
    )
    small_segment = base.segment_bytes // frame_shrink
    return replace(base, segment_bytes=small_segment)
