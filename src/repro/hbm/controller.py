"""HBM group controller: validates schedules and measures bandwidth.

The controller owns the ``B`` stacks of one HBM switch as a flat channel
space (channel ``i`` of stack ``s`` is flat index ``s * channels + i``).
It does **no scheduling of its own** -- PFI's whole claim is that a
deterministic, pre-computed schedule can hit peak rate, so the controller
only (a) enforces every timing rule by delegating to the channel/bank
state machines, (b) audits the concurrent-activation (current-draw)
limit, and (c) accounts payload bytes against elapsed time.

Write/read phase turnarounds (bus direction reversal, DQS preambles) are
not modelled per-command; they are the "about 2%" transition overhead of
SS 4 (*Frame interleaving cycle*), applied by the PFI engine as a phase
gap and measured in E4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..config import HBMStackConfig
from ..errors import ConfigError, TimingViolation
from ..units import bytes_per_ns_to_rate
from .commands import Command, Op
from .channel import Channel
from .stack import HBMStack
from .timing import HBMTiming


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of executing a command schedule."""

    payload_bytes: int
    start_ns: float
    end_ns: float
    commands_executed: int
    peak_open_banks_per_channel: int

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns

    @property
    def achieved_bandwidth_bps(self) -> float:
        """Payload over wall-clock across the whole group."""
        if self.duration_ns <= 0:
            return 0.0
        return bytes_per_ns_to_rate(self.payload_bytes / self.duration_ns)


class HBMController:
    """Command-level controller for a group of HBM stacks."""

    def __init__(
        self,
        stack_config: HBMStackConfig,
        n_stacks: int,
        timing: HBMTiming = HBMTiming(),
    ) -> None:
        if n_stacks <= 0:
            raise ConfigError(f"n_stacks must be positive, got {n_stacks}")
        self.stack_config = stack_config
        self.timing = timing
        self.stacks: List[HBMStack] = [
            HBMStack(stack_config, timing, base_channel=s * stack_config.channels)
            for s in range(n_stacks)
        ]
        self._channels: List[Channel] = [
            channel for stack in self.stacks for channel in stack.channels
        ]
        # Open-bank intervals per channel for the current-draw audit:
        # channel -> {bank: act_time}; closed intervals accumulate below.
        self._open_since: List[Dict[int, float]] = [dict() for _ in self._channels]
        self._intervals: List[List[Tuple[float, float]]] = [[] for _ in self._channels]
        self._executed = 0

    # -- geometry -------------------------------------------------------------

    @property
    def n_channels(self) -> int:
        """T: flat channel count across all stacks."""
        return len(self._channels)

    @property
    def peak_bandwidth_bps(self) -> float:
        """Aggregate peak rate of all channels (81.92 Tb/s reference)."""
        return sum(stack.peak_bandwidth_bps for stack in self.stacks)

    @property
    def bytes_moved(self) -> int:
        return sum(stack.bytes_moved for stack in self.stacks)

    def channel(self, flat_index: int) -> Channel:
        """The channel at flat index 0 <= i < T."""
        if not 0 <= flat_index < self.n_channels:
            raise ConfigError(
                f"channel {flat_index} out of range (T = {self.n_channels})"
            )
        return self._channels[flat_index]

    # -- fault injection -------------------------------------------------------

    def apply_channel_loss(
        self,
        n_channels: int,
        start_ns: float = 0.0,
        end_ns: float = float("inf"),
    ) -> None:
        """Mark the *last* ``n_channels`` channels dead during the window.

        Survivors are the first T - n flat channels, which is exactly
        the set the PFI engine keeps striping over under a
        :class:`~repro.faults.model.HBMChannelLoss` -- so a validated
        (command-level) run and the analytic drain stretch agree on
        which channels are gone.  Commands addressed to a dead channel
        inside the window raise :class:`~repro.errors.TimingViolation`
        with rule ``channel-dead``.
        """
        if not 0 < n_channels <= self.n_channels:
            raise ConfigError(
                f"channel loss must take 1..{self.n_channels} channels, "
                f"got {n_channels}"
            )
        for channel in self._channels[self.n_channels - n_channels:]:
            channel.fail(start_ns, end_ns)

    # -- execution ------------------------------------------------------------

    def apply(self, cmd: Command) -> None:
        """Apply one command, enforcing all timing rules."""
        channel = self.channel(cmd.channel)
        channel.apply(cmd)
        self._executed += 1
        if cmd.op is Op.ACT:
            self._open_since[cmd.channel][cmd.bank] = cmd.time
        elif cmd.op is Op.PRE:
            opened = self._open_since[cmd.channel].pop(cmd.bank, None)
            if opened is not None:
                closes = cmd.time + self.timing.t_rp
                self._intervals[cmd.channel].append((opened, closes))

    def execute(self, commands: Iterable[Command]) -> ScheduleResult:
        """Execute a whole schedule in time order and audit it.

        Commands are sorted by ``(time, op-priority)`` -- at equal
        timestamps PRE applies before ACT before column commands, which
        matches how a real controller pipelines same-cycle commands.
        Raises :class:`TimingViolation` on the first illegal command.
        """
        ordered = sorted(
            commands,
            key=lambda c: (c.time, _OP_ORDER[c.op], c.channel, c.bank),
        )
        if not ordered:
            return ScheduleResult(0, 0.0, 0.0, 0, 0)
        payload = 0
        data_start = float("inf")
        data_end = -float("inf")
        for cmd in ordered:
            self.apply(cmd)
            if cmd.op in (Op.WR, Op.RD):
                payload += cmd.size_bytes
                data_start = min(data_start, cmd.time)
                data_end = max(
                    data_end,
                    cmd.time + self.channel(cmd.channel).transfer_time_ns(cmd.size_bytes),
                )
        if payload == 0:
            data_start = ordered[0].time
            data_end = ordered[-1].time
        return ScheduleResult(
            payload_bytes=payload,
            start_ns=data_start,
            end_ns=data_end,
            commands_executed=len(ordered),
            peak_open_banks_per_channel=self.peak_open_banks(),
        )

    # -- audits ---------------------------------------------------------------

    def peak_open_banks(self) -> int:
        """Maximum simultaneously open banks seen on any channel.

        The paper bounds this by four (the four-activation window /
        instantaneous-current argument that fixes gamma).  Computed by a
        sweep over the recorded open intervals, including banks still
        open.
        """
        peak = 0
        for channel_index, intervals in enumerate(self._intervals):
            points: List[Tuple[float, int]] = []
            for start, end in intervals:
                points.append((start, 1))
                points.append((end, -1))
            for start in self._open_since[channel_index].values():
                points.append((start, 1))
            points.sort(key=lambda p: (p[0], p[1]))
            count = 0
            for _, delta in points:
                count += delta
                peak = max(peak, count)
        return peak

    def publish_telemetry(self, registry, switch: str) -> None:
        """Snapshot command-level counters into a telemetry registry.

        Called once at report time by validated (``validate_hbm_timing``)
        runs: the command-level byte counts cross-check the analytic
        per-channel counters the PFI engine records
        (``repro_hbm_channel_bytes_total``).
        """
        registry.gauge(
            "repro_hbm_controller_commands",
            "DRAM commands executed by the timing-checked controller",
            switch=switch,
        ).set(float(self._executed))
        registry.gauge(
            "repro_hbm_controller_bytes_moved",
            "payload bytes moved through the command-level model",
            switch=switch,
        ).set(float(self.bytes_moved))
        registry.gauge(
            "repro_hbm_peak_open_banks",
            "max simultaneously open banks on any channel (bound: 4)",
            switch=switch,
        ).set(float(self.peak_open_banks()))
        elapsed = max(
            (c.data_end_time for c in self._channels if c.bytes_moved), default=0.0
        )
        for channel in self._channels:
            registry.gauge(
                "repro_hbm_channel_utilisation",
                "fraction of channel peak rate used (command-level model)",
                channel=str(channel.index), switch=switch,
            ).set(channel.utilisation(elapsed))

    def efficiency(self, elapsed_ns: float) -> float:
        """Fraction of group peak bandwidth achieved over ``elapsed_ns``."""
        if elapsed_ns <= 0:
            return 0.0
        achieved = bytes_per_ns_to_rate(self.bytes_moved / elapsed_ns)
        return achieved / self.peak_bandwidth_bps


#: Same-timestamp application order: close banks, then open, then move data.
_OP_ORDER = {Op.PRE: 0, Op.REF: 1, Op.ACT: 2, Op.WR: 3, Op.RD: 3}
