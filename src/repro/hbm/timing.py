"""HBM4 timing parameters.

The defaults are chosen so that the paper's quoted figures are emergent,
not hard-coded:

- ``t_rcd + t_rp = 30 ns`` reproduces "about 30 ns just to activate and
  close (precharge) banks" (SS 3.1 Challenge 6, citing [34]), which in turn
  yields the 2.6x / 39x / ~1250x random-access throughput-reduction
  factors of E3.
- ``t_rc = t_ras + t_rp = 45 ns`` makes gamma = 4 the *smallest* legal
  interleaving group for 1 KB segments at 80 B/ns per channel
  (segment time 12.8 ns; 3 x 12.8 = 38.4 < 45 <= 4 x 12.8 = 51.2), matching
  the reference design's derivation (E16).
- ``t_faw = 35 ns`` allows the steady-state PFI pattern (one ACT per
  channel every 12.8 ns -> four ACTs per 38.4 ns) while enforcing the
  four-activation window the paper cites for choosing S and gamma.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class HBMTiming:
    """DRAM timing rule set, all values in nanoseconds.

    Attributes
    ----------
    t_rcd:
        ACT-to-RD/WR delay (row to column).
    t_rp:
        PRE duration (precharge to next ACT on the same bank).
    t_ras:
        Minimum ACT-to-PRE time (row must stay open at least this long).
    t_faw:
        Four-activation window: a 5th ACT on a channel must come at least
        ``t_faw`` after the 4th-most-recent ACT.
    t_ccd:
        Minimum spacing between column commands on one channel.
    burst_length:
        Beats per column access; with a 64-bit channel at double data
        rate this quantises transfers to ``burst_bytes``.
    refresh_interval_ns:
        Average per-bank refresh spacing (single-bank refresh, hidden).
    refresh_duration_ns:
        Time one single-bank refresh occupies that bank.
    """

    t_rcd: float = 15.0
    t_rp: float = 15.0
    t_ras: float = 30.0
    t_faw: float = 35.0
    t_ccd: float = 0.2
    burst_length: int = 4
    refresh_interval_ns: float = 3_900.0
    refresh_duration_ns: float = 60.0

    def __post_init__(self) -> None:
        for name in ("t_rcd", "t_rp", "t_ras", "t_faw", "t_ccd"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigError(f"{name} must be non-negative, got {value}")
        if self.burst_length < 1:
            raise ConfigError(f"burst_length must be >= 1, got {self.burst_length}")
        if self.t_ras < self.t_rcd:
            raise ConfigError(
                f"t_ras ({self.t_ras}) must cover at least t_rcd ({self.t_rcd})"
            )

    @property
    def t_rc(self) -> float:
        """Row cycle: minimum ACT-to-ACT spacing on one bank (tRAS + tRP)."""
        return self.t_ras + self.t_rp

    @property
    def random_access_overhead_ns(self) -> float:
        """Per-access overhead of a closed-page random access (tRCD + tRP).

        This is the "about 30 ns" the paper charges approaches that are
        oblivious to HBM access rules (Challenge 6).
        """
        return self.t_rcd + self.t_rp

    def burst_bytes(self, channel_width_bits: int) -> int:
        """Bytes moved by one burst on a channel of the given width."""
        return channel_width_bits * self.burst_length // 8

    def quantise_to_bursts(self, size_bytes: int, channel_width_bits: int) -> int:
        """Round ``size_bytes`` up to a whole number of bursts.

        Random small accesses pay for full bursts -- part of why 64-byte
        packets are so much worse than 1500-byte ones in E3.
        """
        burst = self.burst_bytes(channel_width_bits)
        if size_bytes <= 0:
            return 0
        return ((size_bytes + burst - 1) // burst) * burst

    def refresh_overhead_fraction(self, banks_per_channel: int) -> float:
        """Fraction of a bank's time spent in single-bank refresh.

        HBM4 single-bank refresh lets PFI refresh banks in groups that
        are not currently in the write/read rotation; the paper states
        this "can be hidden without affecting the cycle time" (SS 4).  The
        fraction being tiny (<< the idle fraction of any one bank, which
        is idle for (L/gamma - 1)/(L/gamma) of the time) is what makes
        that claim hold; E4 asserts it.
        """
        if self.refresh_interval_ns <= 0:
            return 0.0
        per_bank = self.refresh_duration_ns / self.refresh_interval_ns
        return per_bank * banks_per_channel / max(banks_per_channel, 1)
