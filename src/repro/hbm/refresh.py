"""Hidden single-bank refresh (SS 4, *Frame interleaving cycle*).

"HBM4 provides single-bank refresh operations that can be hidden without
affecting the cycle time."  Under PFI, a bank is busy only while its
interleaving group is being written or read -- one group out of
L/gamma = 16 -- so every bank spends most of its life idle, and refresh
slots into the gaps.

:func:`busy_intervals` reconstructs each bank's occupancy from an actual
command schedule; :func:`plan_refreshes` greedily places one REF per
refresh interval in the free gaps; the caller merges the REFs with the
frame train and executes the union on the timing-checked controller --
if the plan overlapped a frame access, the bank state machine would
raise, and because REF moves no data the measured frame bandwidth is
unchanged.  That is the "hidden" claim, made executable (bench E4c).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

from ..errors import ConfigError
from .commands import Command, Op
from .timing import HBMTiming

BankKey = Tuple[int, int]  # (channel, bank)
Interval = Tuple[float, float]


def busy_intervals(
    commands: Iterable[Command], timing: HBMTiming
) -> Dict[BankKey, List[Interval]]:
    """Per-bank busy windows implied by a command schedule.

    A bank is busy from its ACT until its PRE completes (PRE time +
    tRP).  Unpaired ACTs (schedule ends with the bank open) extend to
    +inf so no refresh is planned inside them.
    """
    open_at: Dict[BankKey, float] = {}
    result: Dict[BankKey, List[Interval]] = defaultdict(list)
    ordered = sorted(commands, key=lambda c: c.time)
    for cmd in ordered:
        key = (cmd.channel, cmd.bank)
        if cmd.op is Op.ACT:
            open_at[key] = cmd.time
        elif cmd.op is Op.PRE:
            start = open_at.pop(key, cmd.time)
            result[key].append((start, cmd.time + timing.t_rp))
    for key, start in open_at.items():
        result[key].append((start, float("inf")))
    for intervals in result.values():
        intervals.sort()
    return dict(result)


def free_gaps(
    intervals: List[Interval], horizon_ns: float
) -> List[Interval]:
    """Complement of the busy intervals within [0, horizon]."""
    gaps: List[Interval] = []
    cursor = 0.0
    for start, end in intervals:
        if start > cursor:
            gaps.append((cursor, min(start, horizon_ns)))
        cursor = max(cursor, end)
        if cursor >= horizon_ns:
            break
    if cursor < horizon_ns:
        gaps.append((cursor, horizon_ns))
    return [(s, e) for s, e in gaps if e - s > 0]


def plan_refreshes(
    commands: Iterable[Command],
    timing: HBMTiming,
    n_channels: int,
    n_banks: int,
    horizon_ns: float,
) -> List[Command]:
    """One REF per bank per refresh interval, placed in free gaps.

    Greedy: each bank's next refresh is due ``refresh_interval_ns`` after
    the previous one; it is placed at the start of the earliest free gap
    that fits ``refresh_duration_ns`` at or after the due time (a real
    controller may also refresh early; placing late-but-hidden is the
    conservative choice).  Raises :class:`ConfigError` if any bank cannot
    meet a deadline within one extra interval -- which would mean refresh
    is *not* hideable under this schedule.
    """
    if horizon_ns <= 0:
        raise ConfigError(f"horizon must be positive, got {horizon_ns}")
    busy = busy_intervals(commands, timing)
    interval = timing.refresh_interval_ns
    duration = timing.refresh_duration_ns
    if interval <= 0:
        return []
    refreshes: List[Command] = []
    for channel in range(n_channels):
        for bank in range(n_banks):
            # Gaps may extend one interval past the horizon: a refresh
            # due just before the schedule ends can run right after it.
            gaps = free_gaps(busy.get((channel, bank), []), horizon_ns + interval)
            due = interval
            gap_index = 0
            while due < horizon_ns:
                placed = None
                while gap_index < len(gaps):
                    gap_start, gap_end = gaps[gap_index]
                    start = max(gap_start, due)
                    if start + duration <= gap_end:
                        placed = start
                        # Consume the used slice; the rest of the gap can
                        # host later refreshes.
                        gaps[gap_index] = (start + duration, gap_end)
                        break
                    gap_index += 1
                if placed is None:
                    raise ConfigError(
                        f"channel {channel} bank {bank}: no gap for refresh "
                        f"due at {due:.0f} ns -- refresh is not hideable"
                    )
                if placed - due > interval:
                    raise ConfigError(
                        f"channel {channel} bank {bank}: refresh due at "
                        f"{due:.0f} ns slipped {placed - due:.0f} ns"
                    )
                refreshes.append(Command(Op.REF, channel, bank, 0, placed))
                due += interval
    return refreshes


def refresh_slack_report(
    commands: Iterable[Command],
    timing: HBMTiming,
    n_channels: int,
    n_banks: int,
    horizon_ns: float,
) -> Dict[str, float]:
    """Aggregate headroom: how much idle time banks have vs refresh need."""
    busy = busy_intervals(commands, timing)
    total_busy = 0.0
    for intervals in busy.values():
        for start, end in intervals:
            total_busy += min(end, horizon_ns) - min(start, horizon_ns)
    bank_count = n_channels * n_banks
    total_time = bank_count * horizon_ns
    idle_fraction = 1.0 - total_busy / total_time if total_time else 0.0
    need = (
        timing.refresh_duration_ns / timing.refresh_interval_ns
        if timing.refresh_interval_ns > 0
        else 0.0
    )
    return {
        "idle_fraction": idle_fraction,
        "refresh_duty": need,
        "headroom": idle_fraction / need if need else float("inf"),
    }
