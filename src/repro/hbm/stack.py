"""One HBM stack: a set of independent channels.

The stack is mostly a container; the interesting state lives in the
channels and banks.  It also exposes the capacity/bandwidth arithmetic
used by the design analysis.
"""

from __future__ import annotations

from typing import List

from ..config import HBMStackConfig
from .channel import Channel
from .timing import HBMTiming


class HBMStack:
    """A 3D HBM stack with ``config.channels`` independent channels."""

    def __init__(self, config: HBMStackConfig, timing: HBMTiming, base_channel: int = 0):
        self.config = config
        self.timing = timing
        self.base_channel = base_channel
        self.channels: List[Channel] = [
            Channel(
                timing=timing,
                index=base_channel + c,
                n_banks=config.banks_per_channel,
                width_bits=config.channel_width_bits,
                bytes_per_ns=config.channel_bytes_per_ns,
            )
            for c in range(config.channels)
        ]

    @property
    def bytes_moved(self) -> int:
        """Total payload moved across all channels of this stack."""
        return sum(channel.bytes_moved for channel in self.channels)

    @property
    def peak_bandwidth_bps(self) -> float:
        """Peak stack bandwidth (20.48 Tb/s for HBM4)."""
        return self.config.stack_bandwidth_bps
