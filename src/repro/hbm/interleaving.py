"""Bank interleaving groups and the staggered frame schedule (PFI step 3).

This module is the heart of the paper's memory-access contribution:

- Banks are partitioned into disjoint *bank interleaving groups* of
  ``gamma`` consecutive banks.
- A frame is written 1/gamma at a time: segment into bank ``l`` across
  all T channels, then bank ``l+1``, ... with each bank's activate and
  the previous bank's precharge overlapped with the current bank's data
  transfer ("perfectly staggered bank interleaving").
- The n-th frame of an output goes to group ``n mod (L/gamma)``
  deterministically -- no bookkeeping (PFI step 4).

:func:`derive_gamma` reproduces the paper's derivation of gamma = 4: the
smallest group size whose per-bank cycle (gamma segment-times) covers the
row cycle tRC, subject to the four-activation limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import ConfigError
from .commands import Command, Op
from .timing import HBMTiming

#: The current-draw limit the paper cites: "at most four concurrent bank
#: activations, to prevent the memory from drawing too much instantaneous
#: current" (SS 3.2 step 3).
FOUR_ACTIVATION_LIMIT = 4


def derive_gamma(
    timing: HBMTiming,
    segment_time_ns: float,
    max_activations: int = FOUR_ACTIVATION_LIMIT,
) -> int:
    """Smallest legal interleaving group size for a given segment time.

    Condition (i) of the paper: the precharge of the first bank in one
    group must complete before that bank (or its successor group's first
    bank) is activated again, i.e. the group must spread a bank's reuse
    over at least one row cycle: ``gamma * segment_time >= t_rc``.

    Condition (ii): at most ``max_activations`` banks may be activated
    concurrently, bounding gamma from above.

    >>> derive_gamma(HBMTiming(), segment_time_ns=12.8)
    4
    """
    if segment_time_ns <= 0:
        raise ConfigError(f"segment time must be positive, got {segment_time_ns}")
    gamma = 1
    while gamma * segment_time_ns < timing.t_rc:
        gamma += 1
        if gamma > max_activations:
            raise ConfigError(
                f"no legal gamma <= {max_activations}: segment time "
                f"{segment_time_ns:.3f} ns is too short to hide "
                f"t_rc = {timing.t_rc:.3f} ns"
            )
    return gamma


def max_concurrent_activations(timing: HBMTiming, segment_time_ns: float) -> int:
    """Banks simultaneously open under the staggered schedule.

    A bank is open from its ACT (t_rcd before its data phase) until its
    precharge completes (t_rp after PRE).  With one ACT per segment time,
    the number of overlapping open intervals is ``ceil(open_span /
    segment_time)``.
    """
    if segment_time_ns <= 0:
        raise ConfigError(f"segment time must be positive, got {segment_time_ns}")
    open_span = timing.t_rcd + max(timing.t_ras - timing.t_rcd, segment_time_ns) + timing.t_rp
    import math

    return math.ceil(open_span / segment_time_ns)


def bank_group_for_frame(frame_index: int, n_groups: int) -> int:
    """PFI step 4, the no-bookkeeping rule: h = n mod (L / gamma)."""
    if n_groups <= 0:
        raise ConfigError(f"n_groups must be positive, got {n_groups}")
    if frame_index < 0:
        raise ConfigError(f"frame_index must be >= 0, got {frame_index}")
    return frame_index % n_groups


@dataclass(frozen=True)
class BankGroup:
    """Group ``index`` of ``gamma`` consecutive banks."""

    index: int
    gamma: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigError(f"group index must be >= 0, got {self.index}")
        if self.gamma <= 0:
            raise ConfigError(f"gamma must be positive, got {self.gamma}")

    @property
    def first_bank(self) -> int:
        return self.index * self.gamma

    @property
    def banks(self) -> List[int]:
        """The consecutive banks l .. l + gamma - 1 of this group."""
        return list(range(self.first_bank, self.first_bank + self.gamma))


@dataclass(frozen=True)
class FrameSchedule:
    """A complete timed command sequence moving one frame.

    ``data_start``/``data_end`` delimit the bus-occupancy window; the
    first ACT precedes ``data_start`` by tRCD (pipelined into the
    previous phase) and the last PRE trails ``data_end``.
    """

    commands: List[Command]
    data_start: float
    data_end: float
    payload_bytes: int

    @property
    def duration_ns(self) -> float:
        """Length of the data phase (what the frame costs in bus time)."""
        return self.data_end - self.data_start


def first_legal_start(timing: HBMTiming) -> float:
    """Earliest data-phase start so the leading ACT is at t >= 0."""
    return timing.t_rcd


def generate_frame_schedule(
    op: Op,
    channels: Sequence[int],
    group: BankGroup,
    segment_bytes: int,
    row: int,
    data_start: float,
    timing: HBMTiming,
    channel_bytes_per_ns: float,
) -> FrameSchedule:
    """Emit the staggered-interleaved command stream for one frame.

    For each of the ``gamma`` banks in ``group``, and on every channel in
    ``channels`` in parallel:

    - ACT is issued tRCD before the bank's data slot so the row is open
      exactly when its segment's transfer begins;
    - the WR/RD column command starts the segment transfer;
    - PRE closes the bank as soon as tRAS and the data transfer allow.

    Segments on consecutive banks butt against each other on the data
    bus, so the bus never idles inside a frame -- that is the "peak data
    rate" property E4 measures.
    """
    if op not in (Op.WR, Op.RD):
        raise ConfigError(f"frame schedules move data; got {op}")
    if segment_bytes <= 0:
        raise ConfigError(f"segment_bytes must be positive, got {segment_bytes}")
    if channel_bytes_per_ns <= 0:
        raise ConfigError(f"channel rate must be positive, got {channel_bytes_per_ns}")

    segment_time = segment_bytes / channel_bytes_per_ns
    commands: List[Command] = []
    for position, bank in enumerate(group.banks):
        slot_start = data_start + position * segment_time
        act_time = slot_start - timing.t_rcd
        pre_time = max(act_time + timing.t_ras, slot_start + segment_time)
        for channel in channels:
            commands.append(Command(Op.ACT, channel, bank, row, act_time))
            commands.append(
                Command(op, channel, bank, row, slot_start, size_bytes=segment_bytes)
            )
            commands.append(Command(Op.PRE, channel, bank, row, pre_time))

    data_end = data_start + group.gamma * segment_time
    payload = group.gamma * segment_bytes * len(channels)
    commands.sort(key=lambda c: (c.time, c.op is not Op.PRE, c.op is not Op.ACT))
    return FrameSchedule(
        commands=commands,
        data_start=data_start,
        data_end=data_end,
        payload_bytes=payload,
    )
