"""Per-channel DRAM state: data bus occupancy and the tFAW window.

Each HBM channel has its own 64-bit data bus, its own bank array, and its
own four-activation window.  Channels are fully independent of each other
-- that independence is exactly the parallelism PFI stripes frames
across.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from ..errors import TimingViolation
from .bank import Bank
from .commands import Command, Op
from .timing import HBMTiming

#: Tolerance (ns) for floating-point drift when comparing command times.
TIMING_EPSILON_NS = 1e-6


class Channel:
    """One 64-bit HBM channel with ``n_banks`` banks."""

    def __init__(
        self,
        timing: HBMTiming,
        index: int,
        n_banks: int,
        width_bits: int,
        bytes_per_ns: float,
    ) -> None:
        if n_banks <= 0:
            raise ValueError(f"n_banks must be positive, got {n_banks}")
        if bytes_per_ns <= 0:
            raise ValueError(f"bytes_per_ns must be positive, got {bytes_per_ns}")
        self._timing = timing
        self._index = index
        self._width_bits = width_bits
        self._bytes_per_ns = bytes_per_ns
        self.banks: List[Bank] = [Bank(timing, index, b) for b in range(n_banks)]
        self._bus_free_at = -float("inf")
        self._last_column_at = -float("inf")
        self._act_history: Deque[float] = deque(maxlen=4)
        self._bytes_moved = 0
        self._data_end = -float("inf")
        # Fault injection (:mod:`repro.faults`): half-open [start, end)
        # windows during which the channel does not respond.
        self._dead_windows: List[Tuple[float, float]] = []

    # -- introspection -------------------------------------------------------

    @property
    def index(self) -> int:
        return self._index

    @property
    def n_banks(self) -> int:
        return len(self.banks)

    @property
    def bytes_moved(self) -> int:
        """Total payload bytes transferred over this channel's bus."""
        return self._bytes_moved

    @property
    def data_end_time(self) -> float:
        """Completion time of the last data transfer on this channel."""
        return self._data_end

    def transfer_time_ns(self, size_bytes: int) -> float:
        """Bus occupancy of ``size_bytes``, quantised to whole bursts."""
        quantised = self._timing.quantise_to_bursts(size_bytes, self._width_bits)
        return quantised / self._bytes_per_ns

    def utilisation(self, elapsed_ns: float) -> float:
        """Fraction of this channel's peak rate used over ``elapsed_ns``."""
        if elapsed_ns <= 0:
            return 0.0
        return self._bytes_moved / (self._bytes_per_ns * elapsed_ns)

    # -- fault injection -------------------------------------------------------

    def fail(self, start_ns: float = 0.0, end_ns: float = float("inf")) -> None:
        """Mark the channel dead during ``[start_ns, end_ns)``.

        A dead channel rejects every command addressed to it inside the
        window (the controller surfaces this as a
        :class:`~repro.errors.TimingViolation` with rule
        ``channel-dead``), which is how a stuck HBM channel presents to
        a real scheduler: commands time out instead of completing.
        """
        self._dead_windows.append((start_ns, end_ns))

    def available_at(self, t_ns: float) -> bool:
        """Whether the channel responds to commands at ``t_ns``."""
        return not any(start <= t_ns < end for start, end in self._dead_windows)

    # -- command application ---------------------------------------------------

    def apply(self, cmd: Command) -> None:
        """Validate channel-level rules, then delegate bank-level rules."""
        if self._dead_windows and not self.available_at(cmd.time):
            raise TimingViolation(
                cmd.describe(), cmd.time, float("inf"), "channel-dead"
            )
        if not 0 <= cmd.bank < self.n_banks:
            raise TimingViolation(
                cmd.describe(), cmd.time, float("inf"), f"bank-out-of-range(<{self.n_banks})"
            )
        if cmd.op is Op.ACT:
            self._check_faw(cmd)
        data_time = 0.0
        if cmd.op in (Op.WR, Op.RD):
            data_time = self._claim_bus(cmd)
        self.banks[cmd.bank].apply(cmd, data_time)
        if cmd.op is Op.ACT:
            self._act_history.append(cmd.time)

    def _check_faw(self, cmd: Command) -> None:
        """Enforce the four-activation window (tFAW).

        With the deque holding the last four ACT times, a new ACT is
        illegal before ``oldest + t_faw`` once four are in the window.
        """
        if len(self._act_history) == 4:
            oldest = self._act_history[0]
            legal = oldest + self._timing.t_faw
            if cmd.time < legal - TIMING_EPSILON_NS:
                raise TimingViolation(cmd.describe(), cmd.time, legal, "tFAW")

    def _claim_bus(self, cmd: Command) -> float:
        """Reserve the data bus for a WR/RD payload; returns its duration."""
        if cmd.time < self._last_column_at + self._timing.t_ccd - TIMING_EPSILON_NS:
            raise TimingViolation(
                cmd.describe(), cmd.time, self._last_column_at + self._timing.t_ccd, "tCCD"
            )
        if cmd.time < self._bus_free_at - TIMING_EPSILON_NS:
            raise TimingViolation(cmd.describe(), cmd.time, self._bus_free_at, "bus-busy")
        data_time = self.transfer_time_ns(cmd.size_bytes)
        self._bus_free_at = cmd.time + data_time
        self._last_column_at = cmd.time
        self._bytes_moved += cmd.size_bytes
        self._data_end = max(self._data_end, cmd.time + data_time)
        return data_time
