"""HBM4 memory substrate.

This package models what the paper's PFI algorithm must respect: DRAM
timing.  The model is command-level, not cycle-level -- commands carry
absolute nanosecond timestamps and every bank/channel checks the JEDEC-
style rules (tRCD, tRP, tRAS, tRC, tFAW, bus occupancy, open-row) and
raises :class:`~repro.errors.TimingViolation` on an illegal schedule.

The contract with the rest of the system:

- :mod:`~repro.hbm.timing` -- the timing parameter set, tuned so that the
  paper's quoted numbers fall out (30 ns random-access overhead, gamma = 4
  minimal legal interleaving group).
- :mod:`~repro.hbm.commands` -- ACT / WR / RD / PRE / REF command records.
- :mod:`~repro.hbm.bank` / :mod:`~repro.hbm.channel` /
  :mod:`~repro.hbm.stack` -- the state machines.
- :mod:`~repro.hbm.controller` -- validates whole schedules and measures
  achieved bandwidth.
- :mod:`~repro.hbm.interleaving` -- bank interleaving groups, the gamma
  derivation, and the staggered frame schedule generator (the heart of
  PFI's memory access pattern).
"""

from .bank import Bank, BankState
from .channel import Channel
from .commands import Command, Op
from .controller import HBMController, ScheduleResult
from .interleaving import (
    FOUR_ACTIVATION_LIMIT,
    BankGroup,
    FrameSchedule,
    bank_group_for_frame,
    derive_gamma,
    first_legal_start,
    generate_frame_schedule,
    max_concurrent_activations,
)
from .refresh import busy_intervals, free_gaps, plan_refreshes, refresh_slack_report
from .stack import HBMStack
from .timing import HBMTiming

__all__ = [
    "HBMTiming",
    "Command",
    "Op",
    "Bank",
    "BankState",
    "Channel",
    "HBMStack",
    "HBMController",
    "ScheduleResult",
    "BankGroup",
    "FrameSchedule",
    "FOUR_ACTIVATION_LIMIT",
    "first_legal_start",
    "derive_gamma",
    "bank_group_for_frame",
    "generate_frame_schedule",
    "max_concurrent_activations",
    "plan_refreshes",
    "refresh_slack_report",
    "busy_intervals",
    "free_gaps",
]
