"""HBM command records.

A :class:`Command` is a fully resolved memory operation: which channel
(flat index across the stack group), which bank, which row, how many
bytes, and the absolute issue time.  PFI emits streams of these; the
controller validates them against the timing rules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Op(enum.Enum):
    """DRAM command opcodes used by the model."""

    ACT = "ACT"  # activate (open) a row in a bank
    WR = "WR"  # write a column burst sequence
    RD = "RD"  # read a column burst sequence
    PRE = "PRE"  # precharge (close) a bank
    REF = "REF"  # single-bank refresh

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Command:
    """One timed DRAM command.

    ``size_bytes`` is meaningful only for :attr:`Op.WR` / :attr:`Op.RD`;
    it is the payload moved over the channel data bus starting at
    ``time`` (the model treats column command and data phase as one unit
    whose bus occupancy is ``size / channel rate``).
    """

    op: Op
    channel: int
    bank: int
    row: int
    time: float
    size_bytes: int = 0

    def __post_init__(self) -> None:
        if self.channel < 0:
            raise ValueError(f"channel must be >= 0, got {self.channel}")
        if self.bank < 0:
            raise ValueError(f"bank must be >= 0, got {self.bank}")
        if self.row < 0:
            raise ValueError(f"row must be >= 0, got {self.row}")
        if self.op in (Op.WR, Op.RD) and self.size_bytes <= 0:
            raise ValueError(f"{self.op} needs a positive size, got {self.size_bytes}")
        if self.op in (Op.ACT, Op.PRE, Op.REF) and self.size_bytes != 0:
            raise ValueError(f"{self.op} carries no data")

    def describe(self) -> str:
        """Compact human-readable form for error messages."""
        base = f"{self.op} ch{self.channel} bank{self.bank} row{self.row}"
        if self.size_bytes:
            base += f" {self.size_bytes}B"
        return base
