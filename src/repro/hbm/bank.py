"""Per-bank DRAM state machine.

A bank is either closed (precharged) or has one open row.  The machine
tracks the timestamps needed to enforce tRCD, tRAS, tRP and tRC, and
raises :class:`~repro.errors.TimingViolation` naming the violated rule
and the earliest legal time -- PFI schedules are supposed to be legal by
construction, so a violation is a scheduler bug.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..errors import TimingViolation
from .commands import Command, Op
from .timing import HBMTiming

#: Tolerance (ns) for floating-point drift when comparing command times.
TIMING_EPSILON_NS = 1e-6


class BankState(enum.Enum):
    """Observable bank state."""

    CLOSED = "closed"
    OPEN = "open"


class Bank:
    """One DRAM bank within one channel."""

    def __init__(self, timing: HBMTiming, channel: int, index: int) -> None:
        self._timing = timing
        self._channel = channel
        self._index = index
        self._state = BankState.CLOSED
        self._open_row: Optional[int] = None
        self._last_act = -float("inf")
        self._precharged_at = -float("inf")  # time PRE completes
        self._data_end = -float("inf")  # last column access data completion
        self._last_refresh = 0.0

    # -- introspection -------------------------------------------------------

    @property
    def state(self) -> BankState:
        return self._state

    @property
    def open_row(self) -> Optional[int]:
        return self._open_row

    @property
    def last_activate_time(self) -> float:
        return self._last_act

    def earliest_activate(self) -> float:
        """Earliest time the next ACT on this bank is legal (tRC, tRP)."""
        return max(self._last_act + self._timing.t_rc, self._precharged_at)

    # -- command application ---------------------------------------------------

    def apply(self, cmd: Command, data_time_ns: float = 0.0) -> None:
        """Apply ``cmd`` to this bank, enforcing bank-local timing rules.

        ``data_time_ns`` is the bus occupancy of a WR/RD payload, used to
        know when data finishes so PRE cannot cut a transfer short.
        """
        handler = {
            Op.ACT: self._apply_act,
            Op.WR: self._apply_column,
            Op.RD: self._apply_column,
            Op.PRE: self._apply_pre,
            Op.REF: self._apply_ref,
        }[cmd.op]
        handler(cmd, data_time_ns)

    def _apply_act(self, cmd: Command, _data_time: float) -> None:
        if self._state is BankState.OPEN:
            raise TimingViolation(
                cmd.describe(), cmd.time, self.earliest_activate(), "ACT-on-open-bank"
            )
        legal = self.earliest_activate()
        if cmd.time < legal - TIMING_EPSILON_NS:
            rule = "tRC" if cmd.time >= self._precharged_at else "tRP"
            raise TimingViolation(cmd.describe(), cmd.time, legal, rule)
        self._state = BankState.OPEN
        self._open_row = cmd.row
        self._last_act = cmd.time

    def _apply_column(self, cmd: Command, data_time: float) -> None:
        if self._state is not BankState.OPEN:
            raise TimingViolation(cmd.describe(), cmd.time, float("inf"), "closed-bank")
        if cmd.row != self._open_row:
            raise TimingViolation(
                cmd.describe(),
                cmd.time,
                float("inf"),
                f"row-mismatch(open={self._open_row})",
            )
        legal = self._last_act + self._timing.t_rcd
        if cmd.time < legal - TIMING_EPSILON_NS:
            raise TimingViolation(cmd.describe(), cmd.time, legal, "tRCD")
        self._data_end = max(self._data_end, cmd.time + data_time)

    def _apply_pre(self, cmd: Command, _data_time: float) -> None:
        if self._state is not BankState.OPEN:
            raise TimingViolation(cmd.describe(), cmd.time, float("inf"), "PRE-on-closed")
        legal = max(self._last_act + self._timing.t_ras, self._data_end)
        if cmd.time < legal - TIMING_EPSILON_NS:
            rule = "tRAS" if cmd.time < self._last_act + self._timing.t_ras else "data-in-flight"
            raise TimingViolation(cmd.describe(), cmd.time, legal, rule)
        self._state = BankState.CLOSED
        self._open_row = None
        self._precharged_at = cmd.time + self._timing.t_rp

    def _apply_ref(self, cmd: Command, _data_time: float) -> None:
        if self._state is not BankState.CLOSED:
            raise TimingViolation(cmd.describe(), cmd.time, float("inf"), "REF-on-open")
        if cmd.time < self._precharged_at - TIMING_EPSILON_NS:
            raise TimingViolation(cmd.describe(), cmd.time, self._precharged_at, "tRP")
        self._last_refresh = cmd.time
        # A refresh occupies the bank like a row cycle; model it as a
        # precharge completing after the refresh duration.
        self._precharged_at = cmd.time + self._timing.refresh_duration_ns

    def is_open_at(self, time_ns: float) -> bool:
        """Whether the bank holds an open row at ``time_ns``.

        Used by the controller's concurrent-activation audit (the
        four-activation current-draw limit the paper uses to bound gamma).
        """
        return self._state is BankState.OPEN and self._last_act <= time_ns
