"""ECMP / LAG hashing.

Two places in the paper hash flows across parallel lanes:

- upstream routers hash across the fibers of a link bundle, which is why
  per-fiber loads (and therefore per-HBM-switch loads under SPS) are
  typically even (SS 4, *Traffic matrix at HBM switches*);
- the output port hashes departing packets across the alpha fibers and W
  wavelengths of its ribbon (SS 3.2 step 6).

Both use the same primitive: a salted, flow-stable hash mapped to one of
``n`` choices.
"""

from __future__ import annotations

from typing import Tuple

from .flows import FiveTuple


def hash_to_choice(flow: FiveTuple, n_choices: int, salt: int = 0) -> int:
    """Map a flow to one of ``n_choices`` lanes, deterministically.

    The same flow always maps to the same lane (no intra-flow
    reordering); different salts decorrelate independent hashing points
    (e.g. the upstream router's LAG hash vs our egress hash).
    """
    if n_choices <= 0:
        raise ValueError(f"n_choices must be positive, got {n_choices}")
    return flow.stable_hash(salt) % n_choices


class EcmpSelector:
    """Egress lane selection across fibers and wavelengths (step 6).

    The output ribbon offers ``n_fibers`` fibers x ``n_wavelengths``
    wavelengths; a flow is pinned to one (fiber, wavelength) lane.
    """

    def __init__(self, n_fibers: int, n_wavelengths: int, salt: int = 0x5B5):
        if n_fibers <= 0 or n_wavelengths <= 0:
            raise ValueError(
                f"need positive lane counts, got {n_fibers} x {n_wavelengths}"
            )
        self._n_fibers = n_fibers
        self._n_wavelengths = n_wavelengths
        self._salt = salt

    @property
    def n_lanes(self) -> int:
        return self._n_fibers * self._n_wavelengths

    def select(self, flow: FiveTuple) -> Tuple[int, int]:
        """Return the (fiber, wavelength) lane for ``flow``."""
        lane = hash_to_choice(flow, self.n_lanes, self._salt)
        return lane // self._n_wavelengths, lane % self._n_wavelengths

    def lane_loads(self, flows_with_bytes) -> "dict[Tuple[int, int], int]":
        """Aggregate bytes per lane for a ``(flow, bytes)`` iterable.

        Used by E10 to show hashing evens lane loads.
        """
        loads: dict = {}
        for flow, nbytes in flows_with_bytes:
            lane = self.select(flow)
            loads[lane] = loads.get(lane, 0) + nbytes
        return loads
