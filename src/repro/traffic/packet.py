"""The packet: the unit of traffic entering and leaving the router.

Packets are deliberately lightweight (``__slots__``) because simulations
at line rate create hundreds of thousands of them.  Sizes are in bytes;
times in nanoseconds.  ``input_port`` / ``output_port`` are the HBM
switch's N-port space (= the router's fiber-ribbon space).
"""

from __future__ import annotations

from typing import Optional

from .flows import FiveTuple

#: Smallest packet the model accepts (Ethernet minimum frame payload view
#: used by the paper's worst case: 64 bytes).
MIN_PACKET_BYTES = 40

#: Largest packet (standard Ethernet MTU frame, the paper's 1500 B case).
MAX_PACKET_BYTES = 9_216  # jumbo frames allowed; paper's cases are 64/1500


class Packet:
    """One variable-length packet.

    Attributes
    ----------
    pid:
        Unique id, assigned by the generator in arrival order (so flow
        order checks can compare pids).
    size_bytes:
        Packet length on the wire.
    input_port / output_port:
        Ribbon indices in the N x N switch fabric.
    flow:
        The 5-tuple used for ECMP/LAG hashing and ordering checks.
    arrival_ns:
        When the packet's last byte arrived at the switch input.
    departure_ns:
        Set by the switch when the packet's last byte leaves.
    fiber / wavelength:
        Egress lane chosen by the output-port hash (SS 3.2 step 6).
    """

    __slots__ = (
        "pid",
        "size_bytes",
        "input_port",
        "output_port",
        "flow",
        "arrival_ns",
        "departure_ns",
        "fiber",
        "wavelength",
    )

    def __init__(
        self,
        pid: int,
        size_bytes: int,
        input_port: int,
        output_port: int,
        flow: FiveTuple,
        arrival_ns: float,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError(f"packet size must be positive, got {size_bytes}")
        self.pid = pid
        self.size_bytes = size_bytes
        self.input_port = input_port
        self.output_port = output_port
        self.flow = flow
        self.arrival_ns = arrival_ns
        self.departure_ns: Optional[float] = None
        self.fiber: Optional[int] = None
        self.wavelength: Optional[int] = None

    @property
    def latency_ns(self) -> float:
        """Departure minus arrival; raises if the packet has not departed."""
        if self.departure_ns is None:
            raise ValueError(f"packet {self.pid} has not departed")
        return self.departure_ns - self.arrival_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Packet(pid={self.pid}, {self.size_bytes}B, "
            f"{self.input_port}->{self.output_port}, t={self.arrival_ns:.1f})"
        )
