"""Packet size distributions.

The paper's worst case is 64-byte packets and its typical case 1500-byte
ones (Challenge 6).  Realistic internet mixes sit in between; the classic
"Simple IMIX" (7:4:1 at 40/576/1500 B) and a trimodal core-router mix are
provided for the example workloads.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence, Tuple

import numpy as np


class PacketSizeDistribution(ABC):
    """Interface: sample a packet size in bytes."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> int:
        """Draw one packet size."""

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` sizes as an int64 array.

        The generator's hot path; subclasses override with a single
        vectorized draw.  This fallback keeps third-party distributions
        working unchanged (one :meth:`sample` call per packet).
        """
        if n <= 0:
            return np.empty(0, dtype=np.int64)
        return np.fromiter(
            (self.sample(rng) for _ in range(n)), dtype=np.int64, count=n
        )

    @property
    @abstractmethod
    def mean_bytes(self) -> float:
        """Expected packet size, used to convert load to packet rate."""


class FixedSize(PacketSizeDistribution):
    """Every packet has the same size (the paper's 64 B / 1500 B cases)."""

    def __init__(self, size_bytes: int):
        if size_bytes <= 0:
            raise ValueError(f"size must be positive, got {size_bytes}")
        self._size = size_bytes

    def sample(self, rng: np.random.Generator) -> int:
        return self._size

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(max(n, 0), self._size, dtype=np.int64)

    @property
    def mean_bytes(self) -> float:
        return float(self._size)


class _WeightedSizes(PacketSizeDistribution):
    """Base for discrete weighted mixes."""

    def __init__(self, sizes: Sequence[int], weights: Sequence[float]):
        if len(sizes) != len(weights) or not sizes:
            raise ValueError("sizes and weights must be equal-length, non-empty")
        if any(s <= 0 for s in sizes):
            raise ValueError("all sizes must be positive")
        if any(w < 0 for w in weights) or sum(weights) <= 0:
            raise ValueError("weights must be non-negative and sum > 0")
        total = float(sum(weights))
        self._sizes = np.asarray(sizes, dtype=np.int64)
        self._probs = np.asarray([w / total for w in weights], dtype=np.float64)

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.choice(self._sizes, p=self._probs))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n <= 0:
            return np.empty(0, dtype=np.int64)
        return rng.choice(self._sizes, size=n, p=self._probs).astype(np.int64)

    @property
    def mean_bytes(self) -> float:
        return float(np.dot(self._sizes, self._probs))

    @property
    def support(self) -> Tuple[int, ...]:
        return tuple(int(s) for s in self._sizes)


class ImixSize(_WeightedSizes):
    """Simple IMIX: 7 x 40 B, 4 x 576 B, 1 x 1500 B."""

    def __init__(self) -> None:
        super().__init__(sizes=(40, 576, 1500), weights=(7, 4, 1))


class TrimodalSize(_WeightedSizes):
    """A core-router-style trimodal mix (small ACKs, medium, MTU-size)."""

    def __init__(self) -> None:
        super().__init__(sizes=(64, 594, 1500), weights=(0.55, 0.2, 0.25))


class UniformSize(PacketSizeDistribution):
    """Uniform over [lo, hi] bytes -- a stress pattern for batch packing."""

    def __init__(self, lo: int = 64, hi: int = 1500):
        if not 0 < lo <= hi:
            raise ValueError(f"need 0 < lo <= hi, got [{lo}, {hi}]")
        self._lo = lo
        self._hi = hi

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self._lo, self._hi + 1))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if n <= 0:
            return np.empty(0, dtype=np.int64)
        return rng.integers(self._lo, self._hi + 1, size=n, dtype=np.int64)

    @property
    def mean_bytes(self) -> float:
        return (self._lo + self._hi) / 2.0
