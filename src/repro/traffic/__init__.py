"""Traffic substrate: packets, flows, size distributions, matrices,
arrival processes, ECMP/LAG hashing and admissibility checks.

The paper reasons about *admissible* traffic (no input or output
oversubscribed), about per-fiber load skew at the SPS splitter, and about
ECMP/LAG hashing evening out traffic matrices (SS 4, *Traffic matrix at
HBM switches*).  This package generates all of those synthetically.
"""

from .admissibility import assert_admissible, is_admissible, max_line_load
from .ecmp import EcmpSelector, hash_to_choice
from .flows import FiveTuple, FlowGenerator
from .generators import ArrivalProcess, TrafficGenerator
from .matrices import (
    diagonal_matrix,
    hotspot_matrix,
    permutation_matrix,
    random_admissible_matrix,
    uniform_matrix,
)
from .packet import Packet
from .replay import (
    TraceSource,
    load_trace,
    replay,
    save_trace,
    stream_trace,
    trace_to_string,
)
from .sizes import (
    FixedSize,
    ImixSize,
    PacketSizeDistribution,
    TrimodalSize,
    UniformSize,
)
from .stream import (
    DEFAULT_BLOCK_NS,
    WORKLOAD_KINDS,
    ArrivalBlock,
    DiurnalProfile,
    FlashCrowdProfile,
    HeavyTailSource,
    LoadProfile,
    TrafficSource,
    block_edges,
    blocks_from_packets,
    workload_source,
)

__all__ = [
    "Packet",
    "FiveTuple",
    "FlowGenerator",
    "PacketSizeDistribution",
    "FixedSize",
    "ImixSize",
    "TrimodalSize",
    "UniformSize",
    "uniform_matrix",
    "permutation_matrix",
    "diagonal_matrix",
    "hotspot_matrix",
    "random_admissible_matrix",
    "is_admissible",
    "assert_admissible",
    "max_line_load",
    "hash_to_choice",
    "EcmpSelector",
    "TrafficGenerator",
    "ArrivalProcess",
    "save_trace",
    "load_trace",
    "replay",
    "trace_to_string",
    "TrafficSource",
    "ArrivalBlock",
    "block_edges",
    "blocks_from_packets",
    "DEFAULT_BLOCK_NS",
    "HeavyTailSource",
    "LoadProfile",
    "DiurnalProfile",
    "FlashCrowdProfile",
    "workload_source",
    "WORKLOAD_KINDS",
    "stream_trace",
    "TraceSource",
]
