"""Streaming traffic substrate: bounded-memory arrival blocks.

The eager path (:meth:`TrafficGenerator.generate`) materializes one
``List[Packet]`` per run -- fine at 15k packets, fatal at 10^8.  This
module is the streaming replacement: a :class:`TrafficSource` yields
:class:`ArrivalBlock` chunks (structured numpy arrays, time-sorted
within a block) that every engine consumes incrementally, so memory is
bounded by the block span rather than the run length.

Block protocol invariants, relied on by every consumer:

- Blocks partition ``[0, duration_ns)`` into half-open spans
  ``[k*block_ns, (k+1)*block_ns)``; an arrival at exactly a boundary
  belongs to the *later* block, so no packet ever straddles two blocks
  and equal arrival times never split across a boundary.
- Arrivals are non-decreasing in time within a block, and packet ids
  (``pid_offset + index``) continue the global arrival order across
  blocks -- concatenating every block's packets reproduces the eager
  packet list exactly.
- Block content is invariant to ``block_ns``: the same source with the
  same seed yields bitwise-identical packets however the run is
  chunked.  :class:`HeavyTailSource` guarantees this by drawing flows
  in fixed-size chunks per (input, output) pair from per-pair
  independent RNG streams, so the draw sequence never depends on where
  block boundaries fall.

On top of the protocol sit the realistic internet workloads of ROADMAP
item 1: heavy-tailed mice-and-elephants flow sizes (Pareto/lognormal),
diurnal load curves and flash-crowd ramps (both by thinning flow
arrivals against a peak-rate envelope, which preserves chunk
invariance), and -- in :mod:`repro.traffic.replay` -- a chunked trace
reader (:func:`~repro.traffic.replay.stream_trace`).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..units import rate_to_bytes_per_ns
from .admissibility import assert_admissible
from .flows import FiveTuple
from .packet import MAX_PACKET_BYTES, MIN_PACKET_BYTES, Packet

#: Default block span (ns).  Small enough that a block holds thousands
#: -- not millions -- of arrivals at the reference rates, large enough
#: that per-block overhead is amortised.
DEFAULT_BLOCK_NS = 10_000.0

#: Flows drawn per RNG call in :class:`HeavyTailSource`.  Fixed so the
#: per-pair draw sequence is independent of ``block_ns`` (chunk
#: invariance); the value only trades RNG-call overhead against queue
#: depth.
FLOW_CHUNK = 256


def block_edges(
    duration_ns: float, block_ns: float
) -> Iterator[Tuple[float, float]]:
    """Yield the half-open block spans partitioning ``[0, duration_ns)``.

    Every span is ``[k*block_ns, min((k+1)*block_ns, duration_ns))``;
    the half-open convention means an arrival at exactly a boundary
    belongs to the later block.
    """
    if duration_ns <= 0:
        raise ConfigError(f"duration must be positive, got {duration_ns}")
    if block_ns <= 0:
        raise ConfigError(f"block span must be positive, got {block_ns}")
    k = 0
    while True:
        start = k * block_ns
        if start >= duration_ns:
            return
        yield start, min(start + block_ns, duration_ns)
        k += 1


class ArrivalBlock:
    """One time-sorted chunk of arrivals as structured numpy arrays.

    ``times``/``sizes``/``inputs``/``outputs`` are aligned arrays (one
    row per packet); ``flows`` is the aligned tuple of
    :class:`~repro.traffic.flows.FiveTuple` headers.  ``pid_offset`` is
    the global arrival index of the block's first packet, so
    :meth:`to_packets` continues the eager pid sequence across blocks.
    """

    __slots__ = (
        "times",
        "sizes",
        "inputs",
        "outputs",
        "flows",
        "start_ns",
        "end_ns",
        "pid_offset",
        "_packets",
    )

    def __init__(
        self,
        times: np.ndarray,
        sizes: np.ndarray,
        inputs: np.ndarray,
        outputs: np.ndarray,
        flows: Sequence[FiveTuple],
        start_ns: float,
        end_ns: float,
        pid_offset: int = 0,
        _packets: Optional[List[Packet]] = None,
    ) -> None:
        times = np.asarray(times, dtype=np.float64)
        sizes = np.asarray(sizes, dtype=np.int64)
        inputs = np.asarray(inputs, dtype=np.int64)
        outputs = np.asarray(outputs, dtype=np.int64)
        n = times.size
        if not (sizes.size == inputs.size == outputs.size == len(flows) == n):
            raise ConfigError(
                "misaligned block arrays: "
                f"times={times.size} sizes={sizes.size} inputs={inputs.size} "
                f"outputs={outputs.size} flows={len(flows)}"
            )
        if start_ns >= end_ns:
            raise ConfigError(
                f"empty block span [{start_ns}, {end_ns}) is invalid"
            )
        if n:
            if np.any(times[1:] < times[:-1]):
                raise ConfigError("block arrivals are not time-sorted")
            if times[0] < start_ns or times[-1] >= end_ns:
                raise ConfigError(
                    f"arrivals [{times[0]}, {times[-1]}] escape the block "
                    f"span [{start_ns}, {end_ns})"
                )
        self.times = times
        self.sizes = sizes
        self.inputs = inputs
        self.outputs = outputs
        self.flows = tuple(flows)
        self.start_ns = float(start_ns)
        self.end_ns = float(end_ns)
        self.pid_offset = int(pid_offset)
        self._packets = _packets

    def __len__(self) -> int:
        return self.times.size

    @property
    def total_bytes(self) -> int:
        """Sum of packet sizes in the block."""
        return int(self.sizes.sum()) if self.times.size else 0

    def to_packets(self) -> List[Packet]:
        """Materialize the block as :class:`Packet` objects.

        Pids continue the global arrival order (``pid_offset + index``).
        When the block wraps a pre-built packet list (the
        :func:`blocks_from_packets` compatibility path), the original
        objects are returned so identity-sensitive callers see the
        exact packets they supplied.
        """
        if self._packets is not None:
            return self._packets
        offset = self.pid_offset
        return [
            Packet(offset + k, int(size), int(i), int(j), flow, float(t))
            for k, (t, size, i, j, flow) in enumerate(
                zip(self.times, self.sizes, self.inputs, self.outputs, self.flows)
            )
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArrivalBlock(n={len(self)}, span=[{self.start_ns:.1f}, "
            f"{self.end_ns:.1f}), pid_offset={self.pid_offset})"
        )


class TrafficSource(ABC):
    """Iterator API over arrival blocks -- the streaming generator surface.

    Implementations yield one :class:`ArrivalBlock` per span of
    :func:`block_edges`, honouring the block-protocol invariants above.
    :meth:`materialize` is the bridge back to the eager world: it
    concatenates every block's packets, byte-identical to what the
    legacy ``generate()`` would have produced for sources that shim it.
    """

    @abstractmethod
    def blocks(
        self, duration_ns: float, block_ns: float = DEFAULT_BLOCK_NS
    ) -> Iterator[ArrivalBlock]:
        """Yield time-ordered arrival blocks covering ``[0, duration_ns)``."""

    def materialize(
        self, duration_ns: float, block_ns: float = DEFAULT_BLOCK_NS
    ) -> List[Packet]:
        """Collect every block into one eager packet list."""
        packets: List[Packet] = []
        for block in self.blocks(duration_ns, block_ns):
            packets.extend(block.to_packets())
        return packets


def blocks_from_packets(
    packets: Sequence[Packet],
    duration_ns: float,
    block_ns: float = DEFAULT_BLOCK_NS,
) -> Iterator[ArrivalBlock]:
    """Partition an eager, time-sorted packet list into arrival blocks.

    The compatibility bridge for callers that already hold a packet
    list (trace replays, adversarial workloads with precomputed fiber
    assignments) but want to feed a streaming consumer.  The original
    :class:`Packet` objects are carried through ``to_packets()``
    unchanged, and ``pid_offset`` is the list index of each block's
    first packet -- so a parallel per-packet array (e.g. a fiber
    assignment) can be sliced as ``[pid_offset : pid_offset + len]``.
    """
    packets = list(packets)
    times = np.asarray([p.arrival_ns for p in packets], dtype=np.float64)
    if times.size and np.any(times[1:] < times[:-1]):
        raise ConfigError("packet list is not time-sorted")
    if times.size and times[-1] >= duration_ns:
        raise ConfigError(
            f"packet at t={times[-1]} arrives at/after duration {duration_ns}"
        )
    for start, end in block_edges(duration_ns, block_ns):
        lo = int(np.searchsorted(times, start, side="left"))
        hi = int(np.searchsorted(times, end, side="left"))
        chunk = packets[lo:hi]
        yield ArrivalBlock(
            times[lo:hi],
            np.asarray([p.size_bytes for p in chunk], dtype=np.int64),
            np.asarray([p.input_port for p in chunk], dtype=np.int64),
            np.asarray([p.output_port for p in chunk], dtype=np.int64),
            [p.flow for p in chunk],
            start,
            end,
            pid_offset=lo,
            _packets=chunk,
        )


# --------------------------------------------------------------------------
# Load profiles: diurnal curves and flash crowds
# --------------------------------------------------------------------------


class LoadProfile(ABC):
    """Time-varying load envelope, as a fraction of the peak rate.

    :class:`HeavyTailSource` thins flow arrivals against the profile
    (a flow arriving at ``t`` survives with probability ``scale(t)``),
    so the instantaneous offered rate tracks ``peak_rate * scale(t)``
    while the per-pair draw sequence stays chunk-invariant.
    """

    @abstractmethod
    def scale(self, t_ns: float) -> float:
        """Load fraction in ``[0, 1]`` at time ``t_ns``."""

    def mean_scale(self, duration_ns: float, n: int = 1024) -> float:
        """Average of ``scale`` over ``[0, duration_ns)`` (trapezoid-free
        midpoint estimate -- good enough for offered-load expectations)."""
        ts = (np.arange(n) + 0.5) * (duration_ns / n)
        return float(np.mean([self.scale(float(t)) for t in ts]))


class DiurnalProfile(LoadProfile):
    """Sinusoidal time-of-day curve between ``floor`` and the peak.

    ``scale(0) == floor`` (night trough) and the peak lands mid-period,
    mirroring a one-day utilization curve compressed to ``period_ns``.
    """

    def __init__(self, period_ns: float, floor: float = 0.3) -> None:
        if period_ns <= 0:
            raise ConfigError(f"period must be positive, got {period_ns}")
        if not 0.0 <= floor <= 1.0:
            raise ConfigError(f"floor must be in [0, 1], got {floor}")
        self.period_ns = float(period_ns)
        self.floor = float(floor)

    def scale(self, t_ns: float) -> float:
        phase = 0.5 * (1.0 - math.cos(2.0 * math.pi * t_ns / self.period_ns))
        return self.floor + (1.0 - self.floor) * phase


class FlashCrowdProfile(LoadProfile):
    """A base load with a linear ramp to the peak at ``start_ns``.

    Models the flash-crowd onset: quiet at ``base`` until ``start_ns``,
    then offered load ramps to the peak over ``ramp_ns`` and holds --
    the transient that stresses SPS split imbalance hardest.
    """

    def __init__(
        self, start_ns: float, ramp_ns: float, base: float = 0.2
    ) -> None:
        if start_ns < 0:
            raise ConfigError(f"start must be >= 0, got {start_ns}")
        if ramp_ns <= 0:
            raise ConfigError(f"ramp must be positive, got {ramp_ns}")
        if not 0.0 <= base <= 1.0:
            raise ConfigError(f"base must be in [0, 1], got {base}")
        self.start_ns = float(start_ns)
        self.ramp_ns = float(ramp_ns)
        self.base = float(base)

    def scale(self, t_ns: float) -> float:
        if t_ns <= self.start_ns:
            return self.base
        frac = min((t_ns - self.start_ns) / self.ramp_ns, 1.0)
        return self.base + (1.0 - self.base) * frac


# --------------------------------------------------------------------------
# Heavy-tailed flow workloads (mice and elephants)
# --------------------------------------------------------------------------


class _FlowTrain:
    """One in-flight flow: back-to-back MTU packets at line rate.

    Emission is lazy -- a block only materializes the packets whose
    arrival falls inside its span -- so a multi-gigabyte elephant costs
    one train record, not a million buffered packets.  Times are always
    computed as ``start + gap * absolute_index`` (never accumulated),
    so the emitted timestamps are bitwise identical however the train
    is split across blocks.
    """

    __slots__ = ("start", "gap", "n_packets", "last_size", "flow", "emitted")

    def __init__(
        self,
        start: float,
        gap: float,
        n_packets: int,
        last_size: int,
        flow: FiveTuple,
    ) -> None:
        self.start = start
        self.gap = gap
        self.n_packets = n_packets
        self.last_size = last_size
        self.flow = flow
        self.emitted = 0

    @property
    def next_time(self) -> float:
        return self.start + self.gap * self.emitted

    def emit(self, end: float) -> Tuple[np.ndarray, np.ndarray]:
        """(times, sizes) of packets arriving before ``end``; advances."""
        remaining = self.n_packets - self.emitted
        if remaining <= 0 or self.next_time >= end:
            return (
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.int64),
            )
        # Upper-bound the count, then mask: the +1 slack absorbs any
        # float rounding in the ceil.
        bound = int(math.ceil((end - self.next_time) / self.gap)) + 1
        count = min(remaining, max(bound, 0))
        idx = np.arange(self.emitted, self.emitted + count, dtype=np.float64)
        times = self.start + self.gap * idx
        keep = times < end
        times = times[keep]
        count = times.size
        sizes = np.full(count, _MTU_SENTINEL, dtype=np.int64)
        if count and self.emitted + count == self.n_packets:
            sizes[-1] = self.last_size
        self.emitted += count
        return times, sizes

    @property
    def done(self) -> bool:
        return self.emitted >= self.n_packets


#: Placeholder filled with the source's MTU after emission (kept out of
#: the inner loop; replaced in one vectorized assignment).
_MTU_SENTINEL = -1


class _PairState:
    """Per-(input, output) generation state for :class:`HeavyTailSource`."""

    __slots__ = ("rng", "clock", "flow_idx", "queue", "trains")

    def __init__(self, rng: np.random.Generator) -> None:
        self.rng = rng
        self.clock = 0.0  # arrival time of the last drawn flow
        self.flow_idx = 0  # accepted flows so far (FiveTuple counter)
        #: Drawn flows not yet started: (arrival_ns, size_bytes, accept_u).
        self.queue: Deque[Tuple[float, float, float]] = deque()
        self.trains: List[_FlowTrain] = []


class HeavyTailSource(TrafficSource):
    """Streaming mice-and-elephants workload with bounded memory.

    Flows arrive per (input, output) pair as a Poisson process whose
    rate matches the pair's byte rate (``matrix[i, j]`` of the port
    line rate) divided by the mean flow size; each flow's bytes are
    drawn from a heavy-tailed distribution and transmitted as a train
    of back-to-back ``packet_bytes`` packets at line rate.  Families:

    - ``"pareto"``: shifted Pareto (Lomax) with tail index ``alpha``
      (infinite variance below 2 -- true elephants).
    - ``"lognormal"``: lognormal with shape ``sigma``.

    A :class:`LoadProfile` (diurnal curve, flash crowd) thins flow
    arrivals so the offered rate tracks ``scale(t)`` of the peak.

    Unlike the legacy :class:`~repro.traffic.generators.TrafficGenerator`
    (one shared RNG consumed pair-sequentially, which forces eager
    generation), every pair here owns an independent seeded RNG stream
    and draws flows in fixed :data:`FLOW_CHUNK` batches, so block
    content is bitwise invariant to ``block_ns`` and memory stays flat:
    state per pair is one RNG, a small flow queue, and the in-flight
    trains.
    """

    def __init__(
        self,
        n_ports: int,
        port_rate_bps: float,
        matrix: np.ndarray,
        family: str = "pareto",
        mean_flow_bytes: float = 100_000.0,
        alpha: float = 1.5,
        sigma: float = 1.0,
        packet_bytes: int = 1500,
        profile: Optional[LoadProfile] = None,
        seed: int = 0,
    ) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape != (n_ports, n_ports):
            raise ConfigError(
                f"matrix shape {matrix.shape} does not match n_ports={n_ports}"
            )
        assert_admissible(matrix)
        if port_rate_bps <= 0:
            raise ConfigError(f"port rate must be positive, got {port_rate_bps}")
        if family not in ("pareto", "lognormal"):
            raise ConfigError(
                f"unknown flow-size family {family!r} "
                "(expected 'pareto' or 'lognormal')"
            )
        if alpha <= 1.0:
            raise ConfigError(
                f"pareto alpha must exceed 1 (finite mean), got {alpha}"
            )
        if sigma <= 0:
            raise ConfigError(f"lognormal sigma must be positive, got {sigma}")
        if not MIN_PACKET_BYTES <= packet_bytes <= MAX_PACKET_BYTES:
            raise ConfigError(
                f"packet_bytes must be in [{MIN_PACKET_BYTES}, "
                f"{MAX_PACKET_BYTES}], got {packet_bytes}"
            )
        if mean_flow_bytes < packet_bytes:
            raise ConfigError(
                f"mean flow size {mean_flow_bytes} below one packet "
                f"({packet_bytes} B)"
            )
        self.n_ports = n_ports
        self.port_rate_bps = port_rate_bps
        self.matrix = matrix
        self.family = family
        self.mean_flow_bytes = float(mean_flow_bytes)
        self.alpha = float(alpha)
        self.sigma = float(sigma)
        self.packet_bytes = int(packet_bytes)
        self.profile = profile
        self.seed = seed
        self._line_rate = rate_to_bytes_per_ns(port_rate_bps)  # bytes/ns
        self._gap_ns = self.packet_bytes / self._line_rate

    # -- flow-size draws ---------------------------------------------------

    def _flow_sizes(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.family == "pareto":
            # Shifted Pareto (Lomax + scale): mean = scale*alpha/(alpha-1).
            scale = self.mean_flow_bytes * (self.alpha - 1.0) / self.alpha
            return (rng.pareto(self.alpha, n) + 1.0) * scale
        mu = math.log(self.mean_flow_bytes) - 0.5 * self.sigma**2
        return rng.lognormal(mu, self.sigma, n)

    def _make_train(self, start: float, size: float, flow: FiveTuple) -> _FlowTrain:
        size_bytes = max(int(size), MIN_PACKET_BYTES)
        n_full, rem = divmod(size_bytes, self.packet_bytes)
        if n_full == 0:
            return _FlowTrain(start, self._gap_ns, 1, size_bytes, flow)
        if rem >= MIN_PACKET_BYTES:
            return _FlowTrain(start, self._gap_ns, n_full + 1, rem, flow)
        # A sub-minimum tail rides in the last full packet (folded away).
        return _FlowTrain(start, self._gap_ns, n_full, self.packet_bytes, flow)

    def _flow_tuple(self, i: int, j: int, idx: int) -> FiveTuple:
        key = idx & 0xFFFF
        return FiveTuple(
            src_ip=(10 << 24) | (i << 16) | key,
            dst_ip=(192 << 24) | (j << 16) | key,
            src_port=1024 + (idx % 61440),
            dst_port=443,
            protocol=6,
        )

    # -- the block iterator ------------------------------------------------

    def blocks(
        self, duration_ns: float, block_ns: float = DEFAULT_BLOCK_NS
    ) -> Iterator[ArrivalBlock]:
        pairs: List[Tuple[int, int, float, _PairState]] = []
        for i in range(self.n_ports):
            for j in range(self.n_ports):
                load = float(self.matrix[i, j])
                if load <= 0:
                    continue
                rng = np.random.default_rng(
                    np.random.SeedSequence((self.seed, i, j))
                )
                pairs.append((i, j, load, _PairState(rng)))
        pid = 0
        for start, end in block_edges(duration_ns, block_ns):
            times_parts: List[np.ndarray] = []
            sizes_parts: List[np.ndarray] = []
            inputs_parts: List[np.ndarray] = []
            outputs_parts: List[np.ndarray] = []
            flows_parts: List[List[FiveTuple]] = []
            for i, j, load, st in pairs:
                self._advance_flows(st, i, j, load, end, duration_ns)
                live: List[_FlowTrain] = []
                for train in st.trains:
                    t_times, t_sizes = train.emit(end)
                    if t_times.size:
                        t_sizes[t_sizes == _MTU_SENTINEL] = self.packet_bytes
                        times_parts.append(t_times)
                        sizes_parts.append(t_sizes)
                        inputs_parts.append(
                            np.full(t_times.size, i, dtype=np.int64)
                        )
                        outputs_parts.append(
                            np.full(t_times.size, j, dtype=np.int64)
                        )
                        flows_parts.append([train.flow] * t_times.size)
                    if not train.done:
                        live.append(train)
                st.trains = live
            if times_parts:
                times = np.concatenate(times_parts)
                sizes = np.concatenate(sizes_parts)
                inputs = np.concatenate(inputs_parts)
                outputs = np.concatenate(outputs_parts)
                flows: List[FiveTuple] = [
                    f for part in flows_parts for f in part
                ]
                order = np.argsort(times, kind="stable")
                times, sizes = times[order], sizes[order]
                inputs, outputs = inputs[order], outputs[order]
                flows = [flows[k] for k in order]
            else:
                times = np.empty(0, dtype=np.float64)
                sizes = np.empty(0, dtype=np.int64)
                inputs = np.empty(0, dtype=np.int64)
                outputs = np.empty(0, dtype=np.int64)
                flows = []
            block = ArrivalBlock(
                times, sizes, inputs, outputs, flows, start, end,
                pid_offset=pid,
            )
            pid += len(block)
            yield block

    def _advance_flows(
        self,
        st: _PairState,
        i: int,
        j: int,
        load: float,
        end: float,
        duration_ns: float,
    ) -> None:
        """Draw flow arrivals past ``end`` and start the ones inside."""
        pair_rate = load * self._line_rate  # peak bytes/ns for the pair
        mean_gap = self.mean_flow_bytes / pair_rate  # ns between flows
        while st.clock < end and st.clock < duration_ns:
            gaps = st.rng.exponential(mean_gap, FLOW_CHUNK)
            arrivals = st.clock + np.cumsum(gaps)
            sizes = self._flow_sizes(st.rng, FLOW_CHUNK)
            us = (
                st.rng.random(FLOW_CHUNK)
                if self.profile is not None
                else np.zeros(FLOW_CHUNK)
            )
            st.clock = float(arrivals[-1])
            for t, s, u in zip(arrivals, sizes, us):
                if t < duration_ns:
                    st.queue.append((float(t), float(s), float(u)))
        while st.queue and st.queue[0][0] < end:
            t, s, u = st.queue.popleft()
            if self.profile is not None and u >= self.profile.scale(t):
                continue
            flow = self._flow_tuple(i, j, st.flow_idx)
            st.flow_idx += 1
            st.trains.append(self._make_train(t, s, flow))

    def offered_bytes(self, duration_ns: float) -> float:
        """Expected offered load in bytes over ``duration_ns``."""
        total_load = float(self.matrix.sum())
        peak = total_load * self._line_rate * duration_ns
        if self.profile is None:
            return peak
        return peak * self.profile.mean_scale(duration_ns)


# --------------------------------------------------------------------------
# Workload factory (the CLI's --workload surface)
# --------------------------------------------------------------------------

#: Named workload families accepted by :func:`workload_source` (plus
#: ``trace:<path>``).
WORKLOAD_KINDS = ("pareto", "lognormal", "diurnal", "flash")


def workload_source(
    spec: str,
    n_ports: int,
    port_rate_bps: float,
    load: float,
    seed: int = 0,
    duration_ns: Optional[float] = None,
    packet_bytes: int = 1500,
) -> TrafficSource:
    """Build a :class:`TrafficSource` from a ``--workload`` spec string.

    Specs mirror the ``--fidelity`` precedent: a bare family name
    (``pareto``, ``lognormal``, ``diurnal``, ``flash``) builds a
    :class:`HeavyTailSource` over a uniform matrix at ``load``, and
    ``trace:<path>`` streams an external packet trace through
    :func:`~repro.traffic.replay.stream_trace`.  ``diurnal`` and
    ``flash`` shape a Pareto mice-and-elephants mix with the matching
    :class:`LoadProfile` (the ``duration_ns`` hint sets the profile's
    time base; defaults to 100 us).
    """
    from .matrices import uniform_matrix

    if spec.startswith("trace:"):
        path = spec[len("trace:"):]
        if not path:
            raise ConfigError("trace workload needs a path: trace:<path>")
        from .replay import TraceSource

        return TraceSource(path)
    horizon = duration_ns if duration_ns is not None else 100_000.0
    profiles: Dict[str, Optional[LoadProfile]] = {
        "pareto": None,
        "lognormal": None,
        "diurnal": DiurnalProfile(period_ns=horizon),
        "flash": FlashCrowdProfile(
            start_ns=horizon / 4.0, ramp_ns=horizon / 8.0
        ),
    }
    if spec not in profiles:
        raise ConfigError(
            f"unknown workload {spec!r} (expected one of "
            f"{', '.join(WORKLOAD_KINDS)}, or trace:<path>)"
        )
    family = "lognormal" if spec == "lognormal" else "pareto"
    return HeavyTailSource(
        n_ports=n_ports,
        port_rate_bps=port_rate_bps,
        matrix=uniform_matrix(n_ports, load),
        family=family,
        packet_bytes=packet_bytes,
        profile=profiles[spec],
        seed=seed,
    )
