"""Packet-trace I/O: save simulator workloads, replay external ones.

The synthetic generators cover the paper's analysis, but a production
library must also ingest real workloads (anonymised router traces,
testbed captures).  The format is deliberately plain CSV --
``arrival_ns,size_bytes,input_port,output_port,src_ip,dst_ip,src_port,
dst_port,protocol`` -- so traces can come from anywhere.

:func:`save_trace` / :func:`load_trace` round-trip exactly;
:func:`replay` re-times a trace (offsetting and/or speed-scaling it) so
one capture drives experiments at several loads.

For internet-scale captures, :func:`stream_trace` reads the same CSV as
a bounded-memory block iterator (one
:class:`~repro.traffic.stream.ArrivalBlock` in memory at a time) and
:class:`TraceSource` wraps a trace file as a
:class:`~repro.traffic.stream.TrafficSource` any engine can consume.
The eager :func:`load_trace` remains as a deprecated materializing shim
(byte-identical packets).
"""

from __future__ import annotations

import csv
import io
import warnings
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, TextIO, Union

import numpy as np

from ..errors import ConfigError
from .flows import FiveTuple
from .packet import Packet
from .stream import DEFAULT_BLOCK_NS, ArrivalBlock, TrafficSource

_COLUMNS = [
    "arrival_ns",
    "size_bytes",
    "input_port",
    "output_port",
    "src_ip",
    "dst_ip",
    "src_port",
    "dst_port",
    "protocol",
]


def save_trace(packets: Sequence[Packet], destination: Union[str, Path, TextIO]) -> None:
    """Write packets as CSV (header + one row per packet, arrival order)."""
    own = isinstance(destination, (str, Path))
    handle: TextIO = open(destination, "w", newline="") if own else destination
    try:
        writer = csv.writer(handle)
        writer.writerow(_COLUMNS)
        for packet in packets:
            writer.writerow(
                [
                    repr(packet.arrival_ns),
                    packet.size_bytes,
                    packet.input_port,
                    packet.output_port,
                    packet.flow.src_ip,
                    packet.flow.dst_ip,
                    packet.flow.src_port,
                    packet.flow.dst_port,
                    packet.flow.protocol,
                ]
            )
    finally:
        if own:
            handle.close()


_load_trace_warned = False


def _warn_load_trace_deprecated() -> None:
    """One-shot deprecation notice for the eager trace reader -- it
    fires on the first materializing load of the process, not on every
    file of a batch."""
    global _load_trace_warned
    if _load_trace_warned:
        return
    _load_trace_warned = True
    warnings.warn(
        "load_trace() materializes the whole capture; iterate "
        "stream_trace(path, duration_ns) (or wrap the file in "
        "TraceSource) for bounded-memory replay (byte-identical "
        "packets)",
        DeprecationWarning,
        stacklevel=3,
    )


def _reset_load_trace_warning() -> None:
    """Re-arm the one-shot warning (test hook)."""
    global _load_trace_warned
    _load_trace_warned = False


def load_trace(source: Union[str, Path, TextIO], sort: bool = False) -> List[Packet]:
    """Read a CSV trace eagerly; returns packets with fresh sequential
    pids.  Deprecated: prefer :func:`stream_trace` / :class:`TraceSource`
    for anything larger than a test fixture (byte-identical packets at
    bounded memory).

    Rows must be sorted by arrival time: the simulators' drain
    invariant (offered = delivered + dropped + residual, and shared
    arrival-time tie-breaking by pid) assumes pids follow arrival
    order, so an unsorted trace fed to the SPS would silently reorder
    flows.  Violations therefore raise :class:`ConfigError` with the
    offending line.  ``sort=True`` instead accepts out-of-order rows
    and stably sorts them by arrival (re-assigning pids in the sorted
    order) -- for archived captures whose writers interleaved several
    sources.
    """
    _warn_load_trace_deprecated()
    return _load_trace_eager(source, sort)


def _load_trace_eager(source: Union[str, Path, TextIO], sort: bool = False) -> List[Packet]:
    own = isinstance(source, (str, Path))
    handle: TextIO = open(source, "r", newline="") if own else source
    try:
        reader = csv.DictReader(handle)
        missing = set(_COLUMNS) - set(reader.fieldnames or [])
        if missing:
            raise ConfigError(f"trace is missing columns: {sorted(missing)}")
        packets: List[Packet] = []
        last_time = -float("inf")
        for line_no, row in enumerate(reader, start=2):
            try:
                arrival = float(row["arrival_ns"])
                size = int(row["size_bytes"])
                flow = FiveTuple(
                    src_ip=int(row["src_ip"]),
                    dst_ip=int(row["dst_ip"]),
                    src_port=int(row["src_port"]),
                    dst_port=int(row["dst_port"]),
                    protocol=int(row["protocol"]),
                )
                packet = Packet(
                    pid=len(packets),
                    size_bytes=size,
                    input_port=int(row["input_port"]),
                    output_port=int(row["output_port"]),
                    flow=flow,
                    arrival_ns=arrival,
                )
            except (KeyError, ValueError) as error:
                raise ConfigError(f"trace line {line_no}: {error}") from error
            if arrival < last_time and not sort:
                raise ConfigError(
                    f"trace line {line_no}: arrivals not sorted "
                    f"({arrival} after {last_time})"
                )
            last_time = max(last_time, arrival)
            packets.append(packet)
        if sort:
            packets.sort(key=lambda p: p.arrival_ns)
            for pid, packet in enumerate(packets):
                packet.pid = pid
        return packets
    finally:
        if own:
            handle.close()


def stream_trace(
    source: Union[str, Path, TextIO],
    duration_ns: Optional[float] = None,
    block_ns: float = DEFAULT_BLOCK_NS,
) -> Iterator[ArrivalBlock]:
    """Read a CSV trace as a bounded-memory block iterator.

    Yields :class:`~repro.traffic.stream.ArrivalBlock` spans of
    ``block_ns`` covering ``[0, duration_ns)`` (trailing spans are
    empty blocks, so a consuming engine still advances to the
    horizon); rows at or past ``duration_ns`` are dropped, exactly as
    the switch ingest would drop them.  With ``duration_ns=None`` the
    stream ends at the last row's span and nothing is dropped.  Only
    one block of rows is ever held in memory.

    Ordering contract (the ``load_trace(sort=False)`` footgun, made
    explicit): the simulators' drain invariant needs pids in arrival
    order, so rows are auto-sorted *within* each block span -- jitter
    smaller than ``block_ns`` is repaired for free -- but a row whose
    arrival precedes an already-yielded block is a hard
    :class:`ConfigError` naming the line.  Pre-sort such captures
    (``load_trace(sort=True)``) or raise ``block_ns`` past the jitter.

    For a trace that is already sorted, the concatenated blocks are
    byte-identical to :func:`load_trace`'s packet list.
    """
    if block_ns <= 0:
        raise ConfigError(f"block_ns must be positive, got {block_ns}")
    if duration_ns is not None and duration_ns <= 0:
        raise ConfigError(f"duration must be positive, got {duration_ns}")
    own = isinstance(source, (str, Path))
    handle: TextIO = open(source, "r", newline="") if own else source
    try:
        reader = csv.DictReader(handle)
        missing = set(_COLUMNS) - set(reader.fieldnames or [])
        if missing:
            raise ConfigError(f"trace is missing columns: {sorted(missing)}")
        start = 0.0
        pid_offset = 0
        times: List[float] = []
        sizes: List[int] = []
        inputs: List[int] = []
        outputs: List[int] = []
        flows: List[FiveTuple] = []

        def flush(end: float) -> ArrivalBlock:
            nonlocal pid_offset, times, sizes, inputs, outputs, flows
            t = np.asarray(times, dtype=np.float64)
            order = np.argsort(t, kind="stable")
            block = ArrivalBlock(
                times=t[order],
                sizes=np.asarray(sizes, dtype=np.int64)[order],
                inputs=np.asarray(inputs, dtype=np.int64)[order],
                outputs=np.asarray(outputs, dtype=np.int64)[order],
                flows=tuple(flows[k] for k in order),
                start_ns=start,
                end_ns=end,
                pid_offset=pid_offset,
            )
            pid_offset += len(block)
            times, sizes, inputs, outputs, flows = [], [], [], [], []
            return block

        for line_no, row in enumerate(reader, start=2):
            try:
                arrival = float(row["arrival_ns"])
                size = int(row["size_bytes"])
                flow = FiveTuple(
                    src_ip=int(row["src_ip"]),
                    dst_ip=int(row["dst_ip"]),
                    src_port=int(row["src_port"]),
                    dst_port=int(row["dst_port"]),
                    protocol=int(row["protocol"]),
                )
                input_port = int(row["input_port"])
                output_port = int(row["output_port"])
            except (KeyError, ValueError) as error:
                raise ConfigError(f"trace line {line_no}: {error}") from error
            if arrival < 0:
                raise ConfigError(
                    f"trace line {line_no}: negative arrival {arrival}"
                )
            if duration_ns is not None and arrival >= duration_ns:
                continue
            if arrival < start:
                raise ConfigError(
                    f"trace line {line_no}: arrival {arrival} ns precedes "
                    f"an already-emitted block (blocks only auto-sort "
                    f"within one {block_ns:g} ns span; pre-sort the "
                    f"capture with load_trace(sort=True) or raise "
                    f"block_ns)"
                )
            while arrival >= start + block_ns:
                end = start + block_ns
                if duration_ns is not None:
                    end = min(end, duration_ns)
                yield flush(end)
                start += block_ns
            times.append(arrival)
            sizes.append(size)
            inputs.append(input_port)
            outputs.append(output_port)
            flows.append(flow)
        if duration_ns is None:
            if times:
                yield flush(start + block_ns)
        else:
            while start < duration_ns:
                yield flush(min(start + block_ns, duration_ns))
                start += block_ns
    finally:
        if own:
            handle.close()


class TraceSource(TrafficSource):
    """A trace file as a reusable :class:`TrafficSource`.

    Re-opens ``path`` on every :meth:`blocks` call, so one source
    drives many runs (sweep cells, fault trials) without keeping any
    packets resident between them.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise ConfigError(f"trace file not found: {self.path}")

    def blocks(
        self, duration_ns: float, block_ns: float = DEFAULT_BLOCK_NS
    ) -> Iterator[ArrivalBlock]:
        return stream_trace(self.path, duration_ns, block_ns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceSource({str(self.path)!r})"


def replay(
    packets: Sequence[Packet],
    time_scale: float = 1.0,
    offset_ns: float = 0.0,
) -> List[Packet]:
    """Fresh packets with re-timed arrivals.

    ``time_scale`` stretches inter-arrival gaps (2.0 = half the load),
    ``offset_ns`` shifts the start.  Flows and sizes are preserved, so
    ECMP pinning and ordering semantics carry over.
    """
    if time_scale <= 0:
        raise ConfigError(f"time_scale must be positive, got {time_scale}")
    if offset_ns < 0:
        raise ConfigError(f"offset must be >= 0, got {offset_ns}")
    if not packets:
        return []
    base = packets[0].arrival_ns
    out: List[Packet] = []
    for pid, original in enumerate(packets):
        out.append(
            Packet(
                pid=pid,
                size_bytes=original.size_bytes,
                input_port=original.input_port,
                output_port=original.output_port,
                flow=original.flow,
                arrival_ns=offset_ns + (original.arrival_ns - base) * time_scale,
            )
        )
    return out


def trace_to_string(packets: Sequence[Packet]) -> str:
    """The CSV text of a trace (convenience for tests and small dumps)."""
    buffer = io.StringIO()
    save_trace(packets, buffer)
    return buffer.getvalue()
