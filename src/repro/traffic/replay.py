"""Packet-trace I/O: save simulator workloads, replay external ones.

The synthetic generators cover the paper's analysis, but a production
library must also ingest real workloads (anonymised router traces,
testbed captures).  The format is deliberately plain CSV --
``arrival_ns,size_bytes,input_port,output_port,src_ip,dst_ip,src_port,
dst_port,protocol`` -- so traces can come from anywhere.

:func:`save_trace` / :func:`load_trace` round-trip exactly;
:func:`replay` re-times a trace (offsetting and/or speed-scaling it) so
one capture drives experiments at several loads.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import List, Sequence, TextIO, Union

from ..errors import ConfigError
from .flows import FiveTuple
from .packet import Packet

_COLUMNS = [
    "arrival_ns",
    "size_bytes",
    "input_port",
    "output_port",
    "src_ip",
    "dst_ip",
    "src_port",
    "dst_port",
    "protocol",
]


def save_trace(packets: Sequence[Packet], destination: Union[str, Path, TextIO]) -> None:
    """Write packets as CSV (header + one row per packet, arrival order)."""
    own = isinstance(destination, (str, Path))
    handle: TextIO = open(destination, "w", newline="") if own else destination
    try:
        writer = csv.writer(handle)
        writer.writerow(_COLUMNS)
        for packet in packets:
            writer.writerow(
                [
                    repr(packet.arrival_ns),
                    packet.size_bytes,
                    packet.input_port,
                    packet.output_port,
                    packet.flow.src_ip,
                    packet.flow.dst_ip,
                    packet.flow.src_port,
                    packet.flow.dst_port,
                    packet.flow.protocol,
                ]
            )
    finally:
        if own:
            handle.close()


def load_trace(source: Union[str, Path, TextIO], sort: bool = False) -> List[Packet]:
    """Read a CSV trace; returns packets with fresh sequential pids.

    Rows must be sorted by arrival time (the simulators assume it);
    violations raise :class:`ConfigError` with the offending line.
    ``sort=True`` instead accepts out-of-order rows and stably sorts
    them by arrival (re-assigning pids in the sorted order) -- for
    archived captures whose writers interleaved several sources.
    """
    own = isinstance(source, (str, Path))
    handle: TextIO = open(source, "r", newline="") if own else source
    try:
        reader = csv.DictReader(handle)
        missing = set(_COLUMNS) - set(reader.fieldnames or [])
        if missing:
            raise ConfigError(f"trace is missing columns: {sorted(missing)}")
        packets: List[Packet] = []
        last_time = -float("inf")
        for line_no, row in enumerate(reader, start=2):
            try:
                arrival = float(row["arrival_ns"])
                size = int(row["size_bytes"])
                flow = FiveTuple(
                    src_ip=int(row["src_ip"]),
                    dst_ip=int(row["dst_ip"]),
                    src_port=int(row["src_port"]),
                    dst_port=int(row["dst_port"]),
                    protocol=int(row["protocol"]),
                )
                packet = Packet(
                    pid=len(packets),
                    size_bytes=size,
                    input_port=int(row["input_port"]),
                    output_port=int(row["output_port"]),
                    flow=flow,
                    arrival_ns=arrival,
                )
            except (KeyError, ValueError) as error:
                raise ConfigError(f"trace line {line_no}: {error}") from error
            if arrival < last_time and not sort:
                raise ConfigError(
                    f"trace line {line_no}: arrivals not sorted "
                    f"({arrival} after {last_time})"
                )
            last_time = max(last_time, arrival)
            packets.append(packet)
        if sort:
            packets.sort(key=lambda p: p.arrival_ns)
            for pid, packet in enumerate(packets):
                packet.pid = pid
        return packets
    finally:
        if own:
            handle.close()


def replay(
    packets: Sequence[Packet],
    time_scale: float = 1.0,
    offset_ns: float = 0.0,
) -> List[Packet]:
    """Fresh packets with re-timed arrivals.

    ``time_scale`` stretches inter-arrival gaps (2.0 = half the load),
    ``offset_ns`` shifts the start.  Flows and sizes are preserved, so
    ECMP pinning and ordering semantics carry over.
    """
    if time_scale <= 0:
        raise ConfigError(f"time_scale must be positive, got {time_scale}")
    if offset_ns < 0:
        raise ConfigError(f"offset must be >= 0, got {offset_ns}")
    if not packets:
        return []
    base = packets[0].arrival_ns
    out: List[Packet] = []
    for pid, original in enumerate(packets):
        out.append(
            Packet(
                pid=pid,
                size_bytes=original.size_bytes,
                input_port=original.input_port,
                output_port=original.output_port,
                flow=original.flow,
                arrival_ns=offset_ns + (original.arrival_ns - base) * time_scale,
            )
        )
    return out


def trace_to_string(packets: Sequence[Packet]) -> str:
    """The CSV text of a trace (convenience for tests and small dumps)."""
    buffer = io.StringIO()
    save_trace(packets, buffer)
    return buffer.getvalue()
