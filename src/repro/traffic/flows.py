"""Flows and their 5-tuples.

The output port hashes packets "across the available waveguides and
wavelengths using their flow 5-tuples," as in ECMP or LAG (SS 3.2 step 6).
The hash must be (a) deterministic per flow so a flow never reorders
across lanes, and (b) well mixed so lanes load evenly -- we use CRC32
over the packed tuple, which is what commodity switch ASICs approximate.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np


@dataclass(frozen=True)
class FiveTuple:
    """Classic flow identity: addresses, ports and protocol."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int = 6  # TCP

    def __post_init__(self) -> None:
        if not 0 <= self.src_ip < 2**32 or not 0 <= self.dst_ip < 2**32:
            raise ValueError("IPs must be 32-bit unsigned values")
        if not 0 <= self.src_port < 2**16 or not 0 <= self.dst_port < 2**16:
            raise ValueError("ports must be 16-bit unsigned values")
        if not 0 <= self.protocol < 2**8:
            raise ValueError("protocol must be an 8-bit value")

    def packed(self) -> bytes:
        """Canonical byte encoding (network order) for hashing."""
        return struct.pack(
            "!IIHHB", self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.protocol
        )

    def stable_hash(self, salt: int = 0) -> int:
        """Deterministic 32-bit hash of the flow (CRC32 with a salt).

        Unlike Python's builtin ``hash``, this does not vary between
        interpreter runs, so lane selection is reproducible.
        """
        return zlib.crc32(self.packed() + struct.pack("!I", salt & 0xFFFFFFFF))


class FlowGenerator:
    """Generates random distinct flows with a seeded RNG.

    ``flows_per_pair`` controls how many concurrent flows exist between
    an (input, output) pair -- more flows means smoother ECMP spreading,
    fewer means lumpier lane loads (the E10 knob).
    """

    def __init__(self, rng: Optional[np.random.Generator] = None, flows_per_pair: int = 64):
        if flows_per_pair <= 0:
            raise ValueError(f"flows_per_pair must be positive, got {flows_per_pair}")
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._flows_per_pair = flows_per_pair
        self._cache: dict = {}

    def flow_for(self, input_port: int, output_port: int, index: Optional[int] = None) -> FiveTuple:
        """A flow between a port pair; ``index`` picks one of the pool,
        otherwise a random member is chosen."""
        if index is None:
            index = int(self._rng.integers(self._flows_per_pair))
        key = (input_port, output_port, index % self._flows_per_pair)
        flow = self._cache.get(key)
        if flow is None:
            flow = FiveTuple(
                src_ip=(10 << 24) | (input_port << 16) | key[2],
                dst_ip=(192 << 24) | (output_port << 16) | key[2],
                src_port=1024 + key[2],
                dst_port=443,
            )
            self._cache[key] = flow
        return flow

    def flows_for_batch(self, inputs, outputs) -> list:
        """Flows for aligned arrays of port pairs, one RNG draw total.

        Vectorized counterpart of per-packet :meth:`flow_for`: the flow
        *indices* for all packets are drawn in a single ``integers``
        call, then mapped through the same cache, so every packet still
        gets a deterministic member of its pair's pool.
        """
        n = len(inputs)
        if n == 0:
            return []
        indices = self._rng.integers(self._flows_per_pair, size=n)
        flow_for = self.flow_for
        return [
            flow_for(int(i), int(j), int(index))
            for i, j, index in zip(inputs, outputs, indices)
        ]

    def all_flows(self, input_port: int, output_port: int) -> Iterator[FiveTuple]:
        """Every flow in the (input, output) pool, in index order."""
        for index in range(self._flows_per_pair):
            yield self.flow_for(input_port, output_port, index)
