"""Admissibility: the traffic regime of the paper's 100%-throughput claim.

A matrix of per-pair loads (fractions of a port rate) is admissible when
no input line or output line is oversubscribed: all row sums and column
sums are at most 1.
"""

from __future__ import annotations

import numpy as np

from ..errors import AdmissibilityError

#: Numerical slack for float row/column sums.
_TOLERANCE = 1e-9


def max_line_load(matrix: np.ndarray) -> float:
    """The largest row or column sum -- the busiest line's load."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise AdmissibilityError(f"traffic matrix must be square, got {matrix.shape}")
    return float(max(matrix.sum(axis=1).max(), matrix.sum(axis=0).max()))


def is_admissible(matrix: np.ndarray, tolerance: float = _TOLERANCE) -> bool:
    """Whether every input and output line load is at most 1."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if (matrix < -tolerance).any():
        return False
    return max_line_load(matrix) <= 1.0 + tolerance


def assert_admissible(matrix: np.ndarray, tolerance: float = _TOLERANCE) -> None:
    """Raise :class:`AdmissibilityError` if the matrix oversubscribes a line."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if (matrix < -tolerance).any():
        raise AdmissibilityError("traffic matrix has negative entries")
    load = max_line_load(matrix)
    if load > 1.0 + tolerance:
        raise AdmissibilityError(
            f"matrix is not admissible: max line load {load:.6f} exceeds 1"
        )
