"""Arrival processes and the traffic generator.

The generator turns (traffic matrix, packet-size distribution, arrival
process) into a time-sorted packet list for a switch simulation.  Three
processes cover the paper's regimes:

- ``POISSON``: memoryless arrivals, the standard admissible-traffic
  benchmark.
- ``DETERMINISTIC``: evenly spaced arrivals, the smoothest case (isolates
  algorithmic delay from burstiness).
- ``ONOFF``: bursty arrivals -- packets arrive in back-to-back bursts at
  the full pair rate with idle gaps, stressing frame aggregation.

It also provides :func:`fiber_load_profile`, the per-fiber load shapes
used by the SPS splitting experiment (E10): the "first fiber connected
first, therefore more loaded" skew of Challenge 4, the ECMP/LAG-hashed
even profile of SS 4, and an adversarial profile that concentrates load
on the fibers feeding one internal switch.
"""

from __future__ import annotations

import enum
import heapq
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..units import rate_to_bytes_per_ns
from .admissibility import assert_admissible
from .flows import FlowGenerator
from .packet import Packet
from .sizes import PacketSizeDistribution


class ArrivalProcess(enum.Enum):
    """Supported arrival processes."""

    POISSON = "poisson"
    DETERMINISTIC = "deterministic"
    ONOFF = "onoff"


class TrafficGenerator:
    """Generates packet arrivals for an N-port switch.

    Parameters
    ----------
    n_ports:
        Switch port count (N).
    port_rate_bps:
        Line rate of one port; matrix entries are fractions of it.
    matrix:
        N x N admissible load matrix.
    size_dist:
        Packet-size distribution shared by all pairs.
    process:
        Arrival process, see :class:`ArrivalProcess`.
    burst_packets:
        Mean burst length (packets) for the ON/OFF process.
    seed:
        RNG seed; identical seeds give identical packet sequences, which
        the OQ-mimicry experiment relies on.
    """

    def __init__(
        self,
        n_ports: int,
        port_rate_bps: float,
        matrix: np.ndarray,
        size_dist: PacketSizeDistribution,
        process: ArrivalProcess = ArrivalProcess.POISSON,
        burst_packets: int = 16,
        flows_per_pair: int = 64,
        seed: int = 0,
    ) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape != (n_ports, n_ports):
            raise ConfigError(
                f"matrix shape {matrix.shape} does not match n_ports={n_ports}"
            )
        assert_admissible(matrix)
        if port_rate_bps <= 0:
            raise ConfigError(f"port rate must be positive, got {port_rate_bps}")
        if burst_packets <= 0:
            raise ConfigError(f"burst_packets must be positive, got {burst_packets}")
        self.n_ports = n_ports
        self.port_rate_bps = port_rate_bps
        self.matrix = matrix
        self.size_dist = size_dist
        self.process = process
        self.burst_packets = burst_packets
        self._rng = np.random.default_rng(seed)
        self._flows = FlowGenerator(np.random.default_rng(seed + 1), flows_per_pair)

    def generate(self, duration_ns: float) -> List[Packet]:
        """All packets arriving in ``[0, duration_ns)``, time-sorted.

        Packet ids are assigned in global arrival order.
        """
        if duration_ns <= 0:
            raise ConfigError(f"duration must be positive, got {duration_ns}")
        streams = []
        for i in range(self.n_ports):
            for j in range(self.n_ports):
                load = self.matrix[i, j]
                if load <= 0:
                    continue
                streams.append(self._pair_stream(i, j, load, duration_ns))
        merged = list(heapq.merge(*streams, key=lambda item: item[0]))
        packets: List[Packet] = []
        for pid, (time_ns, size, i, j) in enumerate(merged):
            flow = self._flows.flow_for(i, j)
            packets.append(Packet(pid, size, i, j, flow, time_ns))
        return packets

    # -- per-pair streams -------------------------------------------------------

    def _pair_stream(self, i: int, j: int, load: float, duration_ns: float):
        """Yield (time, size, i, j) tuples for one (input, output) pair."""
        pair_rate = load * rate_to_bytes_per_ns(self.port_rate_bps)  # bytes/ns
        if self.process is ArrivalProcess.POISSON:
            return self._poisson(i, j, pair_rate, duration_ns)
        if self.process is ArrivalProcess.DETERMINISTIC:
            return self._deterministic(i, j, pair_rate, duration_ns)
        return self._onoff(i, j, pair_rate, duration_ns)

    def _poisson(self, i, j, pair_rate, duration_ns):
        mean_gap = self.size_dist.mean_bytes / pair_rate
        time = float(self._rng.exponential(mean_gap))
        out = []
        while time < duration_ns:
            out.append((time, self.size_dist.sample(self._rng), i, j))
            time += float(self._rng.exponential(mean_gap))
        return out

    def _deterministic(self, i, j, pair_rate, duration_ns):
        mean_gap = self.size_dist.mean_bytes / pair_rate
        # Random phase so pairs do not arrive in lockstep.
        time = float(self._rng.uniform(0, mean_gap))
        out = []
        while time < duration_ns:
            out.append((time, self.size_dist.sample(self._rng), i, j))
            time += mean_gap
        return out

    def _onoff(self, i, j, pair_rate, duration_ns):
        """Bursts at full line rate, geometric burst lengths, idle gaps
        sized so the long-run rate equals ``pair_rate``."""
        line_rate = rate_to_bytes_per_ns(self.port_rate_bps)
        out = []
        time = float(self._rng.exponential(self.size_dist.mean_bytes / pair_rate))
        while time < duration_ns:
            burst_len = 1 + int(self._rng.geometric(1.0 / self.burst_packets))
            burst_bytes = 0
            for _ in range(burst_len):
                if time >= duration_ns:
                    break
                size = self.size_dist.sample(self._rng)
                out.append((time, size, i, j))
                time += size / line_rate  # back-to-back at line rate
                burst_bytes += size
            # Idle long enough that the average rate is pair_rate.
            on_time = burst_bytes / line_rate
            target_cycle = burst_bytes / pair_rate
            off_mean = max(target_cycle - on_time, 1e-9)
            time += float(self._rng.exponential(off_mean))
        return out

    def offered_bytes(self, duration_ns: float) -> float:
        """Expected offered load in bytes over ``duration_ns``."""
        total_load = float(self.matrix.sum())
        return total_load * rate_to_bytes_per_ns(self.port_rate_bps) * duration_ns


# --------------------------------------------------------------------------
# Per-fiber load profiles for the SPS splitting experiment (E10)
# --------------------------------------------------------------------------


def fiber_load_profile(
    n_fibers: int,
    kind: str = "ecmp",
    total_load: float = 1.0,
    skew: float = 2.0,
    target_fibers: Optional[Sequence[int]] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Per-fiber load shares for one ribbon, summing to ``total_load``.

    Kinds:

    - ``"ecmp"``: hashed even spread (SS 4's typical case) with small
      multiplicative noise.
    - ``"first-connected"``: Challenge 4's skew -- operators populate the
      first fibers first, so load decays geometrically (ratio given by
      ``skew`` between the first and last fiber).
    - ``"adversarial"``: all load on ``target_fibers`` (the attacker who
      knows a contiguous split can pick the fibers of one internal
      switch).
    """
    if n_fibers <= 0:
        raise ConfigError(f"n_fibers must be positive, got {n_fibers}")
    if total_load < 0:
        raise ConfigError(f"total_load must be >= 0, got {total_load}")
    rng = rng if rng is not None else np.random.default_rng(0)

    if kind == "ecmp":
        weights = 1.0 + 0.02 * rng.standard_normal(n_fibers)
        weights = np.clip(weights, 0.5, 1.5)
    elif kind == "first-connected":
        if skew <= 0:
            raise ConfigError(f"skew must be positive, got {skew}")
        # Geometric decay: fiber 0 carries `skew` times fiber F-1's load.
        ratio = skew ** (-1.0 / max(n_fibers - 1, 1))
        weights = ratio ** np.arange(n_fibers)
    elif kind == "adversarial":
        if not target_fibers:
            raise ConfigError("adversarial profile needs target_fibers")
        weights = np.zeros(n_fibers)
        for f in target_fibers:
            if not 0 <= f < n_fibers:
                raise ConfigError(f"target fiber {f} out of range")
            weights[f] = 1.0
    else:
        raise ConfigError(f"unknown fiber load profile kind: {kind!r}")

    weights = np.asarray(weights, dtype=np.float64)
    return total_load * weights / weights.sum()
