"""Arrival processes and the traffic generator.

The generator turns (traffic matrix, packet-size distribution, arrival
process) into a time-sorted packet list for a switch simulation.  Three
processes cover the paper's regimes:

- ``POISSON``: memoryless arrivals, the standard admissible-traffic
  benchmark.
- ``DETERMINISTIC``: evenly spaced arrivals, the smoothest case (isolates
  algorithmic delay from burstiness).
- ``ONOFF``: bursty arrivals -- packets arrive in back-to-back bursts at
  the full pair rate with idle gaps, stressing frame aggregation.

It also provides :func:`fiber_load_profile`, the per-fiber load shapes
used by the SPS splitting experiment (E10): the "first fiber connected
first, therefore more loaded" skew of Challenge 4, the ECMP/LAG-hashed
even profile of SS 4, and an adversarial profile that concentrates load
on the fibers feeding one internal switch.
"""

from __future__ import annotations

import enum
import warnings
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..units import rate_to_bytes_per_ns
from .admissibility import assert_admissible
from .flows import FlowGenerator
from .packet import Packet
from .sizes import PacketSizeDistribution
from .stream import DEFAULT_BLOCK_NS, ArrivalBlock, TrafficSource, block_edges


class ArrivalProcess(enum.Enum):
    """Supported arrival processes."""

    POISSON = "poisson"
    DETERMINISTIC = "deterministic"
    ONOFF = "onoff"


_warned_generate = False


def _warn_generate_deprecated() -> None:
    """Warn (once per process) that eager ``generate()`` is legacy."""
    global _warned_generate
    if _warned_generate:
        return
    _warned_generate = True
    warnings.warn(
        "TrafficGenerator.generate() is deprecated; consume "
        "TrafficGenerator.blocks(duration_ns) incrementally, or call "
        "materialize(duration_ns) where an eager list is really needed "
        "(byte-identical results)",
        DeprecationWarning,
        stacklevel=3,
    )


def _reset_generate_warning() -> None:
    """Re-arm the warn-once flag (tests only)."""
    global _warned_generate
    _warned_generate = False


class TrafficGenerator(TrafficSource):
    """Generates packet arrivals for an N-port switch.

    A :class:`~repro.traffic.stream.TrafficSource`: consume
    :meth:`blocks` incrementally, or :meth:`materialize` for an eager
    list (the deprecated :meth:`generate` shims onto it,
    byte-identically).  Note the legacy compatibility trade-off: this
    generator's draw order (one shared RNG, pairs consumed
    sequentially, flows assigned after a global sort) cannot be
    produced incrementally, so :meth:`blocks` computes the run's
    arrival *arrays* once and slices them per block.  That still bounds
    the expensive part -- ``Packet`` objects (~10x the bytes of their
    array rows) exist one block at a time -- but truly flat memory
    needs a natively streaming source
    (:class:`~repro.traffic.stream.HeavyTailSource`).

    Parameters
    ----------
    n_ports:
        Switch port count (N).
    port_rate_bps:
        Line rate of one port; matrix entries are fractions of it.
    matrix:
        N x N admissible load matrix.
    size_dist:
        Packet-size distribution shared by all pairs.
    process:
        Arrival process, see :class:`ArrivalProcess`.
    burst_packets:
        Mean burst length (packets) for the ON/OFF process.
    seed:
        RNG seed; identical seeds give identical packet sequences, which
        the OQ-mimicry experiment relies on.
    """

    def __init__(
        self,
        n_ports: int,
        port_rate_bps: float,
        matrix: np.ndarray,
        size_dist: PacketSizeDistribution,
        process: ArrivalProcess = ArrivalProcess.POISSON,
        burst_packets: int = 16,
        flows_per_pair: int = 64,
        seed: int = 0,
    ) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape != (n_ports, n_ports):
            raise ConfigError(
                f"matrix shape {matrix.shape} does not match n_ports={n_ports}"
            )
        assert_admissible(matrix)
        if port_rate_bps <= 0:
            raise ConfigError(f"port rate must be positive, got {port_rate_bps}")
        if burst_packets <= 0:
            raise ConfigError(f"burst_packets must be positive, got {burst_packets}")
        self.n_ports = n_ports
        self.port_rate_bps = port_rate_bps
        self.matrix = matrix
        self.size_dist = size_dist
        self.process = process
        self.burst_packets = burst_packets
        self._rng = np.random.default_rng(seed)
        self._flows = FlowGenerator(np.random.default_rng(seed + 1), flows_per_pair)

    def _arrays(self, duration_ns: float):
        """(times, sizes, inputs, outputs, flows) for ``[0, duration_ns)``.

        Arrival times and sizes are drawn with vectorized numpy
        sampling per (input, output) pair and merged with one stable
        argsort; ties across pairs resolve in pair order, exactly as
        the old per-packet heap-merge did.  Flow headers are assigned
        after the global sort (one batched draw), so the draw order --
        and therefore every byte of output -- matches the historical
        ``generate()``.
        """
        if duration_ns <= 0:
            raise ConfigError(f"duration must be positive, got {duration_ns}")
        times_parts: List[np.ndarray] = []
        sizes_parts: List[np.ndarray] = []
        inputs_parts: List[np.ndarray] = []
        outputs_parts: List[np.ndarray] = []
        for i in range(self.n_ports):
            for j in range(self.n_ports):
                load = self.matrix[i, j]
                if load <= 0:
                    continue
                times, sizes = self._pair_stream(i, j, load, duration_ns)
                if times.size == 0:
                    continue
                times_parts.append(times)
                sizes_parts.append(sizes)
                inputs_parts.append(np.full(times.size, i, dtype=np.int64))
                outputs_parts.append(np.full(times.size, j, dtype=np.int64))
        if not times_parts:
            empty = np.empty(0)
            return (
                empty,
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                (),
            )
        times = np.concatenate(times_parts)
        sizes = np.concatenate(sizes_parts)
        inputs = np.concatenate(inputs_parts)
        outputs = np.concatenate(outputs_parts)
        order = np.argsort(times, kind="stable")
        times, sizes = times[order], sizes[order]
        inputs, outputs = inputs[order], outputs[order]
        flows = self._flows.flows_for_batch(inputs, outputs)
        return times, sizes, inputs, outputs, flows

    def blocks(
        self, duration_ns: float, block_ns: float = DEFAULT_BLOCK_NS
    ) -> Iterator[ArrivalBlock]:
        """Arrival blocks covering ``[0, duration_ns)``.

        Byte-identical to slicing :meth:`materialize`'s output at the
        block boundaries (see the class docstring for why the arrays
        are computed eagerly for this legacy generator).
        """
        times, sizes, inputs, outputs, flows = self._arrays(duration_ns)
        for start, end in block_edges(duration_ns, block_ns):
            lo = int(np.searchsorted(times, start, side="left"))
            hi = int(np.searchsorted(times, end, side="left"))
            yield ArrivalBlock(
                times[lo:hi],
                sizes[lo:hi],
                inputs[lo:hi],
                outputs[lo:hi],
                flows[lo:hi],
                start,
                end,
                pid_offset=lo,
            )

    def materialize(
        self, duration_ns: float, block_ns: float = DEFAULT_BLOCK_NS
    ) -> List[Packet]:
        """All packets arriving in ``[0, duration_ns)``, time-sorted.

        Packet ids are assigned in global arrival order.  Built
        straight from the arrays (``block_ns`` is irrelevant here --
        block content never depends on it); byte-identical to what the
        deprecated :meth:`generate` returned.
        """
        times, sizes, inputs, outputs, flows = self._arrays(duration_ns)
        return [
            Packet(pid, int(size), int(i), int(j), flow, float(time_ns))
            for pid, (time_ns, size, i, j, flow) in enumerate(
                zip(times, sizes, inputs, outputs, flows)
            )
        ]

    def generate(self, duration_ns: float) -> List[Packet]:
        """Deprecated eager path; use :meth:`blocks` or :meth:`materialize`.

        Warns once per process and returns exactly what it always did
        (every golden and digest survives the rename).
        """
        _warn_generate_deprecated()
        return self.materialize(duration_ns)

    # -- per-pair streams -------------------------------------------------------

    def _pair_stream(self, i: int, j: int, load: float, duration_ns: float):
        """(times, sizes) arrays for one (input, output) pair."""
        pair_rate = load * rate_to_bytes_per_ns(self.port_rate_bps)  # bytes/ns
        if self.process is ArrivalProcess.POISSON:
            return self._poisson(pair_rate, duration_ns)
        if self.process is ArrivalProcess.DETERMINISTIC:
            return self._deterministic(pair_rate, duration_ns)
        return self._onoff(pair_rate, duration_ns)

    def _poisson(self, pair_rate, duration_ns):
        mean_gap = self.size_dist.mean_bytes / pair_rate
        # Draw gaps in blocks sized to overshoot the horizon slightly;
        # top up in the (rare) light-tail case where they fall short.
        expected = duration_ns / mean_gap
        chunk = max(int(expected * 1.05) + 16, 64)
        times = np.cumsum(self._rng.exponential(mean_gap, size=chunk))
        while times.size and times[-1] < duration_ns:
            more = np.cumsum(self._rng.exponential(mean_gap, size=chunk)) + times[-1]
            times = np.concatenate([times, more])
        times = times[times < duration_ns]
        return times, self.size_dist.sample_many(self._rng, times.size)

    def _deterministic(self, pair_rate, duration_ns):
        mean_gap = self.size_dist.mean_bytes / pair_rate
        # Random phase so pairs do not arrive in lockstep.
        phase = float(self._rng.uniform(0, mean_gap))
        count = max(int(np.ceil((duration_ns - phase) / mean_gap)), 0)
        times = phase + mean_gap * np.arange(count)
        times = times[times < duration_ns]
        return times, self.size_dist.sample_many(self._rng, times.size)

    def _onoff(self, pair_rate, duration_ns):
        """Bursts at full line rate, geometric burst lengths, idle gaps
        sized so the long-run rate equals ``pair_rate``."""
        line_rate = rate_to_bytes_per_ns(self.port_rate_bps)
        times_parts: List[np.ndarray] = []
        sizes_parts: List[np.ndarray] = []
        time = float(self._rng.exponential(self.size_dist.mean_bytes / pair_rate))
        while time < duration_ns:
            burst_len = 1 + int(self._rng.geometric(1.0 / self.burst_packets))
            sizes = self.size_dist.sample_many(self._rng, burst_len)
            # Packet n starts after packets 0..n-1 went out at line rate.
            starts = time + np.concatenate(
                ([0.0], np.cumsum(sizes[:-1]))
            ) / line_rate
            emitted = starts < duration_ns
            sizes = sizes[emitted]
            starts = starts[emitted]
            if starts.size:
                times_parts.append(starts)
                sizes_parts.append(sizes)
            burst_bytes = int(sizes.sum())
            time = float(starts[-1] + sizes[-1] / line_rate) if starts.size else duration_ns
            # Idle long enough that the average rate is pair_rate.
            on_time = burst_bytes / line_rate
            target_cycle = burst_bytes / pair_rate
            off_mean = max(target_cycle - on_time, 1e-9)
            time += float(self._rng.exponential(off_mean))
        if not times_parts:
            empty = np.empty(0)
            return empty, np.empty(0, dtype=np.int64)
        return np.concatenate(times_parts), np.concatenate(sizes_parts)

    def offered_bytes(self, duration_ns: float) -> float:
        """Expected offered load in bytes over ``duration_ns``."""
        total_load = float(self.matrix.sum())
        return total_load * rate_to_bytes_per_ns(self.port_rate_bps) * duration_ns


# --------------------------------------------------------------------------
# Per-fiber load profiles for the SPS splitting experiment (E10)
# --------------------------------------------------------------------------


def fiber_load_profile(
    n_fibers: int,
    kind: str = "ecmp",
    total_load: float = 1.0,
    skew: float = 2.0,
    target_fibers: Optional[Sequence[int]] = None,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Per-fiber load shares for one ribbon, summing to ``total_load``.

    Kinds:

    - ``"ecmp"``: hashed even spread (SS 4's typical case) with small
      multiplicative noise.
    - ``"first-connected"``: Challenge 4's skew -- operators populate the
      first fibers first, so load decays geometrically (ratio given by
      ``skew`` between the first and last fiber).
    - ``"adversarial"``: all load on ``target_fibers`` (the attacker who
      knows a contiguous split can pick the fibers of one internal
      switch).
    """
    if n_fibers <= 0:
        raise ConfigError(f"n_fibers must be positive, got {n_fibers}")
    if total_load < 0:
        raise ConfigError(f"total_load must be >= 0, got {total_load}")
    rng = rng if rng is not None else np.random.default_rng(0)

    if kind == "ecmp":
        weights = 1.0 + 0.02 * rng.standard_normal(n_fibers)
        weights = np.clip(weights, 0.5, 1.5)
    elif kind == "first-connected":
        if skew <= 0:
            raise ConfigError(f"skew must be positive, got {skew}")
        # Geometric decay: fiber 0 carries `skew` times fiber F-1's load.
        ratio = skew ** (-1.0 / max(n_fibers - 1, 1))
        weights = ratio ** np.arange(n_fibers)
    elif kind == "adversarial":
        if not target_fibers:
            raise ConfigError("adversarial profile needs target_fibers")
        weights = np.zeros(n_fibers)
        for f in target_fibers:
            if not 0 <= f < n_fibers:
                raise ConfigError(f"target fiber {f} out of range")
            weights[f] = 1.0
    else:
        raise ConfigError(f"unknown fiber load profile kind: {kind!r}")

    weights = np.asarray(weights, dtype=np.float64)
    return total_load * weights / weights.sum()
