"""Traffic matrices.

A traffic matrix ``M`` is an N x N numpy array where ``M[i, j]`` is the
load from input ``i`` to output ``j`` as a *fraction of one port's rate*.
Admissibility (no oversubscription) means every row sum and column sum is
at most 1 -- the regime in which the paper claims 100% throughput.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigError
from .admissibility import assert_admissible


def uniform_matrix(n: int, load: float = 1.0) -> np.ndarray:
    """Every input spreads ``load`` evenly over all outputs.

    ``uniform_matrix(16, 1.0)`` is the full-load admissible benchmark
    pattern: every entry is ``1/16``.
    """
    _check(n, load)
    matrix = np.full((n, n), load / n, dtype=np.float64)
    assert_admissible(matrix)
    return matrix


def permutation_matrix(n: int, load: float = 1.0, shift: int = 1) -> np.ndarray:
    """Input ``i`` sends all of ``load`` to output ``(i + shift) mod n``.

    The hardest admissible pattern for many fabrics: zero aggregation
    opportunity across inputs per output... except that PFI's frames
    *can* still fill, because all of an input's traffic shares one output.
    """
    _check(n, load)
    matrix = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        matrix[i, (i + shift) % n] = load
    assert_admissible(matrix)
    return matrix


def diagonal_matrix(n: int, load: float = 1.0, fraction_diag: float = 0.5) -> np.ndarray:
    """A classic 2-diagonal pattern: ``fraction_diag`` of the load to
    output ``i``, the rest to output ``i+1``."""
    _check(n, load)
    if not 0 <= fraction_diag <= 1:
        raise ConfigError(f"fraction_diag must be in [0, 1], got {fraction_diag}")
    matrix = np.zeros((n, n), dtype=np.float64)
    for i in range(n):
        matrix[i, i] = load * fraction_diag
        matrix[i, (i + 1) % n] = load * (1 - fraction_diag)
    assert_admissible(matrix)
    return matrix


def hotspot_matrix(
    n: int, load: float = 1.0, hot_output: int = 0, hot_fraction: float = 0.5
) -> np.ndarray:
    """One output runs hotter than the rest, as hot as admissibility allows.

    ``hot_fraction`` interpolates the hot output's column load between the
    uniform share (``load``, fraction 0) and full line utilisation (1.0,
    fraction 1): each input sends ``(load + hot_fraction*(1 - load)) / n``
    to the hot output and spreads the rest evenly.  Rows stay at ``load``
    and every column stays admissible; note that at ``load = 1`` there is
    no headroom, so the matrix degenerates to uniform -- a hotspot is
    only possible below full load.
    """
    _check(n, load)
    if not 0 <= hot_fraction <= 1:
        raise ConfigError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
    if not 0 <= hot_output < n:
        raise ConfigError(f"hot_output must be in [0, {n}), got {hot_output}")
    matrix = np.zeros((n, n), dtype=np.float64)
    hot_per_input = (load + hot_fraction * (1.0 - load)) / n
    cold_per_input = (load - hot_per_input) / (n - 1) if n > 1 else 0.0
    for i in range(n):
        matrix[i, hot_output] = hot_per_input
        for j in range(n):
            if j != hot_output:
                matrix[i, j] = cold_per_input
    assert_admissible(matrix)
    return matrix


def random_admissible_matrix(
    n: int, load: float = 1.0, rng: Optional[np.random.Generator] = None, iterations: int = 50
) -> np.ndarray:
    """A random doubly-substochastic matrix at the given peak line load.

    Uses Sinkhorn-style alternating row/column normalisation of a random
    positive matrix, then scales so the largest row/column sum equals
    ``load``.  Always admissible by construction.
    """
    _check(n, load)
    rng = rng if rng is not None else np.random.default_rng(0)
    matrix = rng.random((n, n)) + 1e-9
    for _ in range(iterations):
        matrix /= matrix.sum(axis=1, keepdims=True)
        matrix /= matrix.sum(axis=0, keepdims=True)
    peak = max(matrix.sum(axis=1).max(), matrix.sum(axis=0).max())
    matrix *= load / peak
    assert_admissible(matrix)
    return matrix


def _check(n: int, load: float) -> None:
    if n <= 0:
        raise ConfigError(f"matrix order must be positive, got {n}")
    if not 0 <= load <= 1 + 1e-12:
        raise ConfigError(f"load must be in [0, 1], got {load}")
