"""Minimal ASCII tables.

Benches print the same rows the paper reports; this keeps the rendering
in one place so every experiment's output looks the same.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell) -> str:
    """Format a cell: floats get 4 significant digits."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_row(cells: Sequence[Cell], widths: Sequence[int]) -> str:
    return "  ".join(
        format_cell(cell).ljust(width) for cell, width in zip(cells, widths)
    )


class Table:
    """Fixed-header ASCII table accumulated row by row."""

    def __init__(self, title: str, headers: Sequence[str]):
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add(self, *cells: Cell) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([format_cell(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [f"== {self.title} =="]
        lines.append(format_row(self.headers, widths))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(format_row(row, widths))
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render())


def render_comparison(
    title: str,
    rows: Iterable[Sequence[Cell]],
    headers: Sequence[str] = ("metric", "paper", "measured"),
) -> str:
    """A paper-vs-measured table in one call."""
    table = Table(title, headers)
    for row in rows:
        table.add(*row)
    return table.render()
