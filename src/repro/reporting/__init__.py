"""Paper-style table rendering and schedule timelines."""

from .adversary import (
    attack_campaign_table,
    attack_comparison_table,
    seed_sweep_table,
)
from .degradation import campaign_table, degradation_summary_table, degradation_table
from .export import report_to_dict, report_to_json
from .tables import Table, format_row, render_comparison
from .timeline import (
    render_bank_timeline,
    render_bus_utilisation,
    render_pipeline_events,
)

__all__ = [
    "Table",
    "attack_campaign_table",
    "attack_comparison_table",
    "campaign_table",
    "degradation_summary_table",
    "degradation_table",
    "format_row",
    "render_comparison",
    "render_bank_timeline",
    "render_bus_utilisation",
    "render_pipeline_events",
    "report_to_dict",
    "report_to_json",
    "seed_sweep_table",
]
