"""Tables for adversarial campaigns and hardening sweeps."""

from __future__ import annotations

from .tables import Table


def _ci(stats: dict) -> str:
    return f"{stats['mean']:.4g} [{stats['ci95_low']:.4g}, {stats['ci95_high']:.4g}]"


def attack_campaign_table(result) -> Table:
    """One (strategy, splitter) campaign: mean with 95% CI per metric."""
    summary = result.to_dict()["summary"]
    table = Table(
        f"Attack campaign: {result.params.strategy.name} vs {result.params.splitter} "
        f"({result.params.n_trials} trials, seed {result.params.seed})",
        ["metric", "mean [95% CI]", "min", "max"],
    )
    for name, stats in summary.items():
        table.add(name, _ci(stats), f"{stats['min']:.4g}", f"{stats['max']:.4g}")
    return table


def attack_comparison_table(comparison: dict) -> Table:
    """The headline figure: contiguous vs pseudo-random exposure."""
    table = Table(
        f"Splitter exposure under {comparison['strategy']} "
        f"(H={comparison['n_switches']})",
        ["splitter", "victim gain", "sim victim gain", "imbalance", "overload loss"],
    )
    for kind in ("contiguous", "pseudo-random"):
        summary = comparison[kind]["summary"]
        table.add(
            kind,
            _ci(summary["victim_gain"]),
            _ci(summary["sim_victim_gain"]),
            _ci(summary["split_imbalance"]),
            _ci(summary["overload_loss_fraction"]),
        )
    table.add("exposure ratio", f"{comparison['exposure_ratio']:.4g}", "", "", "")
    return table


def seed_sweep_table(sweep: dict) -> Table:
    """Seed-sensitivity sweep: the gain distribution across deployments."""
    table = Table(
        f"Pseudo-random seed sensitivity under {sweep['strategy']} "
        f"({sweep['n_seeds']} seeds, H={sweep['n_switches']})",
        ["statistic", "attacker gain"],
    )
    for name in ("mean", "std", "min", "p50", "p90", "p99", "max"):
        table.add(name, f"{sweep[name]:.4g}")
    table.add("fraction <= 1.25", f"{sweep['fraction_below_1_25']:.2%}")
    return table
