"""Report serialisation: switch/router reports as plain dicts and JSON.

Benches print tables for humans; pipelines want structured output.
``report_to_dict`` flattens a :class:`~repro.core.hbm_switch.SwitchReport`
(or :class:`~repro.core.sps.RouterReport`) into JSON-safe primitives.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict

import math

from ..core.hbm_switch import SwitchReport
from ..core.sps import RouterReport


def _sanitize(value):
    """NaN -> None, recursively.  Empty-recorder statistics are NaN
    (see :class:`repro.sim.LatencyRecorder`), and ``json.dumps`` would
    otherwise emit a bare ``NaN`` literal that no JSON parser accepts;
    ``None`` serialises as ``null``."""
    if isinstance(value, float) and math.isnan(value):
        return None
    if isinstance(value, dict):
        return {k: _sanitize(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_sanitize(v) for v in value]
    return value


def report_to_dict(report) -> Dict[str, Any]:
    """A JSON-safe dict of a switch or router report (NaN -> null)."""
    if isinstance(report, SwitchReport):
        data = dataclasses.asdict(report)
        data["pfi"] = dataclasses.asdict(report.pfi)
        data["normalized_throughput"] = report.normalized_throughput
        data["delivery_fraction"] = report.delivery_fraction
        return _sanitize(data)
    if isinstance(report, RouterReport):
        extra: Dict[str, Any] = {}
        if report.telemetry is not None:
            extra["telemetry"] = report.telemetry
            extra["stage_summaries"] = report.stage_summaries()
        return _sanitize({
            **extra,
            "duration_ns": report.duration_ns,
            "offered_bytes": report.offered_bytes,
            "delivered_bytes": report.delivered_bytes,
            "dropped_bytes": report.dropped_bytes,
            "residual_bytes": report.residual_bytes,
            "lost_bytes": report.lost_bytes,
            "failed_switches": list(report.failed_switches),
            "failed_offered_bytes": report.failed_offered_bytes,
            "fault_lost_bytes": report.fault_lost_bytes,
            "fault_events": list(report.fault_events),
            "delivery_fraction": report.delivery_fraction,
            "delivered_fraction": report.delivered_fraction,
            "loss_fraction": report.loss_fraction,
            "load_imbalance": report.load_imbalance,
            "ordering_violations": report.ordering_violations,
            "latency": report.latency_summary(),
            "per_switch_offered_bytes": list(report.per_switch_offered_bytes),
            "switches": [report_to_dict(r) for r in report.switch_reports],
        })
    # Fault-layer reports (DegradationReport, CampaignResult) carry
    # their own serialisation; dispatch on it rather than importing the
    # faults package here.
    to_dict = getattr(report, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    raise TypeError(f"cannot export {type(report).__name__}")


def report_to_json(report, indent: int = 2) -> str:
    """The JSON text of a report."""
    return json.dumps(report_to_dict(report), indent=indent, sort_keys=True)
