"""Human-readable rendering of graceful-degradation results.

Two views: the per-interval capacity table of one faulted run, and the
distribution summary of a Monte-Carlo campaign.  Both take the fault
layer's report objects and return :class:`~repro.reporting.tables.Table`
instances so the CLI prints them like every other report.
"""

from __future__ import annotations

from ..units import format_rate, format_size
from .tables import Table

#: Width of the inline capacity bar.
BAR_WIDTH = 24


def _capacity_bar(fraction: float, width: int = BAR_WIDTH) -> str:
    """``####----`` bar of delivered/offered, clamped to [0, 1]."""
    clamped = min(1.0, max(0.0, fraction))
    filled = round(clamped * width)
    return "#" * filled + "-" * (width - filled)


def degradation_table(report) -> Table:
    """Per-interval capacity table of a DegradationReport."""
    table = Table(
        "Capacity over time",
        ["interval (us)", "offered", "delivered", "fraction", "capacity"],
    )
    for sample in report.intervals:
        table.add(
            f"{sample.start_ns / 1e3:.1f}-{sample.end_ns / 1e3:.1f}",
            format_rate(sample.offered_bps),
            format_rate(sample.delivered_bps),
            f"{sample.delivered_fraction:.3f}",
            _capacity_bar(sample.delivered_fraction),
        )
    return table


def degradation_summary_table(report) -> Table:
    """Run-level totals of a DegradationReport."""
    table = Table("Degradation summary", ["metric", "value"])
    table.add("offered", format_size(report.offered_bytes))
    table.add("delivered", format_size(report.delivered_bytes))
    table.add("lost", format_size(report.lost_bytes))
    table.add("residual", format_size(report.residual_bytes))
    table.add("delivered fraction", f"{report.delivered_fraction:.4f}")
    table.add("loss fraction", f"{report.loss_fraction:.4f}")
    table.add("availability", f"{report.availability():.3f}")
    if report.failed_switches:
        table.add("whole-run dead switches", str(report.failed_switches))
    for line in report.fault_events:
        table.add("fault", line)
    return table


def campaign_table(result) -> Table:
    """Distribution summary of a CampaignResult."""
    data = result.to_dict()
    table = Table(
        "Fault campaign",
        ["metric", "mean", "min", "p10", "p50", "p90", "max"],
    )
    for key in ("delivered_fraction", "availability", "loss_fraction"):
        dist = data[key]
        table.add(
            key,
            *(f"{dist[stat]:.4f}" for stat in ("mean", "min", "p10", "p50", "p90", "max")),
        )
    return table
