"""ASCII bank-occupancy timelines -- Fig. 4, rendered from real schedules.

Given a command schedule, :func:`render_bank_timeline` draws one
channel's banks over time:

- ``a`` activation window (ACT issued, row opening),
- ``W`` / ``R`` data transfer,
- ``p`` precharging,
- ``.`` idle.

The staggered-interleaving picture of Fig. 4 -- each bank's transfer
butting against the next, with opens and closes hidden underneath --
becomes directly visible (see ``examples/hbm_timing_demo.py``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigError
from ..hbm.commands import Command, Op
from ..hbm.timing import HBMTiming


def _channel_spans(
    commands: Iterable[Command], timing: HBMTiming, channel: int, bytes_per_ns: float
) -> Dict[int, List[Tuple[float, float, str]]]:
    """Per-bank (start, end, glyph) spans for one channel."""
    spans: Dict[int, List[Tuple[float, float, str]]] = {}
    for cmd in sorted(commands, key=lambda c: c.time):
        if cmd.channel != channel:
            continue
        bank_spans = spans.setdefault(cmd.bank, [])
        if cmd.op is Op.ACT:
            bank_spans.append((cmd.time, cmd.time + timing.t_rcd, "a"))
        elif cmd.op in (Op.WR, Op.RD):
            quantised = timing.quantise_to_bursts(cmd.size_bytes, 64)
            duration = quantised / bytes_per_ns
            glyph = "W" if cmd.op is Op.WR else "R"
            bank_spans.append((cmd.time, cmd.time + duration, glyph))
        elif cmd.op is Op.PRE:
            bank_spans.append((cmd.time, cmd.time + timing.t_rp, "p"))
        elif cmd.op is Op.REF:
            bank_spans.append(
                (cmd.time, cmd.time + timing.refresh_duration_ns, "F")
            )
    return spans


def render_bank_timeline(
    commands: Iterable[Command],
    timing: HBMTiming,
    channel: int = 0,
    bytes_per_ns: float = 80.0,
    width: int = 72,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
) -> str:
    """Render one channel's bank activity as fixed-width ASCII rows.

    ``width`` columns span ``[t0, t1]`` (auto-fitted to the schedule by
    default); overlapping glyphs resolve in priority order data >
    activate > precharge > refresh, so the data stream reads cleanly.
    """
    if width <= 0:
        raise ConfigError(f"width must be positive, got {width}")
    spans = _channel_spans(commands, timing, channel, bytes_per_ns)
    if not spans:
        return f"(channel {channel}: no commands)"
    all_spans = [span for bank in spans.values() for span in bank]
    start = min(s for s, _, _ in all_spans) if t0 is None else t0
    end = max(e for _, e, _ in all_spans) if t1 is None else t1
    if end <= start:
        raise ConfigError("empty time window")
    scale = width / (end - start)
    priority = {"W": 3, "R": 3, "a": 2, "p": 1, "F": 1, ".": 0}

    lines = [
        f"channel {channel}: {start:.1f}..{end:.1f} ns "
        f"({(end - start) / width:.2f} ns/col)  a=activate W/R=data p=precharge"
    ]
    for bank in sorted(spans):
        row = ["."] * width
        for s, e, glyph in spans[bank]:
            lo = max(0, int((s - start) * scale))
            hi = min(width, max(lo + 1, int((e - start) * scale)))
            for col in range(lo, hi):
                if priority[glyph] > priority[row[col]]:
                    row[col] = glyph
        lines.append(f"bank {bank:>3} |{''.join(row)}|")
    return "\n".join(lines)


def render_bus_utilisation(
    commands: Iterable[Command],
    timing: HBMTiming,
    channel: int = 0,
    bytes_per_ns: float = 80.0,
    width: int = 72,
) -> str:
    """One line: the channel data bus over time (# = busy, . = idle).

    Under PFI this renders as an unbroken bar -- the peak-rate property
    at a glance.
    """
    spans = _channel_spans(commands, timing, channel, bytes_per_ns)
    data = [
        (s, e) for bank in spans.values() for (s, e, glyph) in bank if glyph in "WR"
    ]
    if not data:
        return "(no data transfers)"
    start = min(s for s, _ in data)
    end = max(e for _, e in data)
    scale = width / (end - start)
    row = ["."] * width
    for s, e in data:
        lo = max(0, int((s - start) * scale))
        hi = min(width, max(lo + 1, int((e - start) * scale)))
        for col in range(lo, hi):
            row[col] = "#"
    busy = sum(1 for c in row if c == "#") / width
    return f"bus |{''.join(row)}| {busy:.0%} busy"


#: Pipeline-event glyphs, in stage order -- one column class per event
#: kind, so interleaved stages read as lanes.
_EVENT_GLYPHS = {
    ("switch", "batch_formed"): "b",
    ("switch", "batch"): "x",
    ("switch", "frame_formed"): "f",
    ("pfi", "write"): "W",
    ("pfi", "read"): "R",
    ("pfi", "bypass"): "Y",
    ("switch", "deliver"): "d",
    ("switch", "drop"): "!",
}


def render_pipeline_events(
    recorder,
    width: int = 72,
    max_rows: int = 40,
) -> str:
    """Render a :class:`~repro.sim.trace.TraceRecorder` as event lanes.

    One row per traced event kind (batch formed, crossbar arrival,
    frame formed, HBM write/read, bypass, delivery, drop), each a
    fixed-width strip of the run: a glyph where at least one event of
    that kind fell in the column's time slice, ``.`` elsewhere, with
    the event count at the right.  Kinds never traced are omitted.
    """
    records = list(recorder)
    if not records:
        return "(no pipeline events traced)"
    start = min(r.time_ns for r in records)
    end = max(r.time_ns for r in records)
    span = max(end - start, 1e-9)
    scale = (width - 1) / span
    rows: List[Tuple[str, List[str], int]] = []
    for (category, event), glyph in _EVENT_GLYPHS.items():
        matching = [r for r in records if r.category == category and r.event == event]
        if not matching:
            continue
        strip = ["."] * width
        for record in matching:
            strip[int((record.time_ns - start) * scale)] = glyph
        rows.append((f"{category}.{event}", strip, len(matching)))
    if not rows:
        return "(no pipeline events traced)"
    label_width = max(len(label) for label, _, _ in rows)
    lines = [
        f"pipeline events, {start:.0f}..{end:.0f} ns "
        f"({len(records)} records)"
    ]
    for label, strip, count in rows[:max_rows]:
        lines.append(f"{label:<{label_width}} |{''.join(strip)}| {count}")
    return "\n".join(lines)
