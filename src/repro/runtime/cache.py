"""Content-addressed on-disk result cache.

Cache cells are keyed by ``(scenario_digest, seed, code_version)`` and
store one scenario payload plus enough envelope to detect corruption:

- the key fields themselves (a hash collision or a mis-filed entry is
  rejected, not trusted);
- a sha256 checksum of the canonical payload JSON (a truncated or
  bit-flipped entry is *evicted* on read and transparently recomputed).

Writes are atomic: the entry is serialised to a unique temporary file in
the same directory and ``os.replace``-d into place, so concurrent
writers (process-pool parents, parallel CI shards sharing a cache
volume) can race on the same cell and readers still only ever observe a
complete entry -- last writer wins, and every writer's entry is valid.

The cache is the runtime's checkpoint format: a killed sweep leaves its
finished cells behind, and the next run executes only the missing ones
(:meth:`~repro.runtime.runtime.Runtime.map`).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import uuid
from pathlib import Path
from typing import Any, Dict, Optional

#: Envelope schema tag stamped on every cache entry.
CACHE_SCHEMA = "repro-cache-v1"


def payload_checksum(payload: Dict[str, Any]) -> str:
    """sha256 of the canonical payload JSON."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _safe_component(text: str) -> str:
    """A filename-safe rendering of a key component."""
    return re.sub(r"[^A-Za-z0-9._-]", "_", str(text))


class ResultCache:
    """Content-addressed store of scenario payloads under one root.

    Layout: ``<root>/<digest[:2]>/<digest>-<seed>-<code_version>.json``
    -- the two-character fan-out keeps directories small for
    million-cell sweeps.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Read/write traffic since construction (observability and the
        #: warm-sweep assertions in CI ride on these).
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writes = 0

    def entry_path(self, digest: str, seed: int, code_version: str) -> Path:
        name = f"{digest}-{seed}-{_safe_component(code_version)}.json"
        return self.root / digest[:2] / name

    # -- reads ---------------------------------------------------------------

    def load(
        self, digest: str, seed: int, code_version: str
    ) -> Optional[Dict[str, Any]]:
        """The cached payload, or ``None`` (miss / evicted-corrupt)."""
        path = self.entry_path(digest, seed, code_version)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            # Unreadable or truncated mid-write by a crashed run: evict.
            self._evict(path)
            return None
        if not self._valid(entry, digest, seed, code_version):
            self._evict(path)
            return None
        self.hits += 1
        return entry["payload"]

    def _valid(
        self, entry: Any, digest: str, seed: int, code_version: str
    ) -> bool:
        if not isinstance(entry, dict):
            return False
        if entry.get("schema") != CACHE_SCHEMA:
            return False
        if (
            entry.get("digest") != digest
            or entry.get("seed") != seed
            or entry.get("code_version") != code_version
        ):
            return False
        payload = entry.get("payload")
        if not isinstance(payload, dict):
            return False
        return entry.get("checksum") == payload_checksum(payload)

    def _evict(self, path: Path) -> None:
        self.evictions += 1
        self.misses += 1
        try:
            path.unlink()
        except OSError:
            pass

    # -- writes --------------------------------------------------------------

    def store(
        self,
        digest: str,
        seed: int,
        code_version: str,
        payload: Dict[str, Any],
    ) -> Path:
        """Atomically persist one cell; returns the entry path."""
        path = self.entry_path(digest, seed, code_version)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "schema": CACHE_SCHEMA,
            "digest": digest,
            "seed": seed,
            "code_version": code_version,
            "checksum": payload_checksum(payload),
            "payload": payload,
        }
        # Unique tmp name per writer; os.replace is atomic on POSIX and
        # Windows, so a concurrent reader sees the old entry or the new
        # one -- never an interleaving of the two.
        tmp = path.parent / f".{path.name}.{os.getpid()}.{uuid.uuid4().hex}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                json.dump(entry, handle, sort_keys=True, separators=(",", ":"))
                handle.write("\n")
            os.replace(tmp, path)
        finally:
            if tmp.exists():  # a failed write leaves no debris behind
                try:
                    tmp.unlink()
                except OSError:
                    pass
        self.writes += 1
        return path

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writes": self.writes,
            "entries": len(self),
        }
