"""The scenario runtime: one scheduler for every workload family.

:class:`Runtime` executes :class:`~repro.runtime.scenario.Scenario`
grids through the shared worker-pool scheduler
(:func:`repro.sim.parallel.run_parallel_tasks`) with three properties
the per-feature campaign stacks used to reimplement separately:

- **Caching.**  With a ``cache_dir``, every cell's payload is stored
  content-addressed under ``(scenario.digest(), scenario.seed,
  code_version)``; a later run of the same cell returns the stored
  payload without executing anything.
- **Resumability.**  The cache doubles as the checkpoint: cells are
  persisted as they finish (in input order), so a sweep killed midway
  re-executes only its missing cells on the next run -- and, because
  aggregation consumes only payload values, the final document is
  byte-identical to a single-shot run.
- **Sharding.**  ``map(..., shard=(k, n))`` executes only cells with
  ``index % n == k``.  N shard runs against a shared cache followed by
  one unsharded merge run reproduce the single-shot output exactly --
  the deterministic merge is "read every cell back in index order".

Execution is invariant to all of it: sequential, pooled, sharded,
resumed and cached runs of the same grid serialise byte-identically.
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..sim.parallel import run_parallel_tasks
from .cache import ResultCache
from .scenario import Scenario, execute_scenario


def default_code_version() -> str:
    """The code-version component of every cache key.

    The package version by default; ``REPRO_CODE_VERSION`` overrides it
    (CI jobs stamp a commit hash so caches never leak across revisions).
    """
    from .. import __version__  # deferred: repro/__init__ imports this module

    return os.environ.get("REPRO_CODE_VERSION", "").strip() or __version__


def parse_shard(text: Optional[str]) -> Optional[Tuple[int, int]]:
    """``"1/3"`` -> ``(1, 3)``; ``None``/empty -> ``None`` (no shard)."""
    if not text:
        return None
    try:
        k_text, n_text = text.split("/", 1)
        k, n = int(k_text), int(n_text)
    except ValueError:
        raise ConfigError(f"bad shard {text!r} (expected K/N, e.g. 0/3)")
    if n <= 0 or not 0 <= k < n:
        raise ConfigError(f"shard {text!r} out of range (need 0 <= K < N)")
    return k, n


class Runtime:
    """Executes scenarios and scenario grids; owns the cache policy.

    ``cache_dir=None`` disables caching entirely (pure execution --
    what the deprecation shims use so legacy entrypoints never touch
    the filesystem).  ``n_workers`` is the pool size for grid fan-out:
    ``None`` uses every core, ``1`` forces inline sequential execution.
    """

    def __init__(
        self,
        cache_dir=None,
        n_workers: Optional[int] = None,
        code_version: Optional[str] = None,
    ) -> None:
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.n_workers = n_workers
        self.code_version = code_version or default_code_version()

    # -- single cells --------------------------------------------------------

    def run(self, scenario: Scenario) -> dict:
        """Execute (or recall) one scenario; returns its payload."""
        if self.cache is not None:
            digest = scenario.digest()
            hit = self.cache.load(digest, scenario.seed, self.code_version)
            if hit is not None:
                return hit
            payload = execute_scenario(scenario)
            self.cache.store(digest, scenario.seed, self.code_version, payload)
            return payload
        return execute_scenario(scenario)

    # -- grids ---------------------------------------------------------------

    def map(
        self,
        scenarios: Sequence[Scenario],
        shard: Optional[Tuple[int, int]] = None,
        on_payload: Optional[Callable[[int, dict], None]] = None,
        events=None,
    ) -> List[Optional[dict]]:
        """Execute a grid; returns payloads aligned with ``scenarios``.

        Cached cells are recalled without executing; missing cells run
        through the shared pool and are persisted as they finish.  With
        ``shard=(k, n)`` only cells ``i % n == k`` may *execute*; cells
        owned by other shards are still recalled when cached and are
        ``None`` otherwise.  ``on_payload(index, payload)`` fires in
        index order for every resolved cell.  ``events`` (an
        :class:`~repro.runtime.events.EventStream`) receives the run's
        lifecycle -- cache hits, dispatches, per-cell finishes and the
        final totals -- as they happen.
        """
        scenarios = list(scenarios)
        if shard is not None:
            k, n = shard
            if n <= 0 or not 0 <= k < n:
                raise ConfigError(f"shard {shard!r} out of range")
        digests: List[Optional[str]] = [None] * len(scenarios)

        def digest_of(i: int) -> str:
            if digests[i] is None:
                digests[i] = scenarios[i].digest()
            return digests[i]

        if events is not None:
            events.emit(
                "sweep_start",
                n_cells=len(scenarios),
                shard=list(shard) if shard is not None else None,
            )
        results: List[Optional[dict]] = [None] * len(scenarios)
        missing: List[int] = []
        n_cached = 0
        for i, scenario in enumerate(scenarios):
            cached = None
            if self.cache is not None:
                cached = self.cache.load(
                    digest_of(i), scenario.seed, self.code_version
                )
            if cached is not None:
                results[i] = cached
                n_cached += 1
                if events is not None:
                    events.emit("cell_cached", index=i, digest=digest_of(i))
            elif shard is None or i % shard[1] == shard[0]:
                missing.append(i)
        if missing:
            if events is not None:
                from ..sim.parallel import resolve_worker_count

                events.emit(
                    "worker_pool",
                    n_workers=resolve_worker_count(
                        self.n_workers, len(missing)
                    ),
                )
                for i in missing:
                    events.emit("cell_start", index=i, digest=digest_of(i))

            def checkpoint(position: int, payload: dict) -> None:
                index = missing[position]
                if self.cache is not None:
                    scenario = scenarios[index]
                    self.cache.store(
                        digest_of(index),
                        scenario.seed,
                        self.code_version,
                        payload,
                    )
                results[index] = payload
                if events is not None:
                    events.emit(
                        "cell_finish",
                        index=index,
                        digest=digest_of(index),
                        status="ok",
                    )

            run_parallel_tasks(
                execute_scenario,
                [scenarios[i] for i in missing],
                n_workers=self.n_workers,
                on_result=checkpoint,
            )
        if events is not None:
            events.emit(
                "sweep_finish",
                n_executed=len(missing),
                n_cached=n_cached,
                n_unresolved=sum(1 for p in results if p is None),
            )
        if on_payload is not None:
            for i, payload in enumerate(results):
                if payload is not None:
                    on_payload(i, payload)
        return results

    # -- campaigns -----------------------------------------------------------

    def run_campaign(self, campaign, shard: Optional[Tuple[int, int]] = None):
        """Run a :class:`~repro.runtime.campaign.Campaign` end to end.

        Returns ``campaign.aggregate(payloads)`` -- or ``None`` for a
        sharded run that left cells unresolved (the merge run, with the
        same cache and no shard, performs the deterministic aggregate).
        """
        payloads = self.map(campaign.scenarios(), shard=shard)
        if any(p is None for p in payloads):
            return None
        return campaign.aggregate(payloads)


def run(
    scenario: Scenario,
    cache_dir=None,
    n_workers: Optional[int] = None,
) -> dict:
    """One-call façade: execute (or recall) a single scenario.

    ``repro.run(scenario)`` is the quickstart entrypoint; construct a
    :class:`Runtime` directly for grids, campaigns and shared caches.
    """
    return Runtime(cache_dir=cache_dir, n_workers=n_workers).run(scenario)
