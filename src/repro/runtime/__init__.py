"""Scenario runtime: declarative experiments, one shared scheduler.

The orchestration layer every workload family runs on (docs/runtime.md):

- :class:`Scenario` -- one hashable, picklable experiment cell
  (config + workload + faults + telemetry + exec hints) with a
  content digest (:meth:`Scenario.digest`);
- :class:`Runtime` -- executes cells and grids with content-addressed
  on-disk caching (:class:`ResultCache`), checkpointed resume and
  ``(k, n)`` sharding with a deterministic merge;
- :class:`Campaign` protocol plus the concrete :class:`FaultCampaign`
  and :class:`AttackCampaign` the legacy campaign entrypoints now shim
  onto;
- :class:`EventStream` -- the live JSONL lifecycle log a sweep appends
  to under ``--events-out`` (validated by :func:`validate_events`);
- :func:`run` -- the one-call façade (``repro.run(scenario)``).
"""

from .cache import CACHE_SCHEMA, ResultCache, payload_checksum
from .campaign import AttackCampaign, Campaign, FaultCampaign
from .events import (
    EVENT_KINDS,
    EVENTS_SCHEMA,
    EventStream,
    open_event_stream,
    validate_events,
    validate_stream,
)
from .runtime import Runtime, default_code_version, parse_shard, run
from .scenario import (
    SCENARIO_KINDS,
    Scenario,
    degradation_scenario,
    execute_scenario,
    fabric_scenario,
    router_scenario,
    switch_scenario,
)

__all__ = [
    "AttackCampaign",
    "CACHE_SCHEMA",
    "Campaign",
    "EVENTS_SCHEMA",
    "EVENT_KINDS",
    "EventStream",
    "FaultCampaign",
    "ResultCache",
    "Runtime",
    "SCENARIO_KINDS",
    "Scenario",
    "default_code_version",
    "degradation_scenario",
    "execute_scenario",
    "fabric_scenario",
    "open_event_stream",
    "parse_shard",
    "payload_checksum",
    "router_scenario",
    "run",
    "switch_scenario",
    "validate_events",
    "validate_stream",
]
