"""Live sweep event stream: one JSONL line per runtime lifecycle step.

A sweep run with ``--events-out`` appends machine-readable progress
events as they happen, so an operator (or CI) can ``tail -f`` a long
sharded sweep instead of staring at a silent process:

- ``sweep_start``  -- grid accepted: cell count and shard, if any;
- ``worker_pool``  -- the resolved pool size for the missing cells;
- ``cell_cached``  -- a cell recalled from the result cache (no work);
- ``cell_start``   -- a cell handed to the pool, in dispatch order;
- ``cell_finish``  -- a cell's payload checkpointed, in input order;
- ``sweep_finish`` -- executed / cached / unresolved totals.

The stream is a *log*, not a report: events carry wall-clock ``ts``
(seconds) and a monotonic ``seq``, so two runs of the same grid are not
byte-identical -- determinism lives in the payloads and the metrics
dumps, never here.  The first line is a schema header, mirroring the
telemetry JSONL exporter; :func:`validate_events` checks the header,
the ``seq`` chain and each kind's required fields, and is what the CI
telemetry-smoke job runs against a captured stream.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional, TextIO

from ..errors import ConfigError

EVENTS_SCHEMA = "repro-events-v1"

#: Every event kind and the fields each one must carry (beyond the
#: envelope ``kind``/``seq``/``ts`` every event has).
EVENT_FIELDS: Dict[str, tuple] = {
    "sweep_start": ("n_cells",),
    "worker_pool": ("n_workers",),
    "cell_cached": ("index", "digest"),
    "cell_start": ("index", "digest"),
    "cell_finish": ("index", "digest", "status"),
    "sweep_finish": ("n_executed", "n_cached", "n_unresolved"),
}

EVENT_KINDS = tuple(EVENT_FIELDS)


class EventStream:
    """Appends events to a file-like sink, flushing per line (tailable)."""

    def __init__(self, fh: TextIO, clock=time.time, _owns_fh: bool = False):
        self._fh = fh
        self._clock = clock
        self._owns_fh = _owns_fh
        self._seq = 0
        self._write({"schema": EVENTS_SCHEMA})

    @classmethod
    def open(cls, path: str, clock=time.time) -> "EventStream":
        return cls(open(path, "w"), clock=clock, _owns_fh=True)

    def emit(self, kind: str, **fields: Any) -> None:
        if kind not in EVENT_FIELDS:
            raise ConfigError(
                f"unknown event kind {kind!r} (expected one of {EVENT_KINDS})"
            )
        missing = [f for f in EVENT_FIELDS[kind] if f not in fields]
        if missing:
            raise ConfigError(f"event {kind!r} missing fields {missing}")
        event = {"kind": kind, "seq": self._seq, "ts": self._clock(), **fields}
        self._seq += 1
        self._write(event)

    def _write(self, record: dict) -> None:
        self._fh.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._fh.flush()

    def close(self) -> None:
        if self._owns_fh:
            self._fh.close()

    def __enter__(self) -> "EventStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def validate_stream(
    text: str,
    schema: str,
    fields: Dict[str, tuple],
    envelope: tuple = ("seq", "ts"),
) -> List[dict]:
    """Shared JSONL stream validator (events and control actions).

    Checks the schema header, that every line is an object of a known
    kind carrying its required ``fields`` plus the ``envelope`` keys,
    and that ``seq`` counts up from 0 without gaps.  A ``seq`` chain
    that restarts at 0 mid-stream -- the signature of two per-shard
    streams concatenated into one file -- is rejected with a dedicated
    error, since a merged stream would otherwise masquerade as one
    valid run's log.  Raises :class:`~repro.errors.ConfigError` on any
    violation.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ConfigError("empty event stream (missing schema header)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise ConfigError(f"bad event header: {exc}")
    if not isinstance(header, dict) or header.get("schema") != schema:
        raise ConfigError(
            f"event stream schema mismatch: expected {schema!r}, "
            f"got {header!r}"
        )
    kinds = tuple(fields)
    events: List[dict] = []
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"line {lineno}: bad event JSON: {exc}")
        if not isinstance(event, dict):
            raise ConfigError(f"line {lineno}: event must be an object")
        if "schema" in event and "kind" not in event:
            raise ConfigError(
                f"line {lineno}: second schema header mid-stream -- this "
                f"file is a concatenation of multiple streams (shard-merge "
                f"artifact); validate each shard's stream separately"
            )
        kind = event.get("kind")
        if kind not in fields:
            raise ConfigError(
                f"line {lineno}: unknown event kind {kind!r} "
                f"(expected one of {kinds})"
            )
        for field in envelope + fields[kind]:
            if field not in event:
                raise ConfigError(
                    f"line {lineno}: event {kind!r} missing field {field!r}"
                )
        if event["seq"] != len(events):
            if event["seq"] == 0 and events:
                raise ConfigError(
                    f"line {lineno}: seq restarted at 0 mid-stream "
                    f"(expected {len(events)}) -- this file is a "
                    f"concatenation of multiple streams (shard-merge "
                    f"artifact); validate each shard's stream separately"
                )
            raise ConfigError(
                f"line {lineno}: seq {event['seq']} out of order "
                f"(expected {len(events)})"
            )
        events.append(event)
    return events


def validate_events(text: str) -> List[dict]:
    """Parse and validate a sweep event stream; returns the event dicts.

    :func:`validate_stream` against :data:`EVENTS_SCHEMA` /
    :data:`EVENT_FIELDS` -- what the CI telemetry-smoke job runs
    against a captured stream (any violation is a failed build).
    """
    return validate_stream(text, EVENTS_SCHEMA, EVENT_FIELDS)


def open_event_stream(path: Optional[str]) -> Optional[EventStream]:
    """``None``-propagating convenience for CLI plumbing."""
    return EventStream.open(path) if path else None
