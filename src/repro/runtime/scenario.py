"""Declarative scenarios: one hashable description of one experiment cell.

A :class:`Scenario` composes the full experiment space every workload
family in the repro draws from -- a validated config
(:class:`~repro.config.RouterConfig` or
:class:`~repro.config.HBMSwitchConfig`), a traffic or attack workload, an
optional :class:`~repro.faults.FaultSchedule`, a telemetry switch and
execution hints -- into one frozen, picklable value.  The runtime
(:mod:`repro.runtime.runtime`) executes scenarios through a single
shared scheduler; the cache (:mod:`repro.runtime.cache`) addresses
results by :meth:`Scenario.digest`.

Digest semantics
----------------

``digest()`` hashes the *semantic content* of a scenario: everything
that can change the result payload.  Two fields are deliberately
excluded:

- ``seed`` -- the cache is keyed by ``(digest, seed, code_version)``, so
  the same scenario swept over seeds shares one digest with per-seed
  cache cells;
- ``mode`` / ``workers`` -- execution hints.  Sequential and parallel
  runs of the same scenario are byte-identical by construction (the
  repo-wide invariant since PR 1), so they must also be cache hits for
  each other.

Every scenario kind maps onto the exact per-family execution code that
predates the runtime (``repro.faults.campaign.execute_fault_scenario``,
``repro.adversary.campaign.execute_attack_trial``,
:func:`~repro.faults.report.measure_degradation`, the switch/router
simulation paths the CLI used to inline), so payloads are byte-identical
to the pre-runtime outputs for the same seeds.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..config import HBMSwitchConfig, RouterConfig
from ..core.pfi import PFIOptions
from ..errors import ConfigError
from ..fabric.engine import TRAFFIC_PATTERNS
from ..fabric.routing import ROUTING_POLICIES
from ..fabric.topology import FabricTopology, topology_to_dict
from ..traffic import (
    ArrivalProcess,
    FixedSize,
    ImixSize,
    TrafficGenerator,
    uniform_matrix,
)

#: The workload families the runtime can execute.
SCENARIO_KINDS = (
    "switch",
    "router",
    "degradation",
    "fault_cell",
    "attack",
    "fabric",
)


@dataclass(frozen=True)
class Scenario:
    """One declarative, content-addressable experiment cell.

    ``kind`` selects the workload family:

    - ``"switch"`` -- one HBM switch fed synthetic traffic
      (``config`` is an :class:`~repro.config.HBMSwitchConfig`);
    - ``"router"`` -- the full H-switch Split-Parallel router
      (``config`` is a :class:`~repro.config.RouterConfig`);
    - ``"degradation"`` -- a faulted router run binned over time
      (:func:`~repro.faults.report.measure_degradation`);
    - ``"fault_cell"`` -- one Monte-Carlo fault-campaign member;
    - ``"attack"`` -- one adversarial campaign trial;
    - ``"fabric"`` -- a multi-router fabric cell: ``config`` is the
      per-node :class:`~repro.config.RouterConfig`, ``topology`` one of
      the :mod:`repro.fabric.topology` dataclasses, ``routing`` a
      :data:`~repro.fabric.routing.ROUTING_POLICIES` member.

    Fields that do not apply to a kind keep their defaults and still
    participate in the digest (they are part of the declarative
    content; defaults hash stably).
    """

    kind: str
    config: object  # HBMSwitchConfig (switch) or RouterConfig (the rest)
    load: float = 0.8
    duration_ns: float = 50_000.0
    seed: int = 0
    #: Fixed packet size in bytes; 0 selects the IMIX mix.
    packet_size: int = 0
    process: str = "poisson"
    padding: bool = True
    bypass: bool = True
    #: Optional fault schedule (``None`` = pristine hardware).
    schedule: Optional[object] = None
    #: ``degradation``/``fault_cell``: time-bin count.
    n_intervals: int = 8
    drain: bool = True
    #: ``attack`` only: splitter family, its manufacturing seed, the
    #: strategy object and the trial's traffic seed.
    splitter_kind: Optional[str] = None
    splitter_seed: int = 0
    strategy: Optional[object] = None
    traffic_seed: Optional[int] = None
    telemetry: bool = False
    #: ``"packet"`` runs the discrete-event pipeline; ``"flow"`` the
    #: numpy fluid engine (:mod:`repro.flow`).  Part of the digest, so
    #: flow and packet cells cache separately.
    fidelity: str = "packet"
    #: Optional streaming workload spec
    #: (:func:`~repro.traffic.stream.workload_source`):
    #: ``"pareto"``/``"lognormal"``/``"diurnal"``/``"flash"`` or
    #: ``"trace:<path>"``.  ``None`` keeps the legacy
    #: :class:`~repro.traffic.TrafficGenerator` traffic -- a conditional
    #: digest key, so pre-existing digests are untouched.  Packet
    #: fidelity and open loop only; the arrivals are consumed as blocks
    #: (bounded memory) on sequential cells.
    workload: Optional[str] = None
    #: Free-form cell tag (campaign index); part of the digest because
    #: campaign payloads embed it.
    tag: Optional[int] = None
    #: Optional closed-loop control plane
    #: (:class:`~repro.control.ControlConfig`); ``None`` = open loop.
    #: Participates in the digest (closed-loop cells cache separately,
    #: and distinct tunings occupy distinct entries).
    control: Optional[object] = None
    #: ``fabric`` only: the topology dataclass, routing policy, demand
    #: pattern and inter-package propagation delay.
    topology: Optional[object] = None
    routing: str = "direct"
    pattern: str = "uniform"
    link_delay_ns: float = 0.0
    #: Execution hints -- excluded from the digest (results are
    #: byte-identical across modes by construction).
    mode: str = "sequential"
    workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in SCENARIO_KINDS:
            raise ConfigError(
                f"kind must be one of {SCENARIO_KINDS}, got {self.kind!r}"
            )
        if self.duration_ns <= 0:
            raise ConfigError(
                f"duration_ns must be positive, got {self.duration_ns}"
            )
        if self.kind == "switch":
            if not isinstance(self.config, HBMSwitchConfig):
                raise ConfigError(
                    "switch scenarios take an HBMSwitchConfig, got "
                    f"{type(self.config).__name__}"
                )
        elif not isinstance(self.config, RouterConfig):
            raise ConfigError(
                f"{self.kind} scenarios take a RouterConfig, got "
                f"{type(self.config).__name__}"
            )
        if self.kind == "attack":
            if self.splitter_kind is None or self.strategy is None:
                raise ConfigError(
                    "attack scenarios need splitter_kind and strategy"
                )
        if self.kind == "fabric":
            if not isinstance(self.topology, FabricTopology):
                raise ConfigError(
                    "fabric scenarios take a FabricTopology, got "
                    f"{type(self.topology).__name__}"
                )
        if self.routing not in ROUTING_POLICIES:
            raise ConfigError(
                f"routing must be one of {ROUTING_POLICIES}, got "
                f"{self.routing!r}"
            )
        if self.pattern not in TRAFFIC_PATTERNS:
            raise ConfigError(
                f"pattern must be one of {TRAFFIC_PATTERNS}, got "
                f"{self.pattern!r}"
            )
        if self.link_delay_ns < 0:
            raise ConfigError(
                f"link_delay_ns must be >= 0, got {self.link_delay_ns}"
            )
        if self.fidelity not in ("packet", "flow"):
            raise ConfigError(
                f'fidelity must be "packet" or "flow", got {self.fidelity!r}'
            )
        if self.workload is not None:
            from ..traffic.stream import WORKLOAD_KINDS

            if not (
                self.workload in WORKLOAD_KINDS
                or self.workload.startswith("trace:")
            ):
                raise ConfigError(
                    f"workload must be one of {WORKLOAD_KINDS} or "
                    f'"trace:<path>", got {self.workload!r}'
                )
            if self.fidelity != "packet":
                raise ConfigError(
                    "workload streaming requires packet fidelity (the "
                    "flow engine has no per-packet arrival stream)"
                )
            if self.kind not in ("switch", "router", "degradation",
                                 "fault_cell", "attack"):
                raise ConfigError(
                    f"workload is not supported for kind {self.kind!r}"
                )
            if self.control is not None:
                raise ConfigError(
                    "workload streaming composes with open-loop cells "
                    "only (the control prepass materializes the packet "
                    "list)"
                )
        if self.control is not None:
            from ..control.config import ControlConfig

            if not isinstance(self.control, ControlConfig):
                raise ConfigError(
                    "control must be a repro.control.ControlConfig, got "
                    f"{type(self.control).__name__}"
                )
            if self.kind not in ("router", "degradation", "fault_cell", "attack"):
                raise ConfigError(
                    f"control is not supported for kind {self.kind!r}: the "
                    "control plane actuates the H-way fiber split, which "
                    "router/degradation/fault_cell/attack cells have"
                )

    # -- digesting -----------------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        """The canonical JSON-safe content the digest hashes.

        Excludes ``seed`` (a separate cache-key component) and the
        ``mode``/``workers`` execution hints (results are invariant to
        them).
        """
        data = {
            "kind": self.kind,
            "config": _config_content(self.config),
            "load": self.load,
            "duration_ns": self.duration_ns,
            "packet_size": self.packet_size,
            "process": self.process,
            "padding": self.padding,
            "bypass": self.bypass,
            "schedule": (
                self.schedule.to_dict() if self.schedule is not None else None
            ),
            "n_intervals": self.n_intervals,
            "drain": self.drain,
            "splitter_kind": self.splitter_kind,
            "splitter_seed": self.splitter_seed,
            "strategy": _strategy_content(self.strategy),
            "traffic_seed": self.traffic_seed,
            "telemetry": self.telemetry,
            "fidelity": self.fidelity,
            "tag": self.tag,
            "topology": (
                topology_to_dict(self.topology)
                if self.topology is not None
                else None
            ),
            "routing": self.routing,
            "pattern": self.pattern,
            "link_delay_ns": self.link_delay_ns,
        }
        if self.control is not None:
            # Conditional key: open-loop digests stay exactly what they
            # were before the control plane existed (cache continuity).
            data["control"] = self.control.to_dict()
        if self.workload is not None:
            # Conditional for the same reason: legacy-traffic digests
            # stay exactly what they were before workloads existed.
            data["workload"] = self.workload
        return data

    def digest(self) -> str:
        """Content hash of :meth:`describe` (hex sha256)."""
        text = json.dumps(
            self.describe(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _config_content(config) -> Dict[str, Any]:
    data = dataclasses.asdict(config)
    data["_type"] = type(config).__name__
    return data


def _strategy_content(strategy) -> Optional[Dict[str, Any]]:
    if strategy is None:
        return None
    data = dataclasses.asdict(strategy)
    data["_type"] = type(strategy).__name__
    return data


# -- builders ------------------------------------------------------------------


def switch_scenario(config: HBMSwitchConfig, **kwargs) -> Scenario:
    """One HBM-switch simulation cell."""
    return Scenario(kind="switch", config=config, **kwargs)


def router_scenario(config: RouterConfig, **kwargs) -> Scenario:
    """One full-router simulation cell."""
    return Scenario(kind="router", config=config, **kwargs)


def degradation_scenario(config: RouterConfig, **kwargs) -> Scenario:
    """One faulted, time-binned router run."""
    return Scenario(kind="degradation", config=config, **kwargs)


def fabric_scenario(
    config: RouterConfig, topology: FabricTopology, **kwargs
) -> Scenario:
    """One multi-router fabric cell."""
    return Scenario(kind="fabric", config=config, topology=topology, **kwargs)


# -- execution -----------------------------------------------------------------


def _size_dist(scenario: Scenario):
    if scenario.packet_size > 0:
        return FixedSize(scenario.packet_size)
    return ImixSize()


def _workload_source(scenario: Scenario, n_ports: int, port_rate_bps: float):
    """The scenario's streaming source (``scenario.workload`` is set)."""
    from ..traffic.stream import workload_source

    return workload_source(
        scenario.workload,
        n_ports=n_ports,
        port_rate_bps=port_rate_bps,
        load=scenario.load,
        seed=scenario.seed,
        duration_ns=scenario.duration_ns,
        packet_bytes=scenario.packet_size if scenario.packet_size > 0 else 1500,
    )


def _options(scenario: Scenario) -> PFIOptions:
    return PFIOptions(padding=scenario.padding, bypass=scenario.bypass)


def _execute_switch(scenario: Scenario, registry=None, trace=None) -> dict:
    from ..core.hbm_switch import HBMSwitch
    from ..reporting import report_to_dict

    config = scenario.config
    if scenario.fidelity == "flow":
        from ..flow import simulate_flow_switch

        if registry is None and scenario.telemetry:
            from ..telemetry import MetricsRegistry

            registry = MetricsRegistry()
        report = simulate_flow_switch(
            config,
            load=scenario.load,
            duration_ns=scenario.duration_ns,
            drain=scenario.drain,
            mean_packet_bytes=_size_dist(scenario).mean_bytes,
            telemetry=registry,
        )
        return {
            "report": report_to_dict(report),
            "telemetry": registry.to_dict() if registry is not None else None,
        }
    if registry is None and scenario.telemetry:
        from ..telemetry import MetricsRegistry

        registry = MetricsRegistry()
    telemetry = None
    if registry is not None:
        from ..telemetry import SwitchTelemetry

        telemetry = SwitchTelemetry(registry, config, switch=0)
    switch = HBMSwitch(config, _options(scenario), telemetry=telemetry, trace=trace)
    if scenario.workload is not None:
        # Streaming ingest: the switch pulls arrival blocks and never
        # sees the whole workload at once.
        source = _workload_source(
            scenario, config.n_ports, config.port_rate_bps
        )
        report = switch.run_stream(
            source.blocks(scenario.duration_ns),
            scenario.duration_ns,
            drain=scenario.drain,
        )
    else:
        generator = TrafficGenerator(
            n_ports=config.n_ports,
            port_rate_bps=config.port_rate_bps,
            matrix=uniform_matrix(config.n_ports, scenario.load),
            size_dist=_size_dist(scenario),
            process=ArrivalProcess(scenario.process),
            seed=scenario.seed,
        )
        packets = generator.materialize(scenario.duration_ns)
        report = switch.run(packets, scenario.duration_ns, drain=scenario.drain)
    return {
        "report": report_to_dict(report),
        "telemetry": registry.to_dict() if registry is not None else None,
    }


def _execute_router(scenario: Scenario, registry=None) -> dict:
    from ..core.sps import SplitParallelSwitch
    from ..reporting import report_to_dict

    config = scenario.config
    if scenario.fidelity == "flow":
        from ..flow import flow_router_result

        if registry is None and scenario.telemetry:
            from ..telemetry import MetricsRegistry

            registry = MetricsRegistry()
        result = flow_router_result(
            config,
            load=scenario.load,
            duration_ns=scenario.duration_ns,
            drain=scenario.drain,
            schedule=scenario.schedule,
            mean_packet_bytes=_size_dist(scenario).mean_bytes,
            telemetry=registry,
            control=scenario.control,
        )
        payload = {
            "report": report_to_dict(result.report),
            "telemetry": registry.to_dict() if registry is not None else None,
        }
        if result.control is not None:
            payload["control"] = result.control
        return payload
    if registry is None and scenario.telemetry:
        from ..telemetry import MetricsRegistry

        registry = MetricsRegistry()
    router = SplitParallelSwitch(config, options=_options(scenario))
    if scenario.workload is not None:
        # Streaming ingest (open loop by validation).  Sequential cells
        # pull blocks straight through run_stream; parallel cells
        # materialize once and take the pooled path -- byte-identical
        # results either way (the repo invariant), so both land on the
        # same cache entry.
        source = _workload_source(
            scenario,
            config.n_ribbons,
            config.fibers_per_ribbon * config.per_fiber_rate_bps,
        )
        if scenario.mode == "sequential":
            report = router.run_stream(
                source.blocks(scenario.duration_ns),
                scenario.duration_ns,
                drain=scenario.drain,
                fault_schedule=scenario.schedule,
                telemetry=registry,
            )
        else:
            report = router.run(
                source.materialize(scenario.duration_ns),
                scenario.duration_ns,
                drain=scenario.drain,
                fault_schedule=scenario.schedule,
                mode=scenario.mode,
                n_workers=scenario.workers,
                telemetry=registry,
            )
        return {
            "report": report_to_dict(report),
            "telemetry": registry.to_dict() if registry is not None else None,
        }
    generator = TrafficGenerator(
        n_ports=config.n_ribbons,
        port_rate_bps=config.fibers_per_ribbon * config.per_fiber_rate_bps,
        matrix=uniform_matrix(config.n_ribbons, scenario.load),
        size_dist=_size_dist(scenario),
        process=ArrivalProcess(scenario.process),
        seed=scenario.seed,
    )
    packets = generator.materialize(scenario.duration_ns)
    control_summary = None
    fibers = None
    if scenario.control is not None:
        from ..control.packet import packet_control_prepass
        from ..core.sps import assign_fibers

        fibers = assign_fibers(packets, config.fibers_per_ribbon)
        fibers, throttled, loop = packet_control_prepass(
            config,
            scenario.control,
            packets,
            fibers,
            router.splitter,
            scenario.duration_ns,
            schedule=scenario.schedule,
            telemetry=registry,
        )
        packets = [p for p, t in zip(packets, throttled) if not t]
        fibers = [f for f, t in zip(fibers, throttled) if not t]
        control_summary = loop.summary()
    report = router.run(
        packets,
        scenario.duration_ns,
        fibers=fibers,
        drain=scenario.drain,
        fault_schedule=scenario.schedule,
        mode=scenario.mode,
        n_workers=scenario.workers,
        telemetry=registry,
    )
    payload = {
        "report": report_to_dict(report),
        "telemetry": registry.to_dict() if registry is not None else None,
    }
    if control_summary is not None:
        payload["control"] = control_summary
    return payload


def _execute_degradation(scenario: Scenario, registry=None) -> dict:
    from ..faults.report import measure_degradation

    if scenario.fidelity == "flow":
        from ..flow import flow_degradation

        if registry is None and scenario.telemetry:
            from ..telemetry import MetricsRegistry

            registry = MetricsRegistry()
        report = flow_degradation(
            scenario.config,
            schedule=scenario.schedule,
            load=scenario.load,
            duration_ns=scenario.duration_ns,
            n_intervals=scenario.n_intervals,
            telemetry=registry,
            control=scenario.control,
        )
        return {
            "report": report.to_dict(),
            "telemetry": registry.to_dict() if registry is not None else None,
        }
    if registry is None and scenario.telemetry:
        from ..telemetry import MetricsRegistry

        registry = MetricsRegistry()
    if scenario.control is not None:
        from ..control.packet import measure_degradation_controlled

        report, _ = measure_degradation_controlled(
            scenario.config,
            scenario.control,
            schedule=scenario.schedule,
            load=scenario.load,
            duration_ns=scenario.duration_ns,
            seed=scenario.seed,
            n_intervals=scenario.n_intervals,
            options=_options(scenario),
            telemetry=registry,
        )
    else:
        report = measure_degradation(
            scenario.config,
            schedule=scenario.schedule,
            load=scenario.load,
            duration_ns=scenario.duration_ns,
            seed=scenario.seed,
            n_intervals=scenario.n_intervals,
            options=_options(scenario),
            telemetry=registry,
            workload=scenario.workload,
        )
    return {
        "report": report.to_dict(),
        "telemetry": registry.to_dict() if registry is not None else None,
    }


def _execute_fault_cell(scenario: Scenario) -> dict:
    from ..faults.campaign import FaultScenario, execute_fault_scenario

    if scenario.schedule is None:
        raise ConfigError("fault_cell scenarios need a drawn schedule")
    cell = FaultScenario(
        index=scenario.tag if scenario.tag is not None else 0,
        config=scenario.config,
        schedule=scenario.schedule,
        load=scenario.load,
        duration_ns=scenario.duration_ns,
        seed=scenario.seed,
        n_intervals=scenario.n_intervals,
        control=scenario.control,
        workload=scenario.workload,
    )
    if scenario.fidelity == "flow":
        from ..flow import execute_fault_scenario_flow

        return execute_fault_scenario_flow(cell)
    return execute_fault_scenario(cell)


def _execute_attack(scenario: Scenario) -> dict:
    from ..adversary.campaign import AttackTrial, execute_attack_trial

    if scenario.fidelity == "flow":
        from ..flow import execute_attack_trial_flow

        executor = execute_attack_trial_flow
    else:
        executor = execute_attack_trial
    return executor(
        AttackTrial(
            index=scenario.tag if scenario.tag is not None else 0,
            config=scenario.config,
            splitter_kind=scenario.splitter_kind,
            splitter_seed=scenario.splitter_seed,
            strategy=scenario.strategy,
            load=scenario.load,
            duration_ns=scenario.duration_ns,
            traffic_seed=(
                scenario.traffic_seed
                if scenario.traffic_seed is not None
                else scenario.seed
            ),
            fault_schedule=scenario.schedule,
            telemetry=scenario.telemetry,
            control=scenario.control,
            workload=scenario.workload,
        )
    )


def _execute_fabric(scenario: Scenario, registry=None) -> dict:
    from ..fabric.engine import simulate_fabric
    from ..reporting import report_to_dict

    if registry is None and scenario.telemetry:
        from ..telemetry import MetricsRegistry

        registry = MetricsRegistry()
    report = simulate_fabric(
        scenario.config,
        scenario.topology,
        routing=scenario.routing,
        load=scenario.load,
        duration_ns=scenario.duration_ns,
        seed=scenario.seed,
        fidelity=scenario.fidelity,
        schedule=scenario.schedule,
        link_delay_ns=scenario.link_delay_ns,
        pattern=scenario.pattern,
        drain=scenario.drain,
        registry=registry,
    )
    return {
        "report": report_to_dict(report),
        "telemetry": registry.to_dict() if registry is not None else None,
    }


def execute_scenario(scenario: Scenario, registry=None, trace=None) -> dict:
    """Run one scenario to completion; returns its JSON-safe payload.

    Module-level (and every scenario picklable) so the runtime can fan
    cells out over the process pool.  ``registry``/``trace`` are
    inline-only extras for callers that need a shared
    :class:`~repro.telemetry.MetricsRegistry` or a
    :class:`~repro.sim.trace.TraceRecorder`; the runtime never passes
    them, so cached payloads stay pure functions of the scenario.

    Payload shapes:

    - ``switch``/``router``/``degradation`` -- ``{"report": <dict>,
      "telemetry": <dump|None>}`` where ``report`` serialises exactly as
      the pre-runtime CLI did;
    - ``fault_cell``/``attack`` -- the flat campaign-member dict the
      campaign aggregators have always consumed.
    """
    if scenario.kind == "switch":
        return _execute_switch(scenario, registry=registry, trace=trace)
    if scenario.kind == "router":
        return _execute_router(scenario, registry=registry)
    if scenario.kind == "degradation":
        return _execute_degradation(scenario, registry=registry)
    if scenario.kind == "fault_cell":
        return _execute_fault_cell(scenario)
    if scenario.kind == "attack":
        return _execute_attack(scenario)
    if scenario.kind == "fabric":
        return _execute_fabric(scenario, registry=registry)
    raise ConfigError(f"unknown scenario kind {scenario.kind!r}")
