"""The Campaign protocol: multi-cell experiments on the runtime.

A campaign is "a grid of scenarios plus an aggregate": it *declares*
its cells (:meth:`Campaign.scenarios`) and folds their payloads into a
result object (:meth:`Campaign.aggregate`), while the runtime owns all
dispatch, caching, checkpointing and sharding.  The fault Monte-Carlo
and adversarial campaigns -- which each used to carry their own seeded
fan-out and pool plumbing -- are the two concrete instances here; their
legacy entrypoints (``repro.faults.campaign.run_campaign``,
``repro.adversary.campaign.run_attack_campaign``) survive as
deprecation shims over these classes and return identical results for
identical seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from ..adversary.campaign import (
    AttackCampaignParams,
    AttackCampaignResult,
    trial_seeds,
)
from ..config import RouterConfig
from ..faults.campaign import (
    CampaignParams,
    CampaignResult,
    draw_fault_schedule,
)
from ..faults.schedule import FaultSchedule
from .scenario import Scenario


@runtime_checkable
class Campaign(Protocol):
    """What the runtime needs from any multi-cell experiment."""

    def scenarios(self) -> Sequence[Scenario]:
        """The campaign's cells, in aggregation order."""
        ...

    def aggregate(self, payloads: Sequence[dict]):
        """Fold the cells' payloads (same order) into the result."""
        ...


@dataclass(frozen=True)
class FaultCampaign:
    """Seeded Monte-Carlo fault campaign as a runtime campaign.

    Cell ``i`` draws its schedule from ``default_rng((params.seed, i))``
    and simulates with traffic seed ``params.seed + i`` -- exactly the
    legacy ``run_campaign`` recipe, so the aggregate
    :class:`~repro.faults.campaign.CampaignResult` serialises
    byte-identically for the same ``(config, params)``.
    """

    config: RouterConfig
    params: CampaignParams
    base_schedule: Optional[FaultSchedule] = None
    fidelity: str = "packet"
    #: Optional :class:`~repro.control.ControlConfig` applied to every
    #: cell -- the closed-loop variant of the same campaign.
    control: Optional[object] = None
    #: Optional streaming workload spec applied to every cell
    #: (:func:`~repro.traffic.stream.workload_source`); ``None`` keeps
    #: the historical smooth fixed-size traffic.
    workload: Optional[str] = None

    def scenarios(self) -> List[Scenario]:
        cells = []
        for i in range(self.params.n_scenarios):
            rng = np.random.default_rng((self.params.seed, i))
            schedule = draw_fault_schedule(self.config, self.params, rng)
            if self.base_schedule is not None:
                schedule = schedule.merged(self.base_schedule)
            schedule.validate(self.config)
            cells.append(
                Scenario(
                    kind="fault_cell",
                    config=self.config,
                    load=self.params.load,
                    duration_ns=self.params.duration_ns,
                    seed=self.params.seed + i,
                    schedule=schedule,
                    n_intervals=self.params.n_intervals,
                    fidelity=self.fidelity,
                    tag=i,
                    control=self.control,
                    workload=self.workload,
                )
            )
        return cells

    def aggregate(self, payloads: Sequence[dict]) -> CampaignResult:
        return CampaignResult(params=self.params, scenarios=list(payloads))


@dataclass(frozen=True)
class AttackCampaign:
    """Seeded multi-trial attack campaign as a runtime campaign.

    Trial ``i`` derives its traffic and splitter seeds from
    ``SeedSequence((params.seed, i))`` -- the legacy
    ``run_attack_campaign`` recipe -- and composes with an optional
    fault schedule / legacy ``failed_switches`` list, so the aggregate
    :class:`~repro.adversary.campaign.AttackCampaignResult` (including
    the trial-index-ordered telemetry merge) is byte-identical to the
    pre-runtime implementation.
    """

    config: RouterConfig
    params: AttackCampaignParams
    fault_schedule: Optional[FaultSchedule] = None
    failed_switches: Optional[Sequence[int]] = None
    fidelity: str = "packet"
    #: Optional :class:`~repro.control.ControlConfig` applied to every
    #: trial -- the closed-loop variant of the same campaign.
    control: Optional[object] = None
    #: Optional carrier-traffic spec applied to every trial
    #: (:func:`~repro.traffic.stream.workload_source`); ``None`` keeps
    #: the historical fixed-size Poisson carrier.
    workload: Optional[str] = None

    def _composed_schedule(self) -> Optional[FaultSchedule]:
        schedule = self.fault_schedule
        if self.failed_switches:
            extra = FaultSchedule.from_failed_switches(self.failed_switches)
            schedule = extra if schedule is None else schedule.merged(extra)
        if schedule is not None:
            schedule.validate(self.config)
        return schedule

    def scenarios(self) -> List[Scenario]:
        schedule = self._composed_schedule()
        cells = []
        for i in range(self.params.n_trials):
            traffic_seed, splitter_seed = trial_seeds(self.params.seed, i)
            cells.append(
                Scenario(
                    kind="attack",
                    config=self.config,
                    load=self.params.load,
                    duration_ns=self.params.duration_ns,
                    seed=traffic_seed,
                    schedule=schedule,
                    splitter_kind=self.params.splitter,
                    splitter_seed=splitter_seed,
                    strategy=self.params.strategy,
                    traffic_seed=traffic_seed,
                    telemetry=self.params.telemetry,
                    fidelity=self.fidelity,
                    tag=i,
                    control=self.control,
                    workload=self.workload,
                )
            )
        return cells

    def aggregate(self, payloads: Sequence[dict]) -> AttackCampaignResult:
        trials = list(payloads)
        merged = None
        if self.params.telemetry:
            from ..telemetry import MetricsRegistry

            registry = MetricsRegistry()
            # Trial-index order keeps cached, sharded and pooled runs
            # byte-identical to a fresh sequential campaign.
            for trial in trials:
                if trial.get("telemetry") is not None:
                    registry.merge_dict(trial["telemetry"])
            merged = registry.to_dict()
        return AttackCampaignResult(
            params=self.params, trials=trials, telemetry=merged
        )
