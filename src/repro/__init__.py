"""repro: Petabit Router-in-a-Package (HotNets '25) reproduction.

A production-quality simulator of the paper's two contributions -- the
Split-Parallel Switch (SPS) and the shared-memory HBM switch running
Parallel Frame Interleaving (PFI) -- plus every substrate they rest on:
a timing-checked HBM4 model, an in-package photonics model, synthetic
internet traffic, the paper's baselines, and its full design analysis.

Quickstart -- declare the experiment, let the runtime execute it::

    import repro

    scenario = repro.runtime.router_scenario(
        repro.scaled_router(), load=0.9, duration_ns=50_000.0, seed=0
    )
    payload = repro.run(scenario, cache_dir=".repro-cache")
    print(payload["report"]["normalized_throughput"])

``repro.run`` executes one :class:`~repro.runtime.Scenario` (or recalls
it from the content-addressed cache); :class:`repro.Runtime` runs whole
grids and campaigns with resume and sharding.  See docs/runtime.md.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every experiment.
"""

from .config import (
    HBMStackConfig,
    HBMSwitchConfig,
    RouterConfig,
    datacenter_switch_config,
    reference_router,
    scaled_router,
)
from .core import (
    ContiguousSplitter,
    HBMSwitch,
    PFIOptions,
    PseudoRandomSplitter,
    RouterReport,
    SplitParallelSwitch,
    SwitchReport,
)
from .errors import (
    AdmissibilityError,
    CapacityExceeded,
    ConfigError,
    OrderingViolation,
    ReproError,
    SimulationError,
    TimingViolation,
)
from .hbm import HBMController, HBMTiming
from .traffic import (
    ArrivalBlock,
    HeavyTailSource,
    TraceSource,
    TrafficGenerator,
    TrafficSource,
    stream_trace,
    workload_source,
)

__version__ = "1.0.0"

# The scenario runtime imports __version__ (for cache keys), so it must
# come after the assignment above.
from . import control  # noqa: E402
from . import fabric  # noqa: E402
from . import runtime  # noqa: E402
from .control import ControlConfig  # noqa: E402
from .fabric import FabricReport, FabricTopology  # noqa: E402
from .runtime import Runtime, Scenario, run  # noqa: E402

__all__ = [
    "__version__",
    "Scenario",
    "Runtime",
    "run",
    "runtime",
    "control",
    "ControlConfig",
    "fabric",
    "FabricReport",
    "FabricTopology",
    "RouterConfig",
    "HBMSwitchConfig",
    "HBMStackConfig",
    "reference_router",
    "scaled_router",
    "datacenter_switch_config",
    "HBMSwitch",
    "SwitchReport",
    "SplitParallelSwitch",
    "RouterReport",
    "PFIOptions",
    "ContiguousSplitter",
    "PseudoRandomSplitter",
    "HBMTiming",
    "HBMController",
    "ReproError",
    "ConfigError",
    "TimingViolation",
    "CapacityExceeded",
    "AdmissibilityError",
    "SimulationError",
    "OrderingViolation",
    "TrafficSource",
    "ArrivalBlock",
    "TrafficGenerator",
    "HeavyTailSource",
    "TraceSource",
    "stream_trace",
    "workload_source",
]
