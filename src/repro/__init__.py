"""repro: Petabit Router-in-a-Package (HotNets '25) reproduction.

A production-quality simulator of the paper's two contributions -- the
Split-Parallel Switch (SPS) and the shared-memory HBM switch running
Parallel Frame Interleaving (PFI) -- plus every substrate they rest on:
a timing-checked HBM4 model, an in-package photonics model, synthetic
internet traffic, the paper's baselines, and its full design analysis.

Quickstart::

    from repro import scaled_router, HBMSwitch, PFIOptions
    from repro.traffic import TrafficGenerator, uniform_matrix, ImixSize

    cfg = scaled_router()
    gen = TrafficGenerator(cfg.n_ribbons, cfg.switch.port_rate_bps,
                           uniform_matrix(cfg.n_ribbons, 0.9), ImixSize())
    switch = HBMSwitch(cfg.switch, PFIOptions(padding=True, bypass=True))
    report = switch.run(gen.generate(50_000.0), 50_000.0)
    print(report.normalized_throughput, report.latency)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every experiment.
"""

from .config import (
    HBMStackConfig,
    HBMSwitchConfig,
    RouterConfig,
    datacenter_switch_config,
    reference_router,
    scaled_router,
)
from .core import (
    ContiguousSplitter,
    HBMSwitch,
    PFIOptions,
    PseudoRandomSplitter,
    RouterReport,
    SplitParallelSwitch,
    SwitchReport,
)
from .errors import (
    AdmissibilityError,
    CapacityExceeded,
    ConfigError,
    OrderingViolation,
    ReproError,
    SimulationError,
    TimingViolation,
)
from .hbm import HBMController, HBMTiming

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "RouterConfig",
    "HBMSwitchConfig",
    "HBMStackConfig",
    "reference_router",
    "scaled_router",
    "datacenter_switch_config",
    "HBMSwitch",
    "SwitchReport",
    "SplitParallelSwitch",
    "RouterReport",
    "PFIOptions",
    "ContiguousSplitter",
    "PseudoRandomSplitter",
    "HBMTiming",
    "HBMController",
    "ReproError",
    "ConfigError",
    "TimingViolation",
    "CapacityExceeded",
    "AdmissibilityError",
    "SimulationError",
    "OrderingViolation",
]
