"""Dynamic per-output page allocation (SS 3.2, *HBM memory organization*).

The paper offers two region-allocation options: **static** (each output
owns a fixed slice of rows; head/tail counters are the only state --
:class:`~repro.core.address.HBMAddressMap`) or **dynamic with large
per-output pages**, where "a small extra amount of SRAM would suffice to
track pointers to these large pages."

This module implements the dynamic option: the row space of every bank
is carved into large pages of ``rows_per_page`` frame slots; outputs
acquire pages from a shared free list as they grow and release them as
they drain.  The FIFO discipline and the no-bookkeeping bank-group rule
are unchanged -- the n-th frame of an output still lands in group
``n mod (L/gamma)``; only the *row* within the bank is now looked up
through the output's page table.

The win over static allocation is capacity elasticity: a hotspot output
can buffer far beyond 1/N-th of the memory while idle outputs lend it
their share (ablation bench A1).  The cost is exactly what the paper
says: a page-table SRAM of ``#pages x pointer`` bits, reported by
:meth:`DynamicPageAllocator.page_table_sram_bits`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List

from ..config import HBMSwitchConfig
from ..errors import CapacityExceeded, ConfigError
from ..hbm.interleaving import BankGroup, bank_group_for_frame
from .address import FrameAddress


@dataclass(frozen=True)
class Page:
    """One large page: ``rows_per_page`` consecutive frame rows."""

    index: int
    base_row: int
    rows: int


class OutputPageFifo:
    """The dynamic-paged FIFO of frame slots for one output.

    Like :class:`~repro.core.address.OutputRegionFifo` but rows come from
    dynamically acquired pages.  Frames still map to bank groups by the
    counter rule; a page supplies ``rows * n_groups`` frame slots (one
    row per group position before the next row is needed).
    """

    def __init__(self, output: int, n_groups: int, gamma: int, allocator: "DynamicPageAllocator"):
        self.output = output
        self.n_groups = n_groups
        self.gamma = gamma
        self._allocator = allocator
        self._pages: Deque[Page] = deque()
        self._head = 0
        self._tail = 0
        self._released_rows = 0  # rows freed from the front of the page list

    @property
    def occupancy(self) -> int:
        return self._tail - self._head

    @property
    def pages_held(self) -> int:
        return len(self._pages)

    def _slots_per_page(self, page: Page) -> int:
        return page.rows * self.n_groups

    def _capacity_slots(self) -> int:
        return sum(self._slots_per_page(p) for p in self._pages)

    def _address_for(self, frame_index: int) -> FrameAddress:
        """Translate a frame counter to (group, row) via the page table."""
        group_index = bank_group_for_frame(frame_index, self.n_groups)
        row_ordinal = frame_index // self.n_groups
        # Walk the page list to find the page holding this row ordinal.
        # Head-relative: pages are released from the front as the head
        # advances past them, so the base ordinal is tracked explicitly.
        ordinal = row_ordinal - self._released_rows
        for page in self._pages:
            if ordinal < page.rows:
                return FrameAddress(
                    output=self.output,
                    frame_index=frame_index,
                    group=BankGroup(group_index, self.gamma),
                    row=page.base_row + ordinal,
                )
            ordinal -= page.rows
        raise CapacityExceeded(
            f"output {self.output}: frame {frame_index} has no page"
        )

    def push(self) -> FrameAddress:
        """Allocate the next write slot, acquiring a page if needed."""
        needed_row = self._tail // self.n_groups
        have_rows = self._released_rows + sum(p.rows for p in self._pages)
        if needed_row >= have_rows:
            page = self._allocator.acquire(self.output)
            self._pages.append(page)
        address = self._address_for(self._tail)
        self._tail += 1
        return address

    def pop(self) -> FrameAddress:
        """Consume the oldest frame; release fully drained leading pages."""
        if self._head == self._tail:
            raise CapacityExceeded(f"output {self.output} FIFO empty")
        address = self._address_for(self._head)
        self._head += 1
        self._release_drained()
        return address

    def _release_drained(self) -> None:
        """Return leading pages whose every row is behind the head."""
        while self._pages:
            page = self._pages[0]
            page_end_row = self._released_rows + page.rows
            head_row = self._head // self.n_groups
            # Keep the page while the head row is still within it, and
            # also while the tail still writes into it.
            tail_row = self._tail // self.n_groups
            if head_row >= page_end_row and tail_row >= page_end_row:
                self._pages.popleft()
                self._released_rows += page.rows
                self._allocator.release(page)
            else:
                break


class DynamicPageAllocator:
    """Shared pool of large pages across all outputs of one HBM switch.

    ``rows_per_bank_total`` rows per (channel, bank) are carved into
    pages of ``rows_per_page``.  Every page maps the same row range on
    every channel and bank (frames always stripe the full width), so one
    pointer per page suffices -- the "small extra amount of SRAM".
    """

    def __init__(
        self,
        config: HBMSwitchConfig,
        rows_per_page: int = 8,
        rows_per_bank_total: int = 0,
    ) -> None:
        if rows_per_page <= 0:
            raise ConfigError(f"rows_per_page must be positive, got {rows_per_page}")
        self.config = config
        if rows_per_bank_total <= 0:
            stack = config.stack
            bank_bytes = stack.capacity_bytes // (stack.channels * stack.banks_per_channel)
            rows_per_bank_total = max(1, bank_bytes // stack.row_bytes)
        n_pages = rows_per_bank_total // rows_per_page
        if n_pages < config.n_ports:
            raise ConfigError(
                f"only {n_pages} pages for {config.n_ports} outputs; "
                f"shrink rows_per_page"
            )
        self.rows_per_page = rows_per_page
        self._free: Deque[Page] = deque(
            Page(index=i, base_row=i * rows_per_page, rows=rows_per_page)
            for i in range(n_pages)
        )
        self.total_pages = n_pages
        self._owner: Dict[int, int] = {}
        self.fifos: List[OutputPageFifo] = [
            OutputPageFifo(j, config.n_bank_groups, config.gamma, self)
            for j in range(config.n_ports)
        ]

    # -- pool operations ----------------------------------------------------------

    def acquire(self, output: int) -> Page:
        if not self._free:
            raise CapacityExceeded("page pool exhausted")
        page = self._free.popleft()
        self._owner[page.index] = output
        return page

    def release(self, page: Page) -> None:
        if page.index not in self._owner:
            raise ConfigError(f"page {page.index} is not allocated")
        del self._owner[page.index]
        self._free.append(page)

    # -- introspection -------------------------------------------------------------

    @property
    def free_pages(self) -> int:
        return len(self._free)

    def pages_of(self, output: int) -> int:
        return sum(1 for owner in self._owner.values() if owner == output)

    def region(self, output: int) -> OutputPageFifo:
        if not 0 <= output < len(self.fifos):
            raise ConfigError(f"output {output} out of range")
        return self.fifos[output]

    @property
    def occupancy_frames(self) -> int:
        return sum(f.occupancy for f in self.fifos)

    def page_table_sram_bits(self) -> int:
        """The 'small extra amount of SRAM' (SS 3.2).

        One pointer per page (log2 pages, rounded to whole bits) plus a
        per-output head/tail pair; a few KB for the reference design.
        """
        import math

        pointer_bits = max(1, math.ceil(math.log2(max(self.total_pages, 2))))
        table = self.total_pages * pointer_bits
        counters = self.config.n_ports * 2 * 32
        return table + counters
