"""The Parallel Frame Interleaving engine (Design 6 / SS 3.2 steps 3-5).

PFI alternates HBM **write phases** and **read phases**.  Each write
phase moves one frame (the head of the tail SRAM's shared FIFO) into the
HBM across all T channels with staggered bank interleaving; each read
phase moves one frame out, cycling over the N outputs.  Because the
memory bandwidth is twice the aggregate line rate, one frame written and
one read per cycle exactly sustains 100% load.

Optional behaviours (the SS 4 latency optimisations and ablation knobs):

- ``padding``: when a write phase finds no full frame, the output with
  the oldest pending batch is flushed as a padded frame [33, 37].
- ``bypass``: when a read phase's output has nothing in the HBM, the
  tail SRAM sends its head-of-line (possibly padded) frame directly to
  the head SRAM, skipping the memory round-trip.
- ``work_conserving_reads``: instead of the paper's strict cycle, skip
  to the next output that has a frame (ablation; strict is the default).
- ``validate_hbm_timing``: execute the real command schedule of every
  phase on the timing-checked controller -- any violation raises.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional

from ..config import HBMSwitchConfig
from ..constants import HBM4_PHASE_TRANSITION_FRACTION
from ..errors import ConfigError
from ..hbm.controller import HBMController
from ..hbm.interleaving import first_legal_start, generate_frame_schedule
from ..hbm.commands import Op
from ..hbm.timing import HBMTiming
from ..sim.engine import Engine
from .address import HBMAddressMap
from .frames import Frame
from .tail_sram import TailSRAM


@dataclass(frozen=True)
class PFIOptions:
    """Behavioural knobs of the PFI engine.

    ``padding_max_wait_ns`` guards *write-phase* padding: a partial frame
    is only padded and written once its oldest batch has waited this
    long.  ``None`` (the default) auto-derives one strict-cyclic service
    round (N x cycle): padding then acts as a latency deadline without
    flooding the HBM with mostly-filler frames at load -- a padded frame
    written during load burns future read slots of its output, whereas a
    *bypass* pad is free (it uses a read slot that would otherwise be
    wasted), so bypass pads unconditionally.
    """

    padding: bool = False
    bypass: bool = False
    work_conserving_reads: bool = False
    validate_hbm_timing: bool = False
    transition_fraction: float = HBM4_PHASE_TRANSITION_FRACTION
    padding_max_wait_ns: Optional[float] = None


@dataclass
class PFICounters:
    """Observable phase statistics."""

    frames_written: int = 0
    frames_read: int = 0
    padded_frames: int = 0
    bypassed_frames: int = 0
    idle_write_phases: int = 0
    wasted_read_slots: int = 0
    write_phases: int = 0
    read_phases: int = 0
    payload_written_bytes: int = 0
    padding_written_bytes: int = 0


class PFIEngine:
    """Drives the alternating write/read phases of one HBM switch."""

    def __init__(
        self,
        config: HBMSwitchConfig,
        engine: Engine,
        tail: TailSRAM,
        deliver: Callable[[Frame, float], None],
        address_map: Optional[HBMAddressMap] = None,
        options: PFIOptions = PFIOptions(),
        timing: Optional[HBMTiming] = None,
        controller: Optional[HBMController] = None,
        trace=None,
        faults=None,
        telemetry=None,
    ) -> None:
        self.config = config
        self.engine = engine
        self.tail = tail
        self.deliver = deliver
        self.options = options
        #: Optional :class:`~repro.faults.schedule.SwitchFaultView`.  Lost
        #: HBM channels stretch every phase by T / (T - lost) -- the frame
        #: still stripes over the survivors, just more slowly -- and a
        #: switch with zero surviving channels makes no memory progress.
        self.faults = faults
        self.timing = timing if timing is not None else HBMTiming()
        self.address_map = (
            address_map if address_map is not None else HBMAddressMap(config)
        )
        if options.validate_hbm_timing:
            if config.speedup != 1.0:
                raise ConfigError(
                    "command-level validation assumes the physical HBM rate; "
                    "it is only meaningful at speedup 1.0"
                )
            self.controller = (
                controller
                if controller is not None
                else HBMController(config.stack, config.n_stacks, self.timing)
            )
        else:
            self.controller = controller
        self.counters = PFICounters()
        self.trace = trace
        #: Optional :class:`~repro.telemetry.SwitchTelemetry` -- records
        #: per-phase spans, per-bank-group histograms and per-channel
        #: byte counters; ``None`` costs one pointer check per phase.
        self.telemetry = telemetry
        self._hbm_content: List[Deque[Frame]] = [
            deque() for _ in range(config.n_ports)
        ]
        # Incremental occupancy: the switch polls these per batch/frame,
        # so they are maintained at enqueue/dequeue time rather than
        # recomputed by scanning every per-output queue.
        self._hbm_frames = 0
        self._hbm_payload = 0
        self._read_ptr = 0
        self._stopped = False
        # Phase geometry: with speedup s the memory moves a frame in
        # frame_time/s; each phase is followed by a transition gap.
        self.phase_duration = config.frame_write_time_ns / config.speedup
        self.transition = self.phase_duration * options.transition_fraction
        if options.padding_max_wait_ns is None:
            # Auto: several natural frame-fill times (K/P is how long a
            # fully loaded output takes to fill a frame).  Below this
            # age the frame would have filled by itself at moderate
            # load, and padding it early would burn read slots on
            # filler; above it, the output is genuinely light and
            # padding is the right latency cut.
            from ..units import rate_to_bytes_per_ns

            fill_time = config.frame_bytes / rate_to_bytes_per_ns(config.port_rate_bps)
            self.padding_wait_ns = max(
                config.n_ports * self.cycle_duration, 4.0 * fill_time
            )
        else:
            self.padding_wait_ns = options.padding_max_wait_ns

    # -- lifecycle -----------------------------------------------------------

    def start(self, at: float = 0.0) -> None:
        """Schedule the first write phase."""
        start = max(at, first_legal_start(self.timing))
        self.engine.schedule(start, self._write_phase)

    def stop(self) -> None:
        """Stop scheduling further phases (end of simulation)."""
        self._stopped = True

    @property
    def cycle_duration(self) -> float:
        """One full write+read cycle including transitions."""
        return 2.0 * (self.phase_duration + self.transition)

    def hbm_occupancy_frames(self) -> int:
        return self._hbm_frames

    def hbm_frames_for(self, output: int) -> int:
        return len(self._hbm_content[output])

    def hbm_payload_bytes(self) -> int:
        return self._hbm_payload

    def _memory_stretch(self, now: float) -> Optional[float]:
        """Phase-duration multiplier under channel loss.

        1.0 with no channel faults (bit-identical to the unfaulted
        arithmetic); T / (T - lost) while ``lost`` channels are down;
        ``None`` when no channel survives (the memory is offline and the
        phase moves no data, though the cadence keeps ticking so
        recovery is observed).
        """
        if self.faults is None or not self.faults.has_channel_faults:
            return 1.0
        fraction = self.faults.channel_fraction(now)
        if fraction <= 0.0:
            return None
        return 1.0 / fraction

    def _striped_channels(self, now: float) -> int:
        """Channels a frame stripes over at ``now`` (survivors only)."""
        total = self.config.total_channels
        if self.faults is None or not self.faults.has_channel_faults:
            return total
        return max(1, total - self.faults.channels_lost(now))

    # -- write phase -------------------------------------------------------------

    def _write_phase(self) -> None:
        if self._stopped:
            return
        now = self.engine.now
        self.counters.write_phases += 1
        stretch = self._memory_stretch(now)
        frame = None
        if stretch is not None:
            frame = self.tail.pop_frame(now)
            if frame is None and self.options.padding:
                frame = self._pad_oldest_output(now)
        if frame is not None:
            self._write_frame(frame, now, stretch)
        else:
            self.counters.idle_write_phases += 1
            if self.trace is not None:
                self.trace.record(now, "pfi", "idle_write")
        pace = stretch if stretch is not None else 1.0
        self.engine.schedule(
            now + self.phase_duration * pace + self.transition * pace,
            self._read_phase,
        )

    def _pad_oldest_output(self, now: float) -> Optional[Frame]:
        """Padding policy: flush the output whose pending batch is oldest."""
        oldest_output = None
        oldest_time = float("inf")
        for output in range(self.config.n_ports):
            pending = self.tail.pending_batches(output)
            if pending == 0:
                continue
            first = self.tail._assemblers[output]._pending[0].created_ns
            if first < oldest_time:
                oldest_time = first
                oldest_output = output
        if oldest_output is None:
            return None
        if now - oldest_time < self.padding_wait_ns:
            return None
        frame = self.tail.padded_frame_for(oldest_output, now)
        if frame is not None:
            self.counters.padded_frames += 1
        return frame

    def _write_frame(self, frame: Frame, now: float, stretch: float = 1.0) -> None:
        address = self.address_map.region(frame.output).push()
        if self.options.validate_hbm_timing:
            self._execute_schedule(Op.WR, address, now)
        self.counters.frames_written += 1
        self.counters.payload_written_bytes += frame.payload_bytes
        self.counters.padding_written_bytes += frame.padding_bytes
        if self.telemetry is not None:
            span = self.phase_duration * stretch
            self.telemetry.hbm_write.observe(span)
            self.telemetry.write_group[address.group.index].observe(span)
            self.telemetry.frames_written.inc()
            self.telemetry.stripe_frame_bytes(
                frame.size_bytes, self._striped_channels(now)
            )
        if self.trace is not None:
            self.trace.record(
                now, "pfi", "write",
                output=frame.output, frame=frame.index,
                group=address.group.index, row=address.row,
                payload=frame.payload_bytes,
            )
        # Content becomes readable when the write phase completes.
        self.engine.schedule(
            now + self.phase_duration * stretch, lambda: self._land_frame(frame)
        )

    def _land_frame(self, frame: Frame) -> None:
        """Write phase completed: the frame is now readable in the HBM."""
        self._hbm_content[frame.output].append(frame)
        self._hbm_frames += 1
        self._hbm_payload += frame.payload_bytes

    # -- read phase --------------------------------------------------------------

    def _read_phase(self) -> None:
        if self._stopped:
            return
        now = self.engine.now
        self.counters.read_phases += 1
        stretch = self._memory_stretch(now)
        output = self._select_read_output()
        served = False
        if output is not None:
            served = self._serve_output(output, now, stretch)
        if not served:
            self.counters.wasted_read_slots += 1
            if self.trace is not None:
                self.trace.record(now, "pfi", "wasted_read", output=output)
        pace = stretch if stretch is not None else 1.0
        self.engine.schedule(
            now + self.phase_duration * pace + self.transition * pace,
            self._write_phase,
        )

    def _select_read_output(self) -> Optional[int]:
        """Strict cyclic pointer, or first ready output when work-conserving."""
        n = self.config.n_ports
        if not self.options.work_conserving_reads:
            output = self._read_ptr
            self._read_ptr = (self._read_ptr + 1) % n
            return output
        for offset in range(n):
            candidate = (self._read_ptr + offset) % n
            if self._hbm_content[candidate] or (
                self.options.bypass and self.tail.has_data_for(candidate)
            ):
                self._read_ptr = (candidate + 1) % n
                return candidate
        self._read_ptr = (self._read_ptr + 1) % n
        return None

    def _serve_output(
        self, output: int, now: float, stretch: Optional[float] = 1.0
    ) -> bool:
        # stretch None = memory offline: the HBM cannot be read, but the
        # bypass path (tail -> head, no memory round-trip) still can.
        if stretch is not None and self._hbm_content[output]:
            frame = self._hbm_content[output].popleft()
            self._hbm_frames -= 1
            self._hbm_payload -= frame.payload_bytes
            # Writes push and reads pop the region FIFO exactly once per
            # frame, so the popped address is this frame's by induction.
            address = self.address_map.region(output).pop()
            if self.options.validate_hbm_timing:
                self._execute_schedule(Op.RD, address, now)
            self.counters.frames_read += 1
            if self.telemetry is not None:
                span = self.phase_duration * stretch
                self.telemetry.hbm_read.observe(span)
                self.telemetry.read_group[address.group.index].observe(span)
                self.telemetry.frames_read.inc()
                self.telemetry.stripe_frame_bytes(
                    frame.size_bytes, self._striped_channels(now)
                )
            if self.trace is not None:
                self.trace.record(
                    now, "pfi", "read",
                    output=output, frame=frame.index,
                    group=address.group.index, row=address.row,
                )
            done = now + self.phase_duration * stretch
            self.engine.schedule(done, lambda: self.deliver(frame, done))
            return True
        if self.options.bypass:
            return self._bypass(output, now)
        return False

    def _bypass(self, output: int, now: float) -> bool:
        """HBM bypass (SS 4): tail sends directly to head for this output."""
        frame = self.tail.pop_frame_for(output, now)
        if frame is None and self.options.padding:
            frame = self.tail.padded_frame_for(output, now)
            if frame is not None:
                self.counters.padded_frames += 1
        if frame is None:
            return False
        frame.bypassed = True
        self.counters.bypassed_frames += 1
        if self.telemetry is not None:
            self.telemetry.bypass.observe(self.phase_duration)
            self.telemetry.frames_bypassed.inc()
        if self.trace is not None:
            self.trace.record(
                now, "pfi", "bypass", output=output, frame=frame.index,
                payload=frame.payload_bytes,
            )
        done = now + self.phase_duration
        self.engine.schedule(done, lambda: self.deliver(frame, done))
        return True

    # -- command-level validation ---------------------------------------------------

    def _execute_schedule(self, op: Op, address, now: float) -> None:
        """Run this phase's real command schedule on the checked controller."""
        n_channels = self.controller.n_channels
        if self.faults is not None and self.faults.has_channel_faults:
            # Stripe only over the surviving channels (at least one; the
            # fully offline case never reaches a data phase).
            n_channels = max(1, n_channels - self.faults.channels_lost(now))
        schedule = generate_frame_schedule(
            op=op,
            channels=range(n_channels),
            group=address.group,
            segment_bytes=self.config.segment_bytes,
            row=address.row,
            data_start=max(now, first_legal_start(self.timing)),
            timing=self.timing,
            channel_bytes_per_ns=self.config.stack.channel_bytes_per_ns,
        )
        self.controller.execute(schedule.commands)
