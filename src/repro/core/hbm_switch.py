"""The HBM switch: a discrete-event simulation of Fig. 3's pipeline.

Stages and their timing:

1. Packets arrive at input ports (O/E already done); batches form.
2. Each port sends one batch per batch-time over the cyclical crossbar;
   a batch lands in the tail SRAM one batch-time after it leaves.
3. The tail SRAM aggregates frames; the PFI engine alternates HBM write
   and read phases (one frame each way per cycle).
4. Read frames land in the head SRAM and drain onto the output line at
   port rate, in FIFO order; padding is discarded before the wire.

The simulation conserves bytes exactly: offered = delivered + dropped +
residual (still queued), which :meth:`HBMSwitch.audit` verifies and the
integration tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..config import HBMSwitchConfig
from ..errors import SimulationError
from ..hbm.timing import HBMTiming
from ..sim.engine import Engine
from ..sim.stats import LatencyRecorder
from ..traffic.packet import Packet
from ..units import bytes_per_ns_to_rate, rate_to_bytes_per_ns
from .address import HBMAddressMap
from .frames import Frame
from .head_sram import HeadSRAM
from .input_port import InputPort
from .output_port import OutputPort
from .pfi import PFICounters, PFIEngine, PFIOptions
from .tail_sram import TailSRAM


@dataclass
class SwitchReport:
    """Everything a bench needs from one simulation run."""

    duration_ns: float
    offered_bytes: int
    offered_packets: int
    delivered_bytes: int
    delivered_packets: int
    dropped_bytes: int
    residual_bytes: int
    throughput_bps: float
    capacity_bps: float
    latency: Dict[str, float]
    latency_breakdown: Dict[str, float]
    ordering_violations: int
    pfi: PFICounters
    input_sram_peak_bytes: int
    tail_sram_peak_bytes: int
    head_sram_peak_bytes: int
    hbm_peak_frames: int
    drops_by_reason: Dict[str, int] = field(default_factory=dict)
    #: Serialised per-switch :class:`~repro.telemetry.MetricsRegistry`
    #: dump (``None`` when the run was not instrumented).  A plain dict
    #: so reports stay picklable across the process pool.
    telemetry: Optional[Dict] = None

    @property
    def normalized_throughput(self) -> float:
        """Delivered rate over aggregate port capacity."""
        if self.capacity_bps <= 0:
            return 0.0
        return self.throughput_bps / self.capacity_bps

    @property
    def delivery_fraction(self) -> float:
        """Delivered bytes over offered bytes (1.0 = lossless + drained)."""
        if self.offered_bytes <= 0:
            return 1.0
        return self.delivered_bytes / self.offered_bytes


class HBMSwitch:
    """One N x N shared-memory HBM switch running PFI."""

    def __init__(
        self,
        config: HBMSwitchConfig,
        options: PFIOptions = PFIOptions(),
        timing: Optional[HBMTiming] = None,
        input_sram_capacity: Optional[int] = None,
        tail_sram_capacity: Optional[int] = None,
        n_egress_fibers: int = 4,
        n_egress_wavelengths: int = 16,
        address_map=None,
        trace=None,
        fib=None,
        faults=None,
        telemetry=None,
        latency_sample_cap: Optional[int] = None,
    ) -> None:
        self.config = config
        self.options = options
        self.timing = timing if timing is not None else HBMTiming()
        self.engine = Engine()
        self.inputs = [
            InputPort(config, i, input_sram_capacity) for i in range(config.n_ports)
        ]
        self.tail = TailSRAM(config, tail_sram_capacity)
        self.head = HeadSRAM(config)
        #: Optional :class:`~repro.telemetry.SwitchTelemetry` -- every
        #: instrumented call site guards on ``self.telemetry is not
        #: None``, so a run without telemetry pays one pointer check.
        self.telemetry = telemetry
        #: Bound on retained latency samples per output recorder
        #: (seeded reservoir; see :class:`~repro.sim.stats.LatencyRecorder`).
        #: ``None`` -- the default everywhere -- keeps every sample and
        #: the historical bit-exact statistics; internet-scale streaming
        #: runs (10^7+ packets) set it to keep memory flat.
        self._latency_sample_cap = latency_sample_cap
        self.outputs = [
            OutputPort(
                config, j, n_egress_fibers, n_egress_wavelengths, telemetry,
                latency_sample_cap=latency_sample_cap,
            )
            for j in range(config.n_ports)
        ]
        # Static per-output regions by default; pass a
        # DynamicPageAllocator for the SS 3.2 dynamic-paging option.
        self.address_map = address_map if address_map is not None else HBMAddressMap(config)
        self.trace = trace
        #: Optional FIB: when set, the input-port processing chiplet
        #: classifies each packet by destination address (SS 3.2 step 1)
        #: instead of trusting the pre-set output.
        self.fib = fib
        #: Optional :class:`~repro.faults.schedule.SwitchFaultView` --
        #: this switch's slice of a fault schedule.  ``None`` (or a
        #: trivial view) keeps every stage on the exact unfaulted path.
        self.faults = faults if faults is not None and not faults.is_trivial else None
        if self.faults is not None and self.faults.has_oeo_faults:
            for output in self.outputs:
                output.rate_factor_fn = self.faults.oeo_rate_factor
        self.pfi = PFIEngine(
            config=config,
            engine=self.engine,
            tail=self.tail,
            deliver=self._deliver_frame,
            address_map=self.address_map,
            options=options,
            timing=self.timing,
            trace=trace,
            faults=self.faults,
            telemetry=telemetry,
        )
        # O/E serialisation time per byte at the port rate: the one
        # conversion each packet pays on its way into the switch.
        self._oeo_ns_per_byte = 1.0 / rate_to_bytes_per_ns(config.port_rate_bps)
        self._draining = [False] * config.n_ports
        self._inflight_batch_payload = 0
        self._offered_bytes = 0
        self._offered_packets = 0
        self._hbm_peak_frames = 0
        # Incremental residual: payload accepted into the switch but not
        # yet on the wire.  Maintained at the three points where payload
        # crosses the switch boundary (accept, drop, transmit) so the
        # drain loop does not rescan every queue per iteration.
        self._residual_payload = 0

    # -- stage plumbing -------------------------------------------------------

    def _on_packet(self, packet: Packet) -> None:
        now = self.engine.now
        if self.faults is not None and self.faults.dead_at(now):
            # The switch is down: the arrival is lost at the (dead)
            # input port.  Recorded as a drop, never as residual, so
            # offered = delivered + dropped + residual still holds.
            self.inputs[packet.input_port].drops.record(
                packet.size_bytes, reason="switch-dead"
            )
            self._observe_drop("switch-dead", packet, now)
            return
        if self.fib is not None:
            output = self.fib.classify(packet)
            if output is None or not 0 <= output < self.config.n_ports:
                self.inputs[packet.input_port].drops.record(
                    packet.size_bytes, reason="no-route"
                )
                self._observe_drop("no-route", packet, now)
                return
            packet.output_port = output
        port = self.inputs[packet.input_port]
        dropped_before = port.drops.dropped_bytes
        emitted = port.on_packet(packet, now)
        if port.drops.dropped_bytes == dropped_before:
            self._residual_payload += packet.size_bytes
            if self.telemetry is not None:
                self.telemetry.packets_in.inc()
                self.telemetry.bytes_in.inc(packet.size_bytes)
                # One O/E conversion per packet: serialisation at the
                # port rate (the SPS single-conversion property).
                self.telemetry.oeo.observe(
                    packet.size_bytes * self._oeo_ns_per_byte
                )
                self.telemetry.win_bytes_in.observe(now, packet.size_bytes)
                self.telemetry.win_occupancy.observe(now, self._residual_payload)
        else:
            self._observe_drop("input-sram-overflow", packet, now)
        for batch in emitted:
            if self.telemetry is not None:
                # Batch aggregation wait: first completing packet's
                # arrival to batch emission (0 for pure-straddle batches
                # that complete no packet).
                wait = now - batch.completing[0].arrival_ns if batch.completing else 0.0
                self.telemetry.batch.observe(max(0.0, wait))
            if self.trace is not None:
                self.trace.record(
                    now, "switch", "batch_formed",
                    input=packet.input_port, output=batch.output,
                    payload=batch.payload_bytes, packets=len(batch.completing),
                )
        if emitted and not self._draining[packet.input_port]:
            self._schedule_drain(packet.input_port, now)

    def _observe_drop(self, reason: str, packet: Packet, now: float) -> None:
        """Telemetry/trace for one dropped packet (cold path)."""
        if self.telemetry is not None:
            self.telemetry.drop(reason, packet.size_bytes)
            self.telemetry.win_dropped.observe(now, packet.size_bytes)
        if self.trace is not None:
            self.trace.record(
                now, "switch", "drop",
                reason=reason, input=packet.input_port,
                output=packet.output_port, size=packet.size_bytes,
            )

    def _schedule_drain(self, port_index: int, at: float) -> None:
        self._draining[port_index] = True
        self.engine.schedule(at, lambda: self._drain(port_index))

    def _drain(self, port_index: int) -> None:
        """Send one batch across the crossbar; self-reschedules."""
        now = self.engine.now
        port = self.inputs[port_index]
        batch = port.pop_batch(now)
        if batch is None:
            self._draining[port_index] = False
            return
        self._inflight_batch_payload += batch.payload_bytes
        arrival = now + self.config.batch_time_ns
        self.engine.schedule(arrival, lambda: self._batch_arrives(batch))
        self.engine.schedule(arrival, lambda: self._drain(port_index))

    def _batch_arrives(self, batch) -> None:
        self._inflight_batch_payload -= batch.payload_bytes
        now = self.engine.now
        if self.telemetry is not None:
            # Cyclical-crossbar traversal: every batch crosses in
            # exactly one batch time (the crossbar is non-blocking).
            self.telemetry.stripe.observe(self.config.batch_time_ns)
        if self.trace is not None:
            self.trace.record(
                now, "switch", "batch",
                output=batch.output, payload=batch.payload_bytes,
            )
        dropped_before = self.tail.drops.dropped_bytes
        frame = self.tail.on_batch(batch, now)
        dropped = self.tail.drops.dropped_bytes - dropped_before
        if dropped:
            self._residual_payload -= dropped
            if self.telemetry is not None:
                self.telemetry.drop("tail-sram-overflow", dropped)
                self.telemetry.win_dropped.observe(now, dropped)
            if self.trace is not None:
                self.trace.record(
                    now, "switch", "drop",
                    reason="tail-sram-overflow", output=batch.output,
                    size=dropped,
                )
        elif frame is not None and self.trace is not None:
            self.trace.record(
                now, "switch", "frame_formed",
                output=frame.output, frame=frame.index,
                payload=frame.payload_bytes,
            )
        peak = self.pfi.hbm_occupancy_frames()
        if peak > self._hbm_peak_frames:
            self._hbm_peak_frames = peak

    def _deliver_frame(self, frame: Frame, at: float) -> None:
        """Read-phase (or bypass) completion: frame reaches the head SRAM."""
        self.head.on_frame(frame, at)
        queued = self.head.pop_frame(frame.output, at)
        if queued is None:
            raise SimulationError("head SRAM lost a frame it just accepted")
        finish = self.outputs[frame.output].transmit_frame(queued, at)
        self._residual_payload -= queued.payload_bytes
        if self.trace is not None:
            self.trace.record(
                at, "switch", "deliver",
                output=frame.output, frame=frame.index,
                bypassed=frame.bypassed, wire_done=finish,
            )

    # -- accounting --------------------------------------------------------------

    @property
    def tracked_residual_bytes(self) -> int:
        """O(1) incremental residual, maintained at accept/drop/transmit.

        Equals :meth:`residual_payload_bytes` whenever the engine is at
        an event boundary; the full rescan stays the audit ground truth.
        """
        return self._residual_payload

    def residual_payload_bytes(self) -> int:
        """Payload still inside the switch (queues + flight), by rescan."""
        input_bytes = sum(p.partial_bytes for p in self.inputs)
        input_fifo = sum(
            batch.payload_bytes for p in self.inputs for batch in p.fifo
        )
        tail_pending = sum(
            batch.payload_bytes
            for assembler in self.tail._assemblers
            for batch in assembler._pending
        )
        tail_fifo = sum(frame.payload_bytes for frame in self.tail.frame_fifo)
        hbm = self.pfi.hbm_payload_bytes()
        head = self.head.payload_backlog_bytes()
        return (
            input_bytes
            + input_fifo
            + self._inflight_batch_payload
            + tail_pending
            + tail_fifo
            + hbm
            + head
        )

    def dropped_bytes(self) -> int:
        return sum(p.drops.dropped_bytes for p in self.inputs) + self.tail.drops.dropped_bytes

    def audit(self) -> Dict[str, int]:
        """Byte-conservation snapshot: offered = delivered + dropped + residual."""
        delivered = sum(o.throughput.total_bytes for o in self.outputs)
        snapshot = {
            "offered": self._offered_bytes,
            "delivered": delivered,
            "dropped": self.dropped_bytes(),
            "residual": self.residual_payload_bytes(),
        }
        snapshot["balance"] = (
            snapshot["offered"]
            - snapshot["delivered"]
            - snapshot["dropped"]
            - snapshot["residual"]
        )
        return snapshot

    # -- the run loop -------------------------------------------------------------

    def run(
        self,
        packets: Sequence[Packet],
        duration_ns: float,
        drain: bool = True,
        max_drain_ns: Optional[float] = None,
    ) -> SwitchReport:
        """Simulate ``packets`` over ``[0, duration_ns)`` and report.

        With ``drain=True`` the simulation keeps running (no new
        arrivals) until the switch empties or ``max_drain_ns`` passes,
        so latency statistics cover every delivered packet.

        Arrivals are scheduled in the arrival priority class (see
        :meth:`~repro.sim.engine.Engine.schedule_arrival`) in both this
        eager path and the streaming one, so same-instant ties resolve
        identically whichever path ran.
        """
        self.stream_offer(packets, duration_ns)
        self.pfi.start()
        self.engine.run(until=duration_ns)
        return self._finish(duration_ns, drain, max_drain_ns)

    # -- streaming ingest ---------------------------------------------------------

    def stream_begin(self) -> None:
        """Start the PFI engine ahead of block-by-block ingest.

        The eager path schedules every arrival before ``pfi.start()``;
        starting first is safe here because arrivals outrank the PFI's
        internal events at equal timestamps (priority classes), so the
        event order is identical either way.
        """
        self.pfi.start()

    def stream_offer(self, packets: Sequence[Packet], duration_ns: float) -> None:
        """Schedule one block's arrivals (those inside ``[0, duration_ns)``).

        Blocks must be fed in time order; an arrival before the
        engine's current time raises
        :class:`~repro.errors.SimulationError`.
        """
        for packet in packets:
            if packet.arrival_ns >= duration_ns:
                continue
            self._offered_bytes += packet.size_bytes
            self._offered_packets += 1
            self.engine.schedule_arrival(
                packet.arrival_ns, lambda p=packet: self._on_packet(p)
            )

    def stream_advance(self, until: float) -> None:
        """Run the pipeline up to -- but excluding -- ``until``.

        Events at exactly ``until`` stay queued: the next block may
        carry arrivals at that instant, and they must enter the heap
        before the boundary's internal events fire so priority ordering
        matches the eager run.
        """
        self.engine.run(until=until, inclusive=False)

    def stream_finish(
        self,
        duration_ns: float,
        drain: bool = True,
        max_drain_ns: Optional[float] = None,
    ) -> SwitchReport:
        """Final boundary: fire events at ``duration_ns``, drain, report."""
        self.engine.run(until=duration_ns)
        return self._finish(duration_ns, drain, max_drain_ns)

    def _finish(
        self,
        duration_ns: float,
        drain: bool,
        max_drain_ns: Optional[float],
    ) -> SwitchReport:
        if drain:
            self._run_drain(duration_ns, max_drain_ns)
        self.pfi.stop()
        # Let already-scheduled deliveries and transfers land.
        self.engine.run()
        return self._report(duration_ns)

    def run_stream(
        self,
        blocks,
        duration_ns: float,
        drain: bool = True,
        max_drain_ns: Optional[float] = None,
    ) -> SwitchReport:
        """Simulate a stream of arrival blocks; byte-identical to :meth:`run`.

        ``blocks`` is any iterable of
        :class:`~repro.traffic.stream.ArrivalBlock` (typically
        ``source.blocks(duration_ns)``).  Each block's packets are
        scheduled and the engine advanced to the block boundary before
        the next block is pulled, so at most one block of arrivals is
        ever materialized -- the bounded-memory ingest path.
        """
        self.stream_begin()
        for block in blocks:
            self.stream_offer(block.to_packets(), duration_ns)
            self.stream_advance(min(block.end_ns, duration_ns))
        return self.stream_finish(duration_ns, drain, max_drain_ns)

    def _run_drain(self, duration_ns: float, max_drain_ns: Optional[float]) -> None:
        if max_drain_ns is None:
            # Worst case the whole backlog drains at the slowest stage;
            # a generous default that still terminates.
            max_drain_ns = 50.0 * duration_ns + 1e6
        if self.options.padding:
            for port in self.inputs:
                batches = port.flush_partials(self.engine.now)
                if batches and not self._draining[port.port]:
                    self._schedule_drain(port.port, self.engine.now)
        deadline = duration_ns + max_drain_ns
        check_every = self._drain_check_interval()
        while self.engine.now < deadline and self._residual_payload > 0:
            before = self._residual_payload
            self.engine.run(until=self.engine.now + check_every)
            if self._residual_payload == before and not self.options.padding:
                # Without padding, sub-frame residue can never drain.
                break

    def _drain_check_interval(self) -> float:
        """How often the drain loop re-checks the residual.

        A few PFI cycles / batch times; guarded against degenerate
        configurations whose cycle durations collapse to zero (the loop
        would otherwise spin at a fixed ``engine.now`` forever).
        """
        interval = max(self.pfi.cycle_duration * 4, self.config.batch_time_ns * 8)
        if interval <= 0.0:
            return 1.0
        return interval

    def _report(self, duration_ns: float) -> SwitchReport:
        # Unbounded recorders absorb into an unbounded roll-up exactly
        # as the historical per-sample loop did; when a sample cap is
        # set, the capped roll-up keeps count/mean/max exact via the
        # running accumulators and estimates percentiles from the
        # merged reservoir.
        latency = LatencyRecorder(capacity=self._latency_sample_cap)
        delivered_packets = 0
        for output in self.outputs:
            latency.absorb(output.latency)
            delivered_packets += len(output.latency)
        # Count-weighted mean of each pipeline-stage component.  Only
        # outputs with samples contribute (an empty recorder's mean is
        # NaN); a stage with no samples anywhere reports NaN, not a
        # fake 0.0.
        breakdown: Dict[str, float] = {}
        for stage in ("batch_fill", "frame_fill", "hbm_wait", "egress"):
            total = sum(
                o.breakdown[stage].mean * len(o.breakdown[stage])
                for o in self.outputs
                if len(o.breakdown[stage])
            )
            count = sum(len(o.breakdown[stage]) for o in self.outputs)
            breakdown[stage] = total / count if count else float("nan")
        delivered_bytes = sum(o.throughput.total_bytes for o in self.outputs)
        drops_by_reason: Dict[str, int] = {}
        for port in self.inputs:
            for reason, count in port.drops.by_reason.items():
                drops_by_reason[reason] = drops_by_reason.get(reason, 0) + count
        for reason, count in self.tail.drops.by_reason.items():
            drops_by_reason[reason] = drops_by_reason.get(reason, 0) + count
        if self.telemetry is not None:
            self._publish_occupancy_gauges()
        return SwitchReport(
            duration_ns=duration_ns,
            offered_bytes=self._offered_bytes,
            offered_packets=self._offered_packets,
            delivered_bytes=delivered_bytes,
            delivered_packets=delivered_packets,
            dropped_bytes=self.dropped_bytes(),
            residual_bytes=self.residual_payload_bytes(),
            throughput_bps=bytes_per_ns_to_rate(delivered_bytes / duration_ns)
            if duration_ns > 0
            else 0.0,
            capacity_bps=self.config.aggregate_port_rate_bps,
            latency=latency.summary(),
            latency_breakdown=breakdown,
            ordering_violations=sum(o.ordering_violations for o in self.outputs),
            pfi=self.pfi.counters,
            input_sram_peak_bytes=int(max(p.occupancy.peak for p in self.inputs)),
            tail_sram_peak_bytes=int(self.tail.occupancy.peak),
            head_sram_peak_bytes=int(self.head.occupancy.peak),
            hbm_peak_frames=self._hbm_peak_frames,
            drops_by_reason=drops_by_reason,
        )

    def _publish_occupancy_gauges(self) -> None:
        """End-of-run high-water marks (gauges merge by max)."""
        registry = self.telemetry.registry
        label = str(self.telemetry.switch)
        peaks = {
            "input_sram": max(p.occupancy.peak for p in self.inputs),
            "tail_sram": self.tail.occupancy.peak,
            "head_sram": self.head.occupancy.peak,
        }
        for stage, peak in peaks.items():
            registry.gauge(
                "repro_sram_peak_bytes", "peak SRAM occupancy per stage",
                stage=stage, switch=label,
            ).set(float(peak))
        registry.gauge(
            "repro_hbm_peak_frames", "peak frames resident in the HBM",
            switch=label,
        ).set(float(self._hbm_peak_frames))
        registry.gauge(
            "repro_engine_events", "discrete events fired by this switch's engine",
            switch=label,
        ).set(float(self.engine.events_fired))
        if self.pfi.controller is not None:
            self.pfi.controller.publish_telemetry(registry, label)
