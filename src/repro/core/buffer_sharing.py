"""Shared-buffer management policies (SS 5, *Buffer management*).

"The assumption that 'buffer size is not keeping up with the increase in
switch capacity' may no longer hold.  Thus, the memory glut may also
impact buffer management and buffer-sharing algorithms [ABM, Reverie],
reducing the need for complex algorithms to address memory scarcity."

This module makes that argument executable.  A shared buffer of ``B``
bytes feeds N output queues; three classic admission policies compete:

- :class:`StaticPartition` -- each output owns B/N (no sharing);
- :class:`CompleteSharing` -- admit while the pool has room (a hog can
  starve everyone);
- :class:`DynamicThreshold` -- Choudhury-Hahne: admit while the queue is
  below ``alpha x`` the *remaining free space* (the classic compromise
  modern datacenter schemes refine).

:class:`SharedBufferSim` replays a bursty arrival trace under a policy
and reports per-output loss.  Sweeping ``B`` shows the paper's point:
under scarcity the policies differ sharply; at HBM-glut sizes they all
converge to zero loss -- the algorithm stops mattering (bench A6).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..units import rate_to_bytes_per_ns


class SharingPolicy(ABC):
    """Admission control for one arriving packet."""

    @abstractmethod
    def admits(
        self,
        queue_bytes: float,
        total_bytes: float,
        buffer_bytes: float,
        n_queues: int,
        packet_bytes: int,
    ) -> bool:
        """Whether the packet may enter its output queue."""

    @property
    def name(self) -> str:
        return type(self).__name__


class StaticPartition(SharingPolicy):
    """Each output owns exactly B/N; no borrowing."""

    def admits(self, queue_bytes, total_bytes, buffer_bytes, n_queues, packet_bytes):
        return queue_bytes + packet_bytes <= buffer_bytes / n_queues


class CompleteSharing(SharingPolicy):
    """First come, first buffered: admit while the pool has room."""

    def admits(self, queue_bytes, total_bytes, buffer_bytes, n_queues, packet_bytes):
        return total_bytes + packet_bytes <= buffer_bytes


class DynamicThreshold(SharingPolicy):
    """Choudhury-Hahne: queue may hold up to alpha x free space."""

    def __init__(self, alpha: float = 1.0):
        if alpha <= 0:
            raise ConfigError(f"alpha must be positive, got {alpha}")
        self.alpha = alpha

    def admits(self, queue_bytes, total_bytes, buffer_bytes, n_queues, packet_bytes):
        free = buffer_bytes - total_bytes
        if packet_bytes > free:
            return False
        return queue_bytes + packet_bytes <= self.alpha * free

    @property
    def name(self) -> str:
        return f"DynamicThreshold(alpha={self.alpha:g})"


@dataclass
class SharingResult:
    """Loss accounting for one policy run."""

    policy: str
    buffer_bytes: int
    offered_bytes: int
    dropped_bytes: int
    per_output_dropped: List[int]
    peak_total_bytes: float

    @property
    def loss_fraction(self) -> float:
        if self.offered_bytes == 0:
            return 0.0
        return self.dropped_bytes / self.offered_bytes

    def output_loss_fraction(self, output: int, per_output_offered: Sequence[int]) -> float:
        offered = per_output_offered[output]
        if offered == 0:
            return 0.0
        return self.per_output_dropped[output] / offered


class SharedBufferSim:
    """N output queues draining a shared buffer at the line rate."""

    def __init__(self, n_outputs: int, port_rate_bps: float, buffer_bytes: int):
        if n_outputs <= 0:
            raise ConfigError(f"n_outputs must be positive, got {n_outputs}")
        if port_rate_bps <= 0:
            raise ConfigError(f"port rate must be positive, got {port_rate_bps}")
        if buffer_bytes <= 0:
            raise ConfigError(f"buffer must be positive, got {buffer_bytes}")
        self.n = n_outputs
        self.rate = rate_to_bytes_per_ns(port_rate_bps)
        self.buffer_bytes = buffer_bytes

    def run(
        self,
        arrivals: Sequence[Tuple[float, int, int]],
        policy: SharingPolicy,
    ) -> SharingResult:
        """Replay ``(time_ns, output, size_bytes)`` arrivals under a policy.

        Queues drain fluidly at the port rate between events; the policy
        decides admissions; refused packets are dropped whole.
        """
        levels = np.zeros(self.n)
        last_time = 0.0
        offered = 0
        dropped = 0
        per_output_dropped = [0] * self.n
        peak = 0.0
        for time_ns, output, size in arrivals:
            if time_ns < last_time:
                raise ConfigError("arrivals must be time-sorted")
            if not 0 <= output < self.n:
                raise ConfigError(f"output {output} out of range")
            # Fluid drain since the previous event.
            drained = self.rate * (time_ns - last_time)
            np.subtract(levels, drained, out=levels)
            np.maximum(levels, 0.0, out=levels)
            last_time = time_ns
            offered += size
            total = float(levels.sum())
            if policy.admits(float(levels[output]), total, self.buffer_bytes, self.n, size):
                levels[output] += size
                peak = max(peak, float(levels.sum()))
            else:
                dropped += size
                per_output_dropped[output] += size
        return SharingResult(
            policy=policy.name,
            buffer_bytes=self.buffer_bytes,
            offered_bytes=offered,
            dropped_bytes=dropped,
            per_output_dropped=per_output_dropped,
            peak_total_bytes=peak,
        )


def hotspot_burst_trace(
    n_outputs: int,
    port_rate_bps: float,
    duration_ns: float,
    hog_output: int = 0,
    hog_overload: float = 3.0,
    background_load: float = 0.6,
    packet_bytes: int = 1500,
    seed: int = 0,
) -> List[Tuple[float, int, int]]:
    """A hog output offered ``hog_overload`` x its line rate while the
    others carry ``background_load`` -- the scenario buffer-sharing
    algorithms exist for (one queue must not eat the pool).
    """
    if hog_overload <= 0 or not 0 <= background_load <= 1:
        raise ConfigError("bad trace parameters")
    rng = np.random.default_rng(seed)
    rate = rate_to_bytes_per_ns(port_rate_bps)
    events: List[Tuple[float, int, int]] = []
    for output in range(n_outputs):
        load = hog_overload if output == hog_output else background_load
        mean_gap = packet_bytes / (load * rate)
        t = float(rng.exponential(mean_gap))
        while t < duration_ns:
            events.append((t, output, packet_bytes))
            t += float(rng.exponential(mean_gap))
    events.sort()
    return events
