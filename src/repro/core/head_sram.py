"""Head SRAM (Fig. 3, stage 5).

Symmetric to the tail: N SRAM modules each receive a frame slice from
the HBM read, cut it into batch slices, queue them per output, and feed
the output-side cyclical crossbar.  The simulator queues whole frames
per output and lets the output port drain them at line rate; occupancy
here is the "frames landed but not yet on the wire" backlog.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..config import HBMSwitchConfig
from ..errors import ConfigError
from ..sim.stats import OccupancyTracker
from .frames import Frame


class HeadSRAM:
    """Per-output frame staging between HBM reads and output ports."""

    def __init__(self, config: HBMSwitchConfig):
        self.config = config
        self._queues: List[Deque[Frame]] = [deque() for _ in range(config.n_ports)]
        self._bytes = 0
        self.occupancy = OccupancyTracker()

    @property
    def occupancy_bytes(self) -> int:
        return self._bytes

    def queued_frames(self, output: int) -> int:
        self._check(output)
        return len(self._queues[output])

    def on_frame(self, frame: Frame, now: float) -> None:
        """Accept one frame from an HBM read (or a bypass)."""
        self._check(frame.output)
        self._queues[frame.output].append(frame)
        self._bytes += frame.size_bytes
        self.occupancy.observe(self._bytes, now)

    def pop_frame(self, output: int, now: float) -> Optional[Frame]:
        """Next frame for ``output`` to transmit, FIFO order."""
        self._check(output)
        if not self._queues[output]:
            return None
        frame = self._queues[output].popleft()
        self._bytes -= frame.size_bytes
        self.occupancy.observe(self._bytes, now)
        return frame

    def payload_backlog_bytes(self) -> int:
        """Real payload bytes still staged (excludes padding)."""
        return sum(
            frame.payload_bytes for queue in self._queues for frame in queue
        )

    def _check(self, output: int) -> None:
        if not 0 <= output < self.config.n_ports:
            raise ConfigError(f"output {output} out of range")
