"""The paper's contribution: Split-Parallel Switch + HBM switch + PFI.

Layout mirrors Fig. 1 (package level) and Fig. 3 (switch level):

- :mod:`fiber_split` / :mod:`sps` -- the top-level Split-Parallel Switch:
  passive fiber splitting across H independent HBM switches.
- :mod:`frames` -- batches (4 KB) and frames (512 KB): PFI's aggregation
  units.
- :mod:`crossbar` -- the N x N cyclical crossbar (and the SDM-mesh
  alternative) that stripes batch slices across SRAM modules with no
  scheduling.
- :mod:`input_port` / :mod:`tail_sram` / :mod:`head_sram` /
  :mod:`output_port` -- the six-stage pipeline of Fig. 3.
- :mod:`address` -- the no-bookkeeping HBM FIFO region addressing.
- :mod:`pfi` -- the Parallel Frame Interleaving engine: write/read phase
  alternation, staggered bank interleaving, padding and bypass.
- :mod:`hbm_switch` -- the discrete-event simulation wiring it together.
"""

from .address import FrameAddress, HBMAddressMap, OutputRegionFifo
from .crossbar import CyclicalCrossbar, SDMMesh
from .fiber_split import (
    ContiguousSplitter,
    FiberSplitter,
    PseudoRandomSplitter,
    per_switch_loads,
    split_imbalance,
)
from .frames import Batch, BatchAssembler, Frame, FrameAssembler
from .hbm_switch import HBMSwitch, SwitchReport
from .pfi import PFIEngine, PFIOptions
from .sps import SplitParallelSwitch, RouterReport

__all__ = [
    "Batch",
    "BatchAssembler",
    "Frame",
    "FrameAssembler",
    "FrameAddress",
    "OutputRegionFifo",
    "HBMAddressMap",
    "CyclicalCrossbar",
    "SDMMesh",
    "FiberSplitter",
    "ContiguousSplitter",
    "PseudoRandomSplitter",
    "per_switch_loads",
    "split_imbalance",
    "PFIOptions",
    "PFIEngine",
    "HBMSwitch",
    "SwitchReport",
    "SplitParallelSwitch",
    "RouterReport",
]
