"""Batches and frames: PFI's two-stage aggregation (Design 6, step 1).

At each input, variable-size packets are cut and assembled into
fixed-size **batches** of k = 4 KB; packets may straddle two batches
(SS 3.2 step 1).  At the tail SRAM, batches for the same output aggregate
into **frames** of K = 512 KB = 128 batches (step 2).

The simulator tracks data at batch granularity; a packet is *carried* by
the batch containing its last byte, which is when its content is fully
available downstream -- latency is measured at that batch's departure.
Padding bytes (from the SS 4 latency optimisation) are tracked separately
so goodput and raw throughput can be reported apart.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigError
from ..traffic.packet import Packet


class Batch:
    """One fixed-size batch of ``size_bytes`` (= k), for one output."""

    __slots__ = ("output", "seq", "size_bytes", "payload_bytes", "completing", "created_ns")

    def __init__(
        self,
        output: int,
        seq: int,
        size_bytes: int,
        payload_bytes: int,
        completing: List[Packet],
        created_ns: float,
    ) -> None:
        self.output = output
        self.seq = seq
        self.size_bytes = size_bytes
        self.payload_bytes = payload_bytes
        self.completing = completing
        self.created_ns = created_ns

    @property
    def padding_bytes(self) -> int:
        """Filler bytes added when the batch was flushed before full."""
        return self.size_bytes - self.payload_bytes

    def slice_bytes(self, n_modules: int) -> int:
        """Size of one of the N equal slices (k/N = 256 B reference)."""
        if self.size_bytes % n_modules != 0:
            raise ConfigError(
                f"batch of {self.size_bytes} B does not slice into {n_modules}"
            )
        return self.size_bytes // n_modules

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Batch(out={self.output}, seq={self.seq}, "
            f"{self.payload_bytes}/{self.size_bytes}B, "
            f"{len(self.completing)} pkts)"
        )


class BatchAssembler:
    """Per-(input, output) queue that cuts packets into batches.

    Packets accumulate; every time the fill crosses a k-byte boundary a
    batch is emitted.  A packet completing exactly at a boundary belongs
    to the batch it fills (its last byte is inside it).
    """

    def __init__(self, output: int, batch_bytes: int):
        if batch_bytes <= 0:
            raise ConfigError(f"batch size must be positive, got {batch_bytes}")
        self.output = output
        self.batch_bytes = batch_bytes
        self._fill = 0  # bytes in the current partial batch
        self._completing: List[Packet] = []
        self._seq = 0

    @property
    def fill_bytes(self) -> int:
        """Bytes currently buffered in the partial batch."""
        return self._fill

    @property
    def batches_emitted(self) -> int:
        return self._seq

    def add(self, packet: Packet, now: float) -> List[Batch]:
        """Feed one packet; return the batches it completes (possibly [])."""
        if packet.output_port != self.output:
            raise ConfigError(
                f"packet for output {packet.output_port} fed to assembler "
                f"for output {self.output}"
            )
        emitted: List[Batch] = []
        remaining = packet.size_bytes
        while remaining > 0:
            space = self.batch_bytes - self._fill
            take = min(space, remaining)
            self._fill += take
            remaining -= take
            if remaining == 0:
                self._completing.append(packet)
            if self._fill == self.batch_bytes:
                emitted.append(self._emit(now, padding=0))
        return emitted

    def flush(self, now: float) -> Optional[Batch]:
        """Emit the partial batch padded to full size (frame padding).

        Returns ``None`` when nothing is buffered.
        """
        if self._fill == 0:
            return None
        padding = self.batch_bytes - self._fill
        self._fill = self.batch_bytes
        return self._emit(now, padding=padding)

    def _emit(self, now: float, padding: int) -> Batch:
        batch = Batch(
            output=self.output,
            seq=self._seq,
            size_bytes=self.batch_bytes,
            payload_bytes=self.batch_bytes - padding,
            completing=self._completing,
            created_ns=now,
        )
        self._seq += 1
        self._fill = 0
        self._completing = []
        return batch


class Frame:
    """One K-byte frame: ``batches_per_frame`` batches for one output."""

    __slots__ = ("output", "index", "batches", "size_bytes", "created_ns", "bypassed", "payload_bytes")

    def __init__(self, output: int, index: int, batches: List[Batch], size_bytes: int, created_ns: float):
        self.output = output
        self.index = index
        self.batches = batches
        self.size_bytes = size_bytes
        self.created_ns = created_ns
        self.bypassed = False
        #: Real (non-padding, non-filler) bytes; batches are fixed at
        #: emission time, so this is computed once instead of per query
        #: (residual accounting reads it on every enqueue/dequeue).
        self.payload_bytes = sum(batch.payload_bytes for batch in batches)

    @property
    def padding_bytes(self) -> int:
        """Filler: batch padding plus whole missing batches (padded frames)."""
        return self.size_bytes - self.payload_bytes

    @property
    def completing_packets(self) -> List[Packet]:
        return [packet for batch in self.batches for packet in batch.completing]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Frame(out={self.output}, idx={self.index}, "
            f"{len(self.batches)} batches, {self.payload_bytes}/{self.size_bytes}B)"
        )


class FrameAssembler:
    """Per-output frame builder living in the tail SRAM.

    Collects batches; emits a frame when ``batches_per_frame`` have
    accumulated.  ``flush`` builds a *padded frame* from fewer batches
    (the SS 4 latency optimisation), keeping the frame size fixed so the
    HBM schedule is unchanged.
    """

    def __init__(self, output: int, batch_bytes: int, batches_per_frame: int):
        if batches_per_frame <= 0:
            raise ConfigError(
                f"batches_per_frame must be positive, got {batches_per_frame}"
            )
        self.output = output
        self.batch_bytes = batch_bytes
        self.batches_per_frame = batches_per_frame
        self._pending: List[Batch] = []
        self._index = 0

    @property
    def frame_bytes(self) -> int:
        return self.batch_bytes * self.batches_per_frame

    @property
    def pending_batches(self) -> int:
        return len(self._pending)

    @property
    def pending_bytes(self) -> int:
        return len(self._pending) * self.batch_bytes

    def add(self, batch: Batch, now: float) -> Optional[Frame]:
        """Feed one batch; return a full frame when one completes."""
        if batch.output != self.output:
            raise ConfigError(
                f"batch for output {batch.output} fed to frame assembler "
                f"for output {self.output}"
            )
        self._pending.append(batch)
        if len(self._pending) == self.batches_per_frame:
            return self._emit(now)
        return None

    def flush(self, now: float) -> Optional[Frame]:
        """Emit a padded frame from whatever is pending (possibly none)."""
        if not self._pending:
            return None
        return self._emit(now)

    def _emit(self, now: float) -> Frame:
        frame = Frame(
            output=self.output,
            index=self._index,
            batches=self._pending,
            size_bytes=self.frame_bytes,
            created_ns=now,
        )
        self._index += 1
        self._pending = []
        return frame
