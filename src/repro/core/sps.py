"""The Split-Parallel Switch: the top-level router (Fig. 1).

SPS spatially splits each ribbon's F fibers across H *independent* HBM
switches -- no electronic load balancing, no inter-switch coordination,
one O/E/O conversion per packet.  Because the switches share nothing,
the router simulation is H independent switch simulations plus the
(passive) fiber-to-switch assignment, which is exactly how the real
device would behave.

Upstream routers hash flows across the fibers of a bundle (ECMP/LAG), so
a flow arrives on one fiber, lands in one switch, and can never be
reordered by the split -- a property :func:`assign_fibers` preserves by
hashing on the 5-tuple.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..config import RouterConfig
from ..errors import ConfigError
from ..hbm.timing import HBMTiming
from ..photonics.oeo import OEOConverter
from ..sim.parallel import SwitchWorkUnit, execute_work_unit, run_work_units
from ..traffic.ecmp import hash_to_choice
from ..traffic.packet import Packet
from ..units import bytes_per_ns_to_rate
from .fiber_split import FiberSplitter, PseudoRandomSplitter, split_imbalance
from .hbm_switch import SwitchReport
from .pfi import PFIOptions

#: Execution modes of :meth:`SplitParallelSwitch.run`.
RUN_MODES = ("sequential", "parallel", "auto")

_failed_switches_warned = False


def _warn_failed_switches_deprecated() -> None:
    """One-shot deprecation notice for the legacy ``failed_switches=``
    kwarg -- it fires on the first faulted run of the process, not on
    every cell of a sweep."""
    global _failed_switches_warned
    if _failed_switches_warned:
        return
    _failed_switches_warned = True
    warnings.warn(
        "SplitParallelSwitch.run(failed_switches=...) is deprecated; pass "
        "fault_schedule=FaultSchedule.from_failed_switches(...) instead "
        "(byte-identical results)",
        DeprecationWarning,
        stacklevel=3,
    )


def _reset_failed_switches_warning() -> None:
    """Re-arm the one-shot warning (test hook)."""
    global _failed_switches_warned
    _failed_switches_warned = False


def assign_fibers(packets: Sequence[Packet], n_fibers: int, salt: int = 0xECA) -> List[int]:
    """Pick the arrival fiber of each packet by upstream ECMP/LAG hash.

    Flow-stable: all packets of a flow use the same fiber, so the split
    cannot reorder a flow.
    """
    if n_fibers <= 0:
        raise ConfigError(f"n_fibers must be positive, got {n_fibers}")
    return [hash_to_choice(p.flow, n_fibers, salt) for p in packets]


@dataclass
class RouterReport:
    """Aggregate of the H independent switch runs.

    ``failed_switches`` lists switches injected as dead for the whole
    run (SS 2.2 *Modularity*: switches share nothing, so a failure costs
    exactly the traffic of its fibers -- 1/H of capacity -- and nothing
    else).  ``failed_offered_bytes`` is the traffic that arrived on a
    dead switch's fibers and was lost; ``fault_lost_bytes`` is traffic
    lost to other split-level faults (fiber cuts) and ``fault_events``
    describes the injected schedule, if any.
    """

    switch_reports: List[SwitchReport]
    per_switch_offered_bytes: List[int]
    duration_ns: float
    failed_switches: List[int] = field(default_factory=list)
    failed_offered_bytes: int = 0
    fault_lost_bytes: int = 0
    fault_events: List[str] = field(default_factory=list)
    #: Merged telemetry dump of the whole run (split-level series plus
    #: every switch's registry, merged in switch-index order), or
    #: ``None`` for uninstrumented runs.
    telemetry: Optional[Dict] = None

    @property
    def offered_bytes(self) -> int:
        """All traffic that reached the package, including traffic lost
        on failed switches' fibers and on cut fibers."""
        return (
            sum(r.offered_bytes for r in self.switch_reports)
            + self.failed_offered_bytes
            + self.fault_lost_bytes
        )

    @property
    def delivered_bytes(self) -> int:
        return sum(r.delivered_bytes for r in self.switch_reports)

    @property
    def dropped_bytes(self) -> int:
        return sum(r.dropped_bytes for r in self.switch_reports)

    @property
    def residual_bytes(self) -> int:
        """Payload still queued inside the surviving switches."""
        return sum(r.residual_bytes for r in self.switch_reports)

    @property
    def lost_bytes(self) -> int:
        """Every byte that entered the package and will never leave it:
        in-switch drops plus split-level losses (dead switches' fibers,
        cut fibers).  Complements :attr:`residual_bytes`:
        offered = delivered + lost + residual."""
        return self.dropped_bytes + self.failed_offered_bytes + self.fault_lost_bytes

    @property
    def throughput_bps(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return bytes_per_ns_to_rate(self.delivered_bytes / self.duration_ns)

    @property
    def delivery_fraction(self) -> float:
        if self.offered_bytes <= 0:
            return 1.0
        return self.delivered_bytes / self.offered_bytes

    @property
    def delivered_fraction(self) -> float:
        """Delivered bytes over *total* offered bytes.

        The denominator is the symmetric total -- surviving-switch
        offered + ``failed_offered_bytes`` + ``fault_lost_bytes`` --
        i.e. exactly the byte population that :attr:`loss_fraction`
        draws from, so ``delivered_fraction + loss_fraction +
        residual/offered == 1`` holds by construction.
        """
        if self.offered_bytes <= 0:
            return 1.0
        return self.delivered_bytes / self.offered_bytes

    @property
    def loss_fraction(self) -> float:
        """Lost bytes over total offered bytes (same denominator as
        :attr:`delivered_fraction` -- the accounting is symmetric)."""
        if self.offered_bytes <= 0:
            return 0.0
        return self.lost_bytes / self.offered_bytes

    @property
    def load_imbalance(self) -> float:
        """Max-over-mean of per-switch offered load (1.0 = perfect)."""
        return split_imbalance(np.asarray(self.per_switch_offered_bytes, dtype=float))

    @property
    def ordering_violations(self) -> int:
        return sum(r.ordering_violations for r in self.switch_reports)

    def latency_summary(self) -> Dict[str, float]:
        """Combined latency view: exact for mean/max (count-weighted),
        approximate for percentiles (reports carry summaries, not raw
        samples; benches that need exact percentiles read per switch)."""
        # Switches that delivered nothing carry NaN latencies and a 0
        # count; only the populated ones contribute to the roll-up.
        populated = [r for r in self.switch_reports if r.latency["count"] > 0]
        counts = sum(r.latency["count"] for r in populated)
        if counts == 0:
            nan = float("nan")
            return {
                "count": 0.0,
                "mean_ns": nan,
                "p50_ns": nan,
                "p99_ns": nan,
                "max_ns": nan,
            }
        mean = (
            sum(r.latency["mean_ns"] * r.latency["count"] for r in populated)
            / counts
        )
        return {
            "count": counts,
            "mean_ns": mean,
            "p50_ns": float(np.median([r.latency["p50_ns"] for r in populated])),
            "p99_ns": max(r.latency["p99_ns"] for r in populated),
            "max_ns": max(r.latency["max_ns"] for r in populated),
        }

    def stage_summaries(self) -> Dict[str, Dict[str, float]]:
        """Per-pipeline-stage latency roll-up from the telemetry dump.

        ``{stage: {count, mean_ns, p50_ns, p99_ns}}`` over the span
        taxonomy of :data:`repro.telemetry.STAGES`; empty dict when the
        run was not instrumented.
        """
        if self.telemetry is None:
            return {}
        from ..telemetry import MetricsRegistry, stage_summaries

        return stage_summaries(MetricsRegistry.from_dict(self.telemetry))


class SplitParallelSwitch:
    """The petabit router: H parallel HBM switches behind a fiber split."""

    def __init__(
        self,
        config: RouterConfig,
        splitter: Optional[FiberSplitter] = None,
        options: PFIOptions = PFIOptions(),
        timing: Optional[HBMTiming] = None,
    ) -> None:
        self.config = config
        self.options = options
        self.timing = timing
        self.splitter = (
            splitter
            if splitter is not None
            else PseudoRandomSplitter(config.fibers_per_ribbon, config.n_switches)
        )
        if self.splitter.n_fibers != config.fibers_per_ribbon:
            raise ConfigError(
                f"splitter covers {self.splitter.n_fibers} fibers, router has "
                f"{config.fibers_per_ribbon}"
            )
        if self.splitter.n_switches != config.n_switches:
            raise ConfigError(
                f"splitter targets {self.splitter.n_switches} switches, router "
                f"has {config.n_switches}"
            )
        self.oeo = OEOConverter()
        # Cache assignments: ribbon -> fiber -> switch.
        self._assignments = [
            self.splitter.assignment(r) for r in range(config.n_ribbons)
        ]

    def switch_for(self, ribbon: int, fiber: int) -> int:
        """Which HBM switch serves (ribbon, fiber)."""
        if not 0 <= ribbon < self.config.n_ribbons:
            raise ConfigError(f"ribbon {ribbon} out of range")
        if not 0 <= fiber < self.config.fibers_per_ribbon:
            raise ConfigError(f"fiber {fiber} out of range")
        return self._assignments[ribbon][fiber]

    def partition_packets(
        self, packets: Sequence[Packet], fibers: Sequence[int]
    ) -> List[List[Packet]]:
        """Split a packet stream into per-switch streams by arrival fiber."""
        if len(packets) != len(fibers):
            raise ConfigError("packets and fibers must align")
        per_switch: List[List[Packet]] = [[] for _ in range(self.config.n_switches)]
        for packet, fiber in zip(packets, fibers):
            per_switch[self.switch_for(packet.input_port, fiber)].append(packet)
        return per_switch

    def run(
        self,
        packets: Sequence[Packet],
        duration_ns: float,
        fibers: Optional[Sequence[int]] = None,
        drain: bool = True,
        failed_switches: Optional[Sequence[int]] = None,
        mode: str = "sequential",
        n_workers: Optional[int] = None,
        fault_schedule=None,
        telemetry=None,
    ) -> RouterReport:
        """Simulate the whole router.

        ``fibers[i]`` is packet i's arrival fiber within its ribbon; by
        default fibers are chosen by upstream ECMP hash.  The H switches
        are simulated independently (they share nothing), each fed its
        split of the traffic.

        ``failed_switches`` injects dead switches: their traffic is lost
        at the (passive) split, the survivors run exactly as before --
        the modularity/fault-isolation property of SS 2.2.  The kwarg is
        *deprecated* (one ``DeprecationWarning`` per process): pass
        ``fault_schedule=FaultSchedule.from_failed_switches(...)``
        instead -- it takes literally the same path below and produces
        byte-identical reports.

        ``fault_schedule`` (a :class:`~repro.faults.FaultSchedule`)
        generalises that to timed faults: whole-run switch deaths take
        the same split-level path as ``failed_switches`` (byte-identical
        to the legacy API), windowed deaths / HBM channel losses / OEO
        degradations are handed to the affected switches as per-switch
        views, and fiber cuts filter their traffic at the split into
        ``fault_lost_bytes``.  ``failed_switches`` and a schedule
        compose: the listed switches are merged in as whole-run deaths.
        An empty (or ``None``) schedule leaves every simulation path
        bit-identical to an unfaulted run.

        ``mode`` selects how the H independent simulations execute:

        - ``"sequential"`` (default): one after another in this process.
        - ``"parallel"``: fanned out over a process pool of
          ``n_workers`` (default: CPU count) via
          :mod:`repro.sim.parallel`.  Reports are merged in switch-index
          order, so the result is byte-identical to sequential mode; the
          caller's packet objects are, however, simulated as copies
          (``departure_ns`` is not written back).
        - ``"auto"``: parallel when it can help (several switches and
          several CPUs), sequential otherwise.

        ``telemetry`` (a :class:`~repro.telemetry.MetricsRegistry`)
        instruments the whole pipeline: split-level series are recorded
        here, each live switch runs with its own per-switch registry
        (in *both* modes -- workers ship dumps back on their reports),
        and the dumps are merged into ``telemetry`` in switch-index
        order.  Because per-switch series never overlap and the merge
        order is fixed, parallel and sequential runs of the same
        workload produce byte-identical dumps.  The merged dump is also
        stored on :attr:`RouterReport.telemetry`.
        """
        if mode not in RUN_MODES:
            raise ConfigError(f"mode must be one of {RUN_MODES}, got {mode!r}")
        failed = frozenset(failed_switches or ())
        if failed:
            _warn_failed_switches_deprecated()
        for h in failed:
            if not 0 <= h < self.config.n_switches:
                raise ConfigError(f"failed switch {h} out of range")
        schedule = fault_schedule
        if schedule is None and failed:
            # Re-express the legacy API as its degenerate schedule, so
            # both forms take literally the same path from here on.
            from ..faults.schedule import FaultSchedule

            schedule = FaultSchedule.from_failed_switches(failed)
        elif schedule is not None and failed:
            schedule = schedule.with_failed_switches(failed)
        if schedule is not None:
            schedule.validate(self.config)
            if schedule.is_empty:
                schedule = None
        if fibers is None:
            fibers = assign_fibers(packets, self.config.fibers_per_ribbon)
        if telemetry is not None:
            self.oeo.attach_telemetry(telemetry)
            if schedule is not None:
                from ..telemetry import tag_fault_windows

                tag_fault_windows(telemetry, schedule)
        fault_lost = 0
        if schedule is not None and schedule.has_fiber_cuts:
            # A cut fiber's traffic never reaches the package: filter it
            # at the (passive) split, before partitioning.
            kept_packets: List[Packet] = []
            kept_fibers: List[int] = []
            cut_lost: Dict[tuple, int] = {}
            for packet, fiber in zip(packets, fibers):
                if schedule.fiber_cut_active(
                    packet.input_port, fiber, packet.arrival_ns
                ):
                    fault_lost += packet.size_bytes
                    if telemetry is not None:
                        key = (packet.input_port, fiber)
                        cut_lost[key] = cut_lost.get(key, 0) + packet.size_bytes
                else:
                    kept_packets.append(packet)
                    kept_fibers.append(fiber)
            packets, fibers = kept_packets, kept_fibers
            if telemetry is not None and cut_lost:
                from ..telemetry import record_fault_loss

                for (ribbon, fiber), n_bytes in sorted(cut_lost.items()):
                    record_fault_loss(
                        telemetry, "fiber", f"{ribbon}/{fiber}", n_bytes
                    )
        per_switch = self.partition_packets(packets, fibers)
        # Whole-run deaths take the legacy split-level path; windowed
        # faults ride along as per-switch views.
        if schedule is not None:
            dead = frozenset(schedule.whole_run_dead_switches())
        else:
            dead = failed
        offered: List[int] = []
        failed_bytes = 0
        units: List[SwitchWorkUnit] = []
        for h in range(self.config.n_switches):
            arrived = sum(p.size_bytes for p in per_switch[h])
            offered.append(arrived)
            if telemetry is not None:
                # The split is passive (0 ns); the observable is the
                # per-switch packet count -- the load balance of E10.
                telemetry.histogram(
                    "repro_stage_latency_ns",
                    "passive fiber-split assignment (count = per-switch load)",
                    stage="split", switch=str(h),
                ).observe_n(0.0, len(per_switch[h]))
                # Time-resolved view of the same split: offered bytes per
                # window per switch, recorded at the (passive) split
                # point so dead switches' offered load shows up too.
                split_series = telemetry.timeseries(
                    "repro_split_window_bytes",
                    "offered bytes per window at the fiber split",
                    switch=str(h),
                )
                for packet in per_switch[h]:
                    split_series.observe(packet.arrival_ns, packet.size_bytes)
            if h in dead:
                failed_bytes += arrived
                if telemetry is not None and arrived:
                    from ..telemetry import record_fault_loss

                    record_fault_loss(telemetry, "switch", str(h), arrived)
                continue
            view = (
                schedule.switch_view(h, self.config.switch.total_channels)
                if schedule is not None
                else None
            )
            units.append(
                SwitchWorkUnit(
                    index=h,
                    config=self.config.switch,
                    options=self.options,
                    timing=self.timing,
                    packets=tuple(per_switch[h]),
                    duration_ns=duration_ns,
                    drain=drain,
                    faults=view,
                    telemetry=telemetry is not None,
                )
            )
        reports = self._execute_units(units, mode, n_workers)
        for report in reports:
            # One O/E + one E/O per bit through a switch (the SPS property).
            self.oeo.convert(8.0 * (report.offered_bytes + report.delivered_bytes))
        telemetry_dump = None
        if telemetry is not None:
            # Per-switch registries merge in unit (= switch-index) order
            # in both execution modes, so the aggregate dump is
            # byte-identical whether the switches ran in-process or on
            # the pool.
            for report in reports:
                if report.telemetry is not None:
                    telemetry.merge_dict(report.telemetry)
            telemetry_dump = telemetry.to_dict()
        return RouterReport(
            switch_reports=reports,
            per_switch_offered_bytes=offered,
            duration_ns=duration_ns,
            failed_switches=sorted(dead),
            failed_offered_bytes=failed_bytes,
            fault_lost_bytes=fault_lost,
            fault_events=schedule.describe() if schedule is not None else [],
            telemetry=telemetry_dump,
        )

    def run_stream(
        self,
        blocks,
        duration_ns: float,
        fibers_fn=None,
        drain: bool = True,
        max_drain_ns: Optional[float] = None,
        fault_schedule=None,
        telemetry=None,
        departure_sink=None,
        latency_sample_cap: Optional[int] = None,
    ) -> RouterReport:
        """Simulate the router from a stream of arrival blocks.

        The bounded-memory ingest path: ``blocks`` is any iterable of
        :class:`~repro.traffic.stream.ArrivalBlock` (typically
        ``source.blocks(duration_ns)``).  Each block is partitioned
        across the H switches and every engine is advanced to the block
        boundary before the next block is pulled, so at most one block
        of packets is ever materialized.  Reports -- and telemetry
        dumps -- are byte-identical to :meth:`run` fed the concatenated
        packets (``mode="sequential"``); the streaming path is
        inherently sequential (the switches advance in lockstep with
        the source), so there is no ``mode`` knob here.

        ``fibers_fn(packets, block)`` supplies per-packet arrival
        fibers for one block (default: the upstream ECMP hash of
        :func:`assign_fibers` -- stateless, so chunking cannot change
        it; stateful policies carry their cursors in a closure).

        ``departure_sink(packet)`` fires per delivered packet at
        departure-stamp time on every switch -- the streaming
        degradation path bins delivered bytes here.
        ``latency_sample_cap`` bounds retained latency samples per
        output port (see :class:`~repro.sim.stats.LatencyRecorder`);
        both default to off, keeping the bit-exact historical path.
        """
        schedule = fault_schedule
        if schedule is not None:
            schedule.validate(self.config)
            if schedule.is_empty:
                schedule = None
        if telemetry is not None:
            self.oeo.attach_telemetry(telemetry)
            if schedule is not None:
                from ..telemetry import tag_fault_windows

                tag_fault_windows(telemetry, schedule)
        dead = (
            frozenset(schedule.whole_run_dead_switches())
            if schedule is not None
            else frozenset()
        )
        # Per-switch simulation state, mirroring execute_work_unit: a
        # fresh registry + SwitchTelemetry per instrumented switch, the
        # switch's fault view, no switch object at all for whole-run
        # dead switches (their traffic dies at the passive split).
        switches: List[Optional["HBMSwitch"]] = []
        registries: List[Optional[object]] = []
        from .hbm_switch import HBMSwitch

        for h in range(self.config.n_switches):
            if h in dead:
                switches.append(None)
                registries.append(None)
                continue
            switch_telemetry = None
            registry = None
            if telemetry is not None:
                from ..telemetry import MetricsRegistry, SwitchTelemetry

                registry = MetricsRegistry()
                switch_telemetry = SwitchTelemetry(
                    registry, self.config.switch, h
                )
            view = (
                schedule.switch_view(h, self.config.switch.total_channels)
                if schedule is not None
                else None
            )
            switch = HBMSwitch(
                self.config.switch,
                self.options,
                self.timing,
                faults=view,
                telemetry=switch_telemetry,
                latency_sample_cap=latency_sample_cap,
            )
            if departure_sink is not None:
                for output in switch.outputs:
                    output.departure_sink = departure_sink
            switches.append(switch)
            registries.append(registry)
        for switch in switches:
            if switch is not None:
                switch.stream_begin()
        offered = [0] * self.config.n_switches
        failed_bytes = 0
        fault_lost = 0
        cut_lost: Dict[tuple, int] = {}
        for block in blocks:
            packets = block.to_packets()
            fibers = (
                fibers_fn(packets, block)
                if fibers_fn is not None
                else assign_fibers(packets, self.config.fibers_per_ribbon)
            )
            if schedule is not None and schedule.has_fiber_cuts:
                kept_packets: List[Packet] = []
                kept_fibers: List[int] = []
                for packet, fiber in zip(packets, fibers):
                    if schedule.fiber_cut_active(
                        packet.input_port, fiber, packet.arrival_ns
                    ):
                        fault_lost += packet.size_bytes
                        if telemetry is not None:
                            key = (packet.input_port, fiber)
                            cut_lost[key] = (
                                cut_lost.get(key, 0) + packet.size_bytes
                            )
                    else:
                        kept_packets.append(packet)
                        kept_fibers.append(fiber)
                packets, fibers = kept_packets, kept_fibers
            per_switch = self.partition_packets(packets, fibers)
            boundary = min(block.end_ns, duration_ns)
            for h in range(self.config.n_switches):
                arrived = sum(p.size_bytes for p in per_switch[h])
                offered[h] += arrived
                if telemetry is not None:
                    # Same split-level series as run(); per-block
                    # increments sum to the same final values (the
                    # registry dump is value-sorted, never
                    # insertion-ordered).
                    telemetry.histogram(
                        "repro_stage_latency_ns",
                        "passive fiber-split assignment (count = per-switch load)",
                        stage="split", switch=str(h),
                    ).observe_n(0.0, len(per_switch[h]))
                    split_series = telemetry.timeseries(
                        "repro_split_window_bytes",
                        "offered bytes per window at the fiber split",
                        switch=str(h),
                    )
                    for packet in per_switch[h]:
                        split_series.observe(packet.arrival_ns, packet.size_bytes)
                if switches[h] is None:
                    failed_bytes += arrived
                else:
                    switches[h].stream_offer(per_switch[h], duration_ns)
            for switch in switches:
                if switch is not None:
                    switch.stream_advance(boundary)
        if telemetry is not None:
            from ..telemetry import record_fault_loss

            for (ribbon, fiber), n_bytes in sorted(cut_lost.items()):
                record_fault_loss(telemetry, "fiber", f"{ribbon}/{fiber}", n_bytes)
            for h in sorted(dead):
                if offered[h]:
                    record_fault_loss(telemetry, "switch", str(h), offered[h])
        reports: List[SwitchReport] = []
        for h, switch in enumerate(switches):
            if switch is None:
                continue
            report = switch.stream_finish(duration_ns, drain, max_drain_ns)
            if registries[h] is not None:
                report.telemetry = registries[h].to_dict()
            reports.append(report)
        for report in reports:
            self.oeo.convert(8.0 * (report.offered_bytes + report.delivered_bytes))
        telemetry_dump = None
        if telemetry is not None:
            for report in reports:
                if report.telemetry is not None:
                    telemetry.merge_dict(report.telemetry)
            telemetry_dump = telemetry.to_dict()
        return RouterReport(
            switch_reports=reports,
            per_switch_offered_bytes=offered,
            duration_ns=duration_ns,
            failed_switches=sorted(dead),
            failed_offered_bytes=failed_bytes,
            fault_lost_bytes=fault_lost,
            fault_events=schedule.describe() if schedule is not None else [],
            telemetry=telemetry_dump,
        )

    def _execute_units(
        self,
        units: List[SwitchWorkUnit],
        mode: str,
        n_workers: Optional[int],
    ) -> List[SwitchReport]:
        """Run the per-switch work units under the chosen mode.

        The sequential path runs the same :func:`execute_work_unit` the
        workers do, just inline -- no pickling, so the caller's packet
        objects are simulated in place (preserving the historical
        behaviour that ``departure_ns`` is observable after a run), and
        telemetry takes literally one code path in both modes.
        """
        import os

        if mode == "auto":
            workers = n_workers if n_workers is not None else (os.cpu_count() or 1)
            mode = "parallel" if len(units) > 1 and workers > 1 else "sequential"
        if mode == "parallel":
            return run_work_units(units, n_workers=n_workers)
        return [execute_work_unit(unit)[1] for unit in units]
