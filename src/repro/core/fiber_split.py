"""Fiber splitting: how SPS assigns fibers to internal switches.

The "poor man's load balancing" of Design 4: each ribbon's F fibers are
split so that alpha = F/H of them feed each of the H switches, with no
electronics.  Two strategies:

- :class:`ContiguousSplitter` -- the straightforward pattern (first
  F/H fibers to switch 0, ...).  Challenge 4 points out its two flaws:
  operators load the first fibers first, skewing the first switch, and
  an attacker who knows the pattern can target one switch.
- :class:`PseudoRandomSplitter` -- Idea 4: a seeded pseudo-random
  balanced assignment per ribbon, decorrelating fiber position from
  switch identity.

:func:`per_switch_loads` and :func:`split_imbalance` quantify the
difference under the fiber-load profiles of
:func:`repro.traffic.generators.fiber_load_profile` (experiment E10).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence

import numpy as np

from ..errors import ConfigError


class FiberSplitter(ABC):
    """Assigns each of a ribbon's F fibers to one of H switches."""

    def __init__(self, n_fibers: int, n_switches: int):
        if n_fibers <= 0 or n_switches <= 0:
            raise ConfigError(
                f"need positive counts, got F={n_fibers}, H={n_switches}"
            )
        if n_fibers % n_switches != 0:
            raise ConfigError(
                f"F={n_fibers} fibers must split evenly across H={n_switches}"
            )
        self.n_fibers = n_fibers
        self.n_switches = n_switches
        self._assignment_arrays: dict = {}

    @property
    def alpha(self) -> int:
        """Fibers per (ribbon, switch) pair: F/H."""
        return self.n_fibers // self.n_switches

    @abstractmethod
    def assignment(self, ribbon: int) -> List[int]:
        """Switch index for each fiber of ``ribbon`` (length F).

        Every switch must appear exactly alpha times -- validated by
        :meth:`check_balanced`.
        """

    def check_balanced(self, ribbon: int) -> None:
        """Assert the assignment is an exact alpha-regular split."""
        counts = np.bincount(self.assignment(ribbon), minlength=self.n_switches)
        if not (counts == self.alpha).all():
            raise ConfigError(
                f"ribbon {ribbon} assignment is unbalanced: {counts.tolist()}"
            )

    def assignment_array(self, ribbon: int) -> np.ndarray:
        """The assignment as a cached read-only int64 array.

        Adversary campaigns evaluate per-switch loads in an inner loop;
        caching here means each ribbon's assignment (a PRNG draw for the
        pseudo-random splitter) is materialised once per splitter.
        """
        cached = self._assignment_arrays.get(ribbon)
        if cached is None:
            cached = np.asarray(self.assignment(ribbon), dtype=np.int64)
            cached.setflags(write=False)
            self._assignment_arrays[ribbon] = cached
        return cached

    def fibers_to(self, ribbon: int, switch: int) -> List[int]:
        """The alpha fibers of ``ribbon`` that feed ``switch``."""
        return [f for f, s in enumerate(self.assignment(ribbon)) if s == switch]


class ContiguousSplitter(FiberSplitter):
    """The straightforward split: fiber f -> switch f // alpha."""

    def assignment(self, ribbon: int) -> List[int]:
        return [f // self.alpha for f in range(self.n_fibers)]


class PseudoRandomSplitter(FiberSplitter):
    """Idea 4: a seeded pseudo-random balanced split, distinct per ribbon.

    The assignment is a random permutation of the balanced multiset
    {0 x alpha, 1 x alpha, ...}, drawn from a PRNG keyed by (seed,
    ribbon) -- deterministic for manufacturing, unpredictable to an
    attacker who does not know the seed.
    """

    def __init__(self, n_fibers: int, n_switches: int, seed: int = 0xF1BE2):
        super().__init__(n_fibers, n_switches)
        self.seed = seed

    def assignment(self, ribbon: int) -> List[int]:
        rng = np.random.default_rng((self.seed, ribbon))
        balanced = np.repeat(np.arange(self.n_switches), self.alpha)
        return rng.permutation(balanced).tolist()


def _checked_profile(
    splitter: FiberSplitter, ribbon: int, profile: np.ndarray
) -> np.ndarray:
    profile = np.asarray(profile, dtype=np.float64)
    if profile.shape != (splitter.n_fibers,):
        raise ConfigError(
            f"ribbon {ribbon} profile has shape {profile.shape}, "
            f"expected ({splitter.n_fibers},)"
        )
    if np.any(profile < 0):
        raise ConfigError(f"ribbon {ribbon} profile has negative fiber loads")
    return profile


def per_switch_loads(
    splitter: FiberSplitter,
    fiber_loads: Sequence[np.ndarray],
) -> np.ndarray:
    """Load arriving at each switch, given per-ribbon per-fiber loads.

    ``fiber_loads[r][f]`` is ribbon r's load on fiber f (any consistent
    unit).  Returns an (H,)-array of per-switch totals.

    ``np.add.at`` scatters each ribbon's profile through the (cached)
    assignment array unbuffered and in fiber order, so the float
    accumulation order -- and therefore the result, bit for bit -- is
    the same as the per-fiber loop this replaced.
    """
    loads = np.zeros(splitter.n_switches)
    for ribbon, profile in enumerate(fiber_loads):
        profile = _checked_profile(splitter, ribbon, profile)
        np.add.at(loads, splitter.assignment_array(ribbon), profile)
    return loads


def per_switch_port_loads(
    splitter: FiberSplitter,
    fiber_loads: Sequence[np.ndarray],
) -> np.ndarray:
    """(H, R) matrix: load on switch h's port r (ribbon r's share).

    A switch port is overloaded -- and loses traffic -- when its entry
    exceeds the port capacity (alpha fibers' worth).
    """
    result = np.zeros((splitter.n_switches, len(fiber_loads)))
    for ribbon, profile in enumerate(fiber_loads):
        profile = _checked_profile(splitter, ribbon, profile)
        np.add.at(result[:, ribbon], splitter.assignment_array(ribbon), profile)
    return result


def split_imbalance(loads: np.ndarray) -> float:
    """Max-over-mean load ratio: 1.0 is perfect balance."""
    loads = np.asarray(loads, dtype=np.float64)
    if np.any(loads < 0):
        raise ConfigError(
            f"per-switch loads must be >= 0, got min {loads.min():g}"
        )
    if loads.size == 0 or loads.mean() <= 0:
        return 1.0
    return float(loads.max() / loads.mean())


def overload_loss_fraction(port_loads: np.ndarray, port_capacity: float) -> float:
    """Fraction of total offered load exceeding per-port capacity.

    SPS accepts that "the uneven distribution across smaller switches
    operating at a reduced capacity may potentially lead to packet
    losses" (Design 4); this is that loss, to first order.
    """
    if port_capacity < 0:
        raise ConfigError(
            f"port capacity must be >= 0, got {port_capacity}"
        )
    port_loads = np.asarray(port_loads, dtype=np.float64)
    if np.any(port_loads < 0):
        raise ConfigError(
            f"port loads must be >= 0, got min {port_loads.min():g}"
        )
    total = port_loads.sum()
    if total <= 0:
        return 0.0
    excess = np.clip(port_loads - port_capacity, 0.0, None).sum()
    return float(excess / total)
