"""Output port (Fig. 3, stage 6).

Received batches are cut back into variable-length packets, converted to
optical signals, and hashed across the ribbon's alpha fibers x W
wavelengths by flow 5-tuple, as in ECMP/LAG (SS 3.2 step 6).

Transmission is modelled analytically: the port is a single server at
the line rate; a frame's packets depart back-to-back in batch order
(padding is discarded in the cut-back step and consumes no wire time).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..config import HBMSwitchConfig
from ..errors import OrderingViolation
from ..sim.stats import LatencyRecorder, ThroughputMeter
from ..traffic.ecmp import EcmpSelector
from ..traffic.packet import Packet
from ..units import rate_to_bytes_per_ns
from .frames import Frame


class OutputPort:
    """One of the N output ports of an HBM switch."""

    def __init__(
        self,
        config: HBMSwitchConfig,
        port: int,
        n_fibers: int = 4,
        n_wavelengths: int = 16,
        telemetry=None,
        latency_sample_cap=None,
    ):
        self.config = config
        self.port = port
        #: Optional :class:`~repro.telemetry.SwitchTelemetry`; the drain
        #: span is recorded per transmitted batch when attached.
        self.telemetry = telemetry
        self._rate = rate_to_bytes_per_ns(config.port_rate_bps)
        self._busy_until = 0.0
        self.ecmp = EcmpSelector(n_fibers, n_wavelengths)
        self.throughput = ThroughputMeter()
        #: ``latency_sample_cap`` bounds the retained latency samples
        #: (seeded reservoir) for internet-scale streaming runs; the
        #: default ``None`` keeps every sample, bit-identical to the
        #: historical recorder.
        self.latency = LatencyRecorder(capacity=latency_sample_cap)
        #: Where the nanoseconds go, per delivered packet: time to fill
        #: its batch, to fill its frame, the HBM round-trip wait, and the
        #: egress drain.  Components sum to the total latency.
        self.breakdown = {
            "batch_fill": LatencyRecorder(capacity=latency_sample_cap),
            "frame_fill": LatencyRecorder(capacity=latency_sample_cap),
            "hbm_wait": LatencyRecorder(capacity=latency_sample_cap),
            "egress": LatencyRecorder(capacity=latency_sample_cap),
        }
        #: Optional per-departure callback ``sink(packet)`` fired the
        #: instant a packet's departure time is stamped -- the streaming
        #: degradation path bins delivered bytes here instead of
        #: post-scanning a materialized packet list.
        self.departure_sink = None
        self._flow_last_pid: Dict[Tuple[int, int, int, int, int], int] = {}
        #: Optional fault hook (:mod:`repro.faults`): maps a timestamp to
        #: the egress-rate factor in (0, 1] -- OEO/laser degradation.
        #: ``None`` keeps the exact nominal-rate path.
        self.rate_factor_fn = None
        self.ordering_violations = 0
        self.padding_discarded_bytes = 0
        #: Bytes sent per (fiber, wavelength) egress lane -- the ECMP
        #: spreading that E10/SS 4 relies on, observable per port.
        self.lane_bytes: Dict[Tuple[int, int], int] = {}

    @property
    def busy_until(self) -> float:
        """When the port finishes everything handed to it so far."""
        return self._busy_until

    def transmit_frame(self, frame: Frame, ready_ns: float) -> float:
        """Send a frame's payload onto the wire; returns its finish time.

        Packets depart at the instant their last byte leaves.  Padding
        (batch filler and missing batches of padded frames) is dropped
        at the cut-back step and takes no wire time.
        """
        start = max(ready_ns, self._busy_until)
        cursor = start
        for batch in frame.batches:
            if batch.payload_bytes > 0:
                cursor = self._transmit_batch(batch, cursor, frame, ready_ns)
            self.padding_discarded_bytes += batch.padding_bytes
        # Whole missing batches of a padded frame: pure filler.
        missing = frame.size_bytes - sum(b.size_bytes for b in frame.batches)
        self.padding_discarded_bytes += max(0, missing)
        self._busy_until = cursor
        return cursor

    def _transmit_batch(self, batch, start_ns: float, frame: Frame, ready_ns: float) -> float:
        """Transmit one batch's payload; finalise its completing packets."""
        rate = self._rate
        if self.rate_factor_fn is not None:
            # Degraded OEO: the factor is sampled at batch start (a batch
            # is the atomic wire unit; windows are >> one batch time).
            rate = self._rate * self.rate_factor_fn(start_ns)
        finish = start_ns + batch.payload_bytes / rate
        # Packets complete in arrival (pid) order within the batch; model
        # their last bytes as spread to the batch end in order.
        for packet in batch.completing:
            packet.departure_ns = finish
            if self.departure_sink is not None:
                self.departure_sink(packet)
            packet.fiber, packet.wavelength = self.ecmp.select(packet.flow)
            lane = (packet.fiber, packet.wavelength)
            self.lane_bytes[lane] = self.lane_bytes.get(lane, 0) + packet.size_bytes
            self.latency.record(packet.departure_ns - packet.arrival_ns)
            self._record_breakdown(packet, batch, frame, ready_ns, finish)
            self._check_order(packet)
        self.throughput.record(batch.payload_bytes, finish)
        if self.telemetry is not None:
            # Output drain: wire time of this batch's payload (longer
            # under OEO degradation -- the rate factor is inside).
            self.telemetry.drain.observe(finish - start_ns)
            self.telemetry.packets_out.inc(len(batch.completing))
            self.telemetry.bytes_out.inc(batch.payload_bytes)
            self.telemetry.win_bytes_out.observe(finish, batch.payload_bytes)
        return finish

    def _record_breakdown(self, packet, batch, frame: Frame, ready_ns: float, finish: float) -> None:
        """Decompose the packet's latency along the pipeline stages.

        Stage boundaries are the timestamps the objects already carry:
        batch completion, frame completion, frame arrival at the head
        SRAM (``ready_ns``), and wire departure.  Clamped at zero for
        the rare bypass/padding paths where a later stage's timestamp
        precedes an earlier one's bookkeeping time.
        """
        t_arrival = packet.arrival_ns
        t_batch = max(batch.created_ns, t_arrival)
        t_frame = max(frame.created_ns, t_batch)
        t_ready = max(ready_ns, t_frame)
        self.breakdown["batch_fill"].record(t_batch - t_arrival)
        self.breakdown["frame_fill"].record(t_frame - t_batch)
        self.breakdown["hbm_wait"].record(t_ready - t_frame)
        self.breakdown["egress"].record(max(0.0, finish - t_ready))

    def _check_order(self, packet: Packet) -> None:
        """Flows must not reorder: pids within a flow are monotonic."""
        key = (
            packet.flow.src_ip,
            packet.flow.dst_ip,
            packet.flow.src_port,
            packet.flow.dst_port,
            packet.flow.protocol,
        )
        last = self._flow_last_pid.get(key)
        if last is not None and packet.pid < last:
            self.ordering_violations += 1
        else:
            self._flow_last_pid[key] = packet.pid

    def raise_on_reorder(self) -> None:
        """Escalate recorded reorderings (used by integration tests)."""
        if self.ordering_violations:
            raise OrderingViolation(
                f"output {self.port} saw {self.ordering_violations} reordered packets"
            )
