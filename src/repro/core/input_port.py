"""Input port SRAM (Fig. 3, stage 1).

After O/E conversion, a processing chiplet classifies each packet to an
HBM-switch output, queues it in one of N per-output SRAM queues, and
packs queues into fixed k-byte batches (packets may straddle two
batches).  Completed batches enter a FIFO awaiting their turn on the
cyclical crossbar.

The SRAM is finite: when a packet would push the port's occupancy past
``sram_capacity_bytes`` it is dropped (tail-drop), which is how the
simulator surfaces overload instead of buffering infinitely.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..config import HBMSwitchConfig
from ..sim.stats import DropCounter, OccupancyTracker
from ..traffic.packet import Packet
from .frames import Batch, BatchAssembler


class InputPort:
    """One of the N input ports of an HBM switch."""

    def __init__(
        self,
        config: HBMSwitchConfig,
        port: int,
        sram_capacity_bytes: Optional[int] = None,
    ) -> None:
        self.config = config
        self.port = port
        # Default capacity: a generous multiple of the structural need
        # (one batch forming per output plus a FIFO of in-flight batches).
        if sram_capacity_bytes is None:
            sram_capacity_bytes = 64 * config.n_ports * config.batch_bytes
        self.sram_capacity_bytes = sram_capacity_bytes
        self._assemblers = [
            BatchAssembler(output, config.batch_bytes) for output in range(config.n_ports)
        ]
        self.fifo: Deque[Batch] = deque()
        self.drops = DropCounter()
        self.occupancy = OccupancyTracker()
        self._fifo_bytes = 0
        # Maintained at enqueue/dequeue time so the occupancy check in
        # on_packet (and the switch's residual accounting) is O(1)
        # instead of a sum over N assemblers per packet.
        self._partial_bytes = 0

    # -- state ---------------------------------------------------------------

    @property
    def partial_bytes(self) -> int:
        """Bytes sitting in not-yet-complete batches."""
        return self._partial_bytes

    @property
    def occupancy_bytes(self) -> int:
        return self.partial_bytes + self._fifo_bytes

    @property
    def fifo_bytes(self) -> int:
        return self._fifo_bytes

    # -- dataplane ---------------------------------------------------------------

    def on_packet(self, packet: Packet, now: float) -> List[Batch]:
        """Accept one packet; returns batches completed by it.

        Completed batches are also appended to :attr:`fifo`; the switch
        schedules the crossbar drain.  An overflowing packet is dropped
        whole (no partial admission).
        """
        if packet.size_bytes + self.occupancy_bytes > self.sram_capacity_bytes:
            self.drops.record(packet.size_bytes, reason="input-sram-overflow")
            return []
        assembler = self._assemblers[packet.output_port]
        fill_before = assembler.fill_bytes
        emitted = assembler.add(packet, now)
        self._partial_bytes += assembler.fill_bytes - fill_before
        for batch in emitted:
            self.fifo.append(batch)
            self._fifo_bytes += batch.size_bytes
        self.occupancy.observe(self.occupancy_bytes, now)
        return emitted

    def pop_batch(self, now: float) -> Optional[Batch]:
        """Remove the head-of-line batch for transmission."""
        if not self.fifo:
            return None
        batch = self.fifo.popleft()
        self._fifo_bytes -= batch.size_bytes
        self.occupancy.observe(self.occupancy_bytes, now)
        return batch

    def flush_partials(self, now: float) -> List[Batch]:
        """Pad out all partial batches (used at drain time with padding on)."""
        flushed = []
        for assembler in self._assemblers:
            fill_before = assembler.fill_bytes
            batch = assembler.flush(now)
            if batch is not None:
                self._partial_bytes -= fill_before
                self.fifo.append(batch)
                self._fifo_bytes += batch.size_bytes
                flushed.append(batch)
        if flushed:
            self.occupancy.observe(self.occupancy_bytes, now)
        return flushed
