"""Module-level tail/head SRAM model (Fig. 3's N physical modules).

The event simulation tracks batches and frames *logically*; the physical
design stores every batch as N slices across N SRAM modules, striped by
the cyclical crossbar, with per-output queues inside every module.  This
module models that physical organisation so tests can verify the
structural claims of SS 3.2 step 2:

- every batch contributes exactly one k/N-byte slice to every module;
- each module's per-output queue depth equals the logical queue depth
  (the modules stay in lockstep, "all modules doing so for the same
  frame in a staggered way");
- a frame slice is K/N bytes in each module, and the per-module
  occupancy is always exactly 1/N of the logical tail occupancy.

:class:`SlicedTailModel` consumes the same batch/frame event stream as
the logical :class:`~repro.core.tail_sram.TailSRAM` (it can shadow a
live simulation via the trace hook or be driven directly) and exposes
the per-module state for assertions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..config import HBMSwitchConfig
from ..errors import ConfigError, SimulationError
from .crossbar import CyclicalCrossbar
from .frames import Batch, Frame


@dataclass
class ModuleState:
    """One physical SRAM module: per-output slice queues."""

    index: int
    slice_bytes: int
    queues: Dict[int, int] = field(default_factory=dict)  # output -> slices
    frame_slices: int = 0  # completed frame slices awaiting a write phase

    @property
    def pending_bytes(self) -> int:
        """Bytes in not-yet-promoted batch slices."""
        return sum(self.queues.values()) * self.slice_bytes

    def slices_for(self, output: int) -> int:
        return self.queues.get(output, 0)


class SlicedTailModel:
    """The N-module physical view of the tail SRAM."""

    def __init__(self, config: HBMSwitchConfig):
        self.config = config
        self.crossbar = CyclicalCrossbar(config.n_ports)
        self.slice_bytes = config.slice_bytes
        self.modules: List[ModuleState] = [
            ModuleState(index=m, slice_bytes=config.slice_bytes)
            for m in range(config.n_ports)
        ]
        self._slot = 0
        self.batches_seen = 0
        self.frames_formed = 0

    # -- event intake ------------------------------------------------------------

    def on_batch(self, batch: Batch) -> None:
        """A batch crossed the crossbar: one slice lands in every module.

        The slot-level schedule (slice s at the slot where the input
        faces module s) is compressed to its end state here; the
        contention-freedom of the schedule itself is the crossbar
        permutation property, unit-tested separately.
        """
        if batch.size_bytes != self.config.batch_bytes:
            raise ConfigError(
                f"batch of {batch.size_bytes} B in a {self.config.batch_bytes}-B design"
            )
        for module in self.modules:
            module.queues[batch.output] = module.queues.get(batch.output, 0) + 1
        self.batches_seen += 1
        self._slot += self.config.n_ports  # one batch = N slice slots

    def on_frame(self, frame: Frame) -> None:
        """A frame completed: every module promotes K/k slices in lockstep."""
        per_frame = self.config.batches_per_frame
        for module in self.modules:
            have = module.queues.get(frame.output, 0)
            if have < len(frame.batches):
                raise SimulationError(
                    f"module {module.index} holds {have} slices for output "
                    f"{frame.output}, frame needs {len(frame.batches)}"
                )
            module.queues[frame.output] = have - len(frame.batches)
            module.frame_slices += 1
        self.frames_formed += 1

    def on_frame_written(self) -> None:
        """A write phase consumed one frame slice from every module."""
        for module in self.modules:
            if module.frame_slices <= 0:
                raise SimulationError(
                    f"module {module.index} has no frame slice to write"
                )
            module.frame_slices -= 1

    # -- invariants ---------------------------------------------------------------

    def assert_lockstep(self) -> None:
        """All modules hold identical per-output queue depths."""
        reference = self.modules[0].queues
        for module in self.modules[1:]:
            if module.queues != reference:
                raise SimulationError(
                    f"module {module.index} diverged: {module.queues} != {reference}"
                )

    def pending_slices(self, output: int) -> int:
        """Slices queued for ``output`` in module 0 (= every module)."""
        self.assert_lockstep()
        return self.modules[0].slices_for(output)

    def per_module_share(self, logical_pending_bytes: int) -> float:
        """Each module's pending bytes over the logical total (should be 1/N)."""
        self.assert_lockstep()
        module_bytes = sum(self.modules[0].queues.values()) * self.slice_bytes
        if logical_pending_bytes == 0:
            return 0.0
        return module_bytes / logical_pending_bytes

    def frame_slice_bytes(self) -> int:
        """Size of one module's share of a frame: K/N."""
        return self.config.frame_bytes // self.config.n_ports
