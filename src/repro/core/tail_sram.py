"""Tail SRAM (Fig. 3, stage 2).

Physically: N SRAM modules, each holding one slice of every batch, with
per-output queues; when an output's queue reaches K/k = 128 batch
slices, all modules (staggered) promote them to a frame slice, and frame
slices enter a shared logical FIFO awaiting an HBM write phase.

The simulator tracks whole batches/frames (module-level slicing is a
structural property validated by the crossbar tests); what matters
temporally is: batches accumulate per output, frames complete when
``batches_per_frame`` are present, and completed frames queue FIFO for
the write phases.  The padding and bypass hooks implement the SS 4
latency optimisations.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..config import HBMSwitchConfig
from ..errors import ConfigError
from ..sim.stats import DropCounter, OccupancyTracker
from .frames import Batch, Frame, FrameAssembler


class TailSRAM:
    """The frame-assembly stage between the crossbar and the HBMs."""

    def __init__(
        self,
        config: HBMSwitchConfig,
        capacity_bytes: Optional[int] = None,
    ) -> None:
        self.config = config
        # Structural need: one frame forming per output plus a couple of
        # completed frames awaiting write slots; default is a generous 4x.
        if capacity_bytes is None:
            capacity_bytes = 4 * config.n_ports * config.frame_bytes
        self.capacity_bytes = capacity_bytes
        self._assemblers = [
            FrameAssembler(output, config.batch_bytes, config.batches_per_frame)
            for output in range(config.n_ports)
        ]
        self.frame_fifo: Deque[Frame] = deque()
        self._fifo_bytes = 0
        self.drops = DropCounter()
        self.occupancy = OccupancyTracker()
        # Maintained at enqueue/dequeue time: the capacity check in
        # on_batch runs per batch and must not rescan N assemblers.
        self._pending_bytes = 0

    # -- state ---------------------------------------------------------------

    @property
    def pending_bytes(self) -> int:
        """Bytes in not-yet-complete frames, across all outputs."""
        return self._pending_bytes

    @property
    def occupancy_bytes(self) -> int:
        return self.pending_bytes + self._fifo_bytes

    def pending_batches(self, output: int) -> int:
        return self._assemblers[output].pending_batches

    # -- dataplane ---------------------------------------------------------------

    def on_batch(self, batch: Batch, now: float) -> Optional[Frame]:
        """Accept a batch from the crossbar; returns a frame if one completed."""
        if batch.size_bytes + self.occupancy_bytes > self.capacity_bytes:
            self.drops.record(batch.payload_bytes, reason="tail-sram-overflow")
            return None
        assembler = self._assemblers[batch.output]
        pending_before = assembler.pending_bytes
        frame = assembler.add(batch, now)
        self._pending_bytes += assembler.pending_bytes - pending_before
        if frame is not None:
            self.frame_fifo.append(frame)
            self._fifo_bytes += frame.size_bytes
        self.occupancy.observe(self.occupancy_bytes, now)
        return frame

    def pop_frame(self, now: float) -> Optional[Frame]:
        """Head of the shared frame FIFO, for the next write phase."""
        if not self.frame_fifo:
            return None
        frame = self.frame_fifo.popleft()
        self._fifo_bytes -= frame.size_bytes
        self.occupancy.observe(self.occupancy_bytes, now)
        return frame

    def pop_frame_for(self, output: int, now: float) -> Optional[Frame]:
        """Oldest queued frame for ``output`` (bypass path).

        Bypass is only taken when the HBM holds nothing for ``output``,
        so the oldest frame for that output in this FIFO *is* the oldest
        frame for it anywhere -- order is preserved.
        """
        for position, frame in enumerate(self.frame_fifo):
            if frame.output == output:
                del self.frame_fifo[position]
                self._fifo_bytes -= frame.size_bytes
                self.occupancy.observe(self.occupancy_bytes, now)
                return frame
        return None

    def padded_frame_for(self, output: int, now: float) -> Optional[Frame]:
        """Flush the partial frame of ``output`` padded to full size.

        Implements frame padding [33, 37]: the missing batches become
        filler so the HBM schedule is unchanged, cutting the fill-and-
        wait latency at light load.  Returns ``None`` when the output
        has nothing pending.
        """
        assembler = self._assemblers[output]
        pending_before = assembler.pending_bytes
        frame = assembler.flush(now)
        if frame is not None:
            self._pending_bytes -= pending_before
            self.occupancy.observe(self.occupancy_bytes, now)
        return frame

    def has_data_for(self, output: int) -> bool:
        """Anything (queued frame or partial) for ``output``?"""
        if self._assemblers[output].pending_batches > 0:
            return True
        return any(frame.output == output for frame in self.frame_fifo)

    def validate_output(self, output: int) -> None:
        if not 0 <= output < self.config.n_ports:
            raise ConfigError(f"output {output} out of range")
