"""No-bookkeeping HBM addressing (PFI steps 3-4).

The HBM is divided into per-output regions, each a FIFO of frame slots.
The n-th frame written for output ``j`` goes deterministically to bank
interleaving group ``n mod (L/gamma)``, and rows advance cyclically
within the region -- so both sides only need *counters* (head, tail),
never per-packet or per-frame pointers.  That is the paper's answer to
the gigabytes of SRAM bookkeeping an ideal OQ emulation would need
(Challenge 6 / Design 6 step 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import HBMSwitchConfig
from ..errors import CapacityExceeded, ConfigError
from ..hbm.interleaving import BankGroup, bank_group_for_frame


@dataclass(frozen=True)
class FrameAddress:
    """Where one frame lives: a bank group and a row, on every channel.

    ``sub_row`` is the segment-size slice within the row (SS 3.2's
    hierarchy: region -> rows -> segment-size sub-rows -> banks).  With
    the reference design S = row size, so sub_row is always 0; the
    datacenter variant's smaller segments pack several frames per row.
    """

    output: int
    frame_index: int
    group: BankGroup
    row: int
    sub_row: int = 0


class OutputRegionFifo:
    """The FIFO of frame slots for one output's HBM region.

    A frame occupies one row in each of the gamma banks of its group,
    across all T channels.  With ``rows_per_bank`` rows reserved per bank
    for this output, the region holds ``n_groups * rows_per_bank``
    frames.  Head/tail counters are the *only* state -- that is the
    design's point.
    """

    def __init__(
        self,
        output: int,
        n_groups: int,
        gamma: int,
        rows_per_bank: int,
        base_row: int = 0,
        segments_per_row: int = 1,
    ):
        if n_groups <= 0 or gamma <= 0 or rows_per_bank <= 0:
            raise ConfigError(
                f"need positive geometry, got groups={n_groups}, gamma={gamma}, "
                f"rows={rows_per_bank}"
            )
        if segments_per_row <= 0:
            raise ConfigError(
                f"segments_per_row must be positive, got {segments_per_row}"
            )
        self.output = output
        self.n_groups = n_groups
        self.gamma = gamma
        self.rows_per_bank = rows_per_bank
        self.base_row = base_row
        self.segments_per_row = segments_per_row
        self._head = 0  # next frame index to read
        self._tail = 0  # next frame index to write

    # -- counters ---------------------------------------------------------------

    @property
    def capacity_frames(self) -> int:
        """How many frames the region holds before wrapping onto live data.

        Sub-row packing multiplies capacity: a row hosts
        ``segments_per_row`` frames' segments per bank.
        """
        return self.n_groups * self.rows_per_bank * self.segments_per_row

    @property
    def occupancy(self) -> int:
        return self._tail - self._head

    @property
    def empty(self) -> bool:
        return self._head == self._tail

    # -- address arithmetic -------------------------------------------------------

    def _address(self, frame_index: int) -> FrameAddress:
        group_index = bank_group_for_frame(frame_index, self.n_groups)
        row_ordinal = frame_index // self.n_groups
        sub_row = row_ordinal % self.segments_per_row
        row = self.base_row + (row_ordinal // self.segments_per_row) % self.rows_per_bank
        return FrameAddress(
            output=self.output,
            frame_index=frame_index,
            group=BankGroup(group_index, self.gamma),
            row=row,
            sub_row=sub_row,
        )

    def push(self) -> FrameAddress:
        """Allocate the next write slot (the n-th frame's address)."""
        if self.occupancy >= self.capacity_frames:
            raise CapacityExceeded(
                f"output {self.output} HBM region full "
                f"({self.capacity_frames} frames)"
            )
        address = self._address(self._tail)
        self._tail += 1
        return address

    def pop(self) -> FrameAddress:
        """Consume the oldest frame's address (read side, same sequence)."""
        if self.empty:
            raise CapacityExceeded(f"output {self.output} HBM region empty")
        address = self._address(self._head)
        self._head += 1
        return address

    def peek(self) -> FrameAddress:
        """The oldest frame's address without consuming it."""
        if self.empty:
            raise CapacityExceeded(f"output {self.output} HBM region empty")
        return self._address(self._head)


class HBMAddressMap:
    """Static per-output region allocation over the whole HBM group.

    Rows available per (channel, bank) are split evenly across the N
    outputs; each output gets an :class:`OutputRegionFifo`.  Static
    allocation is the paper's simple option ("the head, tail, and number
    of entries of the FIFO can simply be tracked with counters").
    """

    def __init__(self, config: HBMSwitchConfig, rows_per_bank_total: int = 0):
        self.config = config
        if rows_per_bank_total <= 0:
            rows_per_bank_total = self._rows_per_bank_from_capacity(config)
        rows_per_output = rows_per_bank_total // config.n_ports
        if rows_per_output <= 0:
            raise ConfigError(
                f"{rows_per_bank_total} rows/bank cannot host "
                f"{config.n_ports} output regions"
            )
        self.rows_per_output = rows_per_output
        # SS 3.2 hierarchy: rows subdivide into segment-size sub-rows,
        # so small-segment (datacenter) configs pack several frames per
        # row instead of wasting the rest of it.
        segments_per_row = max(1, config.stack.row_bytes // config.segment_bytes)
        self.segments_per_row = segments_per_row
        self.regions = [
            OutputRegionFifo(
                output=j,
                n_groups=config.n_bank_groups,
                gamma=config.gamma,
                rows_per_bank=rows_per_output,
                base_row=j * rows_per_output,
                segments_per_row=segments_per_row,
            )
            for j in range(config.n_ports)
        ]

    @staticmethod
    def _rows_per_bank_from_capacity(config: HBMSwitchConfig) -> int:
        """Rows per (channel, bank) implied by the stack capacity."""
        stack = config.stack
        bank_bytes = stack.capacity_bytes // (stack.channels * stack.banks_per_channel)
        return max(1, bank_bytes // stack.row_bytes)

    def region(self, output: int) -> OutputRegionFifo:
        if not 0 <= output < len(self.regions):
            raise ConfigError(f"output {output} out of range")
        return self.regions[output]

    @property
    def total_capacity_frames(self) -> int:
        return sum(region.capacity_frames for region in self.regions)

    @property
    def occupancy_frames(self) -> int:
        return sum(region.occupancy for region in self.regions)

    def occupancy_bytes(self) -> int:
        return self.occupancy_frames * self.config.frame_bytes
