"""The N x N cyclical crossbar (and its SDM-mesh alternative).

PFI inherits the key trick of load-balanced switches [37, 38, 44, 67]:
the crossbar between input ports and tail-SRAM modules follows a fixed
cyclic rotation, so it needs **no scheduler**.  At slot ``t``, input
``i`` connects to module ``(i + t) mod N`` -- a permutation at every
slot, so there is never contention.  Over any N consecutive slots every
input visits every module exactly once, which is how a batch's N slices
spread across the N modules.

The paper notes the rotation can be realised as simple 1-D multiplexors,
or replaced by an N x N space-division mesh that transfers all N slices
in one slot over 1/N-width lanes (:class:`SDMMesh`).  Both move one
batch per batch-time; they differ only in wiring, which is why the
simulator can treat "batch crossed the crossbar" as a single batch-time
delay (validated structurally here, used temporally in
:mod:`~repro.core.hbm_switch`).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ConfigError


class CyclicalCrossbar:
    """Fixed cyclic-rotation crossbar with no scheduling state."""

    def __init__(self, n_ports: int):
        if n_ports <= 0:
            raise ConfigError(f"n_ports must be positive, got {n_ports}")
        self.n_ports = n_ports

    def module_for(self, input_port: int, slot: int) -> int:
        """Module that ``input_port`` is wired to at ``slot``."""
        self._check_port(input_port)
        return (input_port + slot) % self.n_ports

    def input_for(self, module: int, slot: int) -> int:
        """Inverse: which input feeds ``module`` at ``slot``."""
        self._check_port(module)
        return (module - slot) % self.n_ports

    def connection_pattern(self, slot: int) -> List[int]:
        """The full permutation at ``slot``: ``pattern[i]`` = module of i."""
        return [self.module_for(i, slot) for i in range(self.n_ports)]

    def batch_slice_schedule(self, input_port: int, start_slot: int) -> List[Tuple[int, int, int]]:
        """(slot, module, slice) triples that move one batch of N slices.

        Slice ``s`` of every batch lands in module ``s`` ("always
        starting from the first SRAM module"), so the slice sent at a
        slot is simply the module the input happens to face.  The batch
        needs exactly N slots; different inputs' transfers interleave
        without conflict because every slot is a permutation.
        """
        self._check_port(input_port)
        schedule = []
        for offset in range(self.n_ports):
            slot = start_slot + offset
            module = self.module_for(input_port, slot)
            schedule.append((slot, module, module))
        return schedule

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self.n_ports:
            raise ConfigError(f"port {port} out of range [0, {self.n_ports})")


class SDMMesh:
    """Space-division alternative: all N slices move in parallel.

    Each input's 2048-bit interface is split into N sets of 2048/N wires,
    one set per module, so a batch's N slices transfer simultaneously
    over one batch-time (at 1/N of the rate each).  Aggregate timing is
    identical to the cyclic rotation; only the wiring differs.
    """

    def __init__(self, n_ports: int, interface_bits: int):
        if n_ports <= 0:
            raise ConfigError(f"n_ports must be positive, got {n_ports}")
        if interface_bits % n_ports != 0:
            raise ConfigError(
                f"interface of {interface_bits} bits does not split into "
                f"{n_ports} lane sets"
            )
        self.n_ports = n_ports
        self.interface_bits = interface_bits

    @property
    def lane_width_bits(self) -> int:
        """Wires per (input, module) lane: 2048/16 = 128 in the reference."""
        return self.interface_bits // self.n_ports

    def lanes(self) -> Dict[Tuple[int, int], int]:
        """(input, module) -> lane width for the full mesh."""
        return {
            (i, m): self.lane_width_bits
            for i in range(self.n_ports)
            for m in range(self.n_ports)
        }

    def batch_transfer_slots(self) -> int:
        """Slots to move one batch: 1 (all slices in parallel)."""
        return 1
