"""First-order queueing model of PFI latency.

A sanity cross-check for the simulator: each stage of the pipeline has a
back-of-envelope expected delay under uniform load, and the simulated
per-stage breakdown (``SwitchReport.latency_breakdown``) should land in
the same regime.  The model is deliberately crude -- mean-value analysis
with deterministic service -- so agreement within small factors is the
success criterion, not equality.

Stages, for uniform load ``rho`` on an N-port switch (port rate P B/ns,
batch k, frame K, PFI cycle C):

- **batch fill**: a packet lands at a uniformly random position of its
  (input, output) pair's k-byte batch filling at rate rho*P/N, so it
  waits ~ k / (2 * rho * P / N).
- **frame fill**: its batch lands at a random position of the output's
  K-byte frame filling at rate rho*P (all inputs contribute), waiting
  ~ K / (2 * rho * P).
- **HBM wait**: a completed frame waits for a write slot (~C/2) and
  then for its output's read slot in the strict cycle (~N*C/2).
- **egress**: a random packet waits about half the frame's payload
  drain, K * rho-ish / (2P); at high load ~ K / (2P).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config import HBMSwitchConfig
from ..constants import HBM4_PHASE_TRANSITION_FRACTION
from ..errors import ConfigError
from ..units import rate_to_bytes_per_ns


@dataclass(frozen=True)
class PFILatencyModel:
    """Expected per-stage delays (ns) at a given uniform load."""

    batch_fill_ns: float
    frame_fill_ns: float
    hbm_wait_ns: float
    egress_ns: float

    @property
    def total_ns(self) -> float:
        return (
            self.batch_fill_ns + self.frame_fill_ns + self.hbm_wait_ns + self.egress_ns
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "batch_fill": self.batch_fill_ns,
            "frame_fill": self.frame_fill_ns,
            "hbm_wait": self.hbm_wait_ns,
            "egress": self.egress_ns,
        }


def pfi_latency_model(
    config: HBMSwitchConfig, load: float, mean_packet_bytes: float = 1500.0
) -> PFILatencyModel:
    """Mean-value latency prediction for uniform traffic at ``load``.

    The batch-fill term is packet-granular: when packets are larger
    than half a batch, the batch holding a packet's last byte is
    typically *completed by the next packet*, so the wait is one pair
    inter-arrival rather than half a batch's worth of bytes.

    Validity: the model describes steady flow, so it is most accurate at
    moderate-to-high load; at light load the padding deadline and the
    bypass path (policies, not queues) set the fill and HBM terms.
    """
    if not 0 < load <= 1:
        raise ConfigError(f"load must be in (0, 1], got {load}")
    if mean_packet_bytes <= 0:
        raise ConfigError(f"mean packet size must be positive, got {mean_packet_bytes}")
    port_rate = rate_to_bytes_per_ns(config.port_rate_bps)  # B/ns
    n = config.n_ports
    pair_rate = load * port_rate / n
    output_rate = load * port_rate
    cycle = (
        2.0
        * (config.frame_write_time_ns / config.speedup)
        * (1.0 + HBM4_PHASE_TRANSITION_FRACTION)
    )
    batch_fill = max(config.batch_bytes / 2.0, mean_packet_bytes) / pair_rate
    frame_fill = config.frame_bytes / (2.0 * output_rate)
    hbm_wait = cycle / 2.0 + n * cycle / 2.0
    egress = load * config.frame_bytes / (2.0 * port_rate)
    return PFILatencyModel(
        batch_fill_ns=batch_fill,
        frame_fill_ns=frame_fill,
        hbm_wait_ns=hbm_wait,
        egress_ns=egress,
    )


def model_vs_simulation(model: PFILatencyModel, breakdown: Dict[str, float]) -> Dict[str, float]:
    """Per-stage simulated/model ratios (1.0 = perfect agreement)."""
    ratios = {}
    for stage, predicted in model.as_dict().items():
        measured = breakdown.get(stage, 0.0)
        ratios[stage] = measured / predicted if predicted > 0 else float("inf")
    return ratios
