"""SRAM sizing (SS 4, *SRAM sizing*).

The paper states the total SRAM cost of frame assembly is 14.5 MB --
"easily implemented today" -- versus several **GB** of bookkeeping SRAM
for an ideal OQ emulation and an order of magnitude more for a
spraying/reordering design.  The structural model here derives each
stage's requirement from the architecture:

- input ports: N ports x N per-output queues x double-buffered batches;
- tail SRAM: one frame assembling per output (N x K) plus a small
  completed-frame FIFO;
- head SRAM: one frame in drain per output, double-buffered against the
  next read.

The absolute total depends on the buffering slack assumed per stage
(the paper does not publish its per-stage arithmetic); what the model
must reproduce -- and what E7 asserts -- is the *scale*: tens of MB,
versus GBs for the alternatives (a >100x gap).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import HBMSwitchConfig, RouterConfig
from ..units import GB, MB


@dataclass(frozen=True)
class SRAMSizing:
    """Per-HBM-switch SRAM requirement by stage, in bytes."""

    input_ports_bytes: int
    tail_bytes: int
    head_bytes: int
    control_bytes: int

    @property
    def total_bytes(self) -> int:
        return (
            self.input_ports_bytes + self.tail_bytes + self.head_bytes + self.control_bytes
        )

    @property
    def total_mb(self) -> float:
        return self.total_bytes / MB

    def vs_oq_bookkeeping(self, oq_bookkeeping_bytes: float = 2 * GB) -> float:
        """How many times smaller than OQ-emulation bookkeeping SRAM.

        Challenge 6: "tracking packet locations ... would require
        prohibitive SRAM sizes of several GBs"; 2 GB is the conservative
        low end of "several".
        """
        return oq_bookkeeping_bytes / self.total_bytes


def sram_sizing(
    config: HBMSwitchConfig,
    input_batch_depth: int = 2,
    tail_frame_slack: float = 0.0,
    head_frame_fraction: float = 0.5,
    control_bytes: int = 512 * 1024,
) -> SRAMSizing:
    """Structural SRAM requirement of one HBM switch.

    - ``input_batch_depth`` batches per (port, output) queue (2 =
      double-buffered assembly);
    - the tail holds one frame assembling per output, plus
      ``tail_frame_slack`` extra frames per output for the completed-
      frame FIFO;
    - the head needs ``head_frame_fraction`` of a frame per output: a
      frame drains over N read slots while the next arrives, so on
      average half a frame is resident;
    - ``control_bytes`` covers counters, FIFO pointers and the dynamic-
      page table of the HBM region allocator.

    With the reference design these defaults give 14.5 MB -- the paper's
    number (16 x 16 x 2 x 4 KB + 16 x 512 KB + 8 x 512 KB + 0.5 MB =
    2 + 8 + 4 + 0.5 MB).
    """
    n = config.n_ports
    input_ports = n * n * input_batch_depth * config.batch_bytes
    tail = int(n * config.frame_bytes * (1.0 + tail_frame_slack))
    head = int(n * config.frame_bytes * head_frame_fraction)
    return SRAMSizing(
        input_ports_bytes=input_ports,
        tail_bytes=tail,
        head_bytes=head,
        control_bytes=control_bytes,
    )


def router_sram_bytes(config: RouterConfig) -> int:
    """Total SRAM across the H switches of the router."""
    return config.n_switches * sram_sizing(config.switch).total_bytes


def spraying_reorder_buffer_bytes(
    config: HBMSwitchConfig, reorder_factor: float = 10.0
) -> float:
    """Memory a spraying design would need for output reordering.

    SS 4: the reordering-buffer cost "seems to be an order of magnitude
    higher depending on the acceptable reordering rate" [57, 62, 66];
    ``reorder_factor`` is that multiplier applied to the frame-assembly
    SRAM it would replace.
    """
    base = sram_sizing(config).total_bytes
    return reorder_factor * base
