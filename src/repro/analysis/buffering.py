"""Router buffer sizing (SS 4, *Router buffer sizing* and SS 5).

H * B * 64 GB = 4.096 TB of HBM buffering drains the 655.36 Tb/s ingress
in ~51.2 ms -- a full Van-Jacobson bandwidth-delay product, far beyond
the Stanford small-buffer model and Cisco's shipping linecards.  The
"memory glut" argument of SS 5 is this module's output.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt

from ..config import RouterConfig
from ..constants import (
    CISCO_8201_32FH_BUFFER_MS,
    CISCO_Q100_BUFFER_MS,
    CISCO_Q200_BUFFER_MS,
    CISCO_RECOMMENDED_BUFFER_MS,
)
from ..units import MS, buffering_time_ns


@dataclass(frozen=True)
class BufferSizing:
    """Buffering depth of the router and the reference points."""

    total_buffer_bytes: int
    io_per_direction_bps: float
    buffer_ms: float
    cisco_8201_ms: float = CISCO_8201_32FH_BUFFER_MS
    cisco_q100_ms: float = CISCO_Q100_BUFFER_MS
    cisco_q200_ms: float = CISCO_Q200_BUFFER_MS

    @property
    def vs_cisco_8201(self) -> float:
        """How many times deeper than the 8201-32FH's 5 ms."""
        return self.buffer_ms / self.cisco_8201_ms

    def van_jacobson_buffer_bytes(self, rtt_ms: float) -> float:
        """VJ rule of thumb: one bandwidth-delay product [32]."""
        return self.io_per_direction_bps / 8.0 * rtt_ms * 1e-3

    def stanford_buffer_bytes(self, rtt_ms: float, n_flows: int) -> float:
        """Stanford model [4, 46]: BDP / sqrt(number of long flows)."""
        if n_flows <= 0:
            raise ValueError(f"n_flows must be positive, got {n_flows}")
        return self.van_jacobson_buffer_bytes(rtt_ms) / sqrt(n_flows)

    def exceeds_cisco_recommendation(self) -> bool:
        """SS 4: 'much more than ... 5-10 msec' (Cisco white paper)."""
        return self.buffer_ms > CISCO_RECOMMENDED_BUFFER_MS[1]


def router_buffering(config: RouterConfig) -> BufferSizing:
    """Buffer sizing of an SPS router configuration."""
    total = config.total_buffer_bytes
    io = config.io_per_direction_bps
    return BufferSizing(
        total_buffer_bytes=total,
        io_per_direction_bps=io,
        buffer_ms=buffering_time_ns(total, io) / MS,
    )
