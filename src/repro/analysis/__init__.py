"""Design analysis (SS 4) and networking-future projections (SS 5).

Executable versions of every back-of-envelope computation in the paper:
power, area, buffer sizing, SRAM sizing, capacity-per-area comparisons
against shipping hardware, and the HBM roadmap projections.
"""

from .area import AreaBreakdown, hbm_switch_area, router_area
from .buffering import BufferSizing, router_buffering
from .capacity import CapacityComparison, capacity_vs_reference
from .datacenter import (
    ChipletSPSDesign,
    chiplet_sps_design,
    datacenter_hbm_switch,
    datacenter_power_saving,
    processing_reduction_projection,
)
from .modularity import (
    ModularDeployment,
    capacity_fraction_after_failures,
    degradation_curve,
    modular_deployments,
)
from .power import PowerBreakdown, hbm_switch_power, router_power
from .queueing import PFILatencyModel, model_vs_simulation, pfi_latency_model
from .sensitivity import (
    FrontierPoint,
    GenerationPoint,
    gamma_frontier,
    generation_sweep,
    required_segment_bytes,
)
from .roadmap import RoadmapPoint, roadmap_projection
from .sram import SRAMSizing, sram_sizing

__all__ = [
    "PowerBreakdown",
    "hbm_switch_power",
    "router_power",
    "AreaBreakdown",
    "hbm_switch_area",
    "router_area",
    "BufferSizing",
    "router_buffering",
    "SRAMSizing",
    "sram_sizing",
    "CapacityComparison",
    "capacity_vs_reference",
    "ModularDeployment",
    "capacity_fraction_after_failures",
    "modular_deployments",
    "degradation_curve",
    "ChipletSPSDesign",
    "chiplet_sps_design",
    "datacenter_hbm_switch",
    "datacenter_power_saving",
    "processing_reduction_projection",
    "RoadmapPoint",
    "roadmap_projection",
    "PFILatencyModel",
    "pfi_latency_model",
    "model_vs_simulation",
    "FrontierPoint",
    "GenerationPoint",
    "gamma_frontier",
    "generation_sweep",
    "required_segment_bytes",
]
