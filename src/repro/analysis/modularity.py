"""Modularity (SS 2.2, *Modularity*): one dense package or many small ones.

"The SPS architecture enables a modular approach, from a single dense
1.31 Pb/s I/O package with 16 HBM switches, to 16 parallel packages of
1/16th the capacity."  Because the switches share nothing, any grouping
of them into packages yields the same aggregate capacity, power and
buffering; what changes is the failure/replacement granularity and the
per-package I/O.  This module enumerates those deployments and the
graceful-degradation arithmetic the fault-injection simulation
(:meth:`SplitParallelSwitch.run` with ``failed_switches``) confirms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..config import RouterConfig
from ..errors import ConfigError
from .power import hbm_switch_power


@dataclass(frozen=True)
class ModularDeployment:
    """One way to package the H switches."""

    n_packages: int
    switches_per_package: int
    capacity_per_package_bps: float
    power_per_package_w: float
    io_fibers_per_package: int

    @property
    def total_capacity_bps(self) -> float:
        return self.n_packages * self.capacity_per_package_bps

    @property
    def total_power_w(self) -> float:
        return self.n_packages * self.power_per_package_w

    def capacity_after_failures(self, failed_switches: int) -> float:
        """Aggregate capacity with some switches dead -- linear, because
        switches are independent (the fault-isolation property)."""
        total_switches = self.n_packages * self.switches_per_package
        if not 0 <= failed_switches <= total_switches:
            raise ConfigError(
                f"failed_switches must be in [0, {total_switches}]"
            )
        surviving = total_switches - failed_switches
        return self.total_capacity_bps * surviving / total_switches


def modular_deployments(config: RouterConfig) -> List[ModularDeployment]:
    """Every divisor grouping of the H switches into packages.

    All rows have identical totals -- the modularity claim -- differing
    only in per-package numbers.
    """
    h = config.n_switches
    per_switch_capacity = config.total_io_bps / h
    per_switch_power = hbm_switch_power(config.switch).total_w
    fibers_per_switch_total = config.total_fibers // h
    deployments = []
    for n_packages in range(1, h + 1):
        if h % n_packages != 0:
            continue
        per_package = h // n_packages
        deployments.append(
            ModularDeployment(
                n_packages=n_packages,
                switches_per_package=per_package,
                capacity_per_package_bps=per_package * per_switch_capacity,
                power_per_package_w=per_package * per_switch_power,
                io_fibers_per_package=per_package * fibers_per_switch_total,
            )
        )
    return deployments


def capacity_fraction_after_failures(n_switches: int, n_failed: int) -> float:
    """The closed form of SS 2.2: killing k of H share-nothing switches
    leaves exactly (H - k)/H of capacity.

    This is the analytic reference the fault-injection layer
    (:mod:`repro.faults`) cross-checks its measured delivered capacity
    against.
    """
    if n_switches <= 0:
        raise ConfigError(f"n_switches must be positive, got {n_switches}")
    if not 0 <= n_failed <= n_switches:
        raise ConfigError(
            f"n_failed must be in [0, {n_switches}], got {n_failed}"
        )
    return (n_switches - n_failed) / n_switches


def degradation_curve(config: RouterConfig) -> List[float]:
    """Fraction of capacity remaining as 0..H switches fail."""
    h = config.n_switches
    return [capacity_fraction_after_failures(h, k) for k in range(h + 1)]
