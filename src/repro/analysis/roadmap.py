"""Router evolution under HBM roadmaps (SS 5, *Router evolution*).

Future HBM generations promise 4x capacity and bandwidth [52], and
monolithic 3D stackable DRAM promises 10x [23, 24].  Fewer stacks then
deliver the same 81.92 Tb/s per switch, shrinking footprint and HBM
power -- or the same stacks deliver proportionally more capacity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List

from ..config import HBMSwitchConfig, RouterConfig
from ..constants import (
    HBM4_STACK_POWER_W,
    HBM_ROADMAP_FACTOR,
    HBM_STACK_AREA_MM2,
    MONOLITHIC_3D_FACTOR,
)


@dataclass(frozen=True)
class RoadmapPoint:
    """One memory-technology generation applied to the reference design."""

    name: str
    bandwidth_factor: float
    stacks_per_switch: int
    hbm_power_w_per_switch: float
    hbm_area_mm2_per_switch: float
    buffer_bytes_per_switch: int

    def total_stacks(self, n_switches: int = 16) -> int:
        """Stacks across the whole router (64 for the HBM4 reference)."""
        return self.stacks_per_switch * n_switches


def _stacks_needed(config: HBMSwitchConfig, bandwidth_factor: float) -> int:
    """Stacks to cover the switch's memory-bandwidth need at a given
    per-stack bandwidth multiplier (bandwidth is the binding constraint
    in the reference design)."""
    need = config.total_io_bps
    per_stack = config.stack.stack_bandwidth_bps * bandwidth_factor
    return max(1, math.ceil(need / per_stack))


def roadmap_projection(
    config: HBMSwitchConfig,
    factors: "List[tuple[str, float]]" = (
        ("HBM4 (reference)", 1.0),
        ("HBM roadmap 4x", HBM_ROADMAP_FACTOR),
        ("Monolithic 3D 10x", MONOLITHIC_3D_FACTOR),
    ),
    stack_power_w: float = HBM4_STACK_POWER_W,
) -> List[RoadmapPoint]:
    """Stacks/power/area/buffering per switch across memory generations.

    Per-stack power is held at the HBM4 value (conservative: SS 5 expects
    future HBMs to need *less* power per bit, so these points are upper
    bounds on memory power).
    """
    points = []
    for name, factor in factors:
        stacks = _stacks_needed(config, factor)
        capacity_factor = factor  # roadmap scales capacity with bandwidth
        points.append(
            RoadmapPoint(
                name=name,
                bandwidth_factor=factor,
                stacks_per_switch=stacks,
                hbm_power_w_per_switch=stacks * stack_power_w,
                hbm_area_mm2_per_switch=stacks * HBM_STACK_AREA_MM2,
                buffer_bytes_per_switch=int(
                    stacks * config.stack.capacity_bytes * capacity_factor
                ),
            )
        )
    return points


def higher_capacity_variant(config: RouterConfig, bandwidth_factor: float) -> RouterConfig:
    """The other direction SS 5 mentions: keep B stacks, raise the rates.

    Returns a router whose per-wavelength rate is scaled by
    ``bandwidth_factor`` (e.g. 112/40 for PAM4), with the switch port
    rate scaled to match -- memory bandwidth permitting.
    """
    if bandwidth_factor <= 0:
        raise ValueError(f"factor must be positive, got {bandwidth_factor}")
    new_rate = config.wavelength_rate_bps * bandwidth_factor
    new_switch = replace(
        config.switch,
        port_rate_bps=config.switch.port_rate_bps * bandwidth_factor,
    )
    return replace(
        config, wavelength_rate_bps=new_rate, switch=new_switch
    )
