"""Area estimate (SS 4, *Area estimate*).

Conservatively one Tomahawk-5-class processing chiplet (800 mm^2) plus
B = 4 HBM stacks (4 x 121 mm^2 = 484 mm^2) per HBM switch: 1,284 mm^2.
Sixteen switches: 20,544 mm^2, under 10% of a 500 mm x 500 mm panel.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import HBMSwitchConfig, RouterConfig
from ..constants import HBM_STACK_AREA_MM2, PANEL_AREA_MM2, TOMAHAWK5_DIE_AREA_MM2


@dataclass(frozen=True)
class AreaBreakdown:
    """Silicon area by component, in mm^2."""

    processing_mm2: float
    hbm_mm2: float

    @property
    def total_mm2(self) -> float:
        return self.processing_mm2 + self.hbm_mm2

    def panel_fraction(self, panel_mm2: float = PANEL_AREA_MM2) -> float:
        """Share of the panel-scale substrate this area occupies."""
        return self.total_mm2 / panel_mm2

    def scaled(self, factor: float) -> "AreaBreakdown":
        return AreaBreakdown(self.processing_mm2 * factor, self.hbm_mm2 * factor)


def hbm_switch_area(
    config: HBMSwitchConfig,
    processing_die_mm2: float = TOMAHAWK5_DIE_AREA_MM2,
    stack_area_mm2: float = HBM_STACK_AREA_MM2,
) -> AreaBreakdown:
    """Conservative per-switch area: one big chiplet + B HBM stacks."""
    return AreaBreakdown(
        processing_mm2=processing_die_mm2,
        hbm_mm2=config.n_stacks * stack_area_mm2,
    )


def router_area(config: RouterConfig) -> AreaBreakdown:
    """Whole-package silicon area: H switches' worth."""
    return hbm_switch_area(config.switch).scaled(config.n_switches)
