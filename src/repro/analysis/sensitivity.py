"""Design-space sensitivity: how PFI's constants move with technology.

The reference design's S = 1 KB / gamma = 4 / K = 512 KB triple is not
arbitrary -- it is pinned by the ratio of DRAM row-cycle time to channel
speed.  As memory generations raise the per-pin rate (E13's roadmap),
segments transfer faster, the gamma <= 4 window tightens, and the
*segment must grow* to keep the staggered schedule legal -- which grows
the frame and with it the aggregation latency.  This module maps that
frontier:

- :func:`gamma_frontier` -- derived gamma across segment sizes;
- :func:`required_segment_bytes` -- the smallest legal segment at a
  given channel speed;
- :func:`generation_sweep` -- S/K/fill-latency across memory
  generations, the "faster memory needs bigger frames" law.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..config import HBMSwitchConfig
from ..errors import ConfigError
from ..hbm.interleaving import FOUR_ACTIVATION_LIMIT, derive_gamma
from ..hbm.timing import HBMTiming
from ..units import rate_to_bytes_per_ns


@dataclass(frozen=True)
class FrontierPoint:
    """One segment-size choice and its scheduling consequences."""

    segment_bytes: int
    segment_time_ns: float
    gamma: Optional[int]  # None = no legal gamma within the limit
    frame_bytes: Optional[int]

    @property
    def legal(self) -> bool:
        return self.gamma is not None


def gamma_frontier(
    timing: HBMTiming,
    channel_bytes_per_ns: float,
    segment_sizes: Sequence[int],
    total_channels: int,
) -> List[FrontierPoint]:
    """Derived gamma (and frame size) for each candidate segment size."""
    if channel_bytes_per_ns <= 0:
        raise ConfigError("channel rate must be positive")
    points = []
    for segment in segment_sizes:
        if segment <= 0:
            raise ConfigError(f"segment must be positive, got {segment}")
        seg_time = segment / channel_bytes_per_ns
        try:
            gamma = derive_gamma(timing, seg_time)
            frame = gamma * total_channels * segment
        except ConfigError:
            gamma = None
            frame = None
        points.append(FrontierPoint(segment, seg_time, gamma, frame))
    return points


def required_segment_bytes(
    timing: HBMTiming,
    channel_bytes_per_ns: float,
    gamma_max: int = FOUR_ACTIVATION_LIMIT,
    channel_width_bits: int = 64,
    row_bytes: int = 1024,
) -> int:
    """Smallest legal segment at ``gamma_max``, paper-style.

    The paper's rule for S (SS 3.2 step 3): the smallest integer multiple
    of the burst length satisfying the interleaving constraint --
    gamma * (S / rate) >= tRC, i.e. S >= tRC * rate / gamma -- "while
    also being a unit fraction of a row length".  So: the smallest
    burst-aligned divisor of the row at or above the minimum, or whole
    rows (a multiple of ``row_bytes``) when even a full row is too small.

    For HBM4 defaults this lands exactly on the paper's 1 KB.
    """
    import math

    if gamma_max <= 0:
        raise ConfigError(f"gamma_max must be positive, got {gamma_max}")
    if channel_bytes_per_ns <= 0:
        raise ConfigError("channel rate must be positive")
    if row_bytes <= 0:
        raise ConfigError(f"row_bytes must be positive, got {row_bytes}")
    burst = timing.burst_bytes(channel_width_bits)
    minimum = timing.t_rc * channel_bytes_per_ns / gamma_max
    if minimum <= row_bytes:
        # Smallest burst-aligned unit fraction of the row >= minimum.
        for divisor in sorted(
            d for d in range(1, row_bytes + 1) if row_bytes % d == 0
        ):
            if divisor % burst == 0 and divisor >= minimum:
                return divisor
        return row_bytes
    # Beyond a row: whole rows.
    return int(math.ceil(minimum / row_bytes)) * row_bytes


@dataclass(frozen=True)
class GenerationPoint:
    """PFI constants re-derived for one memory generation."""

    name: str
    pin_gbps: float
    channel_bytes_per_ns: float
    segment_bytes: int
    gamma: int
    frame_bytes: int
    frame_fill_ns: float  # K / P: the latency cost of the bigger frame


def generation_sweep(
    config: HBMSwitchConfig,
    timing: HBMTiming = HBMTiming(),
    generations: Sequence[Tuple[str, float]] = (
        ("HBM4 (10 G/pin)", 10.0),
        ("HBM5-class (20 G/pin)", 20.0),
        ("HBM6-class (40 G/pin)", 40.0),
    ),
) -> List[GenerationPoint]:
    """Re-derive S, gamma and K as the per-pin rate scales.

    Port rate is held at the reference value; what changes is how fast a
    channel drains a segment, and therefore how big the segment must be
    to span tRC at gamma <= 4.  ``frame_fill_ns`` (K/P) is the
    aggregation-latency price of each generation -- the quantitative
    form of "faster memory needs bigger frames".
    """
    port_rate = rate_to_bytes_per_ns(config.port_rate_bps)
    points = []
    for name, pin_gbps in generations:
        if pin_gbps <= 0:
            raise ConfigError(f"pin rate must be positive, got {pin_gbps}")
        channel_rate = pin_gbps * config.stack.channel_width_bits / 8.0  # B/ns
        segment = required_segment_bytes(timing, channel_rate)
        seg_time = segment / channel_rate
        gamma = derive_gamma(timing, seg_time)
        frame = gamma * config.total_channels * segment
        points.append(
            GenerationPoint(
                name=name,
                pin_gbps=pin_gbps,
                channel_bytes_per_ns=channel_rate,
                segment_bytes=segment,
                gamma=gamma,
                frame_bytes=frame,
                frame_fill_ns=frame / port_rate,
            )
        )
    return points
