"""Power estimate (SS 4, *Power estimate*).

The paper's first-order model, reproduced exactly:

- **Processing + SRAM buffering**: scaled linearly from the Broadcom
  Tomahawk 5 (51.2 Tb/s at 500 W): each HBM switch handles ~41 Tb/s of
  incoming traffic, so at most 500 * (41/51.2) = 400 W.
- **HBM**: ~75 W per HBM4 stack, B = 4 stacks -> 300 W.
- **OEO**: ~1.15 pJ/bit over 81.92 Tb/s of I/O -> ~94 W.

Total ~794 W per switch, ~12.7 kW for H = 16 -- just above half a
Cerebras WSE-3's 23 kW, whose cooling would therefore suffice.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import HBMSwitchConfig, RouterConfig
from ..constants import (
    CEREBRAS_WSE3_POWER_W,
    HBM4_STACK_POWER_W,
    OEO_ENERGY_PJ_PER_BIT,
    TOMAHAWK5_CAPACITY,
    TOMAHAWK5_POWER_W,
)
from ..photonics.oeo import oeo_power_watts


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-HBM-switch (or per-router) power, by component."""

    processing_w: float
    hbm_w: float
    oeo_w: float

    @property
    def total_w(self) -> float:
        return self.processing_w + self.hbm_w + self.oeo_w

    @property
    def processing_share(self) -> float:
        """SS 5 quotes ~50% for the processing chiplets."""
        return self.processing_w / self.total_w if self.total_w else 0.0

    @property
    def hbm_share(self) -> float:
        """SS 5 quotes ~40% for HBM."""
        return self.hbm_w / self.total_w if self.total_w else 0.0

    @property
    def oeo_share(self) -> float:
        return self.oeo_w / self.total_w if self.total_w else 0.0

    def scaled(self, factor: float) -> "PowerBreakdown":
        return PowerBreakdown(
            self.processing_w * factor, self.hbm_w * factor, self.oeo_w * factor
        )


def hbm_switch_power(
    config: HBMSwitchConfig,
    hbm_stack_power_w: float = HBM4_STACK_POWER_W,
    oeo_pj_per_bit: float = OEO_ENERGY_PJ_PER_BIT,
    oeo_stages: int = 1,
) -> PowerBreakdown:
    """First-order power of one HBM switch.

    ``oeo_stages`` lets the Clos baseline charge its three conversion
    stages through the same model (Challenge 3).
    """
    incoming = config.aggregate_port_rate_bps  # one direction, ~41 Tb/s
    processing = TOMAHAWK5_POWER_W * (incoming / TOMAHAWK5_CAPACITY)
    hbm = config.n_stacks * hbm_stack_power_w
    oeo = oeo_power_watts(config.total_io_bps, oeo_stages, oeo_pj_per_bit)
    return PowerBreakdown(processing_w=processing, hbm_w=hbm, oeo_w=oeo)


def router_power(config: RouterConfig, oeo_stages: int = 1) -> PowerBreakdown:
    """Power of the whole SPS package: H switches."""
    per_switch = hbm_switch_power(config.switch, oeo_stages=oeo_stages)
    return per_switch.scaled(config.n_switches)


def cerebras_power_ratio(config: RouterConfig) -> float:
    """Router power over the Cerebras WSE-3's 23 kW (the paper: ~0.55,
    'just above half', so WSE-3-class cooling suffices)."""
    return router_power(config).total_w / CEREBRAS_WSE3_POWER_W


def energy_per_bit_pj(breakdown: PowerBreakdown, delivered_bps: float) -> float:
    """Energy efficiency: picojoules per delivered bit.

    The cross-architecture figure of merit: SPS at 794 W per switch
    moving 40.96 Tb/s of delivered traffic spends ~19.4 pJ/bit, vs the
    Tomahawk 5's ~9.8 pJ/bit for processing alone -- the difference is
    the deep HBM buffering and the optical I/O that a 1RU box does not
    carry.
    """
    if delivered_bps <= 0:
        raise ValueError(f"delivered rate must be positive, got {delivered_bps}")
    return breakdown.total_w / delivered_bps * 1e12


def efficiency_comparison(config: RouterConfig) -> "dict[str, float]":
    """pJ/bit for the SPS switch and its reference points."""
    switch = hbm_switch_power(config.switch)
    return {
        "sps_hbm_switch": energy_per_bit_pj(
            switch, config.switch.aggregate_port_rate_bps
        ),
        "tomahawk5_processing_only": TOMAHAWK5_POWER_W / TOMAHAWK5_CAPACITY * 1e12,
        "oeo_only": OEO_ENERGY_PJ_PER_BIT * 2.0,  # O/E + E/O per delivered bit
    }
