"""Capacity-per-area comparison with shipping routers (SS 5).

A Cisco 8201-32FH accepts 12.8 Tb/s in 1 RU; the SPS package ingests
655.36 Tb/s "while occupying about the same space" -- over 50x.  With
the general capacity-per-area framing (1-2 orders of magnitude), the
comparison generalises to any reference box.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import RouterConfig
from ..constants import CISCO_8201_32FH_CAPACITY


@dataclass(frozen=True)
class CapacityComparison:
    """Our router vs a reference router, same-space assumption."""

    ours_bps: float
    reference_bps: float
    reference_name: str

    @property
    def speedup(self) -> float:
        """Input-bandwidth ratio (the paper's 'over 50x')."""
        return self.ours_bps / self.reference_bps

    @property
    def orders_of_magnitude(self) -> float:
        """log10 of the ratio (the paper's '1-2 orders of magnitude')."""
        import math

        return math.log10(self.speedup)


def capacity_vs_reference(
    config: RouterConfig,
    reference_bps: float = CISCO_8201_32FH_CAPACITY,
    reference_name: str = "Cisco 8201-32FH (1RU)",
) -> CapacityComparison:
    """Compare the SPS ingress bandwidth with a shipping 1RU router."""
    return CapacityComparison(
        ours_bps=config.io_per_direction_bps,
        reference_bps=reference_bps,
        reference_name=reference_name,
    )


def wan_interconnect_savings(speedup: float, interconnect_fraction: float = 0.5) -> float:
    """Fraction of WAN capacity freed by consolidating smaller routers.

    SS 5 (*Wasted internal traffic*): scaling routers 1-2 orders of
    magnitude saves the WAN capacity currently devoted to interconnecting
    smaller routers.  With ``interconnect_fraction`` of port capacity
    spent on router-to-router links inside a PoP, consolidating ``s``
    boxes into one reclaims that fraction scaled by (s-1)/s.
    """
    if speedup < 1:
        raise ValueError(f"speedup must be >= 1, got {speedup}")
    if not 0 <= interconnect_fraction <= 1:
        raise ValueError(
            f"interconnect_fraction must be in [0, 1], got {interconnect_fraction}"
        )
    return interconnect_fraction * (speedup - 1.0) / speedup
