"""Datacenter switches from SPS principles (SS 5, *Designing datacenter
switches*).

The paper sketches two routes and this module prices both:

1. **HBM switches with smaller frames** -- less HBM capacity (datacenter
   switches buffer far less), smaller frames for latency; the latency
   side is simulated in E14, the power/capacity side computed here.
2. **SPS from commercial switch chiplets** (Tomahawk/Jericho class) --
   keeps the single-OEO split but replaces the shared-memory HBM switch
   with a shipping chip, solving the radix and latency concerns at the
   cost of small-buffer behaviour.

It also carries the SS 5 conclusion's processing question:
:func:`processing_reduction_projection` shows how router power scales if
simpler processing (e.g. SD-WAN source routing [40]) cuts the chiplet's
per-bit work.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

from ..config import HBMSwitchConfig, RouterConfig
from ..constants import TOMAHAWK5_CAPACITY, TOMAHAWK5_POWER_W
from ..errors import ConfigError
from ..photonics.oeo import oeo_power_watts
from .power import PowerBreakdown, hbm_switch_power


@dataclass(frozen=True)
class ChipletSPSDesign:
    """An SPS package built from commercial switch chiplets."""

    n_chiplets: int
    chiplet_capacity_bps: float
    chiplet_power_w: float
    total_capacity_bps: float
    oeo_power_w: float

    @property
    def total_power_w(self) -> float:
        return self.n_chiplets * self.chiplet_power_w + self.oeo_power_w

    @property
    def power_per_bps(self) -> float:
        return self.total_power_w / self.total_capacity_bps


def chiplet_sps_design(
    target_capacity_bps: float,
    chiplet_capacity_bps: float = TOMAHAWK5_CAPACITY,
    chiplet_power_w: float = TOMAHAWK5_POWER_W,
) -> ChipletSPSDesign:
    """Size an SPS package of commercial chiplets for a target capacity.

    The split works exactly as for HBM switches: fibers are spatially
    divided across chiplets, one OEO per packet.
    """
    if target_capacity_bps <= 0:
        raise ConfigError(f"capacity must be positive, got {target_capacity_bps}")
    import math

    n = math.ceil(target_capacity_bps / chiplet_capacity_bps)
    total = n * chiplet_capacity_bps
    oeo = oeo_power_watts(2.0 * total, conversion_stages=1)
    return ChipletSPSDesign(
        n_chiplets=n,
        chiplet_capacity_bps=chiplet_capacity_bps,
        chiplet_power_w=chiplet_power_w,
        total_capacity_bps=total,
        oeo_power_w=oeo,
    )


def datacenter_hbm_switch(
    base: HBMSwitchConfig,
    buffer_fraction: float = 0.1,
    frame_shrink: int = 4,
) -> HBMSwitchConfig:
    """The SS 5 HBM-switch datacenter variant.

    Datacenter switches "use less buffering than internet routers", so
    the HBM capacity shrinks to ``buffer_fraction`` of the router's, and
    frames shrink by ``frame_shrink`` for latency (E14 measures the
    latency/legality trade of the shrink).
    """
    if not 0 < buffer_fraction <= 1:
        raise ConfigError(f"buffer_fraction must be in (0, 1], got {buffer_fraction}")
    if base.segment_bytes % frame_shrink != 0:
        raise ConfigError(
            f"frame_shrink {frame_shrink} does not divide the "
            f"{base.segment_bytes}-B segment"
        )
    small_stack = replace(
        base.stack, capacity_bytes=int(base.stack.capacity_bytes * buffer_fraction)
    )
    return replace(
        base,
        stack=small_stack,
        segment_bytes=base.segment_bytes // frame_shrink,
    )


def datacenter_power_saving(config: RouterConfig, buffer_fraction: float = 0.1) -> float:
    """Power saved by the smaller-buffer datacenter variant.

    HBM power scales with the stack count needed for *bandwidth* (which
    is unchanged), but capacity-driven designs could drop stacks when
    future generations raise per-stack bandwidth; conservatively, only
    the refresh/background share scales with capacity, which we bound at
    20% of HBM power.  Returns the fraction of total power saved.
    """
    if not 0 < buffer_fraction <= 1:
        raise ConfigError(f"buffer_fraction must be in (0, 1], got {buffer_fraction}")
    full = hbm_switch_power(config.switch)
    background_share = 0.2
    hbm_saving = full.hbm_w * background_share * (1.0 - buffer_fraction)
    return hbm_saving / full.total_w


def processing_reduction_projection(
    config: RouterConfig, reduction_factors: List[float] = (1.0, 0.75, 0.5, 0.25)
) -> List[PowerBreakdown]:
    """Router power if processing simplifies (SS 5 conclusion).

    "Could operators reduce their processing needs if this increases
    their router capacity?  Recent suggestions, such as source routing
    in SD-WANs, may lead the way."  Each factor scales the processing
    component only.
    """
    base = hbm_switch_power(config.switch)
    projections = []
    for factor in reduction_factors:
        if factor <= 0:
            raise ConfigError(f"reduction factor must be positive, got {factor}")
        projections.append(
            PowerBreakdown(
                processing_w=base.processing_w * factor,
                hbm_w=base.hbm_w,
                oeo_w=base.oeo_w,
            ).scaled(config.n_switches)
        )
    return projections
