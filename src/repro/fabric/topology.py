"""Declarative fabric topologies: routers-in-a-package as network nodes.

The paper positions the petabit package as the building block of
next-generation DCN and internet fabrics; this module wires many of
them into the topologies the optical-DCN literature evaluates
(Unified Routing; Switch-Less Dragonfly):

- :class:`ClosTopology` -- k-ary leaf/spine (2-stage) or
  leaf/aggregation/core (3-stage) folded Clos; endpoints are leaves.
- :class:`ExpanderTopology` -- a d-regular random circulant graph: the
  offsets are drawn by a seeded RNG, so adjacency is a pure function of
  the frozen fields (digest-friendly, identical in every process).
- :class:`RotationTopology` -- Opera-style round-robin rotation: the
  N-1 round-robin matchings visit every pair exactly once per cycle, so
  the cycle-averaged fabric is the complete graph with per-link
  capacity 1/(N-1) of a node's line rate.
- :class:`DragonflyTopology` -- groups of routers, complete graphs
  inside each group, exactly one global link per group pair
  (the switch-less wafer-scale layout).

Every topology is a validated frozen dataclass.  Adjacency is derived
deterministically from the fields alone -- no hidden state -- which is
what lets a topology participate in a :class:`~repro.runtime.Scenario`
digest and makes fabric cells cacheable.

Capacity convention: a router's package egress (``RouterConfig.
io_per_direction_bps``) is divided evenly over its out-links, so the
directed link ``u -> v`` carries ``io_per_direction_bps / degree(u)``.
The rotation topology's 1/(N-1) per-link share falls out of the same
rule applied to the cycle-averaged complete graph.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..errors import ConfigError

__all__ = [
    "TOPOLOGY_TYPES",
    "ClosTopology",
    "DragonflyTopology",
    "ExpanderTopology",
    "FabricTopology",
    "RotationTopology",
    "topology_from_dict",
    "topology_to_dict",
]


class FabricTopology:
    """Base class: deterministic adjacency over ``n_routers`` nodes.

    Subclasses implement :meth:`_build_adjacency` (called lazily, result
    memoised on the instance) and :meth:`endpoints`.  All graphs here
    are undirected at the physical level; :meth:`neighbors` returns the
    sorted out-neighbourhood used for both directions.
    """

    @property
    def n_routers(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def _build_adjacency(self) -> Dict[int, Tuple[int, ...]]:  # pragma: no cover
        raise NotImplementedError

    def endpoints(self) -> Tuple[int, ...]:
        """Routers that source and sink fabric traffic (default: all)."""
        return tuple(range(self.n_routers))

    def adjacency(self) -> Dict[int, Tuple[int, ...]]:
        """``router -> sorted tuple of neighbours`` (memoised)."""
        cached = getattr(self, "_adjacency_cache", None)
        if cached is None:
            cached = self._build_adjacency()
            object.__setattr__(self, "_adjacency_cache", cached)
        return cached

    def neighbors(self, router: int) -> Tuple[int, ...]:
        adjacency = self.adjacency()
        if router not in adjacency:
            raise ConfigError(
                f"router {router} out of range (fabric has {self.n_routers})"
            )
        return adjacency[router]

    def out_degree(self, router: int) -> int:
        return len(self.neighbors(router))

    def links(self) -> Tuple[Tuple[int, int], ...]:
        """Every directed link ``(u, v)``, sorted."""
        return tuple(
            (u, v) for u in sorted(self.adjacency()) for v in self.neighbors(u)
        )

    def has_link(self, u: int, v: int) -> bool:
        return 0 <= u < self.n_routers and v in self.adjacency()[u]

    def is_connected(self) -> bool:
        adjacency = self.adjacency()
        if not adjacency:
            return False
        seen = {0}
        frontier = [0]
        while frontier:
            node = frontier.pop()
            for peer in adjacency[node]:
                if peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
        return len(seen) == self.n_routers

    def link_capacity_fraction(self, u: int, v: int) -> float:
        """Fraction of ``u``'s line rate carried by the link ``u -> v``."""
        if not self.has_link(u, v):
            raise ConfigError(f"no link {u} -> {v} in {type(self).__name__}")
        return 1.0 / self.out_degree(u)

    # -- digest content -------------------------------------------------------

    def describe(self) -> Dict:
        """JSON-safe content for scenario digests and CLI output."""
        return topology_to_dict(self)


def _check_positive(value: int, name: str) -> None:
    if value <= 0:
        raise ConfigError(f"{name} must be positive, got {value}")


@dataclass(frozen=True)
class ClosTopology(FabricTopology):
    """k-ary folded Clos; endpoints are the leaves.

    ``stages = 2``: ``k`` leaves fully meshed with ``k`` spines (the
    leaf/spine fabric; ``k = 2`` is the 4-router acceptance cell).

    ``stages = 3``: ``k`` pods, each of ``k`` leaves and ``k``
    aggregation routers (leaves join every aggregation router *of their
    pod*), plus ``k`` cores joined to every aggregation router -- so
    inter-pod paths run leaf-agg-core-agg-leaf while intra-pod traffic
    turns around at the aggregation tier.

    Router ids: leaves first (pod-major), then aggregations
    (pod-major), then cores.
    """

    k: int = 2
    stages: int = 2

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ConfigError(f"Clos arity k must be >= 2, got {self.k}")
        if self.stages not in (2, 3):
            raise ConfigError(f"stages must be 2 or 3, got {self.stages}")

    @property
    def n_leaves(self) -> int:
        return self.k if self.stages == 2 else self.k * self.k

    @property
    def n_routers(self) -> int:
        if self.stages == 2:
            return 2 * self.k
        return 2 * self.k * self.k + self.k

    def endpoints(self) -> Tuple[int, ...]:
        return tuple(range(self.n_leaves))

    def _build_adjacency(self) -> Dict[int, Tuple[int, ...]]:
        k = self.k
        adjacency = {r: set() for r in range(self.n_routers)}

        def join(u: int, v: int) -> None:
            adjacency[u].add(v)
            adjacency[v].add(u)

        if self.stages == 2:
            for leaf in range(k):
                for spine in range(k, 2 * k):
                    join(leaf, spine)
        else:
            aggs_base = k * k
            cores_base = 2 * k * k
            for pod in range(k):
                for i in range(k):
                    leaf = pod * k + i
                    for j in range(k):
                        join(leaf, aggs_base + pod * k + j)
            for agg in range(aggs_base, cores_base):
                for core in range(cores_base, cores_base + k):
                    join(agg, core)
        return {r: tuple(sorted(peers)) for r, peers in adjacency.items()}


@dataclass(frozen=True)
class ExpanderTopology(FabricTopology):
    """A ``degree``-regular random circulant graph on ``n_routers`` nodes.

    Node ``i`` joins ``i +- o (mod N)`` for each drawn offset ``o``; an
    offset ``o < N/2`` contributes 2 to the degree and ``o = N/2`` (even
    N) contributes 1.  Offsets are drawn by ``numpy``'s seeded generator
    from the frozen ``seed`` field, and redrawn (bounded, deterministic)
    until the offset set generates a connected graph -- random circulants
    are strong expanders with probability approaching 1, and regularity
    holds by construction.
    """

    n_routers: int = 8
    degree: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        _check_positive(self.n_routers, "n_routers")
        _check_positive(self.degree, "degree")
        if self.degree >= self.n_routers:
            raise ConfigError(
                f"degree {self.degree} needs more than {self.n_routers} routers"
            )
        if self.degree % 2 and self.n_routers % 2:
            raise ConfigError(
                "odd degree requires an even router count "
                f"(got degree {self.degree}, n_routers {self.n_routers})"
            )
        if self.seed < 0:
            raise ConfigError(f"seed must be >= 0, got {self.seed}")

    def _build_adjacency(self) -> Dict[int, Tuple[int, ...]]:
        n = self.n_routers
        half = n // 2
        for attempt in range(64):
            rng = np.random.default_rng(
                np.random.SeedSequence((self.n_routers, self.degree, self.seed, attempt))
            )
            # Draw distinct offsets until their degree contributions sum
            # to exactly `degree`: the half-offset (even n) counts once,
            # everything else twice.
            pool = list(rng.permutation(np.arange(1, half + 1)))
            offsets = []
            remaining = self.degree
            for offset in pool:
                offset = int(offset)
                contribution = 1 if (n % 2 == 0 and offset == half) else 2
                if contribution <= remaining:
                    offsets.append(offset)
                    remaining -= contribution
                if remaining == 0:
                    break
            if remaining != 0:
                continue
            if math.gcd(n, *offsets) != 1:
                continue  # disconnected circulant; redraw
            adjacency = {}
            for i in range(n):
                peers = set()
                for offset in offsets:
                    peers.add((i + offset) % n)
                    peers.add((i - offset) % n)
                adjacency[i] = tuple(sorted(peers))
            return adjacency
        raise ConfigError(
            f"could not draw a connected {self.degree}-regular circulant on "
            f"{n} routers from seed {self.seed}"
        )


@dataclass(frozen=True)
class RotationTopology(FabricTopology):
    """Opera-style round-robin rotation over ``n_routers`` nodes.

    The physical fabric realises one perfect matching per time slot and
    rotates through the N-1 round-robin (circle-method) matchings; over
    a full cycle every pair is directly connected exactly once.  The
    rate-level model used by the fabric engine is the cycle average: the
    complete graph with each link at 1/(N-1) of a node's line rate
    (exactly the even-division capacity rule applied to K_N).

    ``slot_ns`` is the duration of one matching slot; hop-on-hop-off
    routing charges each hop the mean wait for its slot,
    ``slot_ns * (N-1) / 2``.
    """

    n_routers: int = 4
    slot_ns: float = 1_000.0

    def __post_init__(self) -> None:
        _check_positive(self.n_routers, "n_routers")
        if self.n_routers % 2 or self.n_routers < 4:
            raise ConfigError(
                "rotation needs an even router count >= 4, got "
                f"{self.n_routers}"
            )
        if self.slot_ns <= 0:
            raise ConfigError(f"slot_ns must be positive, got {self.slot_ns}")

    def _build_adjacency(self) -> Dict[int, Tuple[int, ...]]:
        n = self.n_routers
        return {
            i: tuple(j for j in range(n) if j != i) for i in range(n)
        }

    def matchings(self) -> Tuple[Tuple[Tuple[int, int], ...], ...]:
        """The N-1 round-robin matchings (circle method), in slot order.

        Each matching is a tuple of ``(low, high)`` pairs sorted by the
        low endpoint; over the full cycle every unordered pair appears
        exactly once (a perfect matching decomposition of K_N).
        """
        n = self.n_routers
        ring = list(range(1, n))
        rounds = []
        for _ in range(n - 1):
            table = [0] + ring
            pairs = []
            for k in range(n // 2):
                u, v = table[k], table[n - 1 - k]
                pairs.append((min(u, v), max(u, v)))
            rounds.append(tuple(sorted(pairs)))
            ring = ring[-1:] + ring[:-1]
        return tuple(rounds)

    def mean_slot_wait_ns(self) -> float:
        """Mean wait until a given pair's slot comes around."""
        return self.slot_ns * (self.n_routers - 1) / 2.0


@dataclass(frozen=True)
class DragonflyTopology(FabricTopology):
    """Groups of routers: complete intra-group graphs, one global link
    per group pair (the canonical "absolute" arrangement).

    Group ``g`` owns global ports ``0 .. n_groups-2``; port ``p`` leads
    to group ``p`` if ``p < g`` else ``p + 1``, and is attached to
    router ``p mod routers_per_group`` of the group.  Every group pair
    gets exactly one global link, and the assignment is a pure function
    of the fields.
    """

    n_groups: int = 3
    routers_per_group: int = 2

    def __post_init__(self) -> None:
        _check_positive(self.n_groups, "n_groups")
        _check_positive(self.routers_per_group, "routers_per_group")
        if self.n_groups < 2:
            raise ConfigError("dragonfly needs at least 2 groups")
        if self.routers_per_group < 2 and self.n_groups > 2:
            # With one router per group the topology degenerates to a
            # complete graph over groups; allow it only for 2 groups.
            raise ConfigError(
                "dragonfly needs >= 2 routers per group (or exactly 2 groups)"
            )

    @property
    def n_routers(self) -> int:
        return self.n_groups * self.routers_per_group

    def router_id(self, group: int, local: int) -> int:
        return group * self.routers_per_group + local

    def _build_adjacency(self) -> Dict[int, Tuple[int, ...]]:
        a = self.routers_per_group
        adjacency = {r: set() for r in range(self.n_routers)}
        for g in range(self.n_groups):
            members = [self.router_id(g, i) for i in range(a)]
            for i, u in enumerate(members):
                for v in members[i + 1:]:
                    adjacency[u].add(v)
                    adjacency[v].add(u)
        for g in range(self.n_groups):
            for port in range(self.n_groups - 1):
                peer_group = port if port < g else port + 1
                if peer_group < g:
                    continue  # each unordered pair once, from the lower group
                u = self.router_id(g, port % a)
                back_port = g if g < peer_group else g - 1
                v = self.router_id(peer_group, back_port % a)
                adjacency[u].add(v)
                adjacency[v].add(u)
        return {r: tuple(sorted(peers)) for r, peers in adjacency.items()}


#: Every concrete topology type, for (de)serialisation and validation.
TOPOLOGY_TYPES = (
    ClosTopology,
    ExpanderTopology,
    RotationTopology,
    DragonflyTopology,
)


def topology_to_dict(topology: FabricTopology) -> Dict:
    """JSON-safe dict of a topology (its frozen fields plus ``kind``)."""
    import dataclasses

    if not isinstance(topology, TOPOLOGY_TYPES):
        raise ConfigError(
            f"unknown topology type {type(topology).__name__}"
        )
    data = dataclasses.asdict(topology)
    data["kind"] = type(topology).__name__
    return data


def topology_from_dict(data: Dict) -> FabricTopology:
    """Inverse of :func:`topology_to_dict`."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    by_name = {cls.__name__: cls for cls in TOPOLOGY_TYPES}
    if kind not in by_name:
        raise ConfigError(f"unknown topology kind {kind!r}")
    return by_name[kind](**payload)
