"""End-to-end fabric accounting: flows, links, routers, totals.

A :class:`FabricReport` aggregates one fabric cell the way
:class:`~repro.core.sps.RouterReport` aggregates one package: per-flow
delivered fractions, hop counts and cumulative latency, per-link
offered rate and utilisation, per-router load and delivered fraction,
and fabric-wide totals.  It follows the repo's report conventions --
``to_dict``/``from_dict`` round-trip, JSON-safe primitives only (the
generic :func:`repro.reporting.export.report_to_dict` duck-types on
``to_dict``), and deterministic ordering of every list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

SCHEMA = "repro-fabric-v1"


@dataclass
class FlowSummary:
    """One (src, dst) endpoint flow, aggregated over its weighted paths."""

    src: int
    dst: int
    offered_bps: float
    delivered_fraction: float
    #: Path-weighted mean router visits (direct on a complete graph = 2).
    mean_hops: float
    #: Path-weighted mean end-to-end latency: per-hop router latency
    #: plus link propagation (and rotation slot waits), ns.
    mean_latency_ns: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "src": self.src,
            "dst": self.dst,
            "offered_bps": self.offered_bps,
            "delivered_fraction": self.delivered_fraction,
            "mean_hops": self.mean_hops,
            "mean_latency_ns": self.mean_latency_ns,
        }


@dataclass
class LinkSummary:
    """One directed inter-package link."""

    src: int
    dst: int
    capacity_bps: float
    offered_bps: float
    #: offered / capacity, uncapped (values > 1 flag an overloaded link).
    utilization: float
    #: Fraction of the run during which a cut severed this link.
    cut_fraction: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "src": self.src,
            "dst": self.dst,
            "capacity_bps": self.capacity_bps,
            "offered_bps": self.offered_bps,
            "utilization": self.utilization,
            "cut_fraction": self.cut_fraction,
        }


@dataclass
class RouterSummary:
    """One router node, aggregated over every hop round that loaded it."""

    router: int
    offered_bps: float
    delivered_fraction: float
    #: Fraction of the run during which a RouterDown held the node.
    down_fraction: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "router": self.router,
            "offered_bps": self.offered_bps,
            "delivered_fraction": self.delivered_fraction,
            "down_fraction": self.down_fraction,
        }


@dataclass
class FabricReport:
    """End-to-end accounting of one fabric cell."""

    topology: Dict[str, Any]
    routing: str
    fidelity: str
    duration_ns: float
    n_routers: int
    flows: List[FlowSummary] = field(default_factory=list)
    links: List[LinkSummary] = field(default_factory=list)
    routers: List[RouterSummary] = field(default_factory=list)
    fault_events: List[str] = field(default_factory=list)
    #: Merged telemetry dump of the cell's engine runs plus the fabric's
    #: own link timelines, or ``None`` when telemetry was off.
    telemetry: Optional[Dict[str, Any]] = None

    # -- totals ---------------------------------------------------------------

    @property
    def offered_bps(self) -> float:
        return sum(f.offered_bps for f in self.flows)

    @property
    def delivered_bps(self) -> float:
        return sum(f.offered_bps * f.delivered_fraction for f in self.flows)

    @property
    def delivered_fraction(self) -> float:
        offered = self.offered_bps
        return self.delivered_bps / offered if offered > 0 else 0.0

    @property
    def mean_hops(self) -> float:
        """Delivered-rate-weighted mean router visits per flow."""
        delivered = self.delivered_bps
        if delivered <= 0:
            return 0.0
        return (
            sum(
                f.mean_hops * f.offered_bps * f.delivered_fraction
                for f in self.flows
            )
            / delivered
        )

    @property
    def mean_latency_ns(self) -> float:
        """Delivered-rate-weighted mean end-to-end latency."""
        delivered = self.delivered_bps
        if delivered <= 0:
            return 0.0
        return (
            sum(
                f.mean_latency_ns * f.offered_bps * f.delivered_fraction
                for f in self.flows
            )
            / delivered
        )

    @property
    def max_link_utilization(self) -> float:
        return max((l.utilization for l in self.links), default=0.0)

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "topology": self.topology,
            "routing": self.routing,
            "fidelity": self.fidelity,
            "duration_ns": self.duration_ns,
            "n_routers": self.n_routers,
            "offered_bps": self.offered_bps,
            "delivered_bps": self.delivered_bps,
            "delivered_fraction": self.delivered_fraction,
            "mean_hops": self.mean_hops,
            "mean_latency_ns": self.mean_latency_ns,
            "max_link_utilization": self.max_link_utilization,
            "fault_events": list(self.fault_events),
            "flows": [f.to_dict() for f in self.flows],
            "links": [l.to_dict() for l in self.links],
            "routers": [r.to_dict() for r in self.routers],
            **(
                {"telemetry": self.telemetry}
                if self.telemetry is not None
                else {}
            ),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FabricReport":
        return cls(
            topology=dict(data["topology"]),
            routing=data["routing"],
            fidelity=data["fidelity"],
            duration_ns=float(data["duration_ns"]),
            n_routers=int(data["n_routers"]),
            flows=[FlowSummary(**f) for f in data.get("flows", [])],
            links=[LinkSummary(**l) for l in data.get("links", [])],
            routers=[RouterSummary(**r) for r in data.get("routers", [])],
            fault_events=list(data.get("fault_events", [])),
            telemetry=data.get("telemetry"),
        )
