"""Fabric execution: multi-hop composition over the per-package engines.

One fabric cell = one topology + one routing policy + one demand
pattern, executed as a sequence of *hop rounds*:

1. Every endpoint flow is expanded into its weighted path set
   (:mod:`repro.fabric.routing`); each path starts with its share of
   the flow's offered rate.
2. At hop round ``k``, every path currently alive contributes its rate
   to the transit load of the k-th router on its sequence.  Each loaded
   router is run **through the existing single-package engine** at that
   load -- the discrete-event pipeline for ``fidelity="packet"``
   (seeded traffic through :class:`~repro.core.sps.SplitParallelSwitch`)
   or the fluid engine for ``fidelity="flow"``
   (:func:`~repro.flow.flow_router_report`) -- and the run's delivered
   fraction multiplies the rates of every path transiting it.  Runs
   with identical (load, fault) signatures are executed once and shared
   (the per-router engine is used as a rate-transfer function, so
   sharing is exact and keeps packet-fidelity fabrics tractable).
3. Between rounds, each surviving path crosses the link to its next
   router: the link's offered rate accumulates against a run-wide
   capacity budget (a directed link crossed at several hop rounds is
   one shared resource, so total delivered through it never exceeds
   its capacity), an offered/capacity excess is shed proportionally, an
   active :class:`~repro.faults.LinkCut` sheds its time fraction and
   the covered share of the budget, and propagation delay (plus the
   rotation slot wait for rotation fabrics) adds to the path's latency.

Fabric-scoped faults: a :class:`~repro.faults.RouterDown` window maps
to a :class:`~repro.faults.SwitchFailure` over every one of the node's
H switches inside that node's engine runs -- so down windows cost
exactly what the single-package engines compute -- and a ``LinkCut``
removes the cut link's traffic for the fraction of the run it covers.

Transit loads above a router's line rate are handled analytically: the
engine runs at the admissible clamp and the excess ``min(1, 1/rho)`` is
shed before the run (the package cannot accept more than line rate).

Telemetry (both fidelities): each engine run's registry dump is
re-labelled with the ``router=`` dimension and merged in (round,
router) order, so fabric dumps obey the same disjoint-series,
deterministic-merge rules as per-switch telemetry.  On top of the
merged per-node dumps the fabric synthesizes one utilization window
series per loaded link (``repro_fabric_link_window_utilization``,
``link="A:B"``) from its analytic hop model -- windows a ``LinkCut``
covers dip by the cut share -- and tags every fabric fault window.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import RouterConfig
from ..errors import ConfigError
from ..faults.model import FABRIC_FAULT_TYPES, LinkCut, RouterDown, SwitchFailure
from ..faults.schedule import FaultSchedule
from .report import FabricReport, FlowSummary, LinkSummary, RouterSummary
from .routing import compute_paths
from .topology import FabricTopology, RotationTopology

#: Demand patterns over the endpoint set.  ``uniform`` spreads each
#: source's load evenly; ``hotspot`` aims :data:`HOTSPOT_SHARE` of it at
#: the source's antipodal partner (endpoint index + E/2 mod E) -- the
#: skewed near-permutation matrix that concentrates direct routes on few
#: links while the fabric keeps spare disjoint capacity, i.e. the case
#: Valiant load balancing exists for.
TRAFFIC_PATTERNS = ("uniform", "hotspot")

#: Share of each source's offered load aimed at its hot partner under
#: the ``hotspot`` pattern (the rest spreads uniformly).
HOTSPOT_SHARE = 0.5

#: Per-link utilization timeline (windowed series, ``link="A:B"``).
LINK_WINDOW_UTILIZATION = "repro_fabric_link_window_utilization"


def validate_fabric_schedule(
    schedule: Optional[FaultSchedule], topology: FabricTopology
) -> None:
    """Check a fabric schedule against a topology.

    Fabric cells accept only fabric-scoped events (``RouterDown``,
    ``LinkCut``): package-internal faults are ambiguous at fabric scope
    (which node?), so they are rejected rather than guessed at.
    """
    if schedule is None:
        return
    for event in schedule:
        if not isinstance(event, FABRIC_FAULT_TYPES):
            raise ConfigError(
                f"fabric scenarios take fabric-scoped faults only "
                f"(router:R / link:U:V), got {event.describe()}"
            )
        if isinstance(event, RouterDown):
            if not 0 <= event.router < topology.n_routers:
                raise ConfigError(
                    f"fault targets router {event.router}, fabric has "
                    f"{topology.n_routers}"
                )
        elif isinstance(event, LinkCut):
            if not topology.has_link(event.a, event.b):
                raise ConfigError(
                    f"fault cuts link {event.a}--{event.b}, which the "
                    f"{type(topology).__name__} does not contain"
                )


def _covered_ns(events, t0: float, t1: float) -> float:
    """Length of [t0, t1) covered by the union of event windows."""
    clipped = sorted(
        (max(t0, e.start_ns), min(t1, e.end_ns))
        for e in events
        if e.start_ns < t1 and e.end_ns > t0
    )
    covered = 0.0
    cursor = t0
    for start, end in clipped:
        start = max(start, cursor)
        if end > start:
            covered += end - start
            cursor = end
    return covered


def _window_fraction(events, duration_ns: float) -> float:
    """Fraction of [0, duration) covered by the union of event windows."""
    if duration_ns <= 0:
        return 0.0
    return _covered_ns(events, 0.0, duration_ns) / duration_ns


def _link_timelines(
    registry,
    topology: FabricTopology,
    link_offered: Dict[Tuple[int, int], float],
    cut_events: Dict[Tuple[int, int], List[LinkCut]],
    line_rate: float,
    duration_ns: float,
) -> None:
    """Synthesize per-link utilization window series from the hop model.

    The hop-round engine is analytic in time -- each link carries one
    run-total offered rate -- so its timeline is reconstructed: every
    window of an uncut link sits at ``offered / capacity``, and a window
    a :class:`~repro.faults.LinkCut` overlaps is scaled by the uncut
    share of that window, so cut windows show up as dips (to zero when
    the cut covers the whole window).
    """
    from ..telemetry.timeseries import DEFAULT_WINDOW_NS

    window_ns = max(DEFAULT_WINDOW_NS, duration_ns / 64.0)
    n_windows = max(1, int(math.ceil(duration_ns / window_ns - 1e-9)))
    for (u, v) in topology.links():
        offered = link_offered.get((u, v), 0.0)
        if offered <= 0:
            continue
        capacity = line_rate * topology.link_capacity_fraction(u, v)
        level = offered / capacity if capacity > 0 else 0.0
        cuts = cut_events.get((min(u, v), max(u, v)), ())
        series = registry.timeseries(
            LINK_WINDOW_UTILIZATION,
            "link utilization per window (cut windows dip)",
            window_ns=window_ns,
            agg="max",
            link=f"{u}:{v}",
        )
        for w in range(n_windows):
            w0 = w * window_ns
            w1 = min(w0 + window_ns, duration_ns)
            uncut = 1.0 - (
                _covered_ns(cuts, w0, w1) / (w1 - w0) if w1 > w0 else 0.0
            )
            series.observe(w0, level * uncut)


def _demand_matrix(
    endpoints: Tuple[int, ...], load: float, line_rate_bps: float, pattern: str
) -> Dict[Tuple[int, int], float]:
    """Offered rate (bps) per (src, dst) endpoint pair."""
    n = len(endpoints)
    if n < 2:
        raise ConfigError(f"a fabric needs >= 2 endpoints, got {n}")
    total = load * line_rate_bps
    demand: Dict[Tuple[int, int], float] = {}
    if pattern == "uniform":
        share = total / (n - 1)
        for src in endpoints:
            for dst in endpoints:
                if src != dst:
                    demand[(src, dst)] = share
        return demand
    # hotspot: each source aims HOTSPOT_SHARE of its load at its
    # antipodal partner and spreads the rest uniformly.
    for i, src in enumerate(endpoints):
        hot = endpoints[(i + n // 2) % n]
        if hot == src:  # odd n=1 cannot happen (n >= 2 checked above)
            hot = endpoints[(i + 1) % n]
        cold = [d for d in endpoints if d not in (src, hot)]
        if not cold:
            demand[(src, hot)] = total
            continue
        demand[(src, hot)] = total * HOTSPOT_SHARE
        for dst in cold:
            demand[(src, dst)] = total * (1.0 - HOTSPOT_SHARE) / len(cold)
    return demand


class _RouterRuns:
    """Memoised per-router engine runs keyed by (load, fault signature).

    The engines are deterministic functions of (config, load, schedule,
    seed); identical signatures share one run *and one derived seed*,
    so the per-router transfer function is evaluated once per distinct
    signature -- on symmetric fabrics a whole hop round collapses to a
    single engine run.
    """

    def __init__(
        self,
        config: RouterConfig,
        duration_ns: float,
        seed: int,
        fidelity: str,
        drain: bool,
        want_telemetry: bool,
    ) -> None:
        self.config = config
        self.duration_ns = duration_ns
        self.seed = seed
        self.fidelity = fidelity
        self.drain = drain
        self.want_telemetry = want_telemetry
        self._memo: Dict[Tuple, Tuple[float, float, Optional[dict]]] = {}

    def run(
        self, eff_load: float, schedule: Optional[FaultSchedule]
    ) -> Tuple[float, float, Optional[dict]]:
        """-> (delivered_fraction, mean_latency_ns, telemetry dump)."""
        fault_key = (
            tuple(e.describe() for e in schedule) if schedule is not None else ()
        )
        key = (round(eff_load, 12), fault_key)
        hit = self._memo.get(key)
        if hit is not None:
            return hit
        derived_seed = int(
            np.random.SeedSequence(
                (self.seed, len(self._memo))
            ).generate_state(1, np.uint32)[0]
        )
        if self.fidelity == "flow":
            result = self._run_flow(eff_load, schedule)
        else:
            result = self._run_packet(eff_load, schedule, derived_seed)
        self._memo[key] = result
        return result

    def _run_flow(self, eff_load, schedule):
        from ..flow import flow_router_report

        registry = None
        if self.want_telemetry:
            from ..telemetry import MetricsRegistry

            registry = MetricsRegistry()
        report = flow_router_report(
            self.config,
            load=eff_load,
            duration_ns=self.duration_ns,
            drain=self.drain,
            schedule=schedule,
            telemetry=registry,
        )
        dump = registry.to_dict() if registry is not None else None
        return (
            report.delivered_fraction,
            _finite(report.latency_summary()["mean_ns"]),
            dump,
        )

    def _run_packet(self, eff_load, schedule, derived_seed):
        from ..core.pfi import PFIOptions
        from ..core.sps import SplitParallelSwitch
        from ..traffic import ArrivalProcess, ImixSize, TrafficGenerator, uniform_matrix

        generator = TrafficGenerator(
            n_ports=self.config.n_ribbons,
            port_rate_bps=(
                self.config.fibers_per_ribbon * self.config.per_fiber_rate_bps
            ),
            matrix=uniform_matrix(self.config.n_ribbons, eff_load),
            size_dist=ImixSize(),
            process=ArrivalProcess("poisson"),
            seed=derived_seed,
        )
        packets = generator.materialize(self.duration_ns)
        registry = None
        if self.want_telemetry:
            from ..telemetry import MetricsRegistry

            registry = MetricsRegistry()
        router = SplitParallelSwitch(self.config, options=PFIOptions())
        report = router.run(
            packets,
            self.duration_ns,
            drain=self.drain,
            fault_schedule=schedule,
            telemetry=registry,
        )
        dump = registry.to_dict() if registry is not None else None
        return (
            report.delivered_fraction,
            _finite(report.latency_summary()["mean_ns"]),
            dump,
        )


def _finite(value: float) -> float:
    return 0.0 if value is None or math.isnan(value) else float(value)


def _relabel_router(dump: dict, router: int) -> dict:
    """A copy of a telemetry dump with ``router=`` added to every series."""
    relabeled = {
        "schema": dump["schema"],
        "metrics": [
            {**entry, "labels": {**entry.get("labels", {}), "router": str(router)}}
            for entry in dump["metrics"]
        ],
    }
    if dump.get("timeseries"):
        relabeled["timeseries"] = [
            {**entry, "labels": {**entry.get("labels", {}), "router": str(router)}}
            for entry in dump["timeseries"]
        ]
    return relabeled


def simulate_fabric(
    config: RouterConfig,
    topology: FabricTopology,
    routing: str = "direct",
    load: float = 0.6,
    duration_ns: float = 50_000.0,
    seed: int = 0,
    fidelity: str = "flow",
    schedule: Optional[FaultSchedule] = None,
    link_delay_ns: float = 0.0,
    pattern: str = "uniform",
    drain: bool = True,
    registry=None,
) -> FabricReport:
    """Run one fabric cell end to end; returns its :class:`FabricReport`.

    ``config`` is the per-node package (every router is identical);
    ``load`` is each endpoint's offered load as a fraction of its
    package line rate, spread over the other endpoints according to
    ``pattern``.  ``registry`` receives the merged, ``router=``-labelled
    telemetry of every engine run (either fidelity) plus the fabric's
    own per-link utilization timelines; its dump also rides on the
    returned report's ``telemetry`` field.
    """
    if not 0.0 <= load <= 1.0:
        raise ConfigError(f"load must be in [0, 1], got {load}")
    if duration_ns <= 0:
        raise ConfigError(f"duration_ns must be positive, got {duration_ns}")
    if fidelity not in ("packet", "flow"):
        raise ConfigError(
            f'fidelity must be "packet" or "flow", got {fidelity!r}'
        )
    if pattern not in TRAFFIC_PATTERNS:
        raise ConfigError(
            f"pattern must be one of {TRAFFIC_PATTERNS}, got {pattern!r}"
        )
    if link_delay_ns < 0:
        raise ConfigError(f"link_delay_ns must be >= 0, got {link_delay_ns}")
    if not topology.is_connected():
        raise ConfigError(f"{type(topology).__name__} is not connected")
    validate_fabric_schedule(schedule, topology)

    line_rate = config.io_per_direction_bps
    endpoints = topology.endpoints()
    demand = _demand_matrix(endpoints, load, line_rate, pattern)

    # Fabric fault projections: per-router down windows (as per-switch
    # failures for the engines) and per-link cut time fractions.
    down_events: Dict[int, List[RouterDown]] = {}
    cut_events: Dict[Tuple[int, int], List[LinkCut]] = {}
    if schedule is not None:
        for event in schedule:
            if isinstance(event, RouterDown):
                down_events.setdefault(event.router, []).append(event)
            else:
                cut_events.setdefault((event.a, event.b), []).append(event)
    router_schedules: Dict[int, Optional[FaultSchedule]] = {}
    down_fraction: Dict[int, float] = {}
    for router, events in down_events.items():
        router_schedules[router] = FaultSchedule(
            SwitchFailure(switch=h, start_ns=e.start_ns, end_ns=e.end_ns)
            for e in events
            for h in range(config.n_switches)
        )
        down_fraction[router] = _window_fraction(events, duration_ns)
    cut_fraction = {
        link: _window_fraction(events, duration_ns)
        for link, events in cut_events.items()
    }

    # Expand every flow into weighted paths carrying absolute rates.
    flow_paths: List[Tuple[Tuple[int, int], Tuple[int, ...], float]] = []
    for (src, dst) in sorted(demand):
        for path in compute_paths(topology, src, dst, routing):
            flow_paths.append(
                ((src, dst), path.routers, demand[(src, dst)] * path.weight)
            )
    rates = [rate for _, _, rate in flow_paths]
    latencies = [0.0] * len(flow_paths)
    max_visits = max(len(routers) for _, routers, _ in flow_paths)

    runs = _RouterRuns(
        config,
        duration_ns,
        seed,
        fidelity,
        drain,
        want_telemetry=registry is not None,
    )
    rotation_wait = (
        topology.mean_slot_wait_ns()
        if isinstance(topology, RotationTopology)
        else 0.0
    )

    router_offered: Dict[int, float] = {}
    router_delivered: Dict[int, float] = {}
    link_offered: Dict[Tuple[int, int], float] = {}
    link_remaining: Dict[Tuple[int, int], float] = {}
    telemetry_merges: List[Tuple[int, dict]] = []

    for k in range(max_visits):
        # -- router stage: aggregate transit loads, run each loaded node.
        loads: Dict[int, float] = {}
        for i, (_, routers, _) in enumerate(flow_paths):
            if len(routers) > k and rates[i] > 0:
                loads[routers[k]] = loads.get(routers[k], 0.0) + rates[i]
        factors: Dict[int, float] = {}
        mean_lat: Dict[int, float] = {}
        for router in sorted(loads):
            rho = loads[router] / line_rate
            eff_load = min(rho, 1.0)
            overload = min(1.0, 1.0 / rho) if rho > 0 else 1.0
            delivered, latency_ns, dump = runs.run(
                eff_load, router_schedules.get(router)
            )
            factors[router] = delivered * overload
            mean_lat[router] = latency_ns
            router_offered[router] = router_offered.get(router, 0.0) + loads[router]
            router_delivered[router] = (
                router_delivered.get(router, 0.0)
                + loads[router] * factors[router]
            )
            if dump is not None:
                telemetry_merges.append((router, dump))
        for i, (_, routers, _) in enumerate(flow_paths):
            if len(routers) > k and rates[i] > 0:
                rates[i] *= factors[routers[k]]
                latencies[i] += mean_lat[routers[k]]
        # -- link stage: paths cross to their (k+1)-th router.
        crossing: Dict[Tuple[int, int], float] = {}
        for i, (_, routers, _) in enumerate(flow_paths):
            if len(routers) > k + 1 and rates[i] > 0:
                link = (routers[k], routers[k + 1])
                crossing[link] = crossing.get(link, 0.0) + rates[i]
        link_factors: Dict[Tuple[int, int], float] = {}
        for link in sorted(crossing):
            u, v = link
            cut = 1.0 - cut_fraction.get((min(u, v), max(u, v)), 0.0)
            if link not in link_remaining:
                # The run-wide budget: capacity scaled by the uncut
                # share of the run, drawn down by every crossing.
                link_remaining[link] = (
                    line_rate * topology.link_capacity_fraction(u, v) * cut
                )
            surviving = crossing[link] * cut
            congestion = (
                min(1.0, link_remaining[link] / surviving)
                if surviving > 0
                else 1.0
            )
            link_factors[link] = cut * congestion
            link_remaining[link] -= surviving * congestion
            link_offered[link] = link_offered.get(link, 0.0) + crossing[link]
        for i, (_, routers, _) in enumerate(flow_paths):
            if len(routers) > k + 1 and rates[i] > 0:
                rates[i] *= link_factors[(routers[k], routers[k + 1])]
                latencies[i] += link_delay_ns + rotation_wait

    if registry is not None:
        for router, dump in telemetry_merges:
            registry.merge_dict(_relabel_router(dump, router))
        _link_timelines(
            registry, topology, link_offered, cut_events, line_rate, duration_ns
        )
        if schedule is not None:
            from ..telemetry import tag_fault_windows

            tag_fault_windows(registry, schedule)

    # -- roll up per-flow, per-link and per-router summaries.
    flows: List[FlowSummary] = []
    for (src, dst) in sorted(demand):
        indices = [i for i, (pair, _, _) in enumerate(flow_paths) if pair == (src, dst)]
        offered = demand[(src, dst)]
        delivered = sum(rates[i] for i in indices)
        original = [flow_paths[i][2] for i in indices]
        mean_hops = (
            sum(len(flow_paths[i][1]) * flow_paths[i][2] for i in indices)
            / sum(original)
        )
        if delivered > 0:
            latency = (
                sum(latencies[i] * rates[i] for i in indices) / delivered
            )
        else:
            latency = 0.0
        flows.append(
            FlowSummary(
                src=src,
                dst=dst,
                offered_bps=offered,
                delivered_fraction=delivered / offered if offered > 0 else 0.0,
                mean_hops=mean_hops,
                mean_latency_ns=latency,
            )
        )
    links = [
        LinkSummary(
            src=u,
            dst=v,
            capacity_bps=line_rate * topology.link_capacity_fraction(u, v),
            offered_bps=link_offered.get((u, v), 0.0),
            utilization=(
                link_offered.get((u, v), 0.0)
                / (line_rate * topology.link_capacity_fraction(u, v))
            ),
            cut_fraction=cut_fraction.get((min(u, v), max(u, v)), 0.0),
        )
        for (u, v) in topology.links()
    ]
    routers = [
        RouterSummary(
            router=r,
            offered_bps=router_offered.get(r, 0.0),
            delivered_fraction=(
                router_delivered.get(r, 0.0) / router_offered[r]
                if router_offered.get(r, 0.0) > 0
                else 1.0
            ),
            down_fraction=down_fraction.get(r, 0.0),
        )
        for r in range(topology.n_routers)
    ]
    return FabricReport(
        topology=topology.describe(),
        routing=routing,
        fidelity=fidelity,
        duration_ns=duration_ns,
        n_routers=topology.n_routers,
        flows=flows,
        links=links,
        routers=routers,
        fault_events=list(schedule.describe()) if schedule is not None else [],
        telemetry=registry.to_dict() if registry is not None else None,
    )
