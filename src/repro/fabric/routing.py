"""Per-hop routing policies over a fabric topology.

A policy turns one (src, dst) endpoint pair into a weighted set of
:class:`FlowPath` values -- router sequences whose weights sum to 1.
The engine (:mod:`repro.fabric.engine`) then pushes each path's rate
share through the per-router packet/flow engines hop by hop.

Three policies (the Unified-Routing trio):

- ``direct`` -- uniform split over *all* equal-cost shortest paths
  (ECMP).  Deterministic: paths are enumerated in lexicographic order.
- ``vlb`` -- Valiant load balancing.  The classic scheme picks one
  uniformly random intermediate per flow; here every intermediate is
  materialised with weight 1/N (the fluid limit of the random choice),
  each leg splitting uniformly over its shortest paths.  This keeps
  both fidelities deterministic and byte-identical across processes
  while matching the random scheme's expected link loads exactly.
- ``hoho`` -- hop-on-hop-off for rotation topologies: a flow rides the
  direct slot when its pair is matched (weight 1/(N-1)) and otherwise
  hops off at the next matched intermediate (each 2-hop path also
  weight 1/(N-1)); only valid on :class:`~repro.fabric.topology.
  RotationTopology`, whose cycle average makes every pair adjacent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ConfigError
from .topology import FabricTopology, RotationTopology

#: Valid routing policy names, in CLI order.
ROUTING_POLICIES = ("direct", "vlb", "hoho")


@dataclass(frozen=True)
class FlowPath:
    """One weighted router sequence serving a (src, dst) flow."""

    routers: Tuple[int, ...]
    weight: float

    @property
    def n_hops(self) -> int:
        """Inter-router link traversals (router visits minus one)."""
        return len(self.routers) - 1


def shortest_paths(
    topology: FabricTopology, src: int, dst: int
) -> List[Tuple[int, ...]]:
    """All shortest router sequences src -> dst, lexicographically sorted.

    BFS builds the predecessor DAG; enumeration walks it in sorted
    neighbour order, so the result is identical in every process.
    """
    if src == dst:
        return [(src,)]
    adjacency = topology.adjacency()
    if src not in adjacency or dst not in adjacency:
        raise ConfigError(
            f"endpoints ({src}, {dst}) out of range for "
            f"{type(topology).__name__}"
        )
    dist = {src: 0}
    predecessors: Dict[int, List[int]] = {}
    frontier = [src]
    while frontier and dst not in dist:
        next_frontier = []
        for node in frontier:
            for peer in adjacency[node]:
                if peer not in dist:
                    dist[peer] = dist[node] + 1
                    predecessors[peer] = [node]
                    next_frontier.append(peer)
                elif dist[peer] == dist[node] + 1:
                    predecessors[peer].append(node)
        frontier = next_frontier
    if dst not in dist:
        raise ConfigError(
            f"no path {src} -> {dst} in {type(topology).__name__}"
        )
    paths: List[Tuple[int, ...]] = []

    def walk(node: int, suffix: Tuple[int, ...]) -> None:
        if node == src:
            paths.append((src,) + suffix)
            return
        for parent in sorted(predecessors[node]):
            walk(parent, (node,) + suffix)

    walk(dst, ())
    return sorted(paths)


def _merge(paths: Dict[Tuple[int, ...], float]) -> Tuple[FlowPath, ...]:
    """Weighted path dict -> sorted, normalised FlowPath tuple."""
    total = sum(paths.values())
    return tuple(
        FlowPath(routers, weight / total)
        for routers, weight in sorted(paths.items())
    )


def _direct(topology: FabricTopology, src: int, dst: int) -> Tuple[FlowPath, ...]:
    routes = shortest_paths(topology, src, dst)
    share = 1.0 / len(routes)
    return tuple(FlowPath(r, share) for r in routes)


def _vlb(topology: FabricTopology, src: int, dst: int) -> Tuple[FlowPath, ...]:
    merged: Dict[Tuple[int, ...], float] = {}
    n = topology.n_routers
    for mid in range(n):
        if mid == src or mid == dst:
            # Degenerate intermediates reduce to the direct leg.
            legs = [(p, 1.0) for p in shortest_paths(topology, src, dst)]
            for path, w in legs:
                merged[path] = merged.get(path, 0.0) + w / (n * len(legs))
            continue
        first = shortest_paths(topology, src, mid)
        second = shortest_paths(topology, mid, dst)
        share = 1.0 / (n * len(first) * len(second))
        for a in first:
            for b in second:
                path = a + b[1:]
                merged[path] = merged.get(path, 0.0) + share
    return _merge(merged)


def _hoho(topology: FabricTopology, src: int, dst: int) -> Tuple[FlowPath, ...]:
    if not isinstance(topology, RotationTopology):
        raise ConfigError(
            "hop-on-hop-off routing requires a RotationTopology, got "
            f"{type(topology).__name__}"
        )
    n = topology.n_routers
    share = 1.0 / (n - 1)
    merged: Dict[Tuple[int, ...], float] = {(src, dst): share}
    for mid in range(n):
        if mid in (src, dst):
            continue
        merged[(src, mid, dst)] = share
    return _merge(merged)


_POLICIES = {"direct": _direct, "vlb": _vlb, "hoho": _hoho}


def compute_paths(
    topology: FabricTopology, src: int, dst: int, policy: str
) -> Tuple[FlowPath, ...]:
    """The weighted path set for one flow under ``policy``.

    Weights always sum to 1 (each flow's offered rate is fully
    assigned); the tuple is sorted by router sequence, so the engine's
    iteration order -- and therefore every payload byte -- is
    deterministic.
    """
    if policy not in _POLICIES:
        raise ConfigError(
            f"routing policy must be one of {ROUTING_POLICIES}, got {policy!r}"
        )
    if src == dst:
        raise ConfigError(f"flow endpoints must differ, got {src}")
    return _POLICIES[policy](topology, src, dst)
