"""Fabric composition: router-in-a-package nodes in optical DCN topologies.

The paper argues the RiP is the natural building block for flat optical
datacenter fabrics (SS 4, *Outlook*).  This package composes multiple
single-package routers -- each simulated by the existing packet or flow
engine -- into declarative multi-router topologies:

- :mod:`~repro.fabric.topology` -- validated, deterministic topology
  dataclasses: k-ary Clos (2- and 3-stage), uniform-random expander,
  Opera-style round-robin rotation, and dragonfly;
- :mod:`~repro.fabric.routing` -- per-hop routing policies: shortest-
  path ECMP (``direct``), Valiant load balancing (``vlb``), and
  hop-on-hop-off for rotation fabrics (``hoho``);
- :mod:`~repro.fabric.engine` -- hop-round execution through the
  per-package engines with fabric-scoped faults (router-down,
  inter-package link-cut) and ``router=``-labelled telemetry;
- :mod:`~repro.fabric.report` -- end-to-end accounting: per-flow
  delivered fraction / hops / latency, per-link utilisation, per-router
  load, fabric totals.
"""

from .topology import (
    ClosTopology,
    DragonflyTopology,
    ExpanderTopology,
    FabricTopology,
    RotationTopology,
    TOPOLOGY_TYPES,
    topology_from_dict,
    topology_to_dict,
)
from .routing import FlowPath, ROUTING_POLICIES, compute_paths, shortest_paths
from .report import FabricReport, FlowSummary, LinkSummary, RouterSummary
from .engine import (
    TRAFFIC_PATTERNS,
    simulate_fabric,
    validate_fabric_schedule,
)

__all__ = [
    "ClosTopology",
    "DragonflyTopology",
    "ExpanderTopology",
    "FabricReport",
    "FabricTopology",
    "FlowPath",
    "FlowSummary",
    "LinkSummary",
    "ROUTING_POLICIES",
    "RotationTopology",
    "RouterSummary",
    "TOPOLOGY_TYPES",
    "TRAFFIC_PATTERNS",
    "compute_paths",
    "shortest_paths",
    "simulate_fabric",
    "topology_from_dict",
    "topology_to_dict",
    "validate_fabric_schedule",
]
