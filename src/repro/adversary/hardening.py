"""Split-hardening analysis: exposure scores and seed sensitivity.

The exposure score makes Idea 4's security claim a single number per
splitter: the **attacker gain** is the victim switch's load under a
strategy divided by the uniform share (total / H), and a splitter's
**exposure** is the best gain any catalogued strategy achieves against
it.  A contiguous split is fully exposed to a design-knowledge attacker
(gain -> the attacker-controlled fraction times H); a pseudo-random
split with a secret seed concentrates every strategy's gain near 1.

The seed-sensitivity sweep quantifies "near 1": across many
manufacturing seeds the pseudo-random gain is a sample from the
attack-slots-into-switches occupancy distribution, and its spread tells
a designer how unlucky a single deployed seed can be -- the quantitative
version of the paper's "randomize per ribbon" advice.

Everything here is analytic (fiber weights through
:func:`~repro.core.fiber_split.per_switch_loads`), so sweeps over
hundreds of seeds are cheap; the campaign layer
(:mod:`repro.adversary.campaign`) confirms selected points in full
simulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.fiber_split import FiberSplitter, PseudoRandomSplitter, per_switch_loads
from ..errors import ConfigError
from .strategies import (
    AttackStrategy,
    KnownAssignmentAttack,
    ObliviousProbeAttack,
    OperatorSkew,
)


def default_strategy_catalogue(victim: int = 0) -> List[AttackStrategy]:
    """The strategies a hardening review should assume (burst-sync shares
    known-assignment's analytic profile, so the time-averaged catalogue
    omits it)."""
    return [
        KnownAssignmentAttack(victim=victim),
        ObliviousProbeAttack(victim=victim),
        OperatorSkew(),
    ]


def attacker_gain(
    splitter: FiberSplitter,
    strategy: AttackStrategy,
    n_ribbons: int,
) -> float:
    """Victim-switch load over the uniform share, analytically.

    Strategies without a designated victim (operator skew) are scored on
    their worst-loaded switch -- the adversary gets credit for whatever
    imbalance it causes, wherever it lands.
    """
    if n_ribbons <= 0:
        raise ConfigError(f"n_ribbons must be positive, got {n_ribbons}")
    weights = strategy.fiber_weights(splitter, n_ribbons)
    loads = per_switch_loads(splitter, weights)
    total = float(loads.sum())
    if total <= 0:
        return 1.0
    victim = strategy.victim_switch(splitter)
    target = int(np.argmax(loads)) if victim is None else victim
    return float(loads[target] * splitter.n_switches / total)


def exposure_score(
    splitter: FiberSplitter,
    strategies: Optional[Sequence[AttackStrategy]] = None,
    n_ribbons: int = 8,
) -> Dict:
    """Best attacker gain over the strategy catalogue.

    ``score`` is the exposure (max gain); ``gains`` itemises the
    catalogue so a report can show *which* strategy the splitter is most
    exposed to.
    """
    if strategies is None:
        strategies = default_strategy_catalogue()
    if not strategies:
        raise ConfigError("exposure_score needs at least one strategy")
    gains = {
        s.describe(): attacker_gain(splitter, s, n_ribbons) for s in strategies
    }
    best = max(gains, key=gains.__getitem__)
    return {
        "score": gains[best],
        "best_strategy": best,
        "gains": gains,
    }


def seed_sensitivity_sweep(
    n_fibers: int,
    n_switches: int,
    strategy: Optional[AttackStrategy] = None,
    n_ribbons: int = 8,
    n_seeds: int = 200,
    base_seed: int = 0,
) -> Dict:
    """Attacker gain across many pseudo-random manufacturing seeds.

    Shows Idea 4's concentration: the gain distribution's mass sits near
    1, with ``fraction_below(1.25)`` the figure's headline number.  Seed
    ``base_seed + k`` stands in for deployment k.
    """
    if n_seeds <= 0:
        raise ConfigError(f"n_seeds must be positive, got {n_seeds}")
    if strategy is None:
        strategy = KnownAssignmentAttack()
    gains = np.array(
        [
            attacker_gain(
                PseudoRandomSplitter(n_fibers, n_switches, seed=base_seed + k),
                strategy,
                n_ribbons,
            )
            for k in range(n_seeds)
        ]
    )
    return {
        "strategy": strategy.describe(),
        "n_seeds": n_seeds,
        "n_switches": n_switches,
        "mean": float(gains.mean()),
        "std": float(gains.std(ddof=1)) if n_seeds > 1 else 0.0,
        "min": float(gains.min()),
        "p50": float(np.percentile(gains, 50)),
        "p90": float(np.percentile(gains, 90)),
        "p99": float(np.percentile(gains, 99)),
        "max": float(gains.max()),
        "fraction_below_1_25": float((gains <= 1.25).mean()),
        "gains": gains.tolist(),
    }
