"""Adversarial workload engine (Challenge 4 / Idea 4).

Attackers and hostile operators as first-class workload generators:

- :mod:`~repro.adversary.strategies` -- typed attack strategies
  (known-assignment, oblivious probing, operator skew, synchronized
  bursts) that produce per-fiber weights and packet streams for the
  full SPS -> PFI -> HBM pipeline;
- :mod:`~repro.adversary.campaign` -- seeded multi-trial campaigns over
  the process pool, pitting each strategy against contiguous vs
  pseudo-random splits (and live fault schedules) with confidence
  intervals;
- :mod:`~repro.adversary.hardening` -- exposure scores per splitter and
  the pseudo-random seed-sensitivity sweep.
"""

from .strategies import (
    PROBE_PORT_CAPACITY,
    STRATEGIES,
    AttackStrategy,
    BurstSynchronizedAttack,
    KnownAssignmentAttack,
    ObliviousProbeAttack,
    OperatorSkew,
    make_strategy,
    probe_loss,
    weighted_fibers,
)
from .campaign import (
    AGGREGATED_METRICS,
    SPLITTER_KINDS,
    AttackCampaignParams,
    AttackCampaignResult,
    AttackTrial,
    compare_splitters,
    execute_attack_trial,
    make_splitter,
    run_attack_campaign,
    trial_seeds,
)
from .hardening import (
    attacker_gain,
    default_strategy_catalogue,
    exposure_score,
    seed_sensitivity_sweep,
)

__all__ = [
    "AGGREGATED_METRICS",
    "AttackCampaignParams",
    "AttackCampaignResult",
    "AttackStrategy",
    "AttackTrial",
    "BurstSynchronizedAttack",
    "KnownAssignmentAttack",
    "ObliviousProbeAttack",
    "OperatorSkew",
    "PROBE_PORT_CAPACITY",
    "SPLITTER_KINDS",
    "STRATEGIES",
    "attacker_gain",
    "compare_splitters",
    "default_strategy_catalogue",
    "execute_attack_trial",
    "exposure_score",
    "make_splitter",
    "make_strategy",
    "probe_loss",
    "run_attack_campaign",
    "seed_sensitivity_sweep",
    "trial_seeds",
    "weighted_fibers",
]
