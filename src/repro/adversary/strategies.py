"""Typed attack strategies: adversaries as first-class workload generators.

Challenge 4 / Idea 4 of the paper argue that the SPS's pseudo-random
fiber-to-switch assignment defeats both a hostile operator (who loads
the first fibers first) and an attacker who targets one internal switch.
This module makes those adversaries executable: each strategy produces a
per-fiber / per-pair workload -- normalized per-ribbon fiber weights for
the analytic helpers of :mod:`repro.core.fiber_split`, plus a packet
stream and explicit fiber choices that drive the full SPS -> PFI -> HBM
pipeline through :meth:`repro.core.sps.SplitParallelSwitch.run`.

The threat model (docs/adversary.md) fixes what each adversary knows:

- :class:`KnownAssignmentAttack` knows the *published design* -- the
  contiguous fiber -> switch pattern every datasheet would document --
  and concentrates its flows on the fibers that pattern says feed one
  victim switch.  With ``oracle=True`` it instead knows the deployed
  device's *actual* assignment (a leaked manufacturing seed): the upper
  bound that shows secrecy, not randomness alone, is the defense.
- :class:`ObliviousProbeAttack` knows nothing but can send probe loads
  and observe end-to-end loss.  It infers which fibers share a switch
  from pairwise overload feedback over a bounded probe budget
  (:func:`probe_loss`), then concentrates on the discovered groups --
  the adaptive attacker Tiny Tera-style worst-case methodology warns
  about.
- :class:`OperatorSkew` is not malicious at all: an operator populating
  fibers in rack order, so load decays geometrically from fiber 0 --
  Challenge 4's "first fibers connected first" skew.
- :class:`BurstSynchronizedAttack` aligns ON/OFF bursts across every
  ribbon (where honest ON/OFF sources have independent random phases),
  so the victim switch sees the whole package's burst at once.

Every strategy is a frozen dataclass: picklable for the campaign's
process pool, hashable for memoised sweeps, and printable in reports.
All randomness is drawn from PRNGs seeded by explicit fields, so a
strategy run twice -- in any process -- produces the identical workload.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..config import RouterConfig
from ..core.fiber_split import (
    ContiguousSplitter,
    FiberSplitter,
    overload_loss_fraction,
    per_switch_port_loads,
)
from ..errors import ConfigError
from ..traffic import (
    ArrivalProcess,
    FixedSize,
    FiveTuple,
    Packet,
    TrafficGenerator,
    uniform_matrix,
)
from ..traffic.generators import fiber_load_profile
from ..units import rate_to_bytes_per_ns

#: Capacity (in single-fiber units) used by the probe oracle: two fibers
#: colliding on one switch port offer 2.0, a lone fiber offers 1.0, so a
#: threshold between them turns per-port overload loss into a collision
#: bit the attacker can read off end-to-end.
PROBE_PORT_CAPACITY = 1.5


def probe_loss(splitter: FiberSplitter, ribbon: int, fibers: Sequence[int]) -> float:
    """Loss feedback for one probe: load ``fibers`` of ``ribbon`` at one
    fiber-unit each, capacity :data:`PROBE_PORT_CAPACITY` per port.

    This is the only visibility the oblivious attacker has: it cannot
    read the assignment, only send traffic and measure what fraction was
    lost (:func:`~repro.core.fiber_split.overload_loss_fraction`).
    """
    profile = np.zeros(splitter.n_fibers)
    for f in fibers:
        if not 0 <= f < splitter.n_fibers:
            raise ConfigError(f"probe fiber {f} out of range")
        profile[f] += 1.0
    profiles = [np.zeros(splitter.n_fibers)] * ribbon + [profile]
    port_loads = per_switch_port_loads(splitter, profiles)
    return overload_loss_fraction(port_loads[:, ribbon], PROBE_PORT_CAPACITY)


def _mix_with_background(
    targeted: np.ndarray, attack_fraction: float
) -> np.ndarray:
    """Blend an attack profile with uniform background traffic.

    The attacker controls ``attack_fraction`` of the offered load; the
    rest is ordinary ECMP-hashed traffic spread evenly over all fibers.
    """
    n = targeted.size
    uniform = np.full(n, 1.0 / n)
    total = targeted.sum()
    normalized = targeted / total if total > 0 else uniform
    return (1.0 - attack_fraction) * uniform + attack_fraction * normalized


def weighted_fibers(
    packets: Sequence[Packet], fiber_weights: Sequence[np.ndarray]
) -> List[int]:
    """Deterministic byte-weighted fiber choice (smooth weighted
    round-robin): ribbon r's bytes land on fiber f in proportion
    ``fiber_weights[r][f]``, with no sampling noise.

    Each ribbon keeps per-fiber credit that grows by ``weight * size``
    on every packet; the packet takes the fiber with the most credit and
    pays its size back.  The running deviation from the exact weighted
    split stays bounded by one packet per fiber, so the analytic
    per-switch loads of :mod:`repro.core.fiber_split` and the simulated
    per-switch offered bytes agree to within a packet.
    """
    credits = [np.zeros(len(w), dtype=np.float64) for w in fiber_weights]
    fibers: List[int] = []
    for packet in packets:
        ribbon = packet.input_port
        credit = credits[ribbon]
        credit += fiber_weights[ribbon] * packet.size_bytes
        fiber = int(np.argmax(credit))
        credit[fiber] -= packet.size_bytes
        fibers.append(fiber)
    return fibers


def _carrier_packets(
    config: RouterConfig,
    load: float,
    duration_ns: float,
    seed: int,
    packet_bytes: int,
    workload: Optional[str],
) -> List[Packet]:
    """The (time-sorted, freshly-pid'd) carrier traffic an attack rides
    on: the historical fixed-size Poisson stream, or -- when ``workload``
    is given -- a :func:`~repro.traffic.stream.workload_source` family."""
    if workload is not None:
        from ..traffic.stream import workload_source

        source = workload_source(
            workload,
            n_ports=config.n_ribbons,
            port_rate_bps=config.fibers_per_ribbon * config.per_fiber_rate_bps,
            load=load,
            seed=seed,
            duration_ns=duration_ns,
            packet_bytes=packet_bytes,
        )
        return source.materialize(duration_ns)
    generator = TrafficGenerator(
        n_ports=config.n_ribbons,
        port_rate_bps=config.fibers_per_ribbon * config.per_fiber_rate_bps,
        matrix=uniform_matrix(config.n_ribbons, load),
        size_dist=FixedSize(packet_bytes),
        process=ArrivalProcess.POISSON,
        seed=seed,
        flows_per_pair=256,
    )
    return generator.materialize(duration_ns)


@dataclass(frozen=True)
class AttackStrategy(ABC):
    """One adversarial workload: fiber weights + a packet stream.

    ``attack_fraction`` is the share of the total offered load the
    adversary controls; the remaining ``1 - attack_fraction`` is honest
    uniform background traffic (an attacker rarely owns the whole
    ingress).  Subclasses define where the attack share lands.
    """

    attack_fraction: float = 0.6

    #: CLI / report identifier; overridden per subclass.
    name = "abstract"

    def __post_init__(self) -> None:
        if not 0.0 <= self.attack_fraction <= 1.0:
            raise ConfigError(
                f"attack_fraction must be in [0, 1], got {self.attack_fraction}"
            )

    # -- the two contracts -------------------------------------------------

    @abstractmethod
    def attack_profile(
        self, splitter: FiberSplitter, ribbon: int
    ) -> np.ndarray:
        """Unnormalized per-fiber attack weights for one ribbon.

        ``splitter`` is the *deployed* splitter; strategies may only use
        it through their declared knowledge (the known-assignment
        attacker ignores it unless ``oracle``; the prober touches it
        only via :func:`probe_loss`).
        """

    def victim_switch(self, splitter: FiberSplitter) -> Optional[int]:
        """The switch this strategy aims at, or ``None`` when the gain
        should be read off the worst-loaded switch instead."""
        return None

    # -- derived workload --------------------------------------------------

    def fiber_weights(
        self, splitter: FiberSplitter, n_ribbons: int
    ) -> List[np.ndarray]:
        """Normalized per-ribbon fiber weights (each sums to 1),
        background included -- the input to
        :func:`~repro.core.fiber_split.per_switch_loads`."""
        return [
            _mix_with_background(
                np.asarray(self.attack_profile(splitter, r), dtype=np.float64),
                self.attack_fraction,
            )
            for r in range(n_ribbons)
        ]

    def build_workload(
        self,
        config: RouterConfig,
        splitter: FiberSplitter,
        load: float,
        duration_ns: float,
        seed: int,
        packet_bytes: int = 1500,
        workload: Optional[str] = None,
    ) -> Tuple[List[Packet], List[int]]:
        """(packets, fibers) driving the full router pipeline.

        The default builds an admissible uniform ribbon-level matrix at
        ``load`` (the attack redistributes traffic across *fibers*, not
        ribbons, so the matrix stays admissible) and assigns fibers by
        the deterministic byte-weighted round-robin -- all randomness
        comes from the seeded generator, so identical inputs give the
        identical workload in any process.  ``workload`` swaps the
        carrier traffic for a streaming family
        (:func:`~repro.traffic.stream.workload_source` spec) -- the
        attack's fiber weighting applies unchanged.
        """
        packets = _carrier_packets(
            config, load, duration_ns, seed, packet_bytes, workload
        )
        weights = self.fiber_weights(splitter, config.n_ribbons)
        return packets, weighted_fibers(packets, weights)

    def describe(self) -> str:
        return f"{self.name}(attack_fraction={self.attack_fraction:g})"


@dataclass(frozen=True)
class KnownAssignmentAttack(AttackStrategy):
    """Concentrate flows on the fibers feeding one victim switch.

    Without ``oracle`` the attacker reads the *published* contiguous
    pattern (fiber f -> switch f // alpha) -- exactly right against
    :class:`~repro.core.fiber_split.ContiguousSplitter`, systematically
    wrong against a seeded pseudo-random split.  With ``oracle`` the
    attacker reads the deployed assignment itself, the leaked-seed upper
    bound.
    """

    victim: int = 0
    oracle: bool = False

    name = "known-assignment"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.victim < 0:
            raise ConfigError(f"victim must be >= 0, got {self.victim}")

    def attack_profile(self, splitter: FiberSplitter, ribbon: int) -> np.ndarray:
        if self.victim >= splitter.n_switches:
            raise ConfigError(
                f"victim switch {self.victim} out of range "
                f"(H={splitter.n_switches})"
            )
        believed = (
            splitter
            if self.oracle
            else ContiguousSplitter(splitter.n_fibers, splitter.n_switches)
        )
        profile = np.zeros(splitter.n_fibers)
        profile[believed.fibers_to(ribbon, self.victim)] = 1.0
        return profile

    def victim_switch(self, splitter: FiberSplitter) -> Optional[int]:
        return self.victim

    def describe(self) -> str:
        kind = "oracle" if self.oracle else "design-knowledge"
        return (
            f"{self.name}({kind}, victim={self.victim}, "
            f"attack_fraction={self.attack_fraction:g})"
        )


@dataclass(frozen=True)
class ObliviousProbeAttack(AttackStrategy):
    """Infer the fiber grouping from loss feedback, then concentrate.

    Per ribbon, the attacker anchors on the fiber the published design
    says feeds the victim, then spends ``probe_rounds`` pairwise probes
    (:func:`probe_loss`) discovering which other fibers collide with the
    anchor on the same switch.  Against a contiguous split this recovers
    the victim's whole alpha-block; against a pseudo-random split it
    recovers (budget permitting) the anchor's *actual* group -- but each
    ribbon's group feeds a different, unpredictable switch, so the
    per-ribbon decorrelation of Idea 4 caps the cross-ribbon pile-up
    even for an adaptive prober.
    """

    victim: int = 0
    probe_rounds: int = 24
    probe_seed: int = 0

    name = "oblivious-probe"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.victim < 0:
            raise ConfigError(f"victim must be >= 0, got {self.victim}")
        if self.probe_rounds < 0:
            raise ConfigError(
                f"probe_rounds must be >= 0, got {self.probe_rounds}"
            )

    def _anchor(self, splitter: FiberSplitter) -> int:
        if self.victim >= splitter.n_switches:
            raise ConfigError(
                f"victim switch {self.victim} out of range "
                f"(H={splitter.n_switches})"
            )
        return self.victim * splitter.alpha

    def discovered_fibers(
        self, splitter: FiberSplitter, ribbon: int
    ) -> List[int]:
        """The anchor plus every fiber a probe found colliding with it."""
        anchor = self._anchor(splitter)
        rng = np.random.default_rng((self.probe_seed, ribbon))
        candidates = [f for f in range(splitter.n_fibers) if f != anchor]
        rng.shuffle(candidates)
        found = [anchor]
        for g in candidates[: self.probe_rounds]:
            if probe_loss(splitter, ribbon, [anchor, g]) > 0.0:
                found.append(g)
            if len(found) == splitter.alpha:
                break
        return sorted(found)

    def attack_profile(self, splitter: FiberSplitter, ribbon: int) -> np.ndarray:
        profile = np.zeros(splitter.n_fibers)
        profile[self.discovered_fibers(splitter, ribbon)] = 1.0
        return profile

    def victim_switch(self, splitter: FiberSplitter) -> Optional[int]:
        # The attacker piles onto whichever switch actually serves its
        # anchor group; ribbon 0's anchor stands in for "the" victim
        # (under a contiguous split this is exactly `victim`).
        return int(splitter.assignment_array(0)[self._anchor(splitter)])

    def describe(self) -> str:
        return (
            f"{self.name}(victim={self.victim}, rounds={self.probe_rounds}, "
            f"attack_fraction={self.attack_fraction:g})"
        )


@dataclass(frozen=True)
class OperatorSkew(AttackStrategy):
    """Challenge 4's hostile-by-accident operator: fibers populated in
    rack order, so fiber 0 carries ``skew`` times fiber F-1's load.

    ``attack_fraction`` here is the share of load following rack order
    (1.0 = every tenant was provisioned first-fiber-first).
    """

    skew: float = 4.0
    attack_fraction: float = 1.0

    name = "operator-skew"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.skew <= 0:
            raise ConfigError(f"skew must be positive, got {self.skew}")

    def attack_profile(self, splitter: FiberSplitter, ribbon: int) -> np.ndarray:
        return fiber_load_profile(
            splitter.n_fibers, "first-connected", total_load=1.0, skew=self.skew
        )

    def describe(self) -> str:
        return (
            f"{self.name}(skew={self.skew:g}, "
            f"attack_fraction={self.attack_fraction:g})"
        )


@dataclass(frozen=True)
class BurstSynchronizedAttack(AttackStrategy):
    """Align ON/OFF bursts across every ribbon onto the victim's fibers.

    Honest bursty sources have independent phases (the ON/OFF process of
    :class:`~repro.traffic.generators.TrafficGenerator` draws a random
    phase per pair, deliberately decorrelating them).  This attacker
    synchronises: during each ON window of ``duty * period_ns`` every
    ribbon blasts the victim-targeted fibers at ``attack_fraction * load
    / duty`` of its line rate, so the victim switch absorbs the whole
    package's burst at once while the time-averaged load stays at
    ``load``.  Targeting uses the published contiguous pattern (compose
    with :class:`KnownAssignmentAttack` semantics).
    """

    victim: int = 0
    period_ns: float = 2_000.0
    duty: float = 0.5

    name = "burst-sync"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.victim < 0:
            raise ConfigError(f"victim must be >= 0, got {self.victim}")
        if self.period_ns <= 0:
            raise ConfigError(
                f"period_ns must be positive, got {self.period_ns}"
            )
        if not 0.0 < self.duty <= 1.0:
            raise ConfigError(f"duty must be in (0, 1], got {self.duty}")

    def attack_profile(self, splitter: FiberSplitter, ribbon: int) -> np.ndarray:
        if self.victim >= splitter.n_switches:
            raise ConfigError(
                f"victim switch {self.victim} out of range "
                f"(H={splitter.n_switches})"
            )
        believed = ContiguousSplitter(splitter.n_fibers, splitter.n_switches)
        profile = np.zeros(splitter.n_fibers)
        profile[believed.fibers_to(ribbon, self.victim)] = 1.0
        return profile

    def victim_switch(self, splitter: FiberSplitter) -> Optional[int]:
        return self.victim

    def build_workload(
        self,
        config: RouterConfig,
        splitter: FiberSplitter,
        load: float,
        duration_ns: float,
        seed: int,
        packet_bytes: int = 1500,
        workload: Optional[str] = None,
    ) -> Tuple[List[Packet], List[int]]:
        """Background traffic plus synchronized burst trains.

        The burst ON rate is ``attack_fraction * load / duty`` of the
        ribbon line rate, clamped to the line rate (an attacker cannot
        exceed its physical ingress), identical windows on every ribbon.
        ``workload`` swaps the background for a streaming family; the
        crafted bursts are unchanged.
        """
        attack_load = self.attack_fraction * load
        if attack_load / self.duty > 1.0 + 1e-9:
            raise ConfigError(
                f"burst ON rate {attack_load / self.duty:g} exceeds the line "
                f"rate; raise duty (>= {attack_load:g}) or lower the load"
            )
        background_load = load - attack_load
        packets: List[Packet] = []
        if background_load > 0:
            packets = _carrier_packets(
                config, background_load, duration_ns, seed, packet_bytes,
                workload,
            )

        ribbon_rate = rate_to_bytes_per_ns(
            config.fibers_per_ribbon * config.per_fiber_rate_bps
        )
        on_rate = min(1.0, attack_load / self.duty) * ribbon_rate
        burst: List[Packet] = []
        if attack_load > 0 and on_rate > 0:
            gap_ns = packet_bytes / on_rate
            on_ns = self.duty * self.period_ns
            per_window = max(int(on_ns / gap_ns), 1)
            window = 0
            while window * self.period_ns < duration_ns:
                start = window * self.period_ns
                for k in range(per_window):
                    arrival = start + k * gap_ns
                    if arrival >= min(start + on_ns, duration_ns):
                        break
                    for ribbon in range(config.n_ribbons):
                        # One crafted flow per (ribbon, window): bursts
                        # are deliberately flow-dense and synchronized.
                        flow = FiveTuple(
                            src_ip=(172 << 24) | (ribbon << 16) | (window & 0xFFFF),
                            dst_ip=(203 << 24) | (self.victim << 16),
                            src_port=1024 + (window % 60_000),
                            dst_port=179,
                        )
                        burst.append(
                            Packet(
                                pid=0,  # re-assigned after the merge
                                size_bytes=packet_bytes,
                                input_port=ribbon,
                                output_port=(ribbon + window + k)
                                % config.n_ribbons,
                                flow=flow,
                                arrival_ns=arrival,
                            )
                        )
                window += 1

        merged = sorted(
            packets + burst, key=lambda p: p.arrival_ns
        )
        relabelled = [
            Packet(
                pid=i,
                size_bytes=p.size_bytes,
                input_port=p.input_port,
                output_port=p.output_port,
                flow=p.flow,
                arrival_ns=p.arrival_ns,
            )
            for i, p in enumerate(merged)
        ]
        weights = self.fiber_weights(splitter, config.n_ribbons)
        return relabelled, weighted_fibers(relabelled, weights)

    def describe(self) -> str:
        return (
            f"{self.name}(victim={self.victim}, period={self.period_ns:g} ns, "
            f"duty={self.duty:g}, attack_fraction={self.attack_fraction:g})"
        )


#: CLI name -> strategy class.
STRATEGIES = {
    KnownAssignmentAttack.name: KnownAssignmentAttack,
    ObliviousProbeAttack.name: ObliviousProbeAttack,
    OperatorSkew.name: OperatorSkew,
    BurstSynchronizedAttack.name: BurstSynchronizedAttack,
}


def make_strategy(name: str, **kwargs) -> AttackStrategy:
    """Instantiate a strategy by its CLI name."""
    cls = STRATEGIES.get(name)
    if cls is None:
        raise ConfigError(
            f"unknown attack strategy {name!r} "
            f"(expected one of {sorted(STRATEGIES)})"
        )
    return cls(**kwargs)
