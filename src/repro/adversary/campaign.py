"""Seeded multi-trial attack campaigns over the process pool.

A campaign pits one :class:`~repro.adversary.strategies.AttackStrategy`
against one splitter family for ``n_trials`` independent trials.  Trial
``i`` derives its traffic seed and its splitter seed from
``np.random.SeedSequence((seed, i))`` -- stable across platforms and
processes -- so the same params always produce the same trials no
matter how they are scheduled.  Dispatch, caching and sharding live in
the scenario runtime (:mod:`repro.runtime`); this module keeps the
domain pieces -- seed derivation, the per-trial executor, the aggregate
-- plus a deprecated ``run_attack_campaign`` shim over
:class:`repro.runtime.AttackCampaign`.  The unit of parallelism is the
*trial* (each worker simulates its whole attacked router sequentially),
exactly as the fault campaign parallelises over scenarios.

Per trial we report two views of the same attack:

- **analytic** -- the strategy's fiber weights pushed through
  :func:`~repro.core.fiber_split.per_switch_loads`: ``victim_gain`` (the
  victim switch's load over the uniform share, the paper's exposure
  quantity), ``split_imbalance`` and the first-order
  ``overload_loss_fraction`` at per-port capacity 1/H;
- **simulated** -- the full SPS -> PFI -> HBM pipeline run on the
  strategy's packet stream (``drain=False``: a victim switch with huge
  HBM buffers doesn't drop, it *falls behind*, so the overload shows up
  as undelivered residual), composed with any fault schedule.

Campaign aggregates carry 95% confidence intervals; trial telemetry
registries are merged in trial-index order, so sequential and parallel
campaign dumps are byte-identical.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..config import RouterConfig
from ..core.fiber_split import (
    ContiguousSplitter,
    FiberSplitter,
    PseudoRandomSplitter,
    overload_loss_fraction,
    per_switch_loads,
    per_switch_port_loads,
    split_imbalance,
)
from ..core.sps import SplitParallelSwitch
from ..errors import ConfigError
from ..telemetry import (
    MetricsRegistry,
    record_victim_series,
    tag_attack_window,
)
from .strategies import AttackStrategy

SPLITTER_KINDS = ("contiguous", "pseudo-random")


def make_splitter(
    kind: str, n_fibers: int, n_switches: int, seed: int = 0
) -> FiberSplitter:
    """Instantiate a splitter by campaign kind name."""
    if kind == "contiguous":
        return ContiguousSplitter(n_fibers, n_switches)
    if kind == "pseudo-random":
        return PseudoRandomSplitter(n_fibers, n_switches, seed=seed)
    raise ConfigError(
        f"unknown splitter kind {kind!r} (expected one of {SPLITTER_KINDS})"
    )


@dataclass(frozen=True)
class AttackCampaignParams:
    """What to attack and how hard.

    ``load`` is each ribbon's offered load as a fraction of its line
    rate; the strategy decides how that load is spread over fibers.
    """

    strategy: AttackStrategy
    splitter: str = "pseudo-random"
    n_trials: int = 8
    seed: int = 0
    load: float = 0.6
    duration_ns: float = 10_000.0
    telemetry: bool = False

    def __post_init__(self) -> None:
        if self.splitter not in SPLITTER_KINDS:
            raise ConfigError(
                f"splitter must be one of {SPLITTER_KINDS}, got {self.splitter!r}"
            )
        if self.n_trials <= 0:
            raise ConfigError(f"n_trials must be positive, got {self.n_trials}")
        if not 0.0 < self.load <= 1.0:
            raise ConfigError(f"load must be in (0, 1], got {self.load}")
        if self.duration_ns <= 0:
            raise ConfigError(
                f"duration_ns must be positive, got {self.duration_ns}"
            )


@dataclass(frozen=True)
class AttackTrial:
    """One picklable, self-contained campaign member."""

    index: int
    config: RouterConfig
    splitter_kind: str
    splitter_seed: int
    strategy: AttackStrategy
    load: float
    duration_ns: float
    traffic_seed: int
    fault_schedule: object = None
    telemetry: bool = False
    #: Optional :class:`~repro.control.ControlConfig`; ``None`` = open
    #: loop (the historical behaviour, byte-identical payloads).
    control: object = None
    #: Optional carrier-traffic spec
    #: (:func:`~repro.traffic.stream.workload_source`); ``None`` keeps
    #: the historical fixed-size Poisson carrier.
    workload: Optional[str] = None


def trial_seeds(seed: int, index: int) -> tuple:
    """(traffic_seed, splitter_seed) for trial ``index`` -- drawn from a
    :class:`numpy.random.SeedSequence`, stable across platforms."""
    state = np.random.SeedSequence((seed, index)).generate_state(2)
    return int(state[0]), int(state[1])


def execute_attack_trial(trial: AttackTrial) -> dict:
    """Run one trial; returns its JSON-safe summary (module-level so it
    pickles for worker processes).

    The summary deliberately contains no wall-clock or worker
    information: campaigns must serialise byte-identically whether they
    ran sequentially or on the pool.
    """
    config = trial.config
    splitter = make_splitter(
        trial.splitter_kind,
        config.fibers_per_ribbon,
        config.n_switches,
        seed=trial.splitter_seed,
    )
    strategy = trial.strategy
    victim = strategy.victim_switch(splitter)

    # Analytic view: fiber weights through the split algebra.
    weights = strategy.fiber_weights(splitter, config.n_ribbons)
    fiber_loads = [trial.load * w for w in weights]
    switch_loads = per_switch_loads(splitter, fiber_loads)
    total = float(switch_loads.sum())
    uniform_share = total / config.n_switches
    worst = int(np.argmax(switch_loads))
    target = victim if victim is not None else worst
    victim_gain = float(switch_loads[target] / uniform_share)
    port_loads = per_switch_port_loads(splitter, fiber_loads)
    # Each switch port serves alpha of the ribbon's F fibers: capacity
    # alpha/F = 1/H of the ribbon line rate, in the same load units.
    overload = overload_loss_fraction(port_loads, 1.0 / config.n_switches)

    registry = MetricsRegistry() if trial.telemetry else None
    if registry is not None:
        tag_attack_window(
            registry,
            strategy=strategy.name,
            splitter=trial.splitter_kind,
            victim=victim,
            start_ns=0.0,
            end_ns=trial.duration_ns,
        )

    # Simulated view: the full pipeline on the strategy's packet stream.
    workload = getattr(trial, "workload", None)
    packets, fibers = strategy.build_workload(
        config,
        splitter,
        trial.load,
        trial.duration_ns,
        trial.traffic_seed,
        workload=workload,
    )
    control = getattr(trial, "control", None)
    control_summary = None
    throttled_bytes = 0
    if control is not None:
        from ..control.packet import attack_windows_for, packet_control_prepass

        fibers, throttled, loop = packet_control_prepass(
            config,
            control,
            packets,
            list(fibers),
            splitter,
            trial.duration_ns,
            schedule=trial.fault_schedule,
            attack_windows=attack_windows_for(strategy, trial.duration_ns),
            telemetry=registry,
        )
        packets = [p for p, t in zip(packets, throttled) if not t]
        fibers = [f for f, t in zip(fibers, throttled) if not t]
        throttled_bytes = int(round(loop.throttled_bytes))
        control_summary = loop.summary()
    router = SplitParallelSwitch(config, splitter=splitter)
    if control is None:
        # Open-loop trials ingest the attack as a block stream -- byte-
        # identical to the eager sequential run (the repo invariant) but
        # holding one block at a time.  The strategy's precomputed fiber
        # choices ride along, sliced by the blocks' pid offsets.
        from ..traffic.stream import blocks_from_packets

        fibers = list(fibers)

        def fibers_fn(block_packets, block):
            return fibers[block.pid_offset:block.pid_offset + len(block_packets)]

        report = router.run_stream(
            blocks_from_packets(packets, trial.duration_ns),
            trial.duration_ns,
            fibers_fn=fibers_fn,
            drain=False,
            fault_schedule=trial.fault_schedule,
            telemetry=registry,
        )
    else:
        report = router.run(
            packets,
            trial.duration_ns,
            fibers=fibers,
            drain=False,
            mode="sequential",
            fault_schedule=trial.fault_schedule,
            telemetry=registry,
        )
    offered = report.per_switch_offered_bytes
    sim_total = float(sum(offered))
    sim_target = target if victim is not None else (
        int(np.argmax(offered)) if sim_total > 0 else target
    )
    sim_victim_gain = (
        float(offered[sim_target] * config.n_switches / sim_total)
        if sim_total > 0
        else 1.0
    )
    if registry is not None:
        record_victim_series(registry, offered, victim)

    # Offered bytes always count the throttled (backpressured) traffic:
    # the control plane may convert losses, never shrink the offer.
    offered_total = int(report.offered_bytes) + throttled_bytes
    summary = {
        "trial": trial.index,
        "splitter": trial.splitter_kind,
        "splitter_seed": trial.splitter_seed,
        "traffic_seed": trial.traffic_seed,
        "strategy": strategy.describe(),
        "victim_switch": target,
        "victim_gain": victim_gain,
        "split_imbalance": float(split_imbalance(switch_loads)),
        "overload_loss_fraction": overload,
        "sim_victim_switch": sim_target,
        "sim_victim_gain": sim_victim_gain,
        "sim_offered_bytes": offered_total,
        "sim_delivered_fraction": (
            report.delivered_bytes / offered_total if offered_total > 0 else 1.0
        ),
        "sim_loss_fraction": (
            (report.lost_bytes + throttled_bytes) / offered_total
            if offered_total > 0
            else 0.0
        ),
        "sim_residual_bytes": int(report.residual_bytes),
        "fault_events": list(report.fault_events),
        "telemetry": registry.to_dict() if registry is not None else None,
    }
    if control_summary is not None:
        summary["control"] = control_summary
    return summary


def _confidence(values: List[float]) -> dict:
    """Mean with a normal-approximation 95% CI, plus the range."""
    arr = np.asarray(values, dtype=float)
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    half = float(1.96 * std / np.sqrt(arr.size)) if arr.size > 1 else 0.0
    return {
        "mean": mean,
        "ci95_low": mean - half,
        "ci95_high": mean + half,
        "min": float(arr.min()),
        "max": float(arr.max()),
    }


#: Trial metrics aggregated with confidence intervals.
AGGREGATED_METRICS = (
    "victim_gain",
    "split_imbalance",
    "overload_loss_fraction",
    "sim_victim_gain",
    "sim_delivered_fraction",
    "sim_loss_fraction",
)


@dataclass
class AttackCampaignResult:
    """Aggregate of one (strategy, splitter) campaign."""

    params: AttackCampaignParams
    trials: List[dict] = field(default_factory=list)
    #: Merged telemetry dump (trial-index merge order), or ``None``.
    telemetry: Optional[dict] = None

    def metric(self, name: str) -> List[float]:
        return [t[name] for t in self.trials]

    @property
    def victim_gain(self) -> dict:
        return _confidence(self.metric("victim_gain"))

    def to_dict(self) -> dict:
        summary = {
            name: _confidence(self.metric(name)) for name in AGGREGATED_METRICS
        }
        return {
            "strategy": self.params.strategy.describe(),
            "splitter": self.params.splitter,
            "n_trials": self.params.n_trials,
            "seed": self.params.seed,
            "load": self.params.load,
            "duration_ns": self.params.duration_ns,
            "summary": summary,
            "trials": [
                {k: v for k, v in t.items() if k != "telemetry"}
                for t in self.trials
            ],
        }


def run_attack_campaign(
    config: RouterConfig,
    params: AttackCampaignParams,
    fault_schedule=None,
    failed_switches: Optional[List[int]] = None,
    n_workers: Optional[int] = None,
) -> AttackCampaignResult:
    """Deprecated shim over the scenario runtime.

    Use :class:`repro.runtime.AttackCampaign` with
    :meth:`repro.runtime.Runtime.run_campaign` instead -- same per-trial
    seed-sequence recipe, same :class:`AttackCampaignResult` (including
    the trial-index-ordered telemetry merge), byte-identical output for
    the same seeds, plus caching/resume/sharding the legacy entrypoint
    never had.
    """
    warnings.warn(
        "repro.adversary.campaign.run_attack_campaign is deprecated; use "
        "repro.runtime.Runtime.run_campaign(repro.runtime.AttackCampaign(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..runtime import AttackCampaign, Runtime

    return Runtime(n_workers=n_workers).run_campaign(
        AttackCampaign(
            config=config,
            params=params,
            fault_schedule=fault_schedule,
            failed_switches=failed_switches,
        )
    )


def compare_splitters(
    config: RouterConfig,
    strategy: AttackStrategy,
    n_trials: int = 8,
    seed: int = 0,
    load: float = 0.6,
    duration_ns: float = 10_000.0,
    telemetry: bool = False,
    fault_schedule=None,
    failed_switches: Optional[List[int]] = None,
    n_workers: Optional[int] = None,
    runtime=None,
    fidelity: str = "packet",
    workload: Optional[str] = None,
) -> dict:
    """The headline experiment: one strategy vs both splitter families.

    Returns both campaign dicts plus the exposure comparison -- the
    ratio of mean victim gains, which the paper's Idea 4 predicts is
    ~H for a design-knowledge attacker.

    ``runtime`` (a :class:`repro.runtime.Runtime`) supplies the
    scheduler and result cache; by default a cacheless runtime with
    ``n_workers`` workers is used, matching the legacy behaviour.
    """
    from ..runtime import AttackCampaign, Runtime

    if runtime is None:
        runtime = Runtime(n_workers=n_workers)
    campaigns = {}
    for kind in SPLITTER_KINDS:
        params = AttackCampaignParams(
            strategy=strategy,
            splitter=kind,
            n_trials=n_trials,
            seed=seed,
            load=load,
            duration_ns=duration_ns,
            telemetry=telemetry,
        )
        campaigns[kind] = runtime.run_campaign(
            AttackCampaign(
                config=config,
                params=params,
                fault_schedule=fault_schedule,
                failed_switches=failed_switches,
                fidelity=fidelity,
                workload=workload,
            )
        )
    contiguous = campaigns["contiguous"].victim_gain["mean"]
    pseudo = campaigns["pseudo-random"].victim_gain["mean"]
    return {
        "strategy": strategy.describe(),
        "n_switches": config.n_switches,
        "contiguous": campaigns["contiguous"].to_dict(),
        "pseudo-random": campaigns["pseudo-random"].to_dict(),
        "exposure_ratio": contiguous / pseudo if pseudo > 0 else float("inf"),
        "_campaigns": campaigns,
    }
