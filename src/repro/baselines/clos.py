"""Design 3: a three-stage Clos / load-balanced organisation.

Challenge 3: per-packet load balancing and output reordering are
near-impossible in optics, so all three stages must be electronic --
**three O/E/O conversion stages** instead of one, plus the processing
and memory split across three chiplet sets.  This module prices that
choice with the same power model used for SPS, so E8's comparison is
apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import RouterConfig
from ..analysis.power import PowerBreakdown, hbm_switch_power


@dataclass(frozen=True)
class ClosDesign:
    """A three-stage organisation of the same aggregate capacity."""

    stages: int
    oeo_stages: int
    switches_per_stage: int
    power: PowerBreakdown
    needs_reorder_buffer: bool

    @property
    def total_power_w(self) -> float:
        return self.power.total_w


def clos_design(config: RouterConfig, stages: int = 3) -> ClosDesign:
    """Price a ``stages``-stage Clos built from the same HBM switches.

    Each packet crosses every stage, so every stage's switches carry the
    full traffic and every stage boundary is an OEO conversion: OEO
    power scales by ``stages``, and processing/memory power by the
    stage count too (the same total traffic is processed ``stages``
    times).  Per-packet load balancing also requires resequencing at the
    outputs (the reorder-buffer cost SS 4 charges the statistical
    approach).
    """
    if stages < 1:
        raise ValueError(f"stages must be >= 1, got {stages}")
    per_switch = hbm_switch_power(config.switch, oeo_stages=1)
    # H switches per stage carry the full load; `stages` stages of them.
    total = per_switch.scaled(config.n_switches * stages)
    return ClosDesign(
        stages=stages,
        oeo_stages=stages,
        switches_per_stage=config.n_switches,
        power=total,
        needs_reorder_buffer=stages > 1,
    )


def sps_vs_clos_power_ratio(config: RouterConfig) -> float:
    """Clos power over SPS power for the same capacity (about 3x)."""
    sps = hbm_switch_power(config.switch).scaled(config.n_switches)
    clos = clos_design(config).power
    return clos.total_w / sps.total_w
