"""Design 1: a single centralized switch fabric.

Challenge 1: "A single centralized switch cannot keep up with our needed
high rates, as it would need prohibitive switching rates as well as
memory access rates."  This module quantifies "prohibitive": the
shared-memory access rate a centralized fabric needs versus what one
memory system provides, and the packet decision rate versus what one
scheduler can do.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import RouterConfig
from ..constants import HBM4_STACK_BANDWIDTH, TOMAHAWK5_CAPACITY


@dataclass(frozen=True)
class CentralizedFeasibility:
    """How far beyond single-device limits a centralized design sits."""

    required_memory_bps: float
    single_stack_bps: float
    required_decisions_per_s: float
    reference_chip_bps: float

    @property
    def memory_shortfall(self) -> float:
        """Required memory rate over one HBM4 stack's peak (>= 64x)."""
        return self.required_memory_bps / self.single_stack_bps

    @property
    def switching_shortfall(self) -> float:
        """Required fabric rate over the biggest shipping switch chip."""
        return (self.required_memory_bps / 2.0) / self.reference_chip_bps

    @property
    def feasible(self) -> bool:
        """A centralized design is feasible only if both ratios are <= 1."""
        return self.memory_shortfall <= 1.0 and self.switching_shortfall <= 1.0


def centralized_feasibility(
    config: RouterConfig, min_packet_bytes: int = 64
) -> CentralizedFeasibility:
    """Rates a centralized shared-memory fabric would need for ``config``.

    A shared memory must absorb every bit in and out (2x the ingress);
    the scheduler must make a decision per minimum-size packet.
    """
    required_memory = config.total_io_bps  # in + out
    decisions = config.io_per_direction_bps / (8.0 * min_packet_bytes)
    return CentralizedFeasibility(
        required_memory_bps=required_memory,
        single_stack_bps=HBM4_STACK_BANDWIDTH,
        required_decisions_per_s=decisions,
        reference_chip_bps=TOMAHAWK5_CAPACITY,
    )
