"""Design 2: organising the H switches as a 2-D mesh.

Challenge 2 (citing [61]): multi-hop forwarding through intermediate
switches wastes link capacity and power; for an n x n mesh under
arbitrary admissible traffic the guaranteed capacity is at most 2/n of
the total -- 20% for a 10 x 10 mesh.

Two views are provided:

- the closed-form bound :func:`mesh_guaranteed_capacity` (a bisection
  argument: up to half the traffic must cross the n-link middle cut in
  each direction);
- a constructive check :func:`mesh_link_loads_uniform` that routes a
  worst-case admissible pattern with dimension-ordered routing (XY) and
  reports per-link loads, showing the middle-cut saturation directly.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..errors import ConfigError


def mesh_guaranteed_capacity(n: int) -> float:
    """Worst-case throughput fraction guaranteed by an n x n mesh.

    Bisection argument: an adversarial admissible pattern sends all
    traffic across the vertical middle cut, which has only n links per
    direction while n^2/2 nodes (half the total capacity n^2) inject
    toward it; the sustainable fraction is 2n/n^2 = 2/n (the [61]
    worst-case bound the paper quotes: 20% at n = 10).
    """
    if n <= 0:
        raise ConfigError(f"mesh edge must be positive, got {n}")
    if n == 1:
        return 1.0
    return min(1.0, 2.0 / n)


def mesh_wasted_fraction(n: int) -> float:
    """Capacity (and power) fraction wasted in the worst case: 1 - 2/n."""
    return 1.0 - mesh_guaranteed_capacity(n)


def mesh_hop_count(n: int) -> float:
    """Mean hop count of XY routing under uniform traffic (~2n/3).

    Every hop is switch capacity and link power spent on transit, which
    is the "waste" Challenge 2 objects to; SPS packets take exactly one
    hop regardless of H.
    """
    if n <= 0:
        raise ConfigError(f"mesh edge must be positive, got {n}")
    # Expected |x1 - x2| for uniform x in [0, n): (n^2 - 1) / (3n), twice.
    per_dim = (n * n - 1) / (3.0 * n)
    return 2.0 * per_dim


def mesh_link_loads_uniform(
    n: int, cross_pattern: bool = True
) -> Dict[Tuple[Tuple[int, int], Tuple[int, int]], float]:
    """Per-link load of XY routing at injection rate 1 per node.

    With ``cross_pattern`` (the adversarial case) every node on the left
    half sends to its mirror on the right half and vice versa -- an
    admissible permutation that slams the middle cut.  Returns directed
    link -> load; max load / injection shows how little of the injection
    rate is sustainable (the 2/n effect).
    """
    if n <= 1:
        raise ConfigError(f"need n >= 2, got {n}")
    loads: Dict[Tuple[Tuple[int, int], Tuple[int, int]], float] = {}

    def _route(src: Tuple[int, int], dst: Tuple[int, int], demand: float) -> None:
        x, y = src
        # X first.
        while x != dst[0]:
            nxt = x + (1 if dst[0] > x else -1)
            key = ((x, y), (nxt, y))
            loads[key] = loads.get(key, 0.0) + demand
            x = nxt
        while y != dst[1]:
            nxt = y + (1 if dst[1] > y else -1)
            key = ((x, y), (x, nxt))
            loads[key] = loads.get(key, 0.0) + demand
            y = nxt

    if cross_pattern:
        for x in range(n):
            for y in range(n):
                mirror = (n - 1 - x, y)
                if mirror != (x, y):
                    _route((x, y), mirror, 1.0)
    else:
        demand = 1.0 / (n * n - 1)
        for sx in range(n):
            for sy in range(n):
                for dx in range(n):
                    for dy in range(n):
                        if (sx, sy) != (dx, dy):
                            _route((sx, sy), (dx, dy), demand)
    return loads


def mesh_sustainable_fraction(n: int, cross_pattern: bool = True) -> float:
    """Injection fraction sustainable given the max link load of XY routing.

    Links have capacity 1 (one injection's worth).  For the adversarial
    cross pattern this lands at O(1/n), consistent with (and tighter
    than) the 2/n bound.
    """
    loads = mesh_link_loads_uniform(n, cross_pattern)
    peak = max(loads.values())
    return min(1.0, 1.0 / peak)


def mesh_transit_power_factor(n: int) -> float:
    """Power multiplier from multi-hop OEO relative to a single hop.

    Every hop in a photonics-interconnected mesh is an O/E/O crossing
    (or an extra chiplet I/O [10]); mean hops ~ 2n/3 means the mesh
    spends that factor more conversion energy per delivered bit than
    SPS's single conversion.
    """
    return max(1.0, mesh_hop_count(n))
