"""Random packet spraying with an output reordering buffer.

The alternative to frames (Challenge 6, citing [59] and the datacenter
packet-spraying line [14, 26, 45, 68]): spray each packet to a random
memory module, then resequence at the output [57, 62, 66].  Two costs,
both quantified here by simulation:

- **throughput**: every access is random, paying the ~30 ns
  activate/precharge overhead around its transfer (the E3 reductions);
- **memory**: the resequencer must hold every packet that completed
  before an earlier packet of its output -- the buffer the paper calls
  "an order of magnitude higher" than PFI's 14.5 MB of frame-assembly
  SRAM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..config import HBMStackConfig
from ..errors import ConfigError
from ..hbm.timing import HBMTiming
from ..traffic.packet import Packet
from ..units import bytes_per_ns_to_rate


@dataclass
class SprayResult:
    """Outcome of a spraying-switch run."""

    delivered_bytes: int
    elapsed_ns: float
    reorder_buffer_peak_bytes: int
    reorder_delay_mean_ns: float
    reorder_delay_max_ns: float
    channel_busy_fraction: float

    @property
    def throughput_bps(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return bytes_per_ns_to_rate(self.delivered_bytes / self.elapsed_ns)


class SpraySwitch:
    """T parallel memory channels, random placement, output resequencing."""

    def __init__(
        self,
        n_channels: int,
        n_outputs: int,
        timing: HBMTiming = HBMTiming(),
        stack: HBMStackConfig = HBMStackConfig(),
        seed: int = 0,
    ) -> None:
        if n_channels <= 0 or n_outputs <= 0:
            raise ConfigError(
                f"need positive counts, got T={n_channels}, N={n_outputs}"
            )
        self.n_channels = n_channels
        self.n_outputs = n_outputs
        self.timing = timing
        self.stack = stack
        self._rng = np.random.default_rng(seed)

    def run(self, packets: Sequence[Packet]) -> SprayResult:
        """Spray ``packets`` (arrival-sorted) and resequence per output.

        Each packet's memory completion is its channel's FCFS service at
        the worst-case random access cost; its departure is held until
        all earlier packets of its output have completed (in-order
        delivery).  The resequencing buffer holds completed-but-held
        packets.
        """
        channel_free = np.zeros(self.n_channels)
        busy_time = 0.0
        completion: List[float] = []
        rate = self.stack.channel_bytes_per_ns
        overhead = self.timing.random_access_overhead_ns
        for packet in packets:
            channel = int(self._rng.integers(self.n_channels))
            transfer = (
                self.timing.quantise_to_bursts(
                    packet.size_bytes, self.stack.channel_width_bits
                )
                / rate
            )
            service = overhead + transfer
            start = max(packet.arrival_ns, channel_free[channel])
            done = start + service
            channel_free[channel] = done
            busy_time += service
            completion.append(done)

        # Resequence per output: departure = prefix max of completions.
        per_output_watermark = [0.0] * self.n_outputs
        departures: List[float] = []
        hold_intervals: List[Tuple[float, float, int]] = []
        delays: List[float] = []
        for packet, done in zip(packets, completion):
            j = packet.output_port
            depart = max(done, per_output_watermark[j])
            per_output_watermark[j] = depart
            departures.append(depart)
            delays.append(depart - done)
            if depart > done:
                hold_intervals.append((done, depart, packet.size_bytes))

        peak = _peak_held_bytes(hold_intervals)
        elapsed = max(departures) if departures else 0.0
        delivered = sum(p.size_bytes for p in packets)
        busy_fraction = (
            busy_time / (elapsed * self.n_channels) if elapsed > 0 else 0.0
        )
        delays_arr = np.asarray(delays)
        return SprayResult(
            delivered_bytes=delivered,
            elapsed_ns=elapsed,
            reorder_buffer_peak_bytes=peak,
            reorder_delay_mean_ns=float(delays_arr.mean()) if len(delays_arr) else 0.0,
            reorder_delay_max_ns=float(delays_arr.max()) if len(delays_arr) else 0.0,
            channel_busy_fraction=busy_fraction,
        )


def _peak_held_bytes(intervals: List[Tuple[float, float, int]]) -> int:
    """Peak concurrent bytes across (start, end, size) hold intervals."""
    if not intervals:
        return 0
    events: List[Tuple[float, int]] = []
    for start, end, size in intervals:
        events.append((start, size))
        events.append((end, -size))
    events.sort(key=lambda e: (e[0], e[1]))
    held = 0
    peak = 0
    for _, delta in events:
        held += delta
        peak = max(peak, held)
    return peak


def reorder_stats_by_flow(
    packets: Sequence[Packet], completions: Sequence[float]
) -> Dict[str, float]:
    """Fraction of packets that completed out of flow order.

    The "reordering rate" knob of [57, 62, 66]: per flow, a packet is
    reordered if an earlier packet of its flow completes later.
    """
    last_completion: Dict[tuple, float] = {}
    reordered = 0
    for packet, done in zip(packets, completions):
        key = (
            packet.flow.src_ip,
            packet.flow.dst_ip,
            packet.flow.src_port,
            packet.flow.dst_port,
            packet.flow.protocol,
        )
        previous = last_completion.get(key)
        if previous is not None and done < previous:
            reordered += 1
        last_completion[key] = max(previous or 0.0, done)
    total = max(len(packets), 1)
    return {"reordered_fraction": reordered / total, "count": float(len(packets))}


@dataclass
class BoundedResequencingResult:
    """Outcome of resequencing with a finite buffer."""

    buffer_bytes: int
    delivered_packets: int
    reordered_packets: int
    peak_held_bytes: int
    mean_hold_ns: float

    @property
    def reordering_rate(self) -> float:
        """Fraction of packets delivered out of order."""
        if self.delivered_packets == 0:
            return 0.0
        return self.reordered_packets / self.delivered_packets


def bounded_resequencing(
    packets: Sequence[Packet],
    completions: Sequence[float],
    buffer_bytes: int,
) -> BoundedResequencingResult:
    """Resequence with a finite buffer, evicting when it overflows.

    The SS 4 trade the paper cites [57, 62, 66]: a spraying design's
    reordering buffer can be shrunk only by accepting a reordering rate
    -- when the buffer fills, the earliest-completed held packet is
    released out of order.  Sweeping ``buffer_bytes`` produces the
    buffer-vs-reordering-rate curve (ablation bench A3).
    """
    if buffer_bytes < 0:
        raise ConfigError(f"buffer must be >= 0, got {buffer_bytes}")
    # Per-output in-order pid sequences (arrival order = pid order).
    order: Dict[int, List[int]] = {}
    for packet in sorted(packets, key=lambda p: p.pid):
        order.setdefault(packet.output_port, []).append(packet.pid)
    next_index = {output: 0 for output in order}
    sizes = {p.pid: p.size_bytes for p in packets}
    outputs = {p.pid: p.output_port for p in packets}

    # Process completions in time order.
    events = sorted(zip(completions, (p.pid for p in packets)))
    held: Dict[int, float] = {}  # pid -> completion time
    held_bytes = 0
    delivered: set = set()
    reordered = 0
    peak = 0
    hold_time_total = 0.0
    held_count = 0

    def advance(output: int, now: float) -> None:
        nonlocal held_bytes, hold_time_total, held_count
        sequence = order[output]
        while next_index[output] < len(sequence):
            pid = sequence[next_index[output]]
            if pid in delivered:
                next_index[output] += 1
            elif pid in held:
                hold_time_total += now - held.pop(pid)
                held_count += 1
                held_bytes -= sizes[pid]
                delivered.add(pid)
                next_index[output] += 1
            else:
                break

    for time, pid in events:
        output = outputs[pid]
        sequence = order[output]
        # Skip already-delivered (evicted) heads.
        advance(output, time)
        if (
            next_index[output] < len(sequence)
            and sequence[next_index[output]] == pid
        ):
            delivered.add(pid)
            next_index[output] += 1
            advance(output, time)
            continue
        # Out of order: hold it, evicting if the buffer overflows.
        held[pid] = time
        held_bytes += sizes[pid]
        peak = max(peak, held_bytes)
        while held_bytes > buffer_bytes:
            evict = min(held, key=lambda k: held[k])
            hold_time_total += time - held.pop(evict)
            held_count += 1
            held_bytes -= sizes[evict]
            delivered.add(evict)
            reordered += 1
    # Drain anything still held (deliverable in order at the end).
    final_time = events[-1][0] if events else 0.0
    for output in list(next_index):
        advance(output, final_time)
    mean_hold = hold_time_total / held_count if held_count else 0.0
    return BoundedResequencingResult(
        buffer_bytes=buffer_bytes,
        delivered_packets=len(delivered),
        reordered_packets=reordered,
        peak_held_bytes=peak,
        mean_hold_ns=mean_hold,
    )
