"""Input-queued crossbar with iSLIP scheduling -- the conventional router.

The paper's Design 1 observes that a single centralized fabric "would
need prohibitive switching rates"; the deeper issue is that conventional
electronic switches must run a *scheduler* (iSLIP-class request/grant/
accept arbitration) every cell time, and "there is no known algorithm
that works at these speeds" for ideal shared-memory behaviour (SS 1).

This module implements a faithful iSLIP [McKeown '99] over VOQs:

- each input keeps N virtual output queues (no HOL blocking);
- every cell slot runs ``iterations`` rounds of request -> grant (per
  output, round-robin pointer) -> accept (per input, round-robin
  pointer), pointers advancing only on first-iteration accepts;
- matched pairs transfer one cell.

Besides serving as a throughput baseline, it *counts scheduler work*
(requests, grants, accepts per slot), which at 2.56 Tb/s ports is the
arbitration rate a centralized design would need -- the number PFI's
cyclic, schedule-free design reduces to zero.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence

from ..errors import ConfigError
from ..traffic.packet import Packet
from ..units import bytes_per_ns_to_rate, rate_to_bytes_per_ns


@dataclass
class ISLIPResult:
    """Outcome of an iSLIP switch run."""

    delivered_bytes: int
    delivered_packets: int
    elapsed_ns: float
    slots: int
    cells_transferred: int
    scheduler_requests: int
    scheduler_grants: int
    scheduler_accepts: int
    mean_voq_occupancy_cells: float

    @property
    def throughput_bps(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return bytes_per_ns_to_rate(self.delivered_bytes / self.elapsed_ns)

    @property
    def scheduler_ops_per_slot(self) -> float:
        if self.slots == 0:
            return 0.0
        return (
            self.scheduler_requests + self.scheduler_grants + self.scheduler_accepts
        ) / self.slots


class ISLIPSwitch:
    """N x N input-queued crossbar with VOQs and iSLIP arbitration."""

    def __init__(
        self,
        n_ports: int,
        port_rate_bps: float,
        cell_bytes: int = 64,
        iterations: int = 1,
    ) -> None:
        if n_ports <= 0:
            raise ConfigError(f"n_ports must be positive, got {n_ports}")
        if port_rate_bps <= 0:
            raise ConfigError(f"port rate must be positive, got {port_rate_bps}")
        if cell_bytes <= 0:
            raise ConfigError(f"cell size must be positive, got {cell_bytes}")
        if iterations <= 0:
            raise ConfigError(f"iterations must be positive, got {iterations}")
        self.n = n_ports
        self.cell_bytes = cell_bytes
        self.cell_time = cell_bytes / rate_to_bytes_per_ns(port_rate_bps)
        self.iterations = iterations

    def run(self, packets: Sequence[Packet], max_slots: int = 10_000_000) -> ISLIPResult:
        """Switch a packet sequence; returns throughput and scheduler work."""
        n = self.n
        voq: List[List[Deque[Packet]]] = [[deque() for _ in range(n)] for _ in range(n)]
        cells_left: Dict[int, int] = {}
        arrivals = deque(
            (p.arrival_ns, p) for p in sorted(packets, key=lambda p: p.arrival_ns)
        )
        grant_ptr = [0] * n  # per output
        accept_ptr = [0] * n  # per input
        requests = grants = accepts = 0
        cells_transferred = 0
        delivered_packets = 0
        delivered_bytes = 0
        occupancy_sum = 0
        pending = len(packets)
        slot = 0
        last_finish = 0.0
        while pending > 0:
            if slot >= max_slots:
                raise ConfigError("iSLIP simulation exceeded max_slots")
            now = slot * self.cell_time
            while arrivals and arrivals[0][0] <= now:
                _, packet = arrivals.popleft()
                n_cells = max(1, -(-packet.size_bytes // self.cell_bytes))
                cells_left[packet.pid] = n_cells
                voq[packet.input_port][packet.output_port].append(packet)

            matched_inputs: set = set()
            matched_outputs: set = set()
            match: List[Optional[int]] = [None] * n  # input -> output
            for iteration in range(self.iterations):
                # Request: every unmatched input with a cell for an
                # unmatched output requests it.
                reqs: Dict[int, List[int]] = {}
                for i in range(n):
                    if i in matched_inputs:
                        continue
                    for j in range(n):
                        if j in matched_outputs or not voq[i][j]:
                            continue
                        reqs.setdefault(j, []).append(i)
                        requests += 1
                if not reqs:
                    break
                # Grant: each requested output grants the requester at or
                # after its pointer.
                granted: Dict[int, List[int]] = {}
                for j, requesters in reqs.items():
                    chosen = _round_robin_pick(requesters, grant_ptr[j], n)
                    granted.setdefault(chosen, []).append(j)
                    grants += 1
                # Accept: each granted input accepts the grant at or
                # after its pointer.
                for i, granters in granted.items():
                    j = _round_robin_pick(granters, accept_ptr[i], n)
                    accepts += 1
                    matched_inputs.add(i)
                    matched_outputs.add(j)
                    match[i] = j
                    if iteration == 0:
                        # Pointers move only on first-iteration accepts
                        # (the iSLIP de-synchronisation rule).
                        grant_ptr[j] = (i + 1) % n
                        accept_ptr[i] = (j + 1) % n

            # Transfer one cell per matched pair.
            for i, j in enumerate(match):
                if j is None:
                    continue
                packet = voq[i][j][0]
                cells_left[packet.pid] -= 1
                cells_transferred += 1
                if cells_left[packet.pid] == 0:
                    voq[i][j].popleft()
                    finish = (slot + 1) * self.cell_time
                    packet.departure_ns = finish
                    last_finish = max(last_finish, finish)
                    delivered_packets += 1
                    delivered_bytes += packet.size_bytes
                    pending -= 1
            occupancy_sum += sum(len(q) for row in voq for q in row)
            slot += 1
        return ISLIPResult(
            delivered_bytes=delivered_bytes,
            delivered_packets=delivered_packets,
            elapsed_ns=last_finish,
            slots=slot,
            cells_transferred=cells_transferred,
            scheduler_requests=requests,
            scheduler_grants=grants,
            scheduler_accepts=accepts,
            mean_voq_occupancy_cells=occupancy_sum / slot if slot else 0.0,
        )


def _round_robin_pick(candidates: List[int], pointer: int, n: int) -> int:
    """The candidate at or cyclically after ``pointer``."""
    best = None
    best_distance = n + 1
    for candidate in candidates:
        distance = (candidate - pointer) % n
        if distance < best_distance:
            best_distance = distance
            best = candidate
    return best  # candidates is never empty


def scheduler_rate_required(port_rate_bps: float, cell_bytes: int = 64) -> float:
    """Arbitration decisions per second one port demands of a scheduler.

    At the SPS port rate of 2.56 Tb/s and 64 B cells this is 5 G
    decisions/s *per port* -- every slot, every port, synchronously.
    PFI replaces all of it with a fixed cyclic rotation.
    """
    if port_rate_bps <= 0 or cell_bytes <= 0:
        raise ConfigError("port rate and cell size must be positive")
    return port_rate_bps / (8.0 * cell_bytes)
