"""A load-balanced two-stage switch (Design 3, [38, 47, 48]).

The classic load-balanced router: a first cyclic crossbar spreads
arriving cells round-robin over N intermediate VOQ buffers (perfect
electronic per-packet load balancing), a second cyclic crossbar connects
the middles to the outputs.  It guarantees 100% throughput for
admissible traffic with no scheduler -- but:

- it needs **electronic** per-cell spreading at every input and a
  **resequencing buffer** at every output (cells of one flow take
  different paths and arrive out of order), which is exactly why the
  paper rules it out for the optical splitting stage (Challenge 3); and
- as a three-stage package organisation it pays 3 OEO conversions
  (priced in :mod:`repro.baselines.clos`).

The simulation is cell-slotted (cells of ``cell_bytes`` at line rate)
and measures what SPS avoids: the resequencing buffer and delay.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..traffic.packet import Packet
from ..units import bytes_per_ns_to_rate, rate_to_bytes_per_ns


@dataclass
class LoadBalancedResult:
    """Outcome of a load-balanced switch run."""

    delivered_bytes: int
    delivered_packets: int
    elapsed_ns: float
    cells_switched: int
    reorder_buffer_peak_bytes: int
    resequencing_delay_mean_ns: float
    resequencing_delay_max_ns: float
    out_of_order_packets: int

    @property
    def throughput_bps(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return bytes_per_ns_to_rate(self.delivered_bytes / self.elapsed_ns)


class LoadBalancedSwitch:
    """Two cyclic crossbars around N intermediate VOQ buffers."""

    def __init__(self, n_ports: int, port_rate_bps: float, cell_bytes: int = 64):
        if n_ports <= 0:
            raise ConfigError(f"n_ports must be positive, got {n_ports}")
        if port_rate_bps <= 0:
            raise ConfigError(f"port rate must be positive, got {port_rate_bps}")
        if cell_bytes <= 0:
            raise ConfigError(f"cell size must be positive, got {cell_bytes}")
        self.n = n_ports
        self.rate = rate_to_bytes_per_ns(port_rate_bps)
        self.cell_bytes = cell_bytes
        self.cell_time = cell_bytes / self.rate

    def run(self, packets: Sequence[Packet], max_slots: int = 10_000_000) -> LoadBalancedResult:
        """Push a packet sequence through both stages.

        Packets are cut into cells; input queues release one cell per
        slot toward the middle the first crossbar currently faces; each
        middle releases one cell per slot toward the output the second
        crossbar currently faces.  A packet completes when its last cell
        reaches the output; the resequencer then holds it until all
        earlier packets of its output have completed.
        """
        n = self.n
        # Input queues of (packet, cells_remaining, is_last-aware) cells.
        input_queues: List[Deque[Tuple[Packet, int]]] = [deque() for _ in range(n)]
        arrivals = deque(
            (p.arrival_ns, p) for p in sorted(packets, key=lambda p: p.arrival_ns)
        )
        # Middle VOQs: middle m, output j -> deque of packets (one entry
        # per cell).
        voqs: List[List[Deque[Packet]]] = [
            [deque() for _ in range(n)] for _ in range(n)
        ]
        # A packet completes when ALL its cells reached the output --
        # cells take different middles and arrive out of order.
        cells_to_deliver: Dict[int, int] = {
            p.pid: max(1, -(-p.size_bytes // self.cell_bytes)) for p in packets
        }
        completion: Dict[int, float] = {}
        cells_switched = 0
        slot = 0
        pending = len(packets)
        while pending > 0:
            if slot >= max_slots:
                raise ConfigError("load-balanced simulation exceeded max_slots")
            now = slot * self.cell_time
            # Admit arrivals whose time has come.
            while arrivals and arrivals[0][0] <= now:
                _, packet = arrivals.popleft()
                input_queues[packet.input_port].append(
                    (packet, cells_to_deliver[packet.pid])
                )
            # Stage 1: input i -> middle (i + slot) mod n, one cell.
            for i in range(n):
                if not input_queues[i]:
                    continue
                middle = (i + slot) % n
                packet, cells_left = input_queues[i][0]
                cells_left -= 1
                if cells_left == 0:
                    input_queues[i].popleft()
                else:
                    input_queues[i][0] = (packet, cells_left)
                voqs[middle][packet.output_port].append(packet)
                cells_switched += 1
            # Stage 2: middle m -> output (m + slot) mod n, one cell.
            for m in range(n):
                j = (m + slot) % n
                if not voqs[m][j]:
                    continue
                packet = voqs[m][j].popleft()
                cells_switched += 1
                cells_to_deliver[packet.pid] -= 1
                if cells_to_deliver[packet.pid] == 0:
                    completion[packet.pid] = (slot + 1) * self.cell_time
                    pending -= 1
            slot += 1
            if not arrivals and all(not q for q in input_queues) and all(
                not voq for row in voqs for voq in row
            ):
                break
        return self._resequence(packets, completion, cells_switched)

    def _resequence(
        self, packets: Sequence[Packet], completion: Dict[int, float], cells_switched: int
    ) -> LoadBalancedResult:
        """In-order delivery per output: departure = prefix max."""
        watermark = [0.0] * self.n
        hold: List[Tuple[float, float, int]] = []
        delays: List[float] = []
        out_of_order = 0
        elapsed = 0.0
        delivered_bytes = 0
        for packet in sorted(packets, key=lambda p: p.pid):
            done = completion.get(packet.pid)
            if done is None:
                continue
            j = packet.output_port
            depart = max(done, watermark[j])
            if depart > done:
                out_of_order += 1
                hold.append((done, depart, packet.size_bytes))
            watermark[j] = depart
            packet.departure_ns = depart
            delays.append(depart - done)
            elapsed = max(elapsed, depart)
            delivered_bytes += packet.size_bytes
        peak = _peak_bytes(hold)
        delays_arr = np.asarray(delays) if delays else np.zeros(1)
        return LoadBalancedResult(
            delivered_bytes=delivered_bytes,
            delivered_packets=len(delays),
            elapsed_ns=elapsed,
            cells_switched=cells_switched,
            reorder_buffer_peak_bytes=peak,
            resequencing_delay_mean_ns=float(delays_arr.mean()),
            resequencing_delay_max_ns=float(delays_arr.max()),
            out_of_order_packets=out_of_order,
        )


def _peak_bytes(intervals: List[Tuple[float, float, int]]) -> int:
    """Peak concurrent bytes across (start, end, size) hold intervals."""
    events: List[Tuple[float, int]] = []
    for start, end, size in intervals:
        events.append((start, size))
        events.append((end, -size))
    events.sort(key=lambda e: (e[0], e[1]))
    held = peak = 0
    for _, delta in events:
        held += delta
        peak = max(peak, held)
    return peak
