"""HBM used obliviously to its timing rules (Challenge 6).

Prior shared-memory and spraying designs "are oblivious to the specific
HBM memory rules and assume worst-case random access times": every
packet access pays a full activate + precharge (~30 ns) around a tiny
data transfer.  The paper quantifies the damage:

- 1,500-byte packets, leveraging parallel channels: **2.6x** reduction;
- 64-byte packets: **39x**;
- without leveraging parallel channels: up to **~1,250x**.

:func:`random_access_reduction` is the closed-form model (reduction =
(overhead + transfer) / transfer, times the parallelism left unused);
:func:`simulate_random_access_channel` reproduces the same number by
actually issuing ACT/RD/PRE per packet on the timing-checked bank model,
so the analytic and executable views agree.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import HBMStackConfig
from ..errors import ConfigError
from ..hbm.bank import Bank
from ..hbm.commands import Command, Op
from ..hbm.timing import HBMTiming


@dataclass(frozen=True)
class RandomAccessModel:
    """Outcome of the random-access throughput analysis."""

    packet_bytes: int
    transfer_ns: float
    overhead_ns: float
    channels_used: int
    channels_total: int

    @property
    def per_channel_reduction(self) -> float:
        """(overhead + transfer) / transfer on the channels actually used."""
        return (self.overhead_ns + self.transfer_ns) / self.transfer_ns

    @property
    def parallelism_penalty(self) -> float:
        """Extra loss from leaving channels idle."""
        return self.channels_total / self.channels_used

    @property
    def total_reduction(self) -> float:
        """Throughput reduction versus peak rate."""
        return self.per_channel_reduction * self.parallelism_penalty

    @property
    def efficiency(self) -> float:
        return 1.0 / self.total_reduction


def random_access_reduction(
    packet_bytes: int,
    timing: HBMTiming = HBMTiming(),
    stack: HBMStackConfig = HBMStackConfig(),
    leverage_parallel_channels: bool = True,
) -> RandomAccessModel:
    """The paper's throughput-reduction factors, from first principles.

    With parallel channels, each packet still lands on *one* channel
    (random placement), but all channels work concurrently, so the
    reduction is just the per-access inefficiency.  Without them, a
    single channel serves everything while the other 31 idle.
    """
    if packet_bytes <= 0:
        raise ConfigError(f"packet size must be positive, got {packet_bytes}")
    transfer = packet_bytes / stack.channel_bytes_per_ns
    overhead = timing.random_access_overhead_ns
    channels_used = stack.channels if leverage_parallel_channels else 1
    return RandomAccessModel(
        packet_bytes=packet_bytes,
        transfer_ns=transfer,
        overhead_ns=overhead,
        channels_used=channels_used,
        channels_total=stack.channels,
    )


def simulate_random_access_channel(
    packet_bytes: int,
    n_packets: int = 200,
    timing: HBMTiming = HBMTiming(),
    stack: HBMStackConfig = HBMStackConfig(),
    n_banks: int = 4,
) -> float:
    """Measured throughput reduction on the real bank state machine.

    Serves ``n_packets`` accesses with the oblivious designs' worst-case
    discipline: a strictly serial closed-page controller -- activate,
    wait tRCD, transfer, precharge, wait tRP, only then start the next
    access.  Banks rotate so per-bank rules (tRC, tRAS) are also
    satisfied, but the controller never pipelines, which is exactly the
    "about 30 ns just to activate and close banks" per access the paper
    charges.  Measures achieved bytes/ns versus the channel peak.
    """
    if n_packets <= 0:
        raise ConfigError(f"n_packets must be positive, got {n_packets}")
    if n_banks < 2:
        raise ConfigError("bank rotation needs n_banks >= 2 to satisfy tRC")
    banks = [Bank(timing, channel=0, index=b) for b in range(n_banks)]
    rate = stack.channel_bytes_per_ns
    now = 0.0
    for i in range(n_packets):
        bank = banks[i % n_banks]
        act_at = max(now, bank.earliest_activate())
        bank.apply(Command(Op.ACT, 0, i % n_banks, 0, act_at))
        rd_at = act_at + timing.t_rcd
        transfer = timing.quantise_to_bursts(packet_bytes, stack.channel_width_bits) / rate
        bank.apply(Command(Op.RD, 0, i % n_banks, 0, rd_at, size_bytes=packet_bytes), transfer)
        data_end = rd_at + transfer
        pre_at = max(act_at + timing.t_ras, data_end)
        bank.apply(Command(Op.PRE, 0, i % n_banks, 0, pre_at))
        # Serial turnaround: the controller charges the precharge time
        # before starting the next access (on the next bank).
        now = data_end + timing.t_rp
    elapsed = now
    achieved = n_packets * packet_bytes / elapsed
    return rate / achieved
