"""Baselines the paper compares against.

- :mod:`ideal_oq` -- the ideal output-queued shared-memory switch, the
  "holy grail" PFI mimics (Design 6 step 6, [6]).
- :mod:`centralized` -- Design 1: one centralized fabric; infeasible
  memory/switching rates (Challenge 1).
- :mod:`mesh` -- Design 2: a sqrt(H) x sqrt(H) mesh; the 2/n guaranteed-
  capacity bound (Challenge 2, [61]).
- :mod:`clos` -- Design 3: three electronic stages, three OEO
  conversions (Challenge 3).
- :mod:`random_access` -- HBM used obliviously to its timing rules:
  worst-case random accesses and the 2.6x / 39x / ~1250x throughput
  reductions (Challenge 6).
- :mod:`spray` -- random packet spraying over memory modules plus an
  output reordering buffer ([59], [57, 62, 66]).
"""

from .centralized import CentralizedFeasibility, centralized_feasibility
from .clos import ClosDesign, clos_design
from .ideal_oq import IdealOQSwitch, OQResult, relative_delays
from .islip import ISLIPResult, ISLIPSwitch, scheduler_rate_required
from .load_balanced import LoadBalancedResult, LoadBalancedSwitch
from .mesh import (
    mesh_guaranteed_capacity,
    mesh_hop_count,
    mesh_link_loads_uniform,
    mesh_wasted_fraction,
)
from .random_access import (
    RandomAccessModel,
    random_access_reduction,
    simulate_random_access_channel,
)
from .spray import SprayResult, SpraySwitch

__all__ = [
    "IdealOQSwitch",
    "OQResult",
    "relative_delays",
    "CentralizedFeasibility",
    "centralized_feasibility",
    "mesh_guaranteed_capacity",
    "mesh_hop_count",
    "mesh_link_loads_uniform",
    "mesh_wasted_fraction",
    "ClosDesign",
    "clos_design",
    "RandomAccessModel",
    "random_access_reduction",
    "simulate_random_access_channel",
    "SpraySwitch",
    "SprayResult",
    "LoadBalancedSwitch",
    "LoadBalancedResult",
    "ISLIPSwitch",
    "ISLIPResult",
    "scheduler_rate_required",
]
