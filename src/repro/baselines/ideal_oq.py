"""The ideal output-queued shared-memory switch.

"The holy grail of router architectures that can handle arbitrary
admissible traffic at 100% throughput with work conservation" (SS 1).
Every output is an infinitely fast-to-reach FIFO server at the line
rate; a packet's departure is the earliest the output line can finish it
given everything that arrived before.

PFI's guarantee (Design 6 step 6, [6]) is *packet-mode OQ mimicry*:
with a small speedup, every packet leaves the HBM switch within a
bounded delay of its ideal-OQ departure.  :func:`relative_delays`
measures exactly that, given the same packet objects run through both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..config import HBMSwitchConfig
from ..errors import ConfigError
from ..traffic.packet import Packet
from ..units import rate_to_bytes_per_ns


@dataclass
class OQResult:
    """Ideal-OQ departures for a packet sequence."""

    departures_ns: Dict[int, float]  # pid -> departure time
    per_output_busy_until: List[float]
    total_bytes: int

    def departure_of(self, packet: Packet) -> float:
        return self.departures_ns[packet.pid]


class IdealOQSwitch:
    """Work-conserving per-output FIFO at line rate -- the reference."""

    def __init__(self, config: HBMSwitchConfig):
        self.config = config
        self._rate = rate_to_bytes_per_ns(config.port_rate_bps)

    def run(self, packets: Sequence[Packet]) -> OQResult:
        """Compute every packet's ideal departure time.

        Packets must be sorted by arrival (the generator's order); each
        output serves its arrivals FIFO at the line rate.
        """
        busy = [0.0] * self.config.n_ports
        departures: Dict[int, float] = {}
        total = 0
        last_arrival = -float("inf")
        for packet in packets:
            if packet.arrival_ns < last_arrival:
                raise ConfigError("packets must be sorted by arrival time")
            last_arrival = packet.arrival_ns
            j = packet.output_port
            start = max(packet.arrival_ns, busy[j])
            finish = start + packet.size_bytes / self._rate
            busy[j] = finish
            departures[packet.pid] = finish
            total += packet.size_bytes
        return OQResult(
            departures_ns=departures,
            per_output_busy_until=busy,
            total_bytes=total,
        )


def relative_delays(packets: Sequence[Packet], oq: OQResult) -> np.ndarray:
    """Per-packet (real departure - ideal departure), for departed packets.

    The mimicry claim is that the *maximum* of this array stays bounded
    (does not grow with the run length) once the switch has a small
    speedup.  Negative entries are possible in principle (the real
    switch may pad and fast-path a packet) but FIFO discipline makes
    them rare.
    """
    delays = []
    for packet in packets:
        if packet.departure_ns is None:
            continue
        delays.append(packet.departure_ns - oq.departures_ns[packet.pid])
    return np.asarray(delays, dtype=np.float64)
