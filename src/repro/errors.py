"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Timing violations carry enough
context (command, bank, earliest legal time) to debug an illegal HBM
schedule, because the whole point of PFI is that its schedule is legal at
peak rate -- a violation is a bug in the scheduler, not a runtime
condition to paper over.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all repro errors."""


class ConfigError(ReproError):
    """A configuration is internally inconsistent or out of range."""


class TimingViolation(ReproError):
    """An HBM command was issued before its earliest legal time.

    Attributes
    ----------
    command:
        Human-readable description of the offending command.
    issued_at:
        Time (ns) at which the command was issued.
    legal_at:
        Earliest time (ns) at which it would have been legal.
    rule:
        Name of the violated timing rule (e.g. ``"tRC"``, ``"tFAW"``).
    """

    def __init__(self, command: str, issued_at: float, legal_at: float, rule: str):
        self.command = command
        self.issued_at = issued_at
        self.legal_at = legal_at
        self.rule = rule
        super().__init__(
            f"{rule} violation: {command} issued at {issued_at:.3f} ns, "
            f"legal at {legal_at:.3f} ns"
        )


class CapacityExceeded(ReproError):
    """A buffer or memory region was asked to hold more than it can."""


class AdmissibilityError(ReproError):
    """A traffic matrix is not admissible (a row or column sum exceeds 1)."""


class SimulationError(ReproError):
    """The discrete-event engine detected an inconsistent state."""


class OrderingViolation(ReproError):
    """Packets of the same flow departed out of order where order is guaranteed."""
