"""Discrete-event simulation substrate.

A minimal, deterministic event engine shared by the HBM switch, the
baselines and the benches:

- :class:`~repro.sim.engine.Engine` -- an event queue with a monotonic
  clock; events at equal times fire in scheduling order, which keeps runs
  reproducible.
- :mod:`~repro.sim.stats` -- throughput meters, latency recorders with
  percentiles, queue-occupancy trackers and drop counters.
- :mod:`~repro.sim.parallel` -- process-pool fan-out of independent
  switch simulations with a deterministic, bit-identical merge.
"""

from .engine import Engine, Event
from .parallel import (
    SwitchWorkUnit,
    execute_work_unit,
    resolve_worker_count,
    run_work_units,
)
from .stats import (
    DropCounter,
    LatencyRecorder,
    OccupancyTracker,
    ThroughputMeter,
)
from .trace import TraceRecord, TraceRecorder

__all__ = [
    "Engine",
    "Event",
    "SwitchWorkUnit",
    "execute_work_unit",
    "resolve_worker_count",
    "run_work_units",
    "ThroughputMeter",
    "LatencyRecorder",
    "OccupancyTracker",
    "DropCounter",
    "TraceRecorder",
    "TraceRecord",
]
