"""Discrete-event simulation substrate.

A minimal, deterministic event engine shared by the HBM switch, the
baselines and the benches:

- :class:`~repro.sim.engine.Engine` -- an event queue with a monotonic
  clock; events at equal times fire in scheduling order, which keeps runs
  reproducible.
- :mod:`~repro.sim.stats` -- throughput meters, latency recorders with
  percentiles, queue-occupancy trackers and drop counters.
"""

from .engine import Engine, Event
from .stats import (
    DropCounter,
    LatencyRecorder,
    OccupancyTracker,
    ThroughputMeter,
)
from .trace import TraceRecord, TraceRecorder

__all__ = [
    "Engine",
    "Event",
    "ThroughputMeter",
    "LatencyRecorder",
    "OccupancyTracker",
    "DropCounter",
    "TraceRecorder",
    "TraceRecord",
]
