"""Event tracing for simulations.

A :class:`TraceRecorder` collects typed, timestamped records from the
switch pipeline (batch formed, frame written, frame bypassed, drop, ...)
for debugging and for offline analysis.  Recording is opt-in and cheap:
components call :meth:`TraceRecorder.record` only when a recorder is
attached, and the recorder can cap its memory with a ring buffer.

Export formats: JSON-lines (one record per line) and CSV.
"""

from __future__ import annotations

import csv
import io
import json
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced event."""

    time_ns: float
    category: str
    event: str
    fields: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        flat: Dict[str, object] = {
            "time_ns": self.time_ns,
            "category": self.category,
            "event": self.event,
        }
        flat.update(self.fields)
        return flat


class TraceRecorder:
    """Bounded in-memory trace sink.

    ``capacity`` caps retained records (oldest dropped first); ``None``
    keeps everything.  ``categories`` restricts recording to a set of
    categories (others are counted but not stored).
    """

    def __init__(self, capacity: Optional[int] = 100_000, categories: Optional[List[str]] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._categories = set(categories) if categories is not None else None
        self.counts: Counter = Counter()
        self.dropped_records = 0

    def record(self, time_ns: float, category: str, event: str, **fields) -> None:
        """Record one event (cheap no-op for filtered categories)."""
        self.counts[f"{category}.{event}"] += 1
        if self._categories is not None and category not in self._categories:
            return
        if self._records.maxlen is not None and len(self._records) == self._records.maxlen:
            self.dropped_records += 1
        self._records.append(TraceRecord(time_ns, category, event, fields))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def filter(self, category: Optional[str] = None, event: Optional[str] = None) -> List[TraceRecord]:
        """Records matching the given category and/or event."""
        return [
            r
            for r in self._records
            if (category is None or r.category == category)
            and (event is None or r.event == event)
        ]

    # -- export ----------------------------------------------------------------

    def to_jsonl(self) -> str:
        """One JSON object per line."""
        return "\n".join(json.dumps(r.as_dict(), sort_keys=True) for r in self._records)

    def to_csv(self) -> str:
        """CSV with the union of all field names as columns."""
        records = [r.as_dict() for r in self._records]
        if not records:
            return ""
        columns: List[str] = ["time_ns", "category", "event"]
        extra = sorted({k for r in records for k in r} - set(columns))
        columns += extra
        out = io.StringIO()
        writer = csv.DictWriter(out, fieldnames=columns)
        writer.writeheader()
        for record in records:
            writer.writerow(record)
        return out.getvalue()

    def summary(self) -> Dict[str, int]:
        """Event counts by 'category.event' (including filtered ones)."""
        return dict(self.counts)
