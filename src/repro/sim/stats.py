"""Measurement instruments for simulations.

All recorders are passive: simulation components call ``record`` /
``add`` / ``observe`` and the benches read summary properties afterwards.
Latency percentiles use numpy's linear interpolation; throughput is
bytes-over-wallclock with an explicit observation window so partially
warm runs do not skew rates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..units import bytes_per_ns_to_rate


class ThroughputMeter:
    """Counts bytes delivered and converts to a rate over a window."""

    def __init__(self) -> None:
        self._bytes = 0
        self._count = 0
        self._first_time: Optional[float] = None
        self._last_time: Optional[float] = None

    def record(self, size_bytes: int, time_ns: float) -> None:
        """Record ``size_bytes`` delivered at ``time_ns``."""
        self._bytes += size_bytes
        self._count += 1
        if self._first_time is None:
            self._first_time = time_ns
        self._last_time = time_ns

    @property
    def total_bytes(self) -> int:
        return self._bytes

    @property
    def count(self) -> int:
        """Number of delivery events (packets, batches, frames...)."""
        return self._count

    def rate_bps(self, window_ns: Optional[float] = None) -> float:
        """Average delivery rate in bits/s.

        ``window_ns`` overrides the denominator; by default the span from
        first to last recorded event is used.  Degenerate windows --
        nothing recorded yet, a zero/negative span (including the
        single-sample case, whose default span is zero), or a
        non-positive/NaN explicit window -- all report 0.0 rather than a
        division error or an infinite rate.
        """
        if self._count == 0:
            return 0.0
        if window_ns is None:
            window_ns = self._last_time - self._first_time
        if not window_ns > 0:  # also catches NaN, which fails every compare
            return 0.0
        return bytes_per_ns_to_rate(self._bytes / window_ns)


class LatencyRecorder:
    """Collects per-item latencies and reports distribution summaries.

    An *empty* recorder reports ``NaN`` statistics (JSON-safe as
    ``null`` through :func:`repro.reporting.report_to_dict`), never a
    silent ``0.0``: "no samples" and "zero latency" are different
    claims, and a 0.0 percentile from a switch that delivered nothing
    used to read as an impossibly fast pipeline.

    By default every sample is kept (exact percentiles; the statistics
    are bit-for-bit what they always were).  ``capacity`` bounds the
    retained samples with seeded reservoir sampling for internet-scale
    streaming runs: 10^7 delivered packets would otherwise pin
    hundreds of MB of floats.  The count, mean, min and max stay exact
    (running accumulators); percentiles become reservoir estimates.
    """

    def __init__(self, capacity: Optional[int] = None, seed: int = 0) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._samples: List[float] = []
        self._capacity = capacity
        self._count = 0
        self._sum = 0.0
        self._max = float("-inf")
        self._min = float("inf")
        self._random = random.Random(seed) if capacity is not None else None

    def record(self, latency_ns: float) -> None:
        """Record one latency sample (ns).  Negative latency is a bug."""
        if latency_ns < 0:
            raise ValueError(f"negative latency {latency_ns:.3f} ns")
        self._count += 1
        self._sum += latency_ns
        if latency_ns > self._max:
            self._max = latency_ns
        if latency_ns < self._min:
            self._min = latency_ns
        if self._capacity is None or len(self._samples) < self._capacity:
            self._samples.append(latency_ns)
        else:
            # Algorithm R: each of the _count samples seen so far has a
            # capacity/_count chance of being in the reservoir.
            slot = self._random.randrange(self._count)
            if slot < self._capacity:
                self._samples[slot] = latency_ns

    def absorb(self, other: "LatencyRecorder") -> None:
        """Merge ``other``'s samples into this recorder.

        The roll-up path for per-port recorders: an unbounded recorder
        absorbing unbounded recorders extends its sample list exactly
        as per-sample :meth:`record` calls would, so the numpy-based
        statistics below are byte-identical to the historical roll-up
        loop.  Exact accumulators (count/sum/min/max) merge exactly in
        every combination.
        """
        self._count += other._count
        self._sum += other._sum
        if other._max > self._max:
            self._max = other._max
        if other._min < self._min:
            self._min = other._min
        if self._capacity is None:
            self._samples.extend(other._samples)
        else:
            for sample in other._samples:
                if len(self._samples) < self._capacity:
                    self._samples.append(sample)
                else:
                    slot = self._random.randrange(self._count)
                    if slot < self._capacity:
                        self._samples[slot] = sample

    def __len__(self) -> int:
        """Exact number of recorded samples (not the retained subset)."""
        return self._count

    @property
    def samples(self) -> List[float]:
        """The retained samples (read-only by convention).

        Equal to every recorded sample unless ``capacity`` trimmed the
        reservoir.
        """
        return self._samples

    @property
    def mean(self) -> float:
        if self._count == 0:
            return float("nan")
        if self._capacity is None:
            # Preserve numpy's pairwise summation bit-for-bit for the
            # exact path; the running sum is for the bounded path only.
            return float(np.mean(self._samples))
        return self._sum / self._count

    @property
    def maximum(self) -> float:
        return self._max if self._count else float("nan")

    @property
    def minimum(self) -> float:
        return self._min if self._count else float("nan")

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100); ``NaN`` with no samples.

        Exact by default; a reservoir estimate when ``capacity`` is set.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        return (
            float(np.percentile(self._samples, q))
            if self._samples
            else float("nan")
        )

    def summary(self) -> Dict[str, float]:
        """Mean / p50 / p99 / max in one dict, for table rows."""
        return {
            "count": float(self._count),
            "mean_ns": self.mean,
            "p50_ns": self.percentile(50),
            "p99_ns": self.percentile(99),
            "max_ns": self.maximum,
        }


class OccupancyTracker:
    """Tracks a queue's occupancy over time (time-weighted average + peak)."""

    def __init__(self) -> None:
        self._current = 0.0
        self._peak = 0.0
        self._weighted_sum = 0.0
        self._last_time = 0.0
        #: Time of the first observation; ``None`` before any.  Explicit
        #: state (rather than an implicit started flag) so the
        #: pre-observation value of :meth:`time_average` is a documented
        #: contract: exactly 0.0, deterministically, whatever ``until_ns``.
        self._first_time: Optional[float] = None

    def observe(self, occupancy: float, time_ns: float) -> None:
        """Record that occupancy became ``occupancy`` at ``time_ns``."""
        if self._first_time is not None and time_ns >= self._last_time:
            self._weighted_sum += self._current * (time_ns - self._last_time)
        elif self._first_time is None:
            self._first_time = time_ns
        self._current = occupancy
        self._peak = max(self._peak, occupancy)
        self._last_time = time_ns

    @property
    def peak(self) -> float:
        return self._peak

    @property
    def current(self) -> float:
        return self._current

    def time_average(self, until_ns: Optional[float] = None) -> float:
        """Time-weighted average occupancy up to ``until_ns`` (or last obs).

        Deterministically 0.0 before the first observation -- an empty
        tracker has observed no occupancy, whatever window it is asked
        about.
        """
        if self._first_time is None:
            return 0.0
        end = self._last_time if until_ns is None else until_ns
        if end <= 0:
            return 0.0
        tail = self._current * max(0.0, end - self._last_time)
        return (self._weighted_sum + tail) / end


@dataclass
class DropCounter:
    """Counts dropped items and bytes, split by reason."""

    dropped_items: int = 0
    dropped_bytes: int = 0
    by_reason: Dict[str, int] = field(default_factory=dict)

    def record(self, size_bytes: int, reason: str = "overflow") -> None:
        self.dropped_items += 1
        self.dropped_bytes += size_bytes
        self.by_reason[reason] = self.by_reason.get(reason, 0) + 1

    @property
    def any(self) -> bool:
        return self.dropped_items > 0

    def loss_fraction(self, offered_bytes: int) -> float:
        """Fraction of offered bytes that were dropped."""
        if offered_bytes <= 0:
            return 0.0
        return self.dropped_bytes / offered_bytes


def batch_means_ci(
    samples: List[float], n_batches: int = 10, z: float = 1.96
) -> "Tuple[float, float]":
    """Batch-means confidence interval for autocorrelated sim output.

    Simulation latency samples are serially correlated, so a naive
    standard error understates uncertainty.  The batch-means method
    splits the series into ``n_batches`` consecutive batches, treats
    the batch averages as (approximately) independent, and builds the
    CI from their spread.  Returns ``(mean, halfwidth)``.
    """
    if n_batches < 2:
        raise ValueError(f"need at least 2 batches, got {n_batches}")
    if len(samples) < n_batches:
        raise ValueError(
            f"{len(samples)} samples cannot form {n_batches} batches"
        )
    data = np.asarray(samples, dtype=np.float64)
    size = len(data) // n_batches
    trimmed = data[: size * n_batches].reshape(n_batches, size)
    means = trimmed.mean(axis=1)
    grand = float(means.mean())
    stderr = float(means.std(ddof=1) / np.sqrt(n_batches))
    return grand, z * stderr
