"""A small deterministic discrete-event engine.

Time is a float in nanoseconds (see :mod:`repro.units`).  The engine is
intentionally simple: a binary heap of ``(time, priority, sequence,
event)`` where the priority class puts external arrivals ahead of
internal pipeline events at the same instant and the monotonically
increasing sequence number breaks remaining ties, so two events
scheduled for the same instant always fire in a deterministic order --
the same order whether arrivals were scheduled up front (eager runs)
or block by block (streaming runs).  Determinism matters here because
the OQ-mimicry experiment (E5) compares two switches fed the *same*
arrival sequence.

The engine is the innermost loop of every simulation -- a loaded switch
run fires one event per batch, frame and phase -- so the hot path is
written for CPython speed: heap entries are plain tuples (compared at
C speed, never reaching the payload), :class:`Event` uses ``__slots__``,
and :meth:`Engine.run` binds its loop state to locals instead of going
through attribute lookups on every event.  Cancellation stays lazy
(cancelled events are skipped when popped), with a cheap counter that
compacts the heap when cancelled entries dominate it.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from ..errors import SimulationError

#: Compact the heap once it holds this many cancelled entries *and* they
#: outnumber the live ones -- keeps pathological cancel-heavy workloads
#: from scanning dead entries forever while costing nothing in the
#: common cancel-free case.
_COMPACT_THRESHOLD = 64


#: Priority classes within one timestamp.  External arrivals outrank
#: internal pipeline events at the same instant, so a streaming run
#: that injects a block's arrivals *after* earlier blocks seeded
#: internal work still fires them in the same order an eager run would
#: have (where every arrival is scheduled up front with the smallest
#: sequence numbers).
PRI_ARRIVAL = 0
PRI_INTERNAL = 1


class Event:
    """One scheduled callback.

    The heap orders entries by ``(time, pri, seq)`` tuples, so events
    pop in deterministic order.  ``cancelled`` events are skipped when
    popped (lazy deletion -- cheaper than heap surgery).
    """

    __slots__ = ("time", "pri", "seq", "action", "cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        action: Callable[[], None],
        pri: int = PRI_INTERNAL,
    ) -> None:
        self.time = time
        self.pri = pri
        self.seq = seq
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.pri, self.seq) < (
            other.time,
            other.pri,
            other.seq,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.3f}, pri={self.pri}, seq={self.seq}{state})"


class Engine:
    """Event queue plus clock.

    Usage::

        eng = Engine()
        eng.schedule(10.0, lambda: print("at t=10ns"))
        eng.run(until=100.0)
    """

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._seq = 0
        self._now = 0.0
        self._cancelled = 0
        self._fired = 0

    @property
    def now(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total events fired over the engine's lifetime (perf metric)."""
        return self._fired

    def schedule(
        self, time: float, action: Callable[[], None], pri: int = PRI_INTERNAL
    ) -> Event:
        """Schedule ``action`` to fire at absolute ``time``.

        Scheduling in the past is an error: it would silently reorder
        causality, which is exactly the class of bug a DES must surface.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.3f} ns, now is {self._now:.3f} ns"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, action, pri)
        heapq.heappush(self._queue, (time, pri, seq, event))
        return event

    def schedule_arrival(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule an *external arrival* at absolute ``time``.

        Arrivals carry :data:`PRI_ARRIVAL`, so at equal timestamps they
        fire before internal pipeline events regardless of when they
        were pushed -- the property that makes block-streamed ingest
        (arrivals injected block by block) byte-identical to an eager
        run that schedules every arrival up front.
        """
        return self.schedule(time, action, pri=PRI_ARRIVAL)

    def schedule_after(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to fire ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay:.3f} ns")
        return self.schedule(self._now + delay, action)

    def cancel(self, event: Event) -> None:
        """Cancel through the engine so dead entries are tallied for
        compaction; ``event.cancel()`` alone is also fine."""
        if not event.cancelled:
            event.cancelled = True
            self._cancelled += 1
            self._maybe_compact()

    def _maybe_compact(self) -> None:
        if (
            self._cancelled >= _COMPACT_THRESHOLD
            and self._cancelled * 2 > len(self._queue)
        ):
            self._queue = [
                entry for entry in self._queue if not entry[3].cancelled
            ]
            heapq.heapify(self._queue)
            self._cancelled = 0

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        queue = self._queue
        while queue and queue[0][3].cancelled:
            heapq.heappop(queue)
        return queue[0][0] if queue else None

    def step(self) -> bool:
        """Fire the next event.  Returns ``False`` when the queue is empty."""
        queue = self._queue
        pop = heapq.heappop
        while queue:
            time, _pri, _seq, event = pop(queue)
            if event.cancelled:
                continue
            self._now = time
            self._fired += 1
            event.action()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        inclusive: bool = True,
    ) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events fired.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` at the end even if the last event fired earlier, so
        throughput denominators are well defined.

        ``inclusive=False`` stops *before* events at exactly ``until``
        fire (they stay queued).  Block-streamed runs advance the
        engine this way to each block boundary: events at the boundary
        must wait until the next block's arrivals are pushed, so that
        same-timestamp ordering (arrivals first, by priority) matches
        the eager run.
        """
        queue = self._queue
        pop = heapq.heappop
        fired = 0
        while queue:
            if max_events is not None and fired >= max_events:
                break
            time, _pri, _seq, event = queue[0]
            if event.cancelled:
                pop(queue)
                continue
            if until is not None and (
                time > until or (not inclusive and time >= until)
            ):
                break
            pop(queue)
            self._now = time
            event.action()
            fired += 1
        self._fired += fired
        if until is not None and until > self._now:
            self._now = until
        return fired
