"""A small deterministic discrete-event engine.

Time is a float in nanoseconds (see :mod:`repro.units`).  The engine is
intentionally simple: a binary heap of ``(time, sequence, event)`` where
the monotonically increasing sequence number breaks ties, so two events
scheduled for the same instant always fire in the order they were
scheduled.  Determinism matters here because the OQ-mimicry experiment
(E5) compares two switches fed the *same* arrival sequence.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import SimulationError


@dataclass(order=True)
class Event:
    """One scheduled callback.

    Events compare by ``(time, seq)`` so the heap pops them in
    deterministic order.  ``cancelled`` events are skipped when popped
    (lazy deletion -- cheaper than heap surgery).
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it."""
        self.cancelled = True


class Engine:
    """Event queue plus clock.

    Usage::

        eng = Engine()
        eng.schedule(10.0, lambda: print("at t=10ns"))
        eng.run(until=100.0)
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = 0
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now

    def schedule(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to fire at absolute ``time``.

        Scheduling in the past is an error: it would silently reorder
        causality, which is exactly the class of bug a DES must surface.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time:.3f} ns, now is {self._now:.3f} ns"
            )
        event = Event(time=time, seq=self._seq, action=action)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to fire ``delay`` ns from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay:.3f} ns")
        return self.schedule(self._now + delay, action)

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Fire the next event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.action()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the number of events fired.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` at the end even if the last event fired earlier, so
        throughput denominators are well defined.
        """
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                break
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            self.step()
            fired += 1
        if until is not None and until > self._now:
            self._now = until
        return fired
