"""Parallel execution of independent switch simulations.

The Split-Parallel Switch's central property is that its H switches
share nothing: no electronic load balancing, no inter-switch state, one
O/E/O per packet (:mod:`repro.core.sps`).  The router simulation is
therefore *embarrassingly parallel* -- H independent discrete-event
simulations plus a passive fiber assignment -- and this module exploits
exactly that and nothing more.

Design constraints:

- **Determinism.**  Each :class:`SwitchWorkUnit` is a self-contained,
  picklable description of one switch run.  A unit's result depends only
  on the unit (each worker builds its own engine, RNG-free pipeline and
  report), so executing units in any process, in any order, yields
  bit-identical :class:`~repro.core.hbm_switch.SwitchReport`s.  The
  merge step reassembles results by unit index, so the aggregate
  :class:`~repro.core.sps.RouterReport` is byte-identical to a
  sequential run.
- **Graceful degradation.**  With one worker (or one unit) the pool is
  skipped entirely and units run inline -- no pickling, no processes --
  which is also the fallback on platforms without working
  multiprocessing.

Workers re-simulate copies of the packets, so mutations workers make
(``departure_ns``, egress lane) are visible only in their reports, not
on the caller's :class:`~repro.traffic.packet.Packet` objects; run
sequentially when per-packet post-mortems of the originals are needed.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..errors import ConfigError


@dataclass(frozen=True)
class SwitchWorkUnit:
    """One picklable, self-contained switch simulation.

    ``index`` identifies the unit in the deterministic merge; the rest
    mirrors the :meth:`~repro.core.hbm_switch.HBMSwitch.run` signature.
    """

    index: int
    config: object  # HBMSwitchConfig (kept loose to avoid an import cycle)
    options: object  # PFIOptions
    timing: Optional[object]  # HBMTiming
    packets: Tuple = field(repr=False)
    duration_ns: float = 0.0
    drain: bool = True
    max_drain_ns: Optional[float] = None
    #: Optional per-switch fault projection
    #: (:class:`~repro.faults.schedule.SwitchFaultView`); ``None`` keeps
    #: the exact unfaulted simulation path.
    faults: Optional[object] = None
    #: When True the worker instruments its switch with a fresh
    #: per-switch :class:`~repro.telemetry.MetricsRegistry` and ships
    #: the dump back on ``SwitchReport.telemetry``.  A plain flag (not a
    #: registry object) keeps the unit cheaply picklable; the parent
    #: merges worker dumps in unit-index order, so the aggregate is
    #: byte-identical to a sequential run.
    telemetry: bool = False


def execute_work_unit(unit: SwitchWorkUnit):
    """Run one unit to completion; returns ``(index, SwitchReport)``.

    Module-level (not a closure or method) so it pickles for worker
    processes regardless of the multiprocessing start method.
    """
    from ..core.hbm_switch import HBMSwitch

    registry = None
    telemetry = None
    if unit.telemetry:
        from ..telemetry import MetricsRegistry, SwitchTelemetry

        registry = MetricsRegistry()
        telemetry = SwitchTelemetry(registry, unit.config, unit.index)
    switch = HBMSwitch(
        unit.config,
        unit.options,
        unit.timing,
        faults=unit.faults,
        telemetry=telemetry,
    )
    report = switch.run(
        list(unit.packets),
        unit.duration_ns,
        drain=unit.drain,
        max_drain_ns=unit.max_drain_ns,
    )
    if registry is not None:
        report.telemetry = registry.to_dict()
    return unit.index, report


def resolve_worker_count(n_workers: Optional[int], n_units: int) -> int:
    """Effective pool size: requested (or CPU count), capped at the
    number of units -- idle workers only cost startup time."""
    if n_units <= 0:
        return 0
    if n_workers is None:
        n_workers = os.cpu_count() or 1
    if n_workers <= 0:
        raise ConfigError(f"n_workers must be positive, got {n_workers}")
    return min(n_workers, n_units)


def run_work_units(
    units: Sequence[SwitchWorkUnit],
    n_workers: Optional[int] = None,
    executor_factory: Callable[..., ProcessPoolExecutor] = ProcessPoolExecutor,
) -> List:
    """Execute every unit and return reports ordered by position in
    ``units`` (NOT by completion time -- the merge is deterministic).

    Fans out over a process pool when it can help; runs inline when a
    pool cannot beat sequential execution (one unit or one worker).
    """
    workers = resolve_worker_count(n_workers, len(units))
    if workers <= 1:
        return [execute_work_unit(unit)[1] for unit in units]
    by_index = {}
    with executor_factory(max_workers=workers) as pool:
        for index, report in pool.map(execute_work_unit, units):
            by_index[index] = report
    return [by_index[unit.index] for unit in units]


def run_parallel_tasks(
    fn: Callable,
    items: Sequence,
    n_workers: Optional[int] = None,
    executor_factory: Callable[..., ProcessPoolExecutor] = ProcessPoolExecutor,
    on_result: Optional[Callable[[int, object], None]] = None,
) -> List:
    """Order-preserving parallel map with the same worker policy as
    :func:`run_work_units`.

    ``fn`` must be a module-level callable and every item picklable --
    the contract worker processes impose.  With one worker (or one item)
    everything runs inline, which is also the fallback on platforms
    without working multiprocessing.  Fault-injection campaigns
    (:mod:`repro.faults.campaign`) fan whole faulted router runs out
    through this: the parallelism is *between* independent scenarios,
    so each worker still simulates its scenario sequentially and
    deterministically.

    ``on_result(index, result)`` is invoked in the parent, in input
    order, as each result becomes available (inline: after each item;
    pool: as the ordered result stream drains).  The scenario runtime
    checkpoints sweep cells through this hook, so a killed run keeps
    every cell that finished before the kill.
    """
    items = list(items)
    workers = resolve_worker_count(n_workers, len(items))
    if workers <= 1:
        results = []
        for index, item in enumerate(items):
            result = fn(item)
            if on_result is not None:
                on_result(index, result)
            results.append(result)
        return results
    results = []
    with executor_factory(max_workers=workers) as pool:
        for index, result in enumerate(pool.map(fn, items)):
            if on_result is not None:
                on_result(index, result)
            results.append(result)
    return results
