"""Reference hardware datapoints quoted by the paper.

Every constant here is a number the paper takes from a citation (HBM4
standard, Broadcom Tomahawk 5, Cisco 8201-32FH, Cerebras WSE-3, silicon
photonics energy).  They are collected in one module so that the design
analysis (``repro.analysis``) reads like the paper's SS 4 and every bench
can cite the same inputs.

Units follow ``repro.units``: rates in b/s, sizes in bytes, power in W,
energy in J, area in mm^2, time in ns.
"""

from __future__ import annotations

from .units import GB, KB, gbps, tbps

# --------------------------------------------------------------------------
# HBM4 (JEDEC JESD270-4 plus announced commercial parts [3, 19, 27, 34, 39])
# --------------------------------------------------------------------------

#: Channels per HBM4 stack (the 2048-bit interface is 32 x 64-bit channels).
HBM4_CHANNELS_PER_STACK = 32

#: Width of one HBM4 channel in bits.
HBM4_CHANNEL_WIDTH_BITS = 64

#: Per-pin data rate of announced HBM4 parts (paper: "over 10 Gb/s per bit").
HBM4_GBPS_PER_BIT = gbps(10)

#: Peak bandwidth of one stack: 2048 bits x 10 Gb/s = 20.48 Tb/s.
HBM4_STACK_BANDWIDTH = (
    HBM4_CHANNELS_PER_STACK * HBM4_CHANNEL_WIDTH_BITS * HBM4_GBPS_PER_BIT
)

#: Capacity of one HBM4 stack (paper SS 4 cites 64 GB [65]).
HBM4_STACK_CAPACITY_BYTES = 64 * GB

#: Banks per channel used by the reference design (L = 64, SS 3.1 Design 6).
HBM4_BANKS_PER_CHANNEL = 64

#: Row length per bank per channel; S = 1 KB is a "unit fraction of a row
#: length" -- the reference model uses 1 KB rows so one segment fills one row.
HBM4_ROW_BYTES = 1 * KB

#: Footprint of one HBM stack (11 mm x 11 mm [21]).
HBM_STACK_AREA_MM2 = 11.0 * 11.0

#: Power of one HBM4 stack (paper SS 4 cites about 75 W [52]).
HBM4_STACK_POWER_W = 75.0

#: Worst-case random-access overhead: "about 30 ns just to activate and
#: close (precharge) banks" (SS 3.1 Challenge 6, citing [34]).
HBM4_RANDOM_ACCESS_OVERHEAD_NS = 30.0

#: Write<->read phase transition overhead, "about 2% of the cycle
#: duration" (SS 4, *Frame interleaving cycle*).
HBM4_PHASE_TRANSITION_FRACTION = 0.02

# --------------------------------------------------------------------------
# In-package photonics [12, 22, 42, 43, 56]
# --------------------------------------------------------------------------

#: OEO conversion energy for commercially available silicon photonics
#: (paper SS 4: "about 1.15 pJ/bit" [16-18, 20, 25, 49]).
OEO_ENERGY_PJ_PER_BIT = 1.15

#: Demonstrated photonics I/O today: 16 ribbons x 16 fibers x 8 wavelengths.
DEMONSTRATED_OPTICAL_IO = tbps(114)

#: Expected fiber-ribbon width (fibers per ribbon array) [22].
EXPECTED_FIBERS_PER_RIBBON = 64

#: Expected WDM channels per fiber [12, 56].
EXPECTED_WAVELENGTHS_PER_FIBER = 32

#: PAM4 per-wavelength rate already possible (SS 5 conclusion, [42]).
PAM4_WAVELENGTH_RATE = gbps(112)

# --------------------------------------------------------------------------
# Commercial comparators
# --------------------------------------------------------------------------

#: Broadcom Tomahawk 5 BCM78900 switching capacity [8].
TOMAHAWK5_CAPACITY = tbps(51.2)

#: Broadcom Tomahawk 5 power dissipation [9].
TOMAHAWK5_POWER_W = 500.0

#: Broadcom Tomahawk 5 estimated die size [8].
TOMAHAWK5_DIE_AREA_MM2 = 800.0

#: Cisco 8201-32FH: 32 x 400 Gb/s = 12.8 Tb/s in 1 RU (SS 5).
CISCO_8201_32FH_CAPACITY = tbps(12.8)

#: Cisco 8201-32FH buffering (SS 4: "5 ms for Cisco's 8201-32FH").
CISCO_8201_32FH_BUFFER_MS = 5.0

#: Cisco Q100 linecard buffering (SS 4: "up to 18 ms").
CISCO_Q100_BUFFER_MS = 18.0

#: Cisco Q200 linecard buffering (SS 4: "13 ms of buffering").
CISCO_Q200_BUFFER_MS = 13.0

#: Cisco white-paper recommendation for core-router buffering (SS 4).
CISCO_RECOMMENDED_BUFFER_MS = (5.0, 10.0)

#: Cerebras WSE-3 wafer-scale processor power (SS 4: 23 kW [36]).
CEREBRAS_WSE3_POWER_W = 23_000.0

# --------------------------------------------------------------------------
# Packaging
# --------------------------------------------------------------------------

#: Typical package edge today (SS 1: 200 mm x 200 mm).
TYPICAL_PACKAGE_EDGE_MM = 200.0

#: Demonstrated panel-scale glass substrate edge (SS 1: 500 mm [28]).
PANEL_EDGE_MM = 500.0

#: Panel-scale substrate area, 500 mm x 500 mm = 250,000 mm^2 (SS 4).
PANEL_AREA_MM2 = PANEL_EDGE_MM * PANEL_EDGE_MM

# --------------------------------------------------------------------------
# SRAM technology assumptions (SS 3.2, *Batch size*)
# --------------------------------------------------------------------------

#: SRAM clock assumed by the paper.
SRAM_CLOCK_GHZ = 2.5

#: Deliverable SRAM rate per interface bit: 2.5 Gb/s per bit at 2.5 GHz.
SRAM_GBPS_PER_BIT = gbps(2.5)

# --------------------------------------------------------------------------
# Roadmap multipliers (SS 5, *Router evolution*)
# --------------------------------------------------------------------------

#: Future HBM generations: 4x capacity and bandwidth vs HBM4 [52].
HBM_ROADMAP_FACTOR = 4.0

#: Monolithic 3D stackable DRAM: 10x capacity and bandwidth vs HBM4 [23, 24].
MONOLITHIC_3D_FACTOR = 10.0

#: HBM share of reference-design power (SS 5: "HBM accounts for 40%").
HBM_POWER_SHARE = 0.40

#: Processing-chiplet share of reference-design power (SS 5: "50% of power").
PROCESSING_POWER_SHARE = 0.50

# --------------------------------------------------------------------------
# Mesh baseline (SS 2.1 Challenge 2, citing [61])
# --------------------------------------------------------------------------

#: Guaranteed-capacity fraction of a 10x10 mesh under arbitrary admissible
#: traffic: "at most 20% of the total capacity".
MESH_10X10_GUARANTEED_FRACTION = 0.20
