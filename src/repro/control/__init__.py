"""Closed-loop adaptive control plane (docs/control.md).

Reacts to the telemetry the data plane already emits -- occupancy
high-water, goodput deficit, attack-window flags -- with three
wanctl/CAKE-shaped controllers per switch:

- **admission/backpressure**: throttle ingress when buffer occupancy
  approaches the SRAM/HBM limit (multiplicative decrease, additive
  recovery);
- **split reweighting**: shift H-way fiber-split weight away from
  degraded or dead switches during fault windows;
- **attack mitigation**: rate-limit victim-targeted traffic while
  ``repro_attack_active_window`` fires.

Everything is deterministic and declarative: a frozen
:class:`ControlConfig` rides on the :class:`~repro.runtime.Scenario`
(participating in its digest), the loop ticks on window boundaries in
both fidelities, and every decision lands in a byte-reproducible
``repro-control-v1`` action stream plus ``repro_control_*`` time
series.
"""

from .actions import (
    ACTION_FIELDS,
    ACTION_KINDS,
    CONTROL_SCHEMA,
    ActionLog,
    validate_control_actions,
)
from .compare import compare_attack_loops, compare_fault_loops
from .config import (
    DEFAULT_ADMISSION,
    DEFAULT_MITIGATION,
    DEFAULT_REWEIGHT,
    ControlConfig,
    ControllerParams,
)
from .controller import GREEN, RED, SOFT_RED, STATES, YELLOW, Controller
from .loop import CONTROL_STATE, CONTROL_THROTTLE, ControlLoop
from .packet import packet_control_prepass

__all__ = [
    "ACTION_FIELDS",
    "ACTION_KINDS",
    "ActionLog",
    "CONTROL_SCHEMA",
    "CONTROL_STATE",
    "CONTROL_THROTTLE",
    "ControlConfig",
    "ControlLoop",
    "Controller",
    "ControllerParams",
    "DEFAULT_ADMISSION",
    "DEFAULT_MITIGATION",
    "DEFAULT_REWEIGHT",
    "GREEN",
    "RED",
    "SOFT_RED",
    "STATES",
    "YELLOW",
    "compare_attack_loops",
    "compare_fault_loops",
    "packet_control_prepass",
    "validate_control_actions",
]
