"""Packet-fidelity control: a causal split-level pre-pass.

The packet engine (:class:`~repro.core.sps.SplitParallelSwitch`)
consumes a complete workload up front, so the control plane acts where
a real SPS control plane would: at the split, before packets commit to
a fiber.  :func:`packet_control_prepass` walks the workload in arrival
order through the same tick cadence as the fluid loop -- tick ``k``'s
actuation is computed purely from tick ``k-1``'s signals -- and
produces a *modified* workload:

- **reweight** -- a packet bound for a down-weighted switch is
  deterministically redirected (error diffusion per switch, smooth
  weighted round-robin over the healthier switches, round-robin over
  the ribbon's fibers feeding the new switch via
  :meth:`~repro.core.fiber_split.FiberSplitter.fibers_to`);
- **admission / mitigation** -- a throttled packet is marked and
  excluded from the simulation; it stays in the workload for offered
  accounting (a throttled byte is an explicit backpressure loss, never
  a vanished offer).

Signals are what switch hardware can actually report per tick: offered
bytes at the split, a leaky-bucket occupancy estimate drained at the
switch's aggregate egress rate, and the loss-of-light indication of a
dead switch (``delivered = 0`` while its fault window covers the tick).
The pre-pass is pure and deterministic -- no RNG, no clock -- and runs
before the (sequential or parallel) engine pass, so the repo-wide
sequential == parallel byte-identity is untouched.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..config import RouterConfig
from ..units import rate_to_bytes_per_ns
from .actions import ActionLog
from .config import ControlConfig
from .loop import ControlLoop

#: Multiplier below which a switch's weight counts as actuated (floats
#: recover to exactly ``ceiling=1.0`` via the clamped step-up).
_WEIGHT_EPS = 1e-9


def attack_windows_for(strategy, duration_ns: float) -> Tuple[Tuple[float, float], ...]:
    """The windows during which ``repro_attack_active_window`` fires.

    Burst strategies expose their ON windows; every other strategy
    shapes the whole run, so the window is the full horizon (matching
    :func:`repro.telemetry.tag_attack_window`'s 0..duration tag).
    """
    from ..adversary.strategies import BurstSynchronizedAttack

    if isinstance(strategy, BurstSynchronizedAttack):
        on_ns = strategy.duty * strategy.period_ns
        windows: List[Tuple[float, float]] = []
        index = 0
        while index * strategy.period_ns < duration_ns:
            start = index * strategy.period_ns
            windows.append((start, min(start + on_ns, duration_ns)))
            index += 1
        return tuple(windows)
    return ((0.0, duration_ns),)


class _SmoothWRR:
    """Deterministic smooth weighted round-robin over the switches."""

    def __init__(self, n: int) -> None:
        self.credit = np.zeros(n)

    def pick(self, weights: np.ndarray) -> int:
        self.credit += weights
        choice = int(np.argmax(self.credit))
        self.credit[choice] -= float(weights.sum())
        return choice


def packet_control_prepass(
    config: RouterConfig,
    control: ControlConfig,
    packets: Sequence,
    fibers: Sequence[int],
    splitter,
    duration_ns: float,
    schedule=None,
    attack_windows: Optional[Sequence[Tuple[float, float]]] = None,
    telemetry=None,
    log: Optional[ActionLog] = None,
) -> Tuple[List[int], List[bool], ControlLoop]:
    """Run the control loop over a packet workload before the engine.

    Returns ``(new_fibers, throttled, loop)``: the (possibly
    reassigned) fiber per packet, a per-packet throttle mask, and the
    finished :class:`ControlLoop` (its action log carries the
    ``repro-control-v1`` stream, its ``throttled_bytes`` the
    backpressured total).
    """
    from ..flow.engine import buffer_limit_bytes

    n_switches = config.n_switches
    n_ribbons = config.n_ribbons
    switch = config.switch
    tick_ns = control.tick_ns
    n_ticks = max(int(np.ceil(duration_ns / tick_ns - 1e-9)), 1)
    capacity_per_tick = (
        rate_to_bytes_per_ns(switch.port_rate_bps) * switch.n_ports * tick_ns
    )

    loop = ControlLoop(
        control,
        n_switches,
        buffer_limit_bytes(switch),
        log=log,
        telemetry=telemetry,
    )

    assignments = [splitter.assignment_array(r) for r in range(n_ribbons)]
    fibers_by_switch = [
        [splitter.fibers_to(r, h) for h in range(n_switches)]
        for r in range(n_ribbons)
    ]
    fiber_cursor = np.zeros((n_ribbons, n_switches), dtype=np.int64)

    dead_always = (
        set(schedule.whole_run_dead_switches()) if schedule is not None else set()
    )
    views = (
        {
            h: schedule.switch_view(h, switch.total_channels)
            for h in range(n_switches)
            if h not in dead_always
        }
        if schedule is not None
        else {}
    )

    def dead_in_tick(h: int, tick: int) -> bool:
        if h in dead_always:
            return True
        view = views.get(h)
        if view is None:
            return False
        return view.dead_at((tick + 0.5) * tick_ns)

    spans = tuple(attack_windows) if attack_windows else ()

    def attack_active_in(start: float, end: float) -> bool:
        return any(s < end and e > start for s, e in spans)

    # Deterministic arrival-order walk regardless of input list order.
    arrivals = np.asarray([p.arrival_ns for p in packets], dtype=np.float64)
    order = np.argsort(arrivals, kind="stable")
    ticks_of = np.minimum(
        (arrivals / tick_ns).astype(np.int64), n_ticks - 1
    )

    new_fibers = list(fibers)
    throttled = [False] * len(new_fibers)
    throttled_bytes = 0
    bucket = np.zeros(n_switches)  # leaky-bucket occupancy estimate
    offered_now = np.zeros(n_switches)
    keep_credit = np.zeros(n_switches)  # reweight error diffusion
    admit_credit = np.zeros(n_switches)  # admission error diffusion
    wrr = _SmoothWRR(n_switches)

    pos = 0
    for tick in range(n_ticks):
        if tick > 0:
            # Close tick-1's window: served bytes per switch (zero while
            # its loss-of-light indication is up), then actuate tick.
            served = np.minimum(bucket, capacity_per_tick)
            for h in range(n_switches):
                if dead_in_tick(h, tick - 1):
                    served[h] = 0.0
            bucket -= served
            loop.tick(
                tick * tick_ns,
                offered_now,
                served,
                bucket.copy(),
                attack_active=attack_active_in(
                    (tick - 1) * tick_ns, tick * tick_ns
                ),
            )
            offered_now = np.zeros(n_switches)
        while pos < len(order) and ticks_of[order[pos]] == tick:
            i = int(order[pos])
            pos += 1
            packet = packets[i]
            ribbon = packet.input_port
            target = int(assignments[ribbon][new_fibers[i]])
            if loop.weight[target] < 1.0 - _WEIGHT_EPS:
                keep_credit[target] += loop.weight[target]
                if keep_credit[target] >= 1.0:
                    keep_credit[target] -= 1.0
                else:
                    target = wrr.pick(loop.weight)
                    lanes = fibers_by_switch[ribbon][target]
                    cursor = fiber_cursor[ribbon, target]
                    new_fibers[i] = lanes[cursor % len(lanes)]
                    fiber_cursor[ribbon, target] = cursor + 1
            offered_now[target] += packet.size_bytes
            admit = float(loop.admit[target])
            admit_credit[target] += admit
            if admit_credit[target] >= 1.0:
                admit_credit[target] -= 1.0
                if not dead_in_tick(target, tick):
                    bucket[target] += packet.size_bytes
            else:
                throttled[i] = True
                throttled_bytes += packet.size_bytes

    loop.throttled_bytes = float(throttled_bytes)
    loop.finish(duration_ns)
    return new_fibers, throttled, loop


def measure_degradation_controlled(
    config: RouterConfig,
    control: ControlConfig,
    schedule=None,
    load: float = 0.6,
    duration_ns: float = 40_000.0,
    seed: int = 0,
    n_intervals: int = 8,
    options=None,
    telemetry=None,
    log: Optional[ActionLog] = None,
):
    """Closed-loop twin of :func:`repro.faults.report.measure_degradation`.

    Same traffic, same round-robin baseline fiber spread, same
    sequential engine pass -- with the control pre-pass in between.
    Offered bytes count *all* generated packets (throttled ones bin as
    offered-but-undelivered and are added back to the byte totals as
    losses), so the delivered fraction is measured against the original
    offer, never against a throttle-shrunk one.

    Returns ``(report, loop)``.
    """
    from ..core.fiber_split import PseudoRandomSplitter
    from ..core.pfi import PFIOptions
    from ..core.sps import SplitParallelSwitch
    from ..faults.report import (
        DegradationReport,
        bin_packets,
        deterministic_fibers,
        router_fault_traffic,
    )

    if options is None:
        options = PFIOptions(padding=True, bypass=True)
    packets = router_fault_traffic(
        config, load=load, duration_ns=duration_ns, seed=seed
    )
    fibers = deterministic_fibers(packets, config.fibers_per_ribbon)
    splitter = PseudoRandomSplitter(config.fibers_per_ribbon, config.n_switches)
    new_fibers, throttled, loop = packet_control_prepass(
        config,
        control,
        packets,
        fibers,
        splitter,
        duration_ns,
        schedule=schedule,
        telemetry=telemetry,
        log=log,
    )
    kept = [p for p, t in zip(packets, throttled) if not t]
    kept_fibers = [f for f, t in zip(new_fibers, throttled) if not t]
    router = SplitParallelSwitch(config, options=options, splitter=splitter)
    report = router.run(
        kept,
        duration_ns,
        fibers=kept_fibers,
        fault_schedule=schedule,
        mode="sequential",
        telemetry=telemetry,
    )
    throttled_bytes = int(round(loop.throttled_bytes))
    return (
        DegradationReport(
            duration_ns=duration_ns,
            intervals=bin_packets(packets, duration_ns, n_intervals),
            offered_bytes=report.offered_bytes + throttled_bytes,
            delivered_bytes=report.delivered_bytes,
            lost_bytes=report.lost_bytes + throttled_bytes,
            residual_bytes=report.residual_bytes,
            failed_switches=list(report.failed_switches),
            fault_events=list(report.fault_events),
            control=loop.summary(),
        ),
        loop,
    )
