"""Controller configuration: frozen, validated, digest-participating.

A :class:`ControlConfig` is the complete declarative description of one
closed-loop run's control plane.  It is carried on the
:class:`~repro.runtime.Scenario` (the new ``control=`` field) and
hashed into the scenario digest, so closed-loop cells cache, resume and
shard exactly like open-loop cells -- and two cells that differ only in
controller tuning occupy different cache entries.

Each of the three controllers shares one parameter shape
(:class:`ControllerParams`), modelled on the wanctl CAKE controller:

- ``ewma_alpha`` smooths the raw per-tick signal (the same fold as
  :func:`repro.telemetry.ewma_step` -- one implementation repo-wide);
- ``yellow``/``soft_red``/``red`` are escalation thresholds on the
  smoothed signal, with ``hysteresis`` subtracted before a state may
  step back down (no GREEN<->RED flapping on a boundary-hovering
  signal);
- the actuated value (admit fraction or split-weight multiplier) lives
  in ``[floor, ceiling]``: GREEN recovers additively by ``step_up``,
  SOFT_RED decreases multiplicatively by ``(1+factor_down)/2``, RED by
  ``factor_down``, YELLOW holds.

What each controller's *signal* is, is fixed by the loop
(:mod:`repro.control.loop`):

- **admission** -- per-switch occupancy as a fraction of the switch's
  buffer limit (the closed-loop view of
  ``repro_window_occupancy_bytes`` against the SRAM/HBM ceilings);
- **reweight** -- per-switch goodput deficit ``1 - delivered/offered``
  per tick (a dead or degraded switch shows deficit ~1, so its split
  weight collapses toward ``floor`` -- the canary share that keeps
  probing for recovery);
- **mitigation** -- per-switch offered-share gain over the uniform
  ``1/H`` share (the victim of a synchronized attack shows gain >> 1),
  evaluated only while an attack window is active.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..errors import ConfigError


@dataclass(frozen=True)
class ControllerParams:
    """One controller's thresholds and actuation constants."""

    ewma_alpha: float = 0.3
    yellow: float = 0.5
    soft_red: float = 0.7
    red: float = 0.9
    hysteresis: float = 0.05
    floor: float = 0.1
    ceiling: float = 1.0
    step_up: float = 0.1
    factor_down: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if not self.yellow <= self.soft_red <= self.red:
            raise ConfigError(
                f"thresholds must satisfy yellow <= soft_red <= red, got "
                f"({self.yellow}, {self.soft_red}, {self.red})"
            )
        if self.hysteresis < 0:
            raise ConfigError(
                f"hysteresis must be >= 0, got {self.hysteresis}"
            )
        if not 0.0 < self.floor <= self.ceiling:
            raise ConfigError(
                f"need 0 < floor <= ceiling, got "
                f"({self.floor}, {self.ceiling})"
            )
        if self.step_up <= 0:
            raise ConfigError(f"step_up must be positive, got {self.step_up}")
        if not 0.0 < self.factor_down < 1.0:
            raise ConfigError(
                f"factor_down must be in (0, 1), got {self.factor_down}"
            )


#: Admission/backpressure defaults: thresholds are occupancy fractions
#: of the per-switch buffer limit; throttle no lower than 20% so the
#: ingress never starves completely.
DEFAULT_ADMISSION = ControllerParams(
    yellow=0.5, soft_red=0.7, red=0.85, floor=0.2,
)

#: Split-reweighting defaults: thresholds are goodput-deficit fractions
#: (a healthy switch sits near 0, a dead one at 1); the 5% floor is the
#: canary share that keeps probing a degraded switch for recovery.
DEFAULT_REWEIGHT = ControllerParams(
    yellow=0.15, soft_red=0.35, red=0.6, floor=0.05, step_up=0.2,
    factor_down=0.25,
)

#: Attack-mitigation defaults: thresholds are offered-share gains over
#: the uniform 1/H share (~1 benign, >2 under a synchronized burst).
DEFAULT_MITIGATION = ControllerParams(
    yellow=1.5, soft_red=2.0, red=3.0, floor=0.25,
)


@dataclass(frozen=True)
class ControlConfig:
    """The full control plane of one closed-loop scenario.

    ``tick_ns`` is the control period: the loop observes and actuates
    on those window boundaries in both fidelities.  Each controller is
    individually optional (``None`` disables it); an all-``None``
    config is rejected -- use ``control=None`` on the scenario for a
    plain open-loop run.
    """

    tick_ns: float = 1_000.0
    admission: Optional[ControllerParams] = DEFAULT_ADMISSION
    reweight: Optional[ControllerParams] = DEFAULT_REWEIGHT
    mitigation: Optional[ControllerParams] = DEFAULT_MITIGATION

    def __post_init__(self) -> None:
        if self.tick_ns <= 0:
            raise ConfigError(f"tick_ns must be positive, got {self.tick_ns}")
        if (
            self.admission is None
            and self.reweight is None
            and self.mitigation is None
        ):
            raise ConfigError(
                "ControlConfig with every controller disabled; use "
                "control=None for an open-loop scenario"
            )
        for name in ("admission", "reweight", "mitigation"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, ControllerParams):
                raise ConfigError(
                    f"{name} must be ControllerParams or None, got "
                    f"{type(value).__name__}"
                )

    # -- digest / serialisation ----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe content for the scenario digest and CLI documents."""
        return {
            "_type": type(self).__name__,
            "tick_ns": self.tick_ns,
            "admission": _params_dict(self.admission),
            "reweight": _params_dict(self.reweight),
            "mitigation": _params_dict(self.mitigation),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ControlConfig":
        """Inverse of :meth:`to_dict` (round-trips exactly)."""
        return cls(
            tick_ns=float(data["tick_ns"]),
            admission=_params_from(data.get("admission")),
            reweight=_params_from(data.get("reweight")),
            mitigation=_params_from(data.get("mitigation")),
        )


def _params_dict(params: Optional[ControllerParams]) -> Optional[Dict[str, Any]]:
    return dataclasses.asdict(params) if params is not None else None


def _params_from(data: Optional[Dict[str, Any]]) -> Optional[ControllerParams]:
    return ControllerParams(**data) if data is not None else None
