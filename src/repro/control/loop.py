"""The closed loop: per-switch controllers driven on window ticks.

One :class:`ControlLoop` instance governs one router run.  The engine
(fluid or packet pre-pass) calls :meth:`tick` at every control period
boundary with the per-switch signals observed over the *previous* tick
window -- offered bytes, delivered bytes and buffer backlog -- plus the
attack-window flag.  The loop folds them through the three controller
families (:mod:`repro.control.config`) and exposes two actuator arrays
the engine applies to the *next* window (decisions are causal: the
control plane only ever sees the past):

- ``admit``  -- per-switch ingress admission fraction in
  ``[floor, 1]``: the fraction of traffic addressed to switch ``h``
  that is let through; the rest is backpressured (counted, not
  silently vanished).  Driven down by the admission controller
  (occupancy vs. the buffer limit) and the mitigation controller
  (offered-share gain during attack windows) -- the effective admit is
  the min of the two.
- ``weight`` -- per-switch split-weight multiplier in ``[floor, 1]``:
  scales the switch's share of the H-way fiber split (renormalised by
  the engine), so a RED switch sheds load to its healthy siblings.
  Driven by the reweight controller (goodput deficit).

Every decision lands in the :class:`~repro.control.actions.ActionLog`
and -- when a telemetry registry is attached -- in the
``repro_control_state`` / ``repro_control_throttle_fraction`` time
series, windowed at the control period.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from .actions import ActionLog
from .config import ControlConfig
from .controller import STATES, Controller

#: Control-plane time-series names.
CONTROL_STATE = "repro_control_state"
CONTROL_THROTTLE = "repro_control_throttle_fraction"

#: Offered bytes below which a tick carries no reweight information
#: (an idle switch is not a broken switch).
_SIGNAL_EPS = 1.0


class ControlLoop:
    """Drives one run's controllers; owns the actuator state."""

    def __init__(
        self,
        config: ControlConfig,
        n_switches: int,
        occupancy_limit_bytes: float,
        log: Optional[ActionLog] = None,
        telemetry=None,
    ) -> None:
        self.config = config
        self.n_switches = n_switches
        self.occupancy_limit = float(occupancy_limit_bytes)
        self.log = log if log is not None else ActionLog()
        self.telemetry = telemetry
        self.ticks = 0
        self.n_state_changes = 0
        self.throttled_bytes = 0.0
        self._admission = _bank(config.admission, n_switches)
        self._reweight = _bank(config.reweight, n_switches)
        self._mitigation = _bank(config.mitigation, n_switches)
        self.admit = np.ones(n_switches)
        self.weight = np.ones(n_switches)
        self.log.emit(
            "control_start",
            t_ns=0.0,
            tick_ns=config.tick_ns,
            n_switches=n_switches,
            controllers=[
                name
                for name, bank in (
                    ("admission", self._admission),
                    ("reweight", self._reweight),
                    ("mitigation", self._mitigation),
                )
                if bank is not None
            ],
        )

    # -- the tick ------------------------------------------------------------

    def tick(
        self,
        t_ns: float,
        offered: np.ndarray,
        delivered: np.ndarray,
        backlog: np.ndarray,
        attack_active: bool = False,
    ) -> None:
        """Fold one window's per-switch signals; update the actuators.

        ``offered``/``delivered``/``backlog`` are (H,) byte arrays for
        the window that just closed.  Decisions apply from ``t_ns`` on.
        """
        index = self.ticks
        self.ticks += 1
        total = float(offered.sum())
        admit_a = np.ones(self.n_switches)
        admit_m = np.ones(self.n_switches)
        for h in range(self.n_switches):
            if self._admission is not None:
                signal = float(backlog[h]) / self.occupancy_limit
                admit_a[h] = self._step(
                    "admission", self._admission[h], h, index, t_ns, signal
                )
            if self._reweight is not None:
                if offered[h] > _SIGNAL_EPS:
                    deficit = max(
                        0.0, 1.0 - float(delivered[h]) / float(offered[h])
                    )
                else:
                    deficit = 0.0
                self.weight[h] = self._step(
                    "reweight", self._reweight[h], h, index, t_ns, deficit
                )
            if self._mitigation is not None:
                if attack_active and total > _SIGNAL_EPS:
                    gain = float(offered[h]) * self.n_switches / total
                else:
                    gain = 0.0
                admit_m[h] = self._step(
                    "mitigation", self._mitigation[h], h, index, t_ns, gain
                )
        self.admit = np.minimum(admit_a, admit_m)
        if self.telemetry is not None:
            for h in range(self.n_switches):
                throttle = 1.0 - float(self.admit[h])
                self.telemetry.timeseries(
                    CONTROL_THROTTLE,
                    "ingress throttle fraction per control tick",
                    window_ns=self.config.tick_ns,
                    agg="max",
                    switch=str(h),
                ).observe(t_ns, throttle)

    def _step(
        self,
        name: str,
        controller: Controller,
        switch: int,
        index: int,
        t_ns: float,
        signal: float,
    ) -> float:
        before_state = controller.state
        before_value = controller.value
        state, value, changed = controller.update(signal)
        if changed:
            self.n_state_changes += 1
            self.log.emit(
                "state_change",
                t_ns=t_ns,
                tick=index,
                switch=switch,
                controller=name,
                from_state=STATES[before_state],
                to_state=STATES[state],
                signal=round(float(controller.smoothed), 9),
            )
        if value != before_value:
            self.log.emit(
                "actuation",
                t_ns=t_ns,
                tick=index,
                switch=switch,
                controller=name,
                value=round(float(value), 9),
            )
        if self.telemetry is not None:
            self.telemetry.timeseries(
                CONTROL_STATE,
                "controller state per control tick (0=GREEN..3=RED)",
                window_ns=self.config.tick_ns,
                agg="max",
                controller=name,
                switch=str(switch),
            ).observe(t_ns, float(state))
        return value

    # -- wrap-up -------------------------------------------------------------

    def finish(self, t_ns: float) -> None:
        self.log.emit(
            "control_finish",
            t_ns=t_ns,
            ticks=self.ticks,
            n_state_changes=self.n_state_changes,
            throttled_bytes=int(round(self.throttled_bytes)),
        )

    def summary(self) -> Dict[str, Any]:
        """Compact JSON-safe digest of the run's control activity --
        what campaign cell payloads embed (byte-identical across
        sequential/parallel/cached runs)."""
        return {
            "ticks": self.ticks,
            "n_actions": len(self.log),
            "n_state_changes": self.n_state_changes,
            "throttled_bytes": int(round(self.throttled_bytes)),
            "final_admit": [round(float(v), 9) for v in self.admit],
            "final_weight": [round(float(v), 9) for v in self.weight],
        }


def _bank(params, n_switches: int) -> Optional[List[Controller]]:
    if params is None:
        return None
    return [Controller(params) for _ in range(n_switches)]
