"""Closed-loop vs open-loop: the controller-value measurement.

The control plane's worth is a *delta* on the campaigns the repo
already runs: the same seeded MTBF/MTTR fault campaign (or attack
campaign) executed twice -- once open-loop, once with a
:class:`~repro.control.ControlConfig` on every cell -- and the
delivered fractions compared.  Both runs go through the scenario
runtime, so they cache, resume and shard like any campaign; the
closed-loop cells have distinct digests (the ``control`` field is part
of the scenario content) and therefore distinct cache entries.

Used by ``repro control --compare-open-loop``, the ``control-smoke``
CI job and the pinned acceptance tests.
"""

from __future__ import annotations

from typing import List, Optional

from .config import ControlConfig


def _delta_block(open_values: List[float], closed_values: List[float]) -> dict:
    n = len(open_values)
    open_mean = sum(open_values) / n
    closed_mean = sum(closed_values) / n
    per_cell = [c - o for o, c in zip(open_values, closed_values)]
    return {
        "open_mean": open_mean,
        "closed_mean": closed_mean,
        "delta_mean": closed_mean - open_mean,
        "delta_min": min(per_cell),
        "delta_max": max(per_cell),
        "n_improved": sum(1 for d in per_cell if d > 0),
        "n_regressed": sum(1 for d in per_cell if d < 0),
        "per_cell": per_cell,
    }


def compare_fault_loops(
    config,
    params,
    control: Optional[ControlConfig] = None,
    fidelity: str = "flow",
    runtime=None,
) -> dict:
    """Run the seeded fault campaign open- and closed-loop; diff them.

    ``params`` is a :class:`~repro.faults.campaign.CampaignParams`;
    both campaigns draw the *same* schedules (same seed recipe), so the
    delta isolates the controller's effect.
    """
    from ..runtime import FaultCampaign, Runtime

    if control is None:
        control = ControlConfig()
    if runtime is None:
        runtime = Runtime()
    open_result = runtime.run_campaign(
        FaultCampaign(config=config, params=params, fidelity=fidelity)
    )
    closed_result = runtime.run_campaign(
        FaultCampaign(
            config=config, params=params, fidelity=fidelity, control=control
        )
    )
    return {
        "campaign": "fault",
        "fidelity": fidelity,
        "n_cells": params.n_scenarios,
        "seed": params.seed,
        "control": control.to_dict(),
        "delivered_fraction": _delta_block(
            open_result.delivered_fractions, closed_result.delivered_fractions
        ),
        "availability": _delta_block(
            open_result.availabilities, closed_result.availabilities
        ),
        "open_loop": open_result.to_dict(),
        "closed_loop": closed_result.to_dict(),
    }


def compare_attack_loops(
    config,
    params,
    control: Optional[ControlConfig] = None,
    fidelity: str = "flow",
    runtime=None,
) -> dict:
    """Run one attack campaign open- and closed-loop; diff them.

    ``params`` is an
    :class:`~repro.adversary.campaign.AttackCampaignParams`; trials
    share seeds across the two runs, so per-trial deltas pair exactly.
    """
    from ..runtime import AttackCampaign, Runtime

    if control is None:
        control = ControlConfig()
    if runtime is None:
        runtime = Runtime()
    open_result = runtime.run_campaign(
        AttackCampaign(config=config, params=params, fidelity=fidelity)
    )
    closed_result = runtime.run_campaign(
        AttackCampaign(
            config=config, params=params, fidelity=fidelity, control=control
        )
    )
    return {
        "campaign": "attack",
        "fidelity": fidelity,
        "strategy": params.strategy.describe(),
        "splitter": params.splitter,
        "n_cells": params.n_trials,
        "seed": params.seed,
        "control": control.to_dict(),
        "delivered_fraction": _delta_block(
            open_result.metric("sim_delivered_fraction"),
            closed_result.metric("sim_delivered_fraction"),
        ),
        "victim_gain": _delta_block(
            open_result.metric("sim_victim_gain"),
            closed_result.metric("sim_victim_gain"),
        ),
        "open_loop": open_result.to_dict(),
        "closed_loop": closed_result.to_dict(),
    }
