"""The ``repro-control-v1`` action stream: every decision, logged.

Mirrors the PR 8 sweep event stream (:mod:`repro.runtime.events`) with
one deliberate difference: control decisions are *part of the result*,
not a live log, so actions carry simulated time (``t_ns``) instead of
wall-clock ``ts`` and the stream is byte-identical across runs of the
same scenario (sequential == parallel == cached -- the repo-wide
invariant extends to the control plane).

Kinds:

- ``control_start``  -- loop accepted: tick period, switch count and
  which controllers are armed;
- ``state_change``   -- a controller's state machine moved
  (GREEN/YELLOW/SOFT_RED/RED, wire-encoded by name);
- ``actuation``      -- a controller's actuated value changed
  (admit fraction or weight multiplier, after clamping);
- ``control_finish`` -- tick count and totals (throttled bytes,
  state-change count).

Validation reuses the shared machinery
(:func:`repro.runtime.events.validate_stream`): schema header, known
kinds, required fields, gapless ``seq`` -- including the explicit
rejection of a ``seq`` chain restarting at 0 mid-stream (shard-merge
artifact).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..errors import ConfigError
from ..runtime.events import validate_stream

CONTROL_SCHEMA = "repro-control-v1"

#: Every action kind and its required fields (beyond the envelope
#: ``kind``/``seq``/``t_ns`` every action has).
ACTION_FIELDS: Dict[str, tuple] = {
    "control_start": ("tick_ns", "n_switches", "controllers"),
    "state_change": ("tick", "switch", "controller", "from_state", "to_state", "signal"),
    "actuation": ("tick", "switch", "controller", "value"),
    "control_finish": ("ticks", "n_state_changes", "throttled_bytes"),
}

ACTION_KINDS = tuple(ACTION_FIELDS)


class ActionLog:
    """Accumulates one run's control actions in memory, deterministically.

    The loop emits into this; callers serialise with :meth:`dumps` (for
    ``--actions-out``) or embed the compact :meth:`summary` in cell
    payloads.  No clock, no I/O: two runs of the same scenario produce
    byte-identical dumps.
    """

    def __init__(self) -> None:
        self.actions: List[dict] = []
        self._seq = 0

    def emit(self, kind: str, t_ns: float, **fields: Any) -> None:
        if kind not in ACTION_FIELDS:
            raise ConfigError(
                f"unknown action kind {kind!r} (expected one of {ACTION_KINDS})"
            )
        missing = [f for f in ACTION_FIELDS[kind] if f not in fields]
        if missing:
            raise ConfigError(f"action {kind!r} missing fields {missing}")
        self.actions.append(
            {"kind": kind, "seq": self._seq, "t_ns": t_ns, **fields}
        )
        self._seq += 1

    def __len__(self) -> int:
        return len(self.actions)

    def dumps(self) -> str:
        """The JSONL stream: schema header plus one line per action."""
        lines = [json.dumps({"schema": CONTROL_SCHEMA}, sort_keys=True,
                            separators=(",", ":"))]
        lines.extend(
            json.dumps(action, sort_keys=True, separators=(",", ":"))
            for action in self.actions
        )
        return "\n".join(lines) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.dumps())


def validate_control_actions(text: str) -> List[dict]:
    """Parse and validate a ``repro-control-v1`` stream.

    Same machinery as :func:`repro.runtime.validate_events`, with the
    simulated-time envelope (``t_ns`` instead of wall-clock ``ts``).
    """
    return validate_stream(
        text, CONTROL_SCHEMA, ACTION_FIELDS, envelope=("seq", "t_ns")
    )
