"""The per-resource state machine: EWMA signal in, actuated value out.

One :class:`Controller` governs one controlled resource (one switch's
admission fraction, one switch's split-weight multiplier, ...).  Each
tick it folds the raw signal into an EWMA (via the shared
:func:`repro.telemetry.ewma_step` -- the same algebra the timeseries
renderer uses), classifies the smoothed signal into one of four states,
and nudges its actuated value:

====== ======================================== =======================
state  entered when (smoothed signal)            actuation on the value
====== ======================================== =======================
GREEN  below ``yellow``                          ``+step_up`` (additive
                                                 recovery, clamped to
                                                 ``ceiling``)
YELLOW ``>= yellow``                             hold
SOFT   ``>= soft_red``                           ``* (1+factor_down)/2``
RED    ``>= red``                                ``* factor_down``
====== ======================================== =======================

Multiplicative decrease with a ``floor`` and additive recovery with a
``ceiling`` is the wanctl/CAKE shape (and AIMD's): overload collapses
the value geometrically, recovery is gentle and linear, and the floor
guarantees the resource is never starved outright (a throttled port
keeps trickling; a downweighted switch keeps a canary share so its
recovery is observable).

Hysteresis: escalation is immediate (any tick whose EWMA crosses a
threshold steps the state up, possibly multiple levels), but
de-escalation happens one level per tick and only once the EWMA has
fallen ``hysteresis`` *below* the current level's entry threshold.  A
signal hovering exactly at a boundary therefore escalates once and
stays -- no GREEN<->RED flapping (unit-tested in
``tests/test_control.py``).
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..telemetry import ewma_step
from .config import ControllerParams

#: State names, in escalation order (indexes are the wire encoding the
#: ``repro_control_state`` time series and the action stream carry).
STATES = ("GREEN", "YELLOW", "SOFT_RED", "RED")

GREEN, YELLOW, SOFT_RED, RED = range(4)


class Controller:
    """One resource's EWMA + state machine + floor/ceiling actuator."""

    __slots__ = ("params", "state", "value", "smoothed")

    def __init__(
        self, params: ControllerParams, initial_value: float = 1.0
    ) -> None:
        self.params = params
        self.state = GREEN
        self.value = min(max(initial_value, params.floor), params.ceiling)
        self.smoothed: Optional[float] = None

    def _entry_threshold(self, state: int) -> float:
        return (self.params.yellow, self.params.yellow,
                self.params.soft_red, self.params.red)[state]

    def _classify(self, smoothed: float) -> int:
        p = self.params
        if smoothed >= p.red:
            target = RED
        elif smoothed >= p.soft_red:
            target = SOFT_RED
        elif smoothed >= p.yellow:
            target = YELLOW
        else:
            target = GREEN
        if target >= self.state:
            return target  # escalate immediately
        # De-escalate one level per tick, and only with hysteresis margin
        # below the current level's entry threshold.
        if smoothed < self._entry_threshold(self.state) - p.hysteresis:
            return self.state - 1
        return self.state

    def update(self, signal: float) -> Tuple[int, float, bool]:
        """Fold one tick's raw signal; returns (state, value, changed).

        ``changed`` is True when the state moved this tick -- what the
        action stream logs as a ``state_change``.
        """
        p = self.params
        self.smoothed = ewma_step(self.smoothed, signal, p.ewma_alpha)
        new_state = self._classify(self.smoothed)
        changed = new_state != self.state
        self.state = new_state
        if new_state == GREEN:
            self.value = min(p.ceiling, self.value + p.step_up)
        elif new_state == SOFT_RED:
            self.value = max(p.floor, self.value * 0.5 * (1.0 + p.factor_down))
        elif new_state == RED:
            self.value = max(p.floor, self.value * p.factor_down)
        # YELLOW holds.
        return self.state, self.value, changed
