"""Fault-window tagging: put the fault schedule on the metric timeline.

Degradation campaigns (:mod:`repro.faults`) need to attribute measured
loss to the component that failed.  Each fault event becomes an
info-style gauge

    repro_fault_active_window{kind,scope,start_ns,end_ns} 1

whose *labels* carry the window.  Encoding the window in labels (not
values) keeps the dump JSON-safe -- a permanent fault's ``end_ns`` is
infinite, which JSON cannot represent as a number -- and lets one series
exist per event, so merged dumps list every injected fault exactly once
(gauges merge by max; identical windows collapse to one series).

Split-level loss attribution rides along as counters
(``repro_fault_lost_bytes_total{scope,index}``), recorded by
:class:`~repro.core.sps.SplitParallelSwitch` at the passive split.
"""

from __future__ import annotations

import math

from .registry import MetricsRegistry

FAULT_WINDOW = "repro_fault_active_window"
FAULT_LOST_BYTES = "repro_fault_lost_bytes_total"


def _scope(event) -> str:
    kind = type(event).__name__
    if kind == "FiberCut":
        return f"ribbon{event.ribbon}/fiber{event.fiber}"
    if kind == "RouterDown":
        return f"router{event.router}"
    if kind == "LinkCut":
        return f"link{event.a}:{event.b}"
    scope = f"switch{event.switch}"
    if kind == "HBMChannelLoss":
        scope += f"/channels{event.n_channels}"
    elif kind == "OEODegradation":
        scope += f"/rate{event.rate_factor:g}"
    return scope


def _window_label(t_ns: float) -> str:
    return "inf" if math.isinf(t_ns) else f"{t_ns:g}"


def tag_fault_windows(registry: MetricsRegistry, schedule) -> None:
    """Record every event of a :class:`~repro.faults.FaultSchedule`."""
    if schedule is None:
        return
    for event in schedule.events:
        registry.gauge(
            FAULT_WINDOW,
            "an injected fault was active during [start_ns, end_ns)",
            kind=type(event).__name__,
            scope=_scope(event),
            start_ns=_window_label(event.start_ns),
            end_ns=_window_label(event.end_ns),
        ).set(1.0)


def record_fault_loss(registry: MetricsRegistry, scope: str, index: str, n_bytes: int) -> None:
    """Attribute ``n_bytes`` of split-level loss to one component."""
    if n_bytes <= 0:
        return
    registry.counter(
        FAULT_LOST_BYTES,
        "bytes lost at the passive split, by failed component",
        scope=scope,
        index=index,
    ).inc(n_bytes)
