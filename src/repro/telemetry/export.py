"""Telemetry export: Prometheus text exposition format and JSON lines.

Two formats, one registry:

- :func:`to_prometheus` renders the standard text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``_bucket{le=...}`` cumulative
  buckets, ``_sum``/``_count``, counters suffixed ``_total``) so dumps
  scrape into any Prometheus-compatible toolchain.
- :func:`to_jsonl` renders one JSON object per series -- the same
  payload as :meth:`~repro.telemetry.registry.MetricsRegistry.to_dict`,
  line-oriented for streaming consumers.

:func:`parse_prometheus` is a deliberately small validating parser used
by the CI smoke job and the tests: it checks the structural rules a
scraper relies on (TYPE before samples, le-monotonic buckets, count
consistency) and returns the sample values.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List, Mapping, Tuple

from ..errors import ConfigError
from .registry import SCHEMA, Counter, Gauge, Histogram, MetricsRegistry
from .timeseries import TimeSeries


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_text(labels, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = tuple(labels) + extra
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4)."""
    lines: List[str] = []
    seen_headers: set = set()

    def header(name: str, kind: str, help_text: str) -> None:
        if name in seen_headers:
            return
        seen_headers.add(name)
        if help_text:
            lines.append(f"# HELP {name} {_escape(help_text)}")
        lines.append(f"# TYPE {name} {kind}")

    for metric in registry:
        if isinstance(metric, Counter):
            # The registry names counters *_total already; the exposition
            # name is used verbatim either way.
            header(metric.name, "counter", metric.help)
            lines.append(
                f"{metric.name}{_label_text(metric.labels)} {_format_value(metric.value)}"
            )
        elif isinstance(metric, Gauge):
            header(metric.name, "gauge", metric.help)
            lines.append(
                f"{metric.name}{_label_text(metric.labels)} {_format_value(metric.value)}"
            )
        elif isinstance(metric, Histogram):
            header(metric.name, "histogram", metric.help)
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.bucket_counts):
                cumulative += count
                le = _label_text(metric.labels, (("le", _format_value(bound)),))
                lines.append(f"{metric.name}_bucket{le} {cumulative}")
            cumulative += metric.bucket_counts[-1]
            le = _label_text(metric.labels, (("le", "+Inf"),))
            lines.append(f"{metric.name}_bucket{le} {cumulative}")
            lines.append(
                f"{metric.name}_sum{_label_text(metric.labels)} {_format_value(metric.sum)}"
            )
            lines.append(
                f"{metric.name}_count{_label_text(metric.labels)} {metric.count}"
            )
    for series in registry.iter_timeseries():
        # Windowed series render as one gauge sample per window with the
        # window start encoded as a label -- scrapeable, and lossless for
        # the round-trip parser.
        header(series.name, "gauge", series.help)
        for window, value in series.windows():
            labels = _label_text(
                series.labels,
                (("window_start_ns", _format_value(window * series.window_ns)),),
            )
            lines.append(f"{series.name}{labels} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def to_jsonl(registry: MetricsRegistry) -> str:
    """One JSON object per series, in the registry's deterministic order.

    Windowed time series follow the metric entries, distinguished by
    ``"kind": "timeseries"``; :func:`read_jsonl` reverses the format.
    """
    dump = registry.to_dict()
    lines = [json.dumps({"schema": dump["schema"]}, sort_keys=True)]
    lines.extend(json.dumps(entry, sort_keys=True) for entry in dump["metrics"])
    lines.extend(
        json.dumps(entry, sort_keys=True) for entry in dump.get("timeseries", [])
    )
    return "\n".join(lines) + "\n"


def read_jsonl(text: str) -> MetricsRegistry:
    """Reconstruct a registry from :func:`to_jsonl` output."""
    entries = [json.loads(line) for line in text.splitlines() if line.strip()]
    if not entries or entries[0].get("schema") != SCHEMA:
        raise ConfigError("not a repro telemetry JSONL dump (missing schema header)")
    dump = {"schema": SCHEMA, "metrics": [], "timeseries": []}
    for entry in entries[1:]:
        if entry.get("kind") == TimeSeries.kind:
            dump["timeseries"].append(entry)
        else:
            dump["metrics"].append(entry)
    return MetricsRegistry.from_dict(dump)


def write_metrics(registry: MetricsRegistry, path: str) -> str:
    """Write the registry to ``path``; format picked by extension.

    ``.prom`` / ``.txt`` -> Prometheus text; anything else -> JSONL.
    """
    if path.endswith((".prom", ".txt")):
        text = to_prometheus(registry)
    else:
        text = to_jsonl(registry)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return path


# -- validation (CI smoke + tests) ---------------------------------------------


class PrometheusParseError(ValueError):
    """The text violates the exposition-format rules a scraper relies on."""


def _split_label_block(rest: str) -> Tuple[str, str]:
    """Split ``labels...} value`` at the *closing* brace of the label block.

    A naive ``partition("}")`` truncates label values that themselves
    contain ``}``; this scanner honours quoting and escapes, so hostile
    label values (braces, commas, escaped quotes) round-trip.
    """
    in_quotes = False
    i = 0
    while i < len(rest):
        ch = rest[i]
        if ch == "\\" and in_quotes:
            i += 2
            continue
        if ch == '"':
            in_quotes = not in_quotes
        elif ch == "}" and not in_quotes:
            return rest[:i], rest[i + 1:]
        i += 1
    raise PrometheusParseError(f"unterminated label block near {rest!r}")


def _parse_labels(text: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    rest = text
    while rest:
        name, _, rest = rest.partition("=")
        if not rest.startswith('"'):
            raise PrometheusParseError(f"unquoted label value near {rest!r}")
        value_chars: List[str] = []
        i = 1
        while i < len(rest):
            ch = rest[i]
            if ch == "\\":
                nxt = rest[i + 1] if i + 1 < len(rest) else ""
                value_chars.append({"n": "\n", '"': '"', "\\": "\\"}.get(nxt, nxt))
                i += 2
                continue
            if ch == '"':
                break
            value_chars.append(ch)
            i += 1
        else:
            raise PrometheusParseError(f"unterminated label value near {rest!r}")
        labels[name.strip()] = "".join(value_chars)
        rest = rest[i + 1:].lstrip(",").strip()
    return labels


def parse_prometheus(text: str) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Parse and validate exposition text; ``{name: [(labels, value)]}``.

    Validates what a scraper depends on: every sample's family has a
    preceding ``# TYPE`` line, histogram ``_bucket`` series are
    le-cumulative, and the ``+Inf`` bucket equals ``_count``.
    Raises :class:`PrometheusParseError` on violation.
    """
    types: Dict[str, str] = {}
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise PrometheusParseError(f"unknown TYPE {kind!r} for {name}")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        if "{" in line:
            name, _, rest = line.partition("{")
            label_text, value_text = _split_label_block(rest)
            labels = _parse_labels(label_text)
        else:
            name, _, value_text = line.partition(" ")
            labels = {}
        value_text = value_text.strip()
        try:
            value = math.inf if value_text == "+Inf" else float(value_text)
        except ValueError:
            raise PrometheusParseError(f"bad sample value {value_text!r}")
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and types.get(name[: -len(suffix)]) == "histogram":
                family = name[: -len(suffix)]
                break
        if family not in types:
            raise PrometheusParseError(f"sample {name} has no # TYPE header")
        samples.setdefault(name, []).append((labels, value))
    _validate_histograms(types, samples)
    return samples


def _validate_histograms(
    types: Mapping[str, str],
    samples: Mapping[str, List[Tuple[Dict[str, str], float]]],
) -> None:
    for family, kind in types.items():
        if kind != "histogram":
            continue
        by_series: Dict[Tuple[Tuple[str, str], ...], List[Tuple[float, float]]] = {}
        for labels, value in samples.get(f"{family}_bucket", []):
            le = labels.get("le")
            if le is None:
                raise PrometheusParseError(f"{family}_bucket sample missing le")
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            bound = math.inf if le == "+Inf" else float(le)
            by_series.setdefault(key, []).append((bound, value))
        counts = {
            tuple(sorted(labels.items())): value
            for labels, value in samples.get(f"{family}_count", [])
        }
        for key, buckets in by_series.items():
            buckets.sort(key=lambda item: item[0])
            running = -1.0
            for bound, value in buckets:
                if value < running:
                    raise PrometheusParseError(
                        f"{family} buckets not cumulative at le={bound}"
                    )
                running = value
            if buckets[-1][0] != math.inf:
                raise PrometheusParseError(f"{family} missing +Inf bucket")
            count = counts.get(key)
            if count is not None and count != buckets[-1][1]:
                raise PrometheusParseError(
                    f"{family} +Inf bucket {buckets[-1][1]} != _count {count}"
                )
