"""The central metrics registry: labeled counters, gauges and histograms.

Design constraints (docs/observability.md):

- **Cheap when disabled.**  Components hold an optional telemetry handle
  and guard every call site with a single attribute check
  (``if self.telemetry is not None:``); a run without telemetry pays one
  ``None`` comparison per site and nothing else.  Instruments are
  created once at setup and bound to attributes, so an *enabled* hot
  path is one method call plus a list/bisect update -- never a dict
  lookup per event.
- **Deterministic.**  Instruments are value objects keyed by
  ``(name, sorted labels)``; :meth:`MetricsRegistry.to_dict` sorts
  series, so two registries that saw the same observations in the same
  order serialise to byte-identical dumps regardless of creation order.
- **Mergeable.**  Registries from independent switch simulations (one
  per process-pool worker) merge by summing counters and histogram
  buckets and taking the max of gauges.  The merge is performed in
  switch-index order by the caller, which makes parallel and sequential
  runs of the same workload produce identical dumps: float addition is
  carried out in the same order either way.

Histograms use **fixed** bucket bounds (ns scale by default) so bucket
counts from different workers are element-wise addable without any
rebinning.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from ..errors import ConfigError

#: Schema tag stamped on every registry dump.
SCHEMA = "repro-telemetry-v1"

#: Fixed nanosecond-scale histogram bounds: 50 ns doubling up to ~1.6 ms,
#: with an implicit +Inf overflow bucket.  Chosen to straddle every
#: pipeline span of the reference and scaled designs (batch times are
#: O(10 ns), HBM phases O(1 us), drain tails O(100 us)).
DEFAULT_NS_BUCKETS: Tuple[float, ...] = (
    50.0, 100.0, 200.0, 400.0, 800.0,
    1_600.0, 3_200.0, 6_400.0, 12_800.0, 25_600.0,
    51_200.0, 102_400.0, 204_800.0, 409_600.0, 819_200.0, 1_638_400.0,
)


def _label_key(labels: Mapping[str, str]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value (bytes, packets, frames...)."""

    __slots__ = ("name", "help", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, help: str, labels: Tuple[Tuple[str, str], ...]):
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        self.value += amount

    def _merge(self, other: "Counter") -> None:
        self.value += other.value

    def _values(self) -> Dict[str, Any]:
        return {"value": self.value}

    def _load(self, data: Mapping[str, Any]) -> None:
        self.value = float(data["value"])


class Gauge:
    """A point-in-time value (peak occupancy, energy, window edges).

    Gauges from independent switches merge by **max** -- the registry's
    gauges record peaks and high-water marks, for which max is the only
    order-independent combination.
    """

    __slots__ = ("name", "help", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, help: str, labels: Tuple[Tuple[str, str], ...]):
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def _merge(self, other: "Gauge") -> None:
        self.value = max(self.value, other.value)

    def _values(self) -> Dict[str, Any]:
        return {"value": self.value}

    def _load(self, data: Mapping[str, Any]) -> None:
        self.value = float(data["value"])


class Histogram:
    """Cumulative-bucket histogram over fixed bounds.

    ``bounds`` are the finite upper bucket edges (a value lands in the
    first bucket whose bound is >= value); one extra overflow bucket
    catches everything above the last bound.  ``sum``/``count`` allow a
    mean; quantiles are estimated by linear interpolation within the
    containing bucket (:meth:`quantile`).
    """

    __slots__ = ("name", "help", "labels", "bounds", "bucket_counts", "count", "sum")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labels: Tuple[Tuple[str, str], ...],
        bounds: Tuple[float, ...] = DEFAULT_NS_BUCKETS,
    ):
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigError(f"histogram bounds must be sorted and non-empty: {bounds}")
        self.name = name
        self.help = help
        self.labels = labels
        self.bounds = tuple(float(b) for b in bounds)
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def observe_n(self, value: float, n: int) -> None:
        """Record ``n`` identical observations in O(1) (bulk span tags)."""
        if n <= 0:
            return
        self.bucket_counts[bisect_left(self.bounds, value)] += n
        self.count += n
        self.sum += value * n

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the bucket counts.

        Linear interpolation inside the containing bucket; the overflow
        bucket reports its lower bound (the estimate is then a floor).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.bucket_counts):
            if cumulative + n >= target and n > 0:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                if i >= len(self.bounds):
                    return self.bounds[-1]
                hi = self.bounds[i]
                within = (target - cumulative) / n
                return lo + (hi - lo) * within
            cumulative += n
        return self.bounds[-1]

    def _merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ConfigError(
                f"cannot merge histogram {self.name}: bucket bounds differ"
            )
        for i, n in enumerate(other.bucket_counts):
            self.bucket_counts[i] += n
        self.count += other.count
        self.sum += other.sum

    def _values(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
        }

    def _load(self, data: Mapping[str, Any]) -> None:
        bounds = tuple(float(b) for b in data["bounds"])
        if bounds != self.bounds:
            raise ConfigError(
                f"cannot load histogram {self.name}: bucket bounds differ"
            )
        self.bucket_counts = [int(n) for n in data["buckets"]]
        self.count = int(data["count"])
        self.sum = float(data["sum"])


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Holds every instrument of one run (or one switch of one run).

    Instruments are get-or-create by ``(name, labels)``; re-requesting
    an existing series returns the same object, so setup code can bind
    instruments to attributes once and hot paths never touch the
    registry again.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Any] = {}
        self._timeseries: Optional[Any] = None  # lazy TimeSeriesRecorder

    # -- instrument creation ---------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str, labels: Mapping[str, str], **kwargs):
        key = (name, _label_key(labels))
        existing = self._metrics.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ConfigError(
                    f"metric {name} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, help, key[1], **kwargs)
        self._metrics[key] = metric
        return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_NS_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, bounds=buckets)

    def timeseries(self, name: str, help: str = "", **kwargs):
        """Get-or-create a windowed :class:`~repro.telemetry.timeseries.TimeSeries`.

        Keyword options (``window_ns``, ``agg``, ``capacity``) and labels
        pass through to :meth:`TimeSeriesRecorder.series`.  The recorder
        is created lazily so registries without series dump unchanged.
        """
        from .timeseries import TimeSeriesRecorder

        if self._timeseries is None:
            self._timeseries = TimeSeriesRecorder()
        return self._timeseries.series(name, help, **kwargs)

    def iter_timeseries(self):
        """Every windowed series, in deterministic order (may be empty)."""
        if self._timeseries is None:
            return iter(())
        return iter(self._timeseries)

    def get_timeseries(self, name: str, **labels: str):
        if self._timeseries is None:
            return None
        return self._timeseries.get(name, **labels)

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self):
        """Series in deterministic (name, labels) order."""
        for key in sorted(self._metrics):
            yield self._metrics[key]

    def series(self, name: str) -> List:
        """Every series of ``name``, in label order."""
        return [m for m in self if m.name == name]

    def get(self, name: str, **labels: str) -> Optional[Any]:
        return self._metrics.get((name, _label_key(labels)))

    # -- merging ---------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (sum / sum / max by kind).

        Series are visited in the deterministic sorted order, so a
        sequence of merges is reproducible whatever order the source
        registries were *built* in.
        """
        for metric in other:
            key = (metric.name, metric.labels)
            mine = self._metrics.get(key)
            if mine is None:
                # Adopt a copy so later merges cannot alias the source.
                mine = _copy_metric(metric)
                self._metrics[key] = mine
            else:
                if type(mine) is not type(metric):
                    raise ConfigError(
                        f"metric {metric.name} kind mismatch on merge"
                    )
                mine._merge(metric)
        if other._timeseries is not None and len(other._timeseries):
            from .timeseries import TimeSeriesRecorder

            if self._timeseries is None:
                self._timeseries = TimeSeriesRecorder()
            self._timeseries.merge(other._timeseries)

    def merge_dict(self, dump: Mapping[str, Any]) -> None:
        """Merge a serialised registry (a worker's report payload)."""
        self.merge(MetricsRegistry.from_dict(dump))

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe, deterministically ordered dump of every series.

        Windowed time series ride along under a ``"timeseries"`` key
        (present only when at least one series exists, so pre-series
        dumps are byte-unchanged).
        """
        dump: Dict[str, Any] = {
            "schema": SCHEMA,
            "metrics": [
                {
                    "name": m.name,
                    "kind": m.kind,
                    "help": m.help,
                    "labels": {k: v for k, v in m.labels},
                    **m._values(),
                }
                for m in self
            ],
        }
        if self._timeseries is not None and len(self._timeseries):
            dump["timeseries"] = self._timeseries.to_list()
        return dump

    @classmethod
    def from_dict(cls, dump: Mapping[str, Any]) -> "MetricsRegistry":
        if dump.get("schema") != SCHEMA:
            raise ConfigError(f"unknown telemetry schema {dump.get('schema')!r}")
        registry = cls()
        for entry in dump["metrics"]:
            kind = _KINDS.get(entry["kind"])
            if kind is None:
                raise ConfigError(f"unknown metric kind {entry['kind']!r}")
            kwargs = {}
            if kind is Histogram:
                kwargs["bounds"] = tuple(float(b) for b in entry["bounds"])
            metric = registry._get_or_create(
                kind, entry["name"], entry.get("help", ""), entry.get("labels", {}), **kwargs
            )
            metric._load(entry)
        entries = dump.get("timeseries")
        if entries:
            from .timeseries import TimeSeriesRecorder

            registry._timeseries = TimeSeriesRecorder.from_list(entries)
        return registry

    def dumps(self) -> str:
        """Canonical JSON text -- byte-identical for equal registries."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


def _copy_metric(metric):
    kwargs = {"bounds": metric.bounds} if isinstance(metric, Histogram) else {}
    clone = type(metric)(metric.name, metric.help, metric.labels, **kwargs)
    clone._load(metric._values())
    return clone
