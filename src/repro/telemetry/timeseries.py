"""Windowed time series: the time-resolved half of the telemetry layer.

The :class:`~repro.telemetry.registry.MetricsRegistry` captures
run-scoped aggregates; this module adds *when*.  A :class:`TimeSeries`
is a labeled sequence of fixed-width-ns windows; observations land in
``window = floor(t_ns / window_ns)`` (half-open ``[k*w, (k+1)*w)``, so
an event exactly on a window edge belongs to the window it *starts*).
Within a window values combine by the series' aggregation:

- ``agg="sum"`` -- throughput-style series (bytes, drops per window);
- ``agg="max"`` -- occupancy-style series (queue high-water per window).

The same guarantees the registry holds carry over:

- **Cheap when disabled.**  Series are bound to attributes at setup
  behind the existing ``if self.telemetry is not None:`` guards; a
  disabled run pays nothing new.
- **Bounded memory.**  Each series is a ring of at most ``capacity``
  windows: creating a window past capacity evicts the oldest, and a
  late observation to an already-evicted window is dropped (both are
  counted in ``evicted``).  Worst-case memory is
  ``capacity * O(1)`` per series regardless of run length.
- **Deterministic, mergeable.**  Windows are keyed by absolute index,
  so series from independent workers are element-wise combinable (sum
  or max per window) exactly like fixed-bound histogram buckets;
  :meth:`TimeSeriesRecorder.to_dict` sorts series and windows, so
  sequential and parallel runs of the same workload dump
  byte-identically.
- **JSON-null empty stats.**  An empty series reports ``mean``/``peak``
  as NaN in Python and ``null`` in dumps, matching the latency-summary
  semantics elsewhere in the reporting layer.

EWMA-smoothed views (:meth:`TimeSeries.ewma`) are computed at read time
over the sorted windows -- a pure function of the dump, so smoothing
never perturbs the recorded data or the byte-identity contract.  The
PR 9+ control plane consumes these smoothed signals.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigError
from .registry import _label_key

#: Schema tag stamped on every recorder dump.
TS_SCHEMA = "repro-timeseries-v1"

#: Default window width.  Pipeline durations are O(10-100 us), batch
#: times O(10 ns); 1 us windows give tens of points per run at
#: negligible memory.
DEFAULT_WINDOW_NS = 1_000.0

#: Default ring capacity (windows retained per series).
DEFAULT_CAPACITY = 512

#: Default smoothing factor for EWMA views (wanctl-style responsiveness).
DEFAULT_EWMA_ALPHA = 0.3

_AGGS = ("sum", "max")

#: Eight-level block characters for terminal sparklines.
SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def ewma_step(previous: Optional[float], value: float, alpha: float) -> float:
    """One EWMA fold: ``alpha*value + (1-alpha)*previous``.

    ``previous=None`` seeds the state with ``value`` (``s_0 = v_0``).
    The single shared smoothing primitive: :func:`ewma_series` folds it
    over a dump, and the control plane's incremental controllers
    (:mod:`repro.control.controller`) fold it tick by tick -- one
    implementation, so smoothed views and control decisions can never
    disagree on the algebra.
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"ewma alpha must be in (0, 1], got {alpha}")
    if previous is None:
        return float(value)
    return alpha * float(value) + (1.0 - alpha) * previous


def ewma_series(
    pairs: Sequence[Tuple[int, float]], alpha: float = DEFAULT_EWMA_ALPHA
) -> List[Tuple[int, float]]:
    """EWMA-smooth ``(window, value)`` pairs in the given order.

    The reusable read-time smoother: a pure function of its input (no
    state outside the fold), so rendering a dump twice -- or rendering
    it and feeding the same windows to a controller -- produces
    identical values.  Gaps between window indices are skipped, not
    zero-filled, matching :meth:`TimeSeries.ewma` (which delegates
    here).
    """
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"ewma alpha must be in (0, 1], got {alpha}")
    smoothed: List[Tuple[int, float]] = []
    state: Optional[float] = None
    for window, value in pairs:
        state = ewma_step(state, value, alpha)
        smoothed.append((window, state))
    return smoothed


class TimeSeries:
    """One labeled windowed series (a value object, like the instruments)."""

    __slots__ = (
        "name", "help", "labels", "window_ns", "agg", "capacity",
        "_windows", "evicted",
    )
    kind = "timeseries"

    def __init__(
        self,
        name: str,
        help: str,
        labels: Tuple[Tuple[str, str], ...],
        window_ns: float = DEFAULT_WINDOW_NS,
        agg: str = "sum",
        capacity: int = DEFAULT_CAPACITY,
    ):
        if window_ns <= 0:
            raise ConfigError(f"series {name}: window_ns must be > 0, got {window_ns}")
        if agg not in _AGGS:
            raise ConfigError(f"series {name}: unknown agg {agg!r} (want {_AGGS})")
        if capacity < 1:
            raise ConfigError(f"series {name}: capacity must be >= 1, got {capacity}")
        self.name = name
        self.help = help
        self.labels = labels
        self.window_ns = float(window_ns)
        self.agg = agg
        self.capacity = int(capacity)
        self._windows: Dict[int, float] = {}
        self.evicted = 0

    # -- recording -------------------------------------------------------------

    def observe(self, t_ns: float, value: float = 1.0) -> None:
        """Fold ``value`` into the window containing ``t_ns``."""
        window = int(t_ns // self.window_ns)
        current = self._windows.get(window)
        if current is not None:
            if self.agg == "sum":
                self._windows[window] = current + value
            else:
                self._windows[window] = current if current >= value else value
            return
        if len(self._windows) >= self.capacity:
            oldest = min(self._windows)
            if window <= oldest:
                # The target window already aged out of the ring.
                self.evicted += 1
                return
            del self._windows[oldest]
            self.evicted += 1
        self._windows[window] = float(value)

    # -- views -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._windows)

    def windows(self) -> List[Tuple[int, float]]:
        """``(window_index, value)`` pairs in ascending window order."""
        return sorted(self._windows.items())

    def values(self) -> List[float]:
        return [value for _, value in self.windows()]

    @property
    def total(self) -> float:
        return sum(self._windows.values())

    @property
    def peak(self) -> float:
        """Largest window value; NaN when the series is empty."""
        return max(self._windows.values()) if self._windows else math.nan

    @property
    def mean(self) -> float:
        """Mean per *recorded* window; NaN when the series is empty."""
        if not self._windows:
            return math.nan
        return self.total / len(self._windows)

    def ewma(self, alpha: float = DEFAULT_EWMA_ALPHA) -> List[Tuple[int, float]]:
        """Exponentially smoothed view over the recorded windows.

        ``s_0 = v_0; s_i = alpha*v_i + (1-alpha)*s_{i-1}`` over windows
        in ascending index order (gaps are skipped, not zero-filled).
        Computed at read time via the shared :func:`ewma_series` fold:
        deterministic for a given dump and independent of observation
        order within a window.
        """
        return ewma_series(self.windows(), alpha)

    # -- merge / serialise -----------------------------------------------------

    def _check_compatible(self, window_ns: float, agg: str) -> None:
        if float(window_ns) != self.window_ns:
            raise ConfigError(
                f"cannot combine series {self.name}: window widths differ "
                f"({self.window_ns} vs {window_ns})"
            )
        if agg != self.agg:
            raise ConfigError(
                f"cannot combine series {self.name}: aggregations differ "
                f"({self.agg} vs {agg})"
            )

    def _merge(self, other: "TimeSeries") -> None:
        self._check_compatible(other.window_ns, other.agg)
        for window, value in other.windows():
            current = self._windows.get(window)
            if current is None:
                self._windows[window] = value
            elif self.agg == "sum":
                self._windows[window] = current + value
            else:
                self._windows[window] = current if current >= value else value
        self.evicted += other.evicted
        self._trim()

    def _trim(self) -> None:
        overflow = len(self._windows) - self.capacity
        if overflow > 0:
            for window in sorted(self._windows)[:overflow]:
                del self._windows[window]
            self.evicted += overflow

    def _values(self) -> Dict[str, Any]:
        mean = self.mean
        peak = self.peak
        return {
            "window_ns": self.window_ns,
            "agg": self.agg,
            "capacity": self.capacity,
            "evicted": self.evicted,
            "windows": [[window, value] for window, value in self.windows()],
            "total": self.total,
            "mean": None if math.isnan(mean) else mean,
            "peak": None if math.isnan(peak) else peak,
        }

    def _load(self, data: Mapping[str, Any]) -> None:
        self._check_compatible(float(data["window_ns"]), data["agg"])
        self._windows = {int(w): float(v) for w, v in data["windows"]}
        self.evicted = int(data.get("evicted", 0))
        self._trim()


class TimeSeriesRecorder:
    """Holds every windowed series of one run (or one worker's share).

    Mirrors :class:`~repro.telemetry.registry.MetricsRegistry`: series
    are get-or-create by ``(name, labels)``, iteration and dumps are
    deterministically sorted, and recorders merge element-wise so
    worker shards fold together byte-identically with a sequential run.
    """

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], TimeSeries] = {}

    def series(
        self,
        name: str,
        help: str = "",
        window_ns: float = DEFAULT_WINDOW_NS,
        agg: str = "sum",
        capacity: int = DEFAULT_CAPACITY,
        **labels: str,
    ) -> TimeSeries:
        key = (name, _label_key(labels))
        existing = self._series.get(key)
        if existing is not None:
            existing._check_compatible(window_ns, agg)
            return existing
        series = TimeSeries(name, help, key[1], window_ns, agg, capacity)
        self._series[key] = series
        return series

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self):
        """Series in deterministic (name, labels) order."""
        for key in sorted(self._series):
            yield self._series[key]

    def all(self, name: str) -> List[TimeSeries]:
        """Every series of ``name``, in label order."""
        return [s for s in self if s.name == name]

    def get(self, name: str, **labels: str) -> Optional[TimeSeries]:
        return self._series.get((name, _label_key(labels)))

    # -- merging ---------------------------------------------------------------

    def merge(self, other: "TimeSeriesRecorder") -> None:
        for series in other:
            key = (series.name, series.labels)
            mine = self._series.get(key)
            if mine is None:
                self._series[key] = _copy_series(series)
            else:
                mine._merge(series)

    def merge_dict(self, dump: Mapping[str, Any]) -> None:
        self.merge(TimeSeriesRecorder.from_dict(dump))

    # -- serialisation ---------------------------------------------------------

    def to_list(self) -> List[Dict[str, Any]]:
        """The per-series entries (embedded in registry dumps)."""
        return [
            {
                "name": s.name,
                "kind": s.kind,
                "help": s.help,
                "labels": {k: v for k, v in s.labels},
                **s._values(),
            }
            for s in self
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {"schema": TS_SCHEMA, "series": self.to_list()}

    @classmethod
    def from_list(cls, entries: List[Mapping[str, Any]]) -> "TimeSeriesRecorder":
        recorder = cls()
        for entry in entries:
            if entry.get("kind") != TimeSeries.kind:
                raise ConfigError(f"unknown series kind {entry.get('kind')!r}")
            series = recorder.series(
                entry["name"],
                entry.get("help", ""),
                window_ns=float(entry["window_ns"]),
                agg=entry["agg"],
                capacity=int(entry.get("capacity", DEFAULT_CAPACITY)),
                **entry.get("labels", {}),
            )
            series._load(entry)
        return recorder

    @classmethod
    def from_dict(cls, dump: Mapping[str, Any]) -> "TimeSeriesRecorder":
        if dump.get("schema") != TS_SCHEMA:
            raise ConfigError(f"unknown timeseries schema {dump.get('schema')!r}")
        return cls.from_list(dump["series"])

    def dumps(self) -> str:
        """Canonical JSON text -- byte-identical for equal recorders."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


def _copy_series(series: TimeSeries) -> TimeSeries:
    clone = TimeSeries(
        series.name, series.help, series.labels,
        series.window_ns, series.agg, series.capacity,
    )
    clone._windows = dict(series._windows)
    clone.evicted = series.evicted
    return clone


def sparkline(values: List[float], lo: Optional[float] = None, hi: Optional[float] = None) -> str:
    """Render ``values`` as a row of block characters.

    Scaled between ``lo`` and ``hi`` (default: the values' own min/max);
    a flat or empty series renders at the lowest block.
    """
    if not values:
        return ""
    finite = [v for v in values if not math.isnan(v)]
    if not finite:
        return SPARK_BLOCKS[0] * len(values)
    lo = min(finite) if lo is None else lo
    hi = max(finite) if hi is None else hi
    span = hi - lo
    chars = []
    for value in values:
        if math.isnan(value) or span <= 0:
            chars.append(SPARK_BLOCKS[0])
            continue
        level = int((value - lo) / span * (len(SPARK_BLOCKS) - 1) + 0.5)
        chars.append(SPARK_BLOCKS[max(0, min(level, len(SPARK_BLOCKS) - 1))])
    return "".join(chars)
