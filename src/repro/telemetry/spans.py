"""Span taxonomy: the stages a packet crosses through the SPS pipeline.

A *span* is one traversal of one pipeline stage, recorded as a latency
observation in that stage's histogram.  The taxonomy mirrors Fig. 3 /
SS 3.2 end to end:

==========  =================================================================
stage       what the span measures
==========  =================================================================
oeo         O/E conversion serialisation of one packet at the port rate
split       passive fiber-split assignment (0 ns -- the split is passive;
            the per-switch *count* is the observable: the load balance)
batch       batch aggregation wait -- packet arrival to batch emission
stripe      cyclical-crossbar traversal of one batch (one batch time)
hbm_write   HBM write phase of one frame (stretched under channel faults)
hbm_read    HBM read phase of one frame
bypass      tail-to-head direct path of one bypassed frame
drain       output-port wire time of one batch's payload
==========  =================================================================

``hbm_write``/``hbm_read`` also record per-bank-group phase histograms
(``repro_hbm_phase_ns``) and per-channel byte counters
(``repro_hbm_channel_bytes_total``), exposing the striping that PFI's
peak-rate claim rests on.

:class:`SwitchTelemetry` pre-binds every instrument at construction so
the simulation hot path is one attribute access plus one ``observe`` --
and the disabled path (``telemetry is None`` at each call site) is one
pointer comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .registry import Counter, Histogram, MetricsRegistry

#: Every pipeline stage, in traversal order.
STAGES = (
    "oeo",
    "split",
    "batch",
    "stripe",
    "hbm_write",
    "hbm_read",
    "bypass",
    "drain",
)

#: Metric names (one place, so exporters/tests/docs agree).
STAGE_LATENCY = "repro_stage_latency_ns"
HBM_PHASE = "repro_hbm_phase_ns"
CHANNEL_BYTES = "repro_hbm_channel_bytes_total"
PACKETS = "repro_pipeline_packets_total"
BYTES = "repro_pipeline_bytes_total"
FRAMES = "repro_pipeline_frames_total"
DROPS = "repro_pipeline_dropped_bytes_total"

#: Windowed time-series names (fixed-width-ns windows; see
#: :mod:`repro.telemetry.timeseries`).
WINDOW_BYTES = "repro_window_bytes"
WINDOW_DROPPED = "repro_window_dropped_bytes"
WINDOW_OCCUPANCY = "repro_window_occupancy_bytes"
SPLIT_WINDOW_BYTES = "repro_split_window_bytes"

_HELP = {
    "oeo": "O/E conversion serialisation time per packet",
    "split": "passive fiber-split assignment (0 ns; count = per-switch load)",
    "batch": "batch aggregation wait, packet arrival to batch emission",
    "stripe": "cyclical-crossbar traversal of one batch",
    "hbm_write": "HBM write phase per frame",
    "hbm_read": "HBM read phase per frame",
    "bypass": "tail-to-head bypass per frame",
    "drain": "output-port wire time per batch",
}


class SwitchTelemetry:
    """All instruments of one HBM switch, bound once, labeled ``switch=h``.

    Hot-path members are plain attributes (``oeo``, ``batch``, ...) and
    pre-sized lists (``write_group``, ``channel_bytes``); only the rare
    drop path goes through a dict.
    """

    __slots__ = (
        "registry",
        "switch",
        "oeo",
        "batch",
        "stripe",
        "hbm_write",
        "hbm_read",
        "bypass",
        "drain",
        "write_group",
        "read_group",
        "channel_bytes",
        "packets_in",
        "packets_out",
        "bytes_in",
        "bytes_out",
        "frames_written",
        "frames_read",
        "frames_bypassed",
        "win_bytes_in",
        "win_bytes_out",
        "win_dropped",
        "win_occupancy",
        "_drops",
    )

    def __init__(self, registry: MetricsRegistry, config, switch: int = 0) -> None:
        self.registry = registry
        self.switch = switch
        label = str(switch)

        def stage(name: str) -> Histogram:
            return registry.histogram(
                STAGE_LATENCY, _HELP[name], stage=name, switch=label
            )

        self.oeo = stage("oeo")
        self.batch = stage("batch")
        self.stripe = stage("stripe")
        self.hbm_write = stage("hbm_write")
        self.hbm_read = stage("hbm_read")
        self.bypass = stage("bypass")
        self.drain = stage("drain")
        self.write_group: List[Histogram] = [
            registry.histogram(
                HBM_PHASE, "HBM phase time by op and bank group",
                op="write", group=str(g), switch=label,
            )
            for g in range(config.n_bank_groups)
        ]
        self.read_group: List[Histogram] = [
            registry.histogram(
                HBM_PHASE, "HBM phase time by op and bank group",
                op="read", group=str(g), switch=label,
            )
            for g in range(config.n_bank_groups)
        ]
        self.channel_bytes: List[Counter] = [
            registry.counter(
                CHANNEL_BYTES, "frame bytes striped onto each HBM channel",
                channel=str(c), switch=label,
            )
            for c in range(config.total_channels)
        ]
        self.packets_in = registry.counter(
            PACKETS, "packets crossing the stage", point="ingress", switch=label
        )
        self.packets_out = registry.counter(
            PACKETS, "packets crossing the stage", point="egress", switch=label
        )
        self.bytes_in = registry.counter(
            BYTES, "bytes crossing the stage", point="ingress", switch=label
        )
        self.bytes_out = registry.counter(
            BYTES, "bytes crossing the stage", point="egress", switch=label
        )
        self.frames_written = registry.counter(
            FRAMES, "frames by disposition", disposition="written", switch=label
        )
        self.frames_read = registry.counter(
            FRAMES, "frames by disposition", disposition="read", switch=label
        )
        self.frames_bypassed = registry.counter(
            FRAMES, "frames by disposition", disposition="bypassed", switch=label
        )
        self.win_bytes_in = registry.timeseries(
            WINDOW_BYTES, "bytes per window by crossing point",
            point="ingress", switch=label,
        )
        self.win_bytes_out = registry.timeseries(
            WINDOW_BYTES, "bytes per window by crossing point",
            point="egress", switch=label,
        )
        self.win_dropped = registry.timeseries(
            WINDOW_DROPPED, "dropped bytes per window", switch=label
        )
        self.win_occupancy = registry.timeseries(
            WINDOW_OCCUPANCY, "in-switch payload high-water per window",
            agg="max", switch=label,
        )
        self._drops: Dict[str, Counter] = {}

    def drop(self, reason: str, n_bytes: int) -> None:
        """Count dropped bytes by reason (rare path; lazily labeled)."""
        counter = self._drops.get(reason)
        if counter is None:
            counter = self.registry.counter(
                DROPS, "dropped bytes by reason",
                reason=reason, switch=str(self.switch),
            )
            self._drops[reason] = counter
        counter.inc(n_bytes)

    def stripe_frame_bytes(self, frame_bytes: int, channels_used: int) -> None:
        """Attribute one frame's bytes across the channels it striped over.

        PFI stripes every frame evenly over the (surviving) channels, so
        each of the first ``channels_used`` channels moves an equal
        share.  Integer division keeps the counters exact in aggregate:
        the remainder goes to channel 0.
        """
        if channels_used <= 0:
            return
        share, remainder = divmod(frame_bytes, channels_used)
        for c in range(channels_used):
            self.channel_bytes[c].inc(share)
        if remainder:
            self.channel_bytes[0].inc(remainder)


def stage_summaries(registry: MetricsRegistry) -> Dict[str, Dict[str, float]]:
    """Per-stage latency roll-up across every switch of a registry.

    Returns ``{stage: {count, mean_ns, p50_ns, p99_ns}}`` for each stage
    that recorded at least one span (absent stages are reported with
    zero count, so consumers always see the full taxonomy).  Percentiles
    are bucket-interpolated estimates; byte-exact determinism comes from
    the underlying bucket counts, which sum exactly across switches.
    """
    merged: Dict[str, Histogram] = {}
    for metric in registry.series(STAGE_LATENCY):
        labels = dict(metric.labels)
        name = labels.get("stage")
        if name is None:
            continue
        rollup = merged.get(name)
        if rollup is None:
            rollup = Histogram(STAGE_LATENCY, "", (), bounds=metric.bounds)
            merged[name] = rollup
        rollup._merge(metric)
    summaries: Dict[str, Dict[str, float]] = {}
    for name in STAGES:
        rollup = merged.get(name)
        if rollup is None:
            summaries[name] = {
                "count": 0.0, "mean_ns": 0.0, "p50_ns": 0.0, "p99_ns": 0.0
            }
        else:
            summaries[name] = {
                "count": float(rollup.count),
                "mean_ns": rollup.mean,
                "p50_ns": rollup.quantile(0.50),
                "p99_ns": rollup.quantile(0.99),
            }
    return summaries
