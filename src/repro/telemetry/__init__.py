"""Unified telemetry: metrics registry, pipeline spans, exporters.

The observability substrate of the repro (docs/observability.md):

- :class:`MetricsRegistry` -- labeled counters/gauges/histograms with
  fixed ns-scale buckets, deterministic serialisation and merging.
- :class:`TimeSeriesRecorder` / :class:`TimeSeries` -- fixed-width-ns
  windowed series (ring-buffer bounded, EWMA views) riding inside the
  registry's dumps; :func:`sparkline` renders them in a terminal.
- :class:`SwitchTelemetry` -- pre-bound instruments for every pipeline
  stage one HBM switch drives (:data:`STAGES`).
- :func:`to_prometheus` / :func:`to_jsonl` / :func:`write_metrics` --
  export; :func:`parse_prometheus` validates exported text and
  :func:`read_jsonl` reconstructs a registry from a JSONL dump.
- :func:`tag_fault_windows` -- stamps a fault schedule onto the dump so
  degradation runs can attribute loss to the failed component.
- :func:`tag_attack_window` / :func:`record_victim_series` -- the same
  for adversarial campaigns (:mod:`repro.adversary`): attack windows and
  victim-switch load series.

Telemetry is strictly opt-in: a run without a registry pays one
attribute check per instrumented call site and allocates nothing.
"""

from .export import (
    PrometheusParseError,
    parse_prometheus,
    read_jsonl,
    to_jsonl,
    to_prometheus,
    write_metrics,
)
from .timeseries import (
    DEFAULT_EWMA_ALPHA,
    DEFAULT_WINDOW_NS,
    TS_SCHEMA,
    TimeSeries,
    TimeSeriesRecorder,
    ewma_series,
    ewma_step,
    sparkline,
)
from .attacktags import record_victim_series, tag_attack_window
from .faulttags import record_fault_loss, tag_fault_windows
from .registry import (
    DEFAULT_NS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SCHEMA,
)
from .spans import STAGES, SwitchTelemetry, stage_summaries

__all__ = [
    "Counter",
    "DEFAULT_EWMA_ALPHA",
    "DEFAULT_NS_BUCKETS",
    "DEFAULT_WINDOW_NS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PrometheusParseError",
    "SCHEMA",
    "STAGES",
    "SwitchTelemetry",
    "TS_SCHEMA",
    "TimeSeries",
    "TimeSeriesRecorder",
    "ewma_series",
    "ewma_step",
    "parse_prometheus",
    "read_jsonl",
    "record_fault_loss",
    "record_victim_series",
    "sparkline",
    "stage_summaries",
    "tag_attack_window",
    "tag_fault_windows",
    "to_jsonl",
    "to_prometheus",
    "write_metrics",
]
