"""Unified telemetry: metrics registry, pipeline spans, exporters.

The observability substrate of the repro (docs/observability.md):

- :class:`MetricsRegistry` -- labeled counters/gauges/histograms with
  fixed ns-scale buckets, deterministic serialisation and merging.
- :class:`SwitchTelemetry` -- pre-bound instruments for every pipeline
  stage one HBM switch drives (:data:`STAGES`).
- :func:`to_prometheus` / :func:`to_jsonl` / :func:`write_metrics` --
  export; :func:`parse_prometheus` validates exported text.
- :func:`tag_fault_windows` -- stamps a fault schedule onto the dump so
  degradation runs can attribute loss to the failed component.
- :func:`tag_attack_window` / :func:`record_victim_series` -- the same
  for adversarial campaigns (:mod:`repro.adversary`): attack windows and
  victim-switch load series.

Telemetry is strictly opt-in: a run without a registry pays one
attribute check per instrumented call site and allocates nothing.
"""

from .export import (
    PrometheusParseError,
    parse_prometheus,
    to_jsonl,
    to_prometheus,
    write_metrics,
)
from .attacktags import record_victim_series, tag_attack_window
from .faulttags import record_fault_loss, tag_fault_windows
from .registry import (
    DEFAULT_NS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SCHEMA,
)
from .spans import STAGES, SwitchTelemetry, stage_summaries

__all__ = [
    "Counter",
    "DEFAULT_NS_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PrometheusParseError",
    "SCHEMA",
    "STAGES",
    "SwitchTelemetry",
    "parse_prometheus",
    "record_fault_loss",
    "record_victim_series",
    "stage_summaries",
    "tag_attack_window",
    "tag_fault_windows",
    "to_jsonl",
    "to_prometheus",
    "write_metrics",
]
