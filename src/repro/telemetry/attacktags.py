"""Attack-window tagging: put adversarial campaigns on the metric timeline.

Adversary campaigns (:mod:`repro.adversary`) need the same two things
fault campaigns do: *when* the hostile workload was active, and *which
component* absorbed it.  Mirroring :mod:`~repro.telemetry.faulttags`:

- each attack window becomes an info-style gauge
  ``repro_attack_active_window{strategy,splitter,victim,start_ns,end_ns} 1``
  whose labels carry the window (gauges merge by max, so identical
  windows from the campaign's trials collapse to one series);
- the per-switch load the attack produced rides along as counters
  ``repro_attack_offered_bytes_total{switch,role}`` with ``role`` set to
  ``victim`` for the targeted switch and ``background`` otherwise --
  campaign trials sum, so the merged dump holds the campaign totals and
  the victim-switch series the exposure figure plots.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from .registry import MetricsRegistry

ATTACK_WINDOW = "repro_attack_active_window"
ATTACK_OFFERED_BYTES = "repro_attack_offered_bytes_total"


def _window_label(t_ns: float) -> str:
    return "inf" if math.isinf(t_ns) else f"{t_ns:g}"


def tag_attack_window(
    registry: MetricsRegistry,
    strategy: str,
    splitter: str,
    victim: Optional[int],
    start_ns: float,
    end_ns: float,
) -> None:
    """Record that ``strategy`` was active during [start_ns, end_ns)."""
    registry.gauge(
        ATTACK_WINDOW,
        "an adversarial workload was active during [start_ns, end_ns)",
        strategy=strategy,
        splitter=splitter,
        victim="worst" if victim is None else str(victim),
        start_ns=_window_label(start_ns),
        end_ns=_window_label(end_ns),
    ).set(1.0)


def record_victim_series(
    registry: MetricsRegistry,
    per_switch_offered_bytes: Sequence[int],
    victim: Optional[int],
) -> None:
    """Attribute per-switch offered bytes to victim vs background roles.

    When the strategy has no designated victim (operator skew), the
    worst-loaded switch of this trial plays the role.
    """
    loads = list(per_switch_offered_bytes)
    if not loads:
        return
    target = victim if victim is not None else max(range(len(loads)), key=loads.__getitem__)
    for switch, n_bytes in enumerate(loads):
        if n_bytes <= 0:
            continue
        registry.counter(
            ATTACK_OFFERED_BYTES,
            "bytes offered to each switch under an adversarial workload",
            switch=str(switch),
            role="victim" if switch == target else "background",
        ).inc(n_bytes)
