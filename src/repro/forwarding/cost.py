"""Lookup-rate arithmetic (SS 5 conclusion).

The processing chiplets are ~50% of the router's power; the paper asks
whether operators could simplify processing (e.g. SD-WAN source routing
[40]) to scale further.  The load-bearing numbers are lookups/second:

- an LPM lookup per packet at 2.56 Tb/s of 64-byte packets is 5 G
  lookups/s *per switch port* -- 80 G/s per HBM switch;
- source routing replaces the LPM with reading a label: ~O(1) and far
  cheaper per bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import HBMSwitchConfig
from ..errors import ConfigError


@dataclass(frozen=True)
class LookupBudget:
    """Forwarding-lookup demand of one HBM switch."""

    lookups_per_s_per_port: float
    ports: int
    mean_packet_bytes: float

    @property
    def lookups_per_s(self) -> float:
        return self.lookups_per_s_per_port * self.ports

    def sram_accesses_per_s(self, accesses_per_lookup: float = 24.0) -> float:
        """Memory touches/s for a trie-walk of ~prefix-length depth.

        Real pipelines compress the trie, but the per-lookup work still
        scales with lookup depth; 24 is a unibit-trie mean depth for a
        BGP-like mix.
        """
        if accesses_per_lookup <= 0:
            raise ConfigError("accesses_per_lookup must be positive")
        return self.lookups_per_s * accesses_per_lookup


def lookup_budget(
    config: HBMSwitchConfig, mean_packet_bytes: float = 64.0
) -> LookupBudget:
    """LPM demand at a switch's line rate and a packet-size assumption."""
    if mean_packet_bytes <= 0:
        raise ConfigError(f"packet size must be positive, got {mean_packet_bytes}")
    per_port = config.port_rate_bps / (8.0 * mean_packet_bytes)
    return LookupBudget(
        lookups_per_s_per_port=per_port,
        ports=config.n_ports,
        mean_packet_bytes=mean_packet_bytes,
    )


def source_routing_budget(
    config: HBMSwitchConfig, mean_packet_bytes: float = 64.0
) -> LookupBudget:
    """The SD-WAN-style alternative: one label read per packet.

    Same packet rate, but the per-lookup work collapses to a single
    access (``sram_accesses_per_s(1.0)``), which is the processing
    simplification SS 5 floats.
    """
    budget = lookup_budget(config, mean_packet_bytes)
    return budget  # identical rate; the saving is per-lookup work
