"""Route tables and the FIB.

:func:`synthesize_route_table` builds a core-router-like table: prefix
lengths drawn from the classic BGP distribution (mass at /24, ridges at
/16..../22), next hops spread over the router's N output ribbons.
:class:`Fib` wraps the trie with the packet-facing API the input port's
processing chiplet implements: 5-tuple in, output port out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ConfigError
from ..traffic.packet import Packet
from .trie import PrefixTrie

#: A coarse BGP-like prefix-length mix (length -> weight): most of the
#: table is /24, with ridges at /16 and the /19../23 band.
BGP_LENGTH_MIX: Dict[int, float] = {
    8: 0.01,
    12: 0.01,
    16: 0.10,
    18: 0.04,
    19: 0.06,
    20: 0.08,
    21: 0.08,
    22: 0.12,
    23: 0.08,
    24: 0.40,
    28: 0.02,
}


@dataclass(frozen=True)
class RouteTable:
    """A synthesized set of routes: (prefix, length, next_hop)."""

    routes: Tuple[Tuple[int, int, int], ...]
    n_next_hops: int

    def __len__(self) -> int:
        return len(self.routes)


def synthesize_route_table(
    n_routes: int,
    n_next_hops: int,
    seed: int = 0,
    length_mix: Optional[Dict[int, float]] = None,
) -> RouteTable:
    """A random route table with a realistic prefix-length mix.

    Prefixes are distinct; next hops cycle over the ``n_next_hops``
    output ribbons (so every output is reachable).
    """
    if n_routes <= 0:
        raise ConfigError(f"n_routes must be positive, got {n_routes}")
    if n_next_hops <= 0:
        raise ConfigError(f"n_next_hops must be positive, got {n_next_hops}")
    mix = BGP_LENGTH_MIX if length_mix is None else length_mix
    lengths = np.array(sorted(mix))
    weights = np.array([mix[l] for l in lengths], dtype=np.float64)
    weights /= weights.sum()
    rng = np.random.default_rng(seed)
    seen = set()
    routes: List[Tuple[int, int, int]] = []
    while len(routes) < n_routes:
        length = int(rng.choice(lengths, p=weights))
        bits = int(rng.integers(0, 1 << length)) if length else 0
        prefix = bits << (32 - length)
        if (prefix, length) in seen:
            continue
        seen.add((prefix, length))
        routes.append((prefix, length, len(routes) % n_next_hops))
    return RouteTable(routes=tuple(routes), n_next_hops=n_next_hops)


class Fib:
    """The forwarding information base of one input's processing chiplet."""

    def __init__(self, table: RouteTable, default_next_hop: Optional[int] = None):
        self.trie = PrefixTrie(width=32)
        for prefix, length, next_hop in table.routes:
            self.trie.insert(prefix, length, next_hop)
        self.n_next_hops = table.n_next_hops
        self.default_next_hop = default_next_hop
        self.lookups = 0
        self.misses = 0

    def lookup(self, dst_ip: int) -> Optional[int]:
        """Next hop for an address; falls back to the default route."""
        self.lookups += 1
        hop = self.trie.lookup(dst_ip)
        if hop is None:
            self.misses += 1
            return self.default_next_hop
        return hop

    def classify(self, packet: Packet) -> Optional[int]:
        """The SS 3.2 step-1 operation: packet -> output port."""
        return self.lookup(packet.flow.dst_ip)

    @property
    def miss_fraction(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.misses / self.lookups


def fib_matching_generator(n_ports: int) -> Fib:
    """A FIB whose routes match :class:`~repro.traffic.flows.FlowGenerator`.

    The flow generator synthesizes destination addresses as
    ``192.<output>.<flow>.0``-style values (192 << 24 | output << 16 |
    flow-index), so routes ``192.<j>.0.0/16 -> j`` make FIB
    classification reproduce the generator's intended outputs exactly --
    letting the full switch simulation run with real lookups in the
    datapath and verifiably identical results.
    """
    if n_ports <= 0:
        raise ConfigError(f"n_ports must be positive, got {n_ports}")
    routes = tuple(
        ((192 << 24) | (j << 16), 16, j) for j in range(n_ports)
    )
    return Fib(RouteTable(routes=routes, n_next_hops=n_ports))
