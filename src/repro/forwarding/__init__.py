"""Packet forwarding: the processing chiplet's lookup step.

"A processing chiplet determines the HBM switch output for incoming
variable-length packets" (SS 3.2 step 1).  This package implements that
determination as a real longest-prefix-match FIB:

- :mod:`trie` -- a binary (unibit) trie with longest-prefix-match
  lookup, insertion and deletion;
- :mod:`table` -- route-table synthesis (core-router-like prefix-length
  mix) and the FIB wrapper that maps packets to output ports;
- :mod:`cost` -- the lookups/second arithmetic behind the SS 5
  conclusion that processing, not memory, becomes the scaling
  bottleneck, and the source-routing alternative that eliminates it.
"""

from .cost import LookupBudget, lookup_budget, source_routing_budget
from .table import Fib, RouteTable, fib_matching_generator, synthesize_route_table
from .trie import PrefixTrie

__all__ = [
    "PrefixTrie",
    "RouteTable",
    "Fib",
    "synthesize_route_table",
    "fib_matching_generator",
    "LookupBudget",
    "lookup_budget",
    "source_routing_budget",
]
