"""A binary trie with longest-prefix-match semantics.

The canonical IP-lookup structure: one node per prefix bit, next-hop
stored at the node where a prefix ends, lookup walks the address bits
remembering the deepest next-hop seen.  Unibit tries are not how ASICs
do it (they compress), but they define the *semantics* every compressed
scheme must match, which is what a reference implementation is for.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ConfigError


class _Node:
    __slots__ = ("children", "next_hop")

    def __init__(self) -> None:
        self.children: List[Optional["_Node"]] = [None, None]
        self.next_hop: Optional[int] = None


def _check_prefix(prefix: int, length: int, width: int) -> None:
    if not 0 <= length <= width:
        raise ConfigError(f"prefix length must be in [0, {width}], got {length}")
    if not 0 <= prefix < (1 << width):
        raise ConfigError(f"prefix must be a {width}-bit value")
    if length < width and prefix & ((1 << (width - length)) - 1):
        raise ConfigError(
            f"prefix {prefix:#x}/{length} has bits set beyond its length"
        )


class PrefixTrie:
    """Longest-prefix-match over ``width``-bit addresses (IPv4 default)."""

    def __init__(self, width: int = 32):
        if width <= 0:
            raise ConfigError(f"width must be positive, got {width}")
        self.width = width
        self._root = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # -- updates -----------------------------------------------------------------

    def insert(self, prefix: int, length: int, next_hop: int) -> None:
        """Insert (or replace) ``prefix/length -> next_hop``."""
        _check_prefix(prefix, length, self.width)
        node = self._root
        for depth in range(length):
            bit = (prefix >> (self.width - 1 - depth)) & 1
            if node.children[bit] is None:
                node.children[bit] = _Node()
            node = node.children[bit]
        if node.next_hop is None:
            self._size += 1
        node.next_hop = next_hop

    def remove(self, prefix: int, length: int) -> bool:
        """Remove a prefix; returns whether it existed.

        Empty branches are pruned so deletions do not leak nodes.
        """
        _check_prefix(prefix, length, self.width)
        path: List[Tuple[_Node, int]] = []
        node = self._root
        for depth in range(length):
            bit = (prefix >> (self.width - 1 - depth)) & 1
            child = node.children[bit]
            if child is None:
                return False
            path.append((node, bit))
            node = child
        if node.next_hop is None:
            return False
        node.next_hop = None
        self._size -= 1
        # Prune childless, hopless tail nodes.
        for parent, bit in reversed(path):
            child = parent.children[bit]
            if child.next_hop is None and child.children == [None, None]:
                parent.children[bit] = None
            else:
                break
        return True

    # -- lookup ------------------------------------------------------------------

    def lookup(self, address: int) -> Optional[int]:
        """Longest-prefix-match next hop for ``address`` (None = no route)."""
        if not 0 <= address < (1 << self.width):
            raise ConfigError(f"address must be a {self.width}-bit value")
        node = self._root
        best = node.next_hop
        for depth in range(self.width):
            bit = (address >> (self.width - 1 - depth)) & 1
            node = node.children[bit]
            if node is None:
                break
            if node.next_hop is not None:
                best = node.next_hop
        return best

    def items(self) -> Iterator[Tuple[int, int, int]]:
        """Yield every (prefix, length, next_hop), sorted by prefix bits."""

        def walk(node: _Node, prefix: int, depth: int):
            if node.next_hop is not None:
                yield (prefix << (self.width - depth), depth, node.next_hop)
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    yield from walk(child, (prefix << 1) | bit, depth + 1)

        yield from walk(self._root, 0, 0)

    def as_dict(self) -> Dict[Tuple[int, int], int]:
        return {(p, l): nh for p, l, nh in self.items()}
