"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``analyze``     -- print the SS 4 design analysis of the reference design
                     (or a scaled one with ``--scaled``).
- ``simulate``    -- run one HBM switch simulation and print its report.
- ``sweep``       -- sweep offered load on one switch; print a row per load.
- ``metrics``     -- run an instrumented simulation and print/export the
                     per-stage telemetry (Prometheus text or JSONL).
- ``attack``      -- run an adversarial campaign (strategy vs splitter)
                     and report exposure with confidence intervals.
- ``fabric``      -- compose router-in-a-package nodes into an optical
                     DCN fabric (Clos / expander / rotation / dragonfly)
                     and report end-to-end delivered capacity.
- ``experiments`` -- list the experiment index (E1..E16 and ablations)
                     with the bench that regenerates each.
- ``bench``       -- run the perf harness and write ``BENCH_<rev>.json``.
- ``control``     -- the closed-loop control plane (:mod:`repro.control`):
                     run a demo closed-loop run, or ``--compare-open-loop``
                     to measure the controller's delivered-fraction delta
                     on the fault / attack campaigns.

``simulate``/``sweep``/``faults`` accept ``--metrics-out PATH`` to write
the run's telemetry dump alongside their normal output (format by
extension: ``.prom``/``.txt`` Prometheus, anything else JSONL).

``simulate``/``sweep``/``faults``/``attack`` all dispatch through the
scenario runtime (:mod:`repro.runtime`): every run is a declarative
:class:`~repro.runtime.Scenario`, ``--cache-dir`` enables the
content-addressed result cache (reruns and killed-then-resumed sweeps
recall finished cells instead of recomputing), and ``--shard K/N`` on
``sweep``/``faults`` executes every Nth cell so shards on a shared
cache merge deterministically into the byte-identical single-shot
output.  The same four commands take ``--fidelity flow`` to swap the
packet engine for the vectorized fluid engine (:mod:`repro.flow`) --
same report shapes, ~100-1000x faster, validated against the packet
oracle in ``docs/flow_engine.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import (
    capacity_vs_reference,
    hbm_switch_power,
    router_area,
    router_buffering,
    router_power,
    sram_sizing,
)
from .config import reference_router, scaled_router
from .errors import ConfigError
from .reporting import Table
from .traffic import ArrivalProcess
from .units import format_rate, format_size, format_time

#: The experiment index (mirrors DESIGN.md SS 4).
EXPERIMENTS = [
    ("E1", "Package I/O budget (655 Tb/s / 1.31 Pb/s)", "benchmarks/test_e01_io_budget.py"),
    ("E2", "Mesh guaranteed capacity (2/n bound)", "benchmarks/test_e02_mesh_capacity.py"),
    ("E3", "Random-access HBM reductions (2.6x/39x/1250x)", "benchmarks/test_e03_random_access.py"),
    ("E4", "PFI peak rate, 2% transitions, hidden refresh", "benchmarks/test_e04_pfi_peak_rate.py"),
    ("E5", "OQ mimicry with small speedup", "benchmarks/test_e05_oq_mimicry.py"),
    ("E6", "Buffer sizing (4 TB / ~51 ms)", "benchmarks/test_e06_buffer_sizing.py"),
    ("E7", "SRAM sizing (14.5 MB)", "benchmarks/test_e07_sram_sizing.py"),
    ("E8", "Power (794 W/switch, 12.7 kW)", "benchmarks/test_e08_power.py"),
    ("E9", "Area (20,544 mm^2, <10% panel)", "benchmarks/test_e09_area.py"),
    ("E10", "Fiber-split load balance & adversary", "benchmarks/test_e10_fiber_split.py"),
    ("E11", "Capacity increase (>50x Cisco 8201)", "benchmarks/test_e11_capacity.py"),
    ("E12", "Padding + bypass latency", "benchmarks/test_e12_latency_bypass.py"),
    ("E13", "HBM roadmap projections", "benchmarks/test_e13_roadmap.py"),
    ("E14", "Datacenter small-frame variant", "benchmarks/test_e14_datacenter_frames.py"),
    ("E15", "Interface-width arithmetic", "benchmarks/test_e15_interface_widths.py"),
    ("E16", "S and gamma derivation + ablation", "benchmarks/test_e16_gamma_derivation.py"),
    ("A1", "Static regions vs dynamic pages", "benchmarks/test_a01_dynamic_paging.py"),
    ("A2", "Load-balanced spreading vs PFI", "benchmarks/test_a02_load_balanced.py"),
    ("A3", "Reorder buffer vs reordering rate", "benchmarks/test_a03_reorder_buffer.py"),
    ("A4", "Modularity & fault isolation", "benchmarks/test_a04_modularity.py"),
    ("A5", "Scheduler work: iSLIP vs PFI", "benchmarks/test_a05_scheduling_work.py"),
    ("A6", "Buffer sharing scarcity vs glut", "benchmarks/test_a06_buffer_sharing.py"),
    ("A7", "PFI constants across memory generations", "benchmarks/test_a07_generation_scaling.py"),
    ("A8", "Graceful degradation: capacity vs failed switches", "benchmarks/test_a08_graceful_degradation.py"),
    ("A9", "Adversarial exposure: contiguous vs pseudo-random split", "benchmarks/test_a09_adversary.py"),
    ("A10", "Heavy-tailed workloads: elephant/mice split imbalance", "benchmarks/test_a10_heavy_tail.py"),
    ("F1", "Fabric capacity under router/link failures", "benchmarks/test_f01_fabric_failures.py"),
    ("F2", "VLB vs direct routing under hotspot demand", "benchmarks/test_f02_fabric_vlb.py"),
]


def _parse_int_list(text: str) -> List[int]:
    """``"0,3"`` -> ``[0, 3]`` (empty string -> empty list)."""
    try:
        return [int(x) for x in text.split(",") if x.strip()]
    except ValueError:
        raise ConfigError(f"bad integer list {text!r} (expected e.g. 0,3)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Petabit Router-in-a-Package (HotNets '25) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="print the SS4 design analysis")
    analyze.add_argument("--scaled", action="store_true", help="use the test-scale config")

    simulate = sub.add_parser("simulate", help="simulate one HBM switch")
    simulate.add_argument("--load", type=float, default=0.8, help="offered load in [0, 1]")
    simulate.add_argument("--duration-us", type=float, default=50.0, help="arrival window")
    simulate.add_argument("--packet-size", type=int, default=0, help="fixed size; 0 = IMIX")
    simulate.add_argument(
        "--process", choices=[p.value for p in ArrivalProcess], default="poisson"
    )
    simulate.add_argument("--speedup", type=float, default=1.0)
    simulate.add_argument("--no-padding", action="store_true")
    simulate.add_argument("--no-bypass", action="store_true")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument(
        "--switches", type=int, default=0,
        help="simulate the full H-switch router instead of one switch",
    )
    simulate.add_argument(
        "--failed-switches", type=str, default="",
        help="comma list of dead switches, e.g. 0,3 (implies router mode)",
    )
    simulate.add_argument(
        "--json", action="store_true",
        help="emit the full report as JSON instead of a table",
    )
    simulate.add_argument(
        "--metrics-out", type=str, default=None,
        help="write the run's telemetry to this path "
             "(.prom/.txt = Prometheus text, else JSONL)",
    )
    simulate.add_argument(
        "--cache-dir", type=str, default=None,
        help="content-addressed result cache; a rerun of the same "
             "scenario recalls its payload instead of simulating",
    )
    simulate.add_argument(
        "--fidelity", choices=["packet", "flow"], default="packet",
        help="packet = discrete-event pipeline (exact); flow = "
             "vectorized fluid engine (~100-1000x faster, rate-level)",
    )
    simulate.add_argument(
        "--workload", type=str, default=None,
        help="streaming workload: pareto|lognormal|diurnal|flash|"
             "trace:<path> (heavy-tailed flows at bounded memory; "
             "packet fidelity only, default: smooth synthetic traffic)",
    )

    sweep = sub.add_parser("sweep", help="sweep offered load")
    sweep.add_argument("--loads", type=str, default="0.3,0.5,0.7,0.9,1.0")
    sweep.add_argument("--duration-us", type=float, default=40.0)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument(
        "--switches", type=int, default=0,
        help="sweep the full H-switch router instead of one switch",
    )
    sweep.add_argument(
        "--failed-switches", type=str, default="",
        help="comma list of dead switches, e.g. 0,3 (implies router mode)",
    )
    sweep.add_argument(
        "--metrics-out", type=str, default=None,
        help="write telemetry aggregated over all sweep points to this "
             "path (.prom/.txt = Prometheus text, else JSONL)",
    )
    sweep.add_argument(
        "--cache-dir", type=str, default=None,
        help="content-addressed result cache: finished cells are "
             "checkpointed as they complete, so a killed sweep resumes "
             "from where it stopped",
    )
    sweep.add_argument(
        "--shard", type=str, default=None,
        help="K/N: execute only cells K, K+N, ... (use one shared "
             "--cache-dir; a final unsharded run merges deterministically)",
    )
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size for the cell fan-out (default: 1, "
             "sequential; results are byte-identical either way)",
    )
    sweep.add_argument(
        "--out", type=str, default=None,
        help="also write the sweep document (schema repro-sweep-v1, one "
             "cell per load) as JSON to this path",
    )
    sweep.add_argument(
        "--fidelity", choices=["packet", "flow"], default="packet",
        help="packet = discrete-event pipeline (exact); flow = "
             "vectorized fluid engine (~100-1000x faster, rate-level)",
    )
    sweep.add_argument(
        "--workload", type=str, default=None,
        help="streaming workload: pareto|lognormal|diurnal|flash|"
             "trace:<path> (heavy-tailed flows at bounded memory; "
             "packet fidelity only, default: smooth synthetic traffic)",
    )
    sweep.add_argument(
        "--events-out", type=str, default=None,
        help="append a live JSONL lifecycle stream (schema "
             "repro-events-v1: sweep/cell/worker events) to this path",
    )

    metrics = sub.add_parser(
        "metrics",
        help="run an instrumented simulation and report per-stage telemetry",
    )
    metrics.add_argument("--load", type=float, default=0.7, help="offered load in [0, 1]")
    metrics.add_argument("--duration-us", type=float, default=20.0, help="arrival window")
    metrics.add_argument("--seed", type=int, default=0)
    metrics.add_argument(
        "--switches", type=int, default=4,
        help="router H (the run is always a full-router simulation)",
    )
    metrics.add_argument(
        "--mode", choices=["sequential", "parallel", "auto"], default="sequential",
        help="execution mode (all modes export identical dumps)",
    )
    metrics.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size for --mode parallel (default: all cores)",
    )
    metrics.add_argument(
        "--format", choices=["table", "prom", "jsonl"], default="table",
        help="stdout format: stage-summary table, Prometheus text, or JSONL",
    )
    metrics.add_argument(
        "--out", type=str, default=None,
        help="also write the full dump to this path "
             "(.prom/.txt = Prometheus text, else JSONL)",
    )

    faults = sub.add_parser(
        "faults", help="fault injection & graceful degradation"
    )
    faults.add_argument(
        "--fault", action="append", default=[],
        help="fault spec: switch:H | channels:H:N | oeo:H:F | fiber:R:F, "
             "optionally @START[-END] in us; repeatable or comma-separated",
    )
    faults.add_argument(
        "--failed-switches", type=str, default="",
        help="comma list of whole-run dead switches, e.g. 0,3",
    )
    faults.add_argument("--switches", type=int, default=4, help="router H")
    faults.add_argument("--load", type=float, default=0.6)
    faults.add_argument("--duration-us", type=float, default=40.0)
    faults.add_argument("--intervals", type=int, default=8)
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument(
        "--campaign", type=int, default=0,
        help="draw and run N Monte-Carlo scenarios instead of one run",
    )
    faults.add_argument(
        "--switch-mtbf-us", type=float, default=200.0,
        help="campaign: per-component mean time between failures",
    )
    faults.add_argument(
        "--switch-mttr-us", type=float, default=10.0,
        help="campaign: mean time to repair",
    )
    faults.add_argument(
        "--workers", type=int, default=None,
        help="campaign: process-pool size (default: all cores)",
    )
    faults.add_argument(
        "--json", action="store_true",
        help="print the JSON report instead of tables",
    )
    faults.add_argument(
        "--out", type=str, default=None,
        help="also write the JSON report to this path "
             "(campaigns default to FAULTS_CAMPAIGN.json)",
    )
    faults.add_argument(
        "--metrics-out", type=str, default=None,
        help="single-run only: write the run's telemetry (with fault "
             "windows tagged) to this path",
    )
    faults.add_argument(
        "--cache-dir", type=str, default=None,
        help="content-addressed result cache: campaign cells checkpoint "
             "as they finish, so a killed campaign resumes",
    )
    faults.add_argument(
        "--shard", type=str, default=None,
        help="campaign: K/N -- execute only cells K, K+N, ... against a "
             "shared --cache-dir; the unsharded rerun aggregates",
    )
    faults.add_argument(
        "--fidelity", choices=["packet", "flow"], default="packet",
        help="packet = discrete-event pipeline (exact); flow = "
             "vectorized fluid engine (~100-1000x faster, rate-level)",
    )
    faults.add_argument(
        "--workload", type=str, default=None,
        help="streaming workload: pareto|lognormal|diurnal|flash|"
             "trace:<path> (heavy-tailed flows at bounded memory; "
             "packet fidelity only, default: smooth synthetic traffic)",
    )

    attack = sub.add_parser(
        "attack", help="adversarial campaigns: attack strategies vs splitters"
    )
    attack.add_argument(
        "--strategy",
        choices=["known-assignment", "oblivious-probe", "operator-skew", "burst-sync"],
        default="known-assignment",
    )
    attack.add_argument(
        "--splitter", choices=["contiguous", "pseudo-random", "both"],
        default="both",
        help="splitter family to attack ('both' also reports the exposure ratio)",
    )
    attack.add_argument("--trials", type=int, default=8, help="campaign trials")
    attack.add_argument("--seed", type=int, default=0, help="campaign seed")
    attack.add_argument("--switches", type=int, default=16, help="router H")
    attack.add_argument(
        "--ribbons", type=int, default=8, help="router ribbon count N"
    )
    attack.add_argument("--victim", type=int, default=0, help="targeted switch")
    attack.add_argument("--load", type=float, default=0.6, help="per-ribbon offered load")
    attack.add_argument("--duration-us", type=float, default=10.0, help="arrival window")
    attack.add_argument(
        "--attack-fraction", type=float, default=None,
        help="share of the load the adversary controls "
             "(default: the strategy's own default)",
    )
    attack.add_argument(
        "--oracle", action="store_true",
        help="known-assignment: attacker knows the deployed assignment "
             "(leaked seed), not just the published design",
    )
    attack.add_argument(
        "--probe-rounds", type=int, default=24,
        help="oblivious-probe: per-ribbon probe budget",
    )
    attack.add_argument(
        "--skew", type=float, default=4.0,
        help="operator-skew: first/last fiber load ratio",
    )
    attack.add_argument(
        "--burst-period-ns", type=float, default=2_000.0,
        help="burst-sync: on/off period",
    )
    attack.add_argument(
        "--duty", type=float, default=0.5, help="burst-sync: on fraction"
    )
    attack.add_argument(
        "--fault", action="append", default=[],
        help="compose with a fault spec (same grammar as the faults command)",
    )
    attack.add_argument(
        "--failed-switches", type=str, default="",
        help="comma list of whole-run dead switches, e.g. 0,3",
    )
    attack.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size for the trial fan-out (default: sequential)",
    )
    attack.add_argument(
        "--seed-sweep", type=int, default=0,
        help="also run the pseudo-random seed-sensitivity sweep over N seeds",
    )
    attack.add_argument(
        "--json", action="store_true",
        help="print the JSON report instead of tables",
    )
    attack.add_argument(
        "--out", type=str, default=None,
        help="also write the JSON report to this path",
    )
    attack.add_argument(
        "--metrics-out", type=str, default=None,
        help="write the campaign's merged telemetry (attack windows + "
             "victim series) to this path",
    )
    attack.add_argument(
        "--cache-dir", type=str, default=None,
        help="content-addressed result cache: trials are recalled "
             "instead of re-simulated on reruns",
    )
    attack.add_argument(
        "--fidelity", choices=["packet", "flow"], default="packet",
        help="packet = discrete-event pipeline (exact); flow = "
             "vectorized fluid engine (~100-1000x faster, rate-level)",
    )
    attack.add_argument(
        "--workload", type=str, default=None,
        help="streaming carrier workload: pareto|lognormal|diurnal|"
             "flash|trace:<path> (heavy-tailed flows at bounded memory; "
             "packet fidelity only, default: fixed-size Poisson carrier)",
    )

    fabric = sub.add_parser(
        "fabric",
        help="compose routers into an optical DCN fabric and run one cell",
    )
    fabric.add_argument(
        "--topology",
        choices=["clos", "clos3", "expander", "rotation", "dragonfly"],
        default="clos",
        help="clos = 2-stage k-ary, clos3 = 3-stage with pods and cores",
    )
    fabric.add_argument("--k", type=int, default=2, help="clos/clos3 arity")
    fabric.add_argument(
        "--routers", type=int, default=4,
        help="expander/rotation node count",
    )
    fabric.add_argument(
        "--degree", type=int, default=2, help="expander node degree"
    )
    fabric.add_argument(
        "--topo-seed", type=int, default=0,
        help="expander wiring seed (deterministic per seed)",
    )
    fabric.add_argument(
        "--slot-ns", type=float, default=1_000.0,
        help="rotation: reconfiguration slot length",
    )
    fabric.add_argument(
        "--groups", type=int, default=3, help="dragonfly group count"
    )
    fabric.add_argument(
        "--group-size", type=int, default=2,
        help="dragonfly routers per group",
    )
    fabric.add_argument(
        "--routing", choices=["direct", "vlb", "hoho"], default="direct",
        help="direct = shortest-path ECMP, vlb = Valiant load balancing, "
             "hoho = hop-on-hop-off (rotation only)",
    )
    fabric.add_argument(
        "--pattern", choices=["uniform", "hotspot"], default="uniform",
        help="endpoint demand: uniform all-to-all or half of each "
             "source's load aimed at one hot endpoint",
    )
    fabric.add_argument("--load", type=float, default=0.6, help="per-endpoint offered load in [0, 1]")
    fabric.add_argument("--duration-us", type=float, default=50.0, help="arrival window")
    fabric.add_argument("--seed", type=int, default=0)
    fabric.add_argument(
        "--switches", type=int, default=4, help="per-node router H"
    )
    fabric.add_argument(
        "--fault", action="append", default=[],
        help="fabric fault spec: router:R | link:U:V, optionally "
             "@START[-END] in us; repeatable or comma-separated",
    )
    fabric.add_argument(
        "--link-delay-ns", type=float, default=0.0,
        help="inter-package propagation delay per hop",
    )
    fabric.add_argument(
        "--json", action="store_true",
        help="emit the full report (+ scenario_digest) as JSON",
    )
    fabric.add_argument(
        "--out", type=str, default=None,
        help="also write the JSON report to this path",
    )
    fabric.add_argument(
        "--metrics-out", type=str, default=None,
        help="write the router=-labelled merged telemetry to this path "
             "(.prom/.txt = Prometheus text, else JSONL; packet only)",
    )
    fabric.add_argument(
        "--cache-dir", type=str, default=None,
        help="content-addressed result cache; a rerun of the same "
             "fabric cell recalls its payload instead of simulating",
    )
    fabric.add_argument(
        "--fidelity", choices=["packet", "flow"], default="packet",
        help="packet = per-node discrete-event engine (memoised across "
             "identical hops); flow = fluid engine (much faster)",
    )

    sub.add_parser("experiments", help="list the experiment index")

    timeline = sub.add_parser(
        "timeline", help="render Fig. 4: PFI's staggered schedule as ASCII"
    )
    timeline.add_argument("--frames", type=int, default=2, help="frames to draw")
    timeline.add_argument("--width", type=int, default=72, help="columns")
    timeline.add_argument(
        "--events", action="store_true",
        help="trace a short switch simulation and render its pipeline "
             "events (batch/frame/write/read/bypass/deliver lanes) "
             "instead of the bank schedule",
    )
    timeline.add_argument("--load", type=float, default=0.7, help="--events: offered load")
    timeline.add_argument("--duration-us", type=float, default=10.0, help="--events: arrival window")
    timeline.add_argument("--seed", type=int, default=0, help="--events: traffic seed")

    bench = sub.add_parser(
        "bench", help="run the perf harness and write BENCH_<rev>.json"
    )
    bench.add_argument("--rev", type=str, default="1", help="revision tag for the output file")
    bench.add_argument(
        "--out", type=str, default=None,
        help="output path (default: BENCH_<rev>.json in the current directory)",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="shrink workloads for a CI smoke run",
    )
    bench.add_argument(
        "--switches", type=int, default=8,
        help="H for the sequential-vs-parallel macro bench",
    )
    bench.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (default: all cores)",
    )
    bench.add_argument(
        "--append", type=str, nargs="?", const="BENCH_HISTORY.jsonl",
        default=None, metavar="HISTORY",
        help="also append the document as one line to this JSONL bench "
             "history (default: BENCH_HISTORY.jsonl; feed it to "
             "python -m repro.perf.compare --history for trend deltas)",
    )

    timeseries = sub.add_parser(
        "timeseries",
        help="render the windowed time series of a telemetry dump",
    )
    timeseries.add_argument(
        "path",
        help="telemetry dump to read (JSONL from --metrics-out / metrics "
             "--out)",
    )
    timeseries.add_argument(
        "--name", type=str, default=None,
        help="only series whose metric name contains this substring",
    )
    timeseries.add_argument(
        "--ewma", type=float, default=None, metavar="ALPHA",
        help="also render the EWMA-smoothed view at this alpha in (0, 1]",
    )
    timeseries.add_argument(
        "--width", type=int, default=64,
        help="max sparkline columns (older windows are summarised away)",
    )

    control = sub.add_parser(
        "control",
        help="closed-loop control plane: admission, reweighting, mitigation",
    )
    control.add_argument(
        "--campaign", choices=["fault", "attack"], default="fault",
        help="which campaign family to close the loop on",
    )
    control.add_argument(
        "--compare-open-loop", action="store_true",
        help="run the campaign twice (open vs closed loop, same seeds) "
             "and report the per-cell delivered-fraction delta",
    )
    control.add_argument(
        "--fidelity", choices=["packet", "flow"], default="flow",
        help="engine for the campaign cells (flow = fluid, fast)",
    )
    control.add_argument(
        "--cells", type=int, default=8,
        help="fault scenarios / attack trials per campaign",
    )
    control.add_argument("--seed", type=int, default=0)
    control.add_argument("--switches", type=int, default=4, help="router H")
    control.add_argument("--load", type=float, default=0.6)
    control.add_argument("--duration-us", type=float, default=40.0)
    control.add_argument(
        "--tick-ns", type=float, default=1_000.0,
        help="control period: signals fold and actuators move once per tick",
    )
    control.add_argument(
        "--switch-mtbf-us", type=float, default=200.0,
        help="fault campaign: per-component mean time between failures",
    )
    control.add_argument(
        "--switch-mttr-us", type=float, default=10.0,
        help="fault campaign: mean time to repair",
    )
    control.add_argument(
        "--workers", type=int, default=None,
        help="process-pool size (default: all cores)",
    )
    control.add_argument(
        "--cache-dir", type=str, default=None,
        help="content-addressed result cache (closed-loop cells have "
             "their own digests; both loops checkpoint)",
    )
    control.add_argument(
        "--json", action="store_true",
        help="print the JSON report instead of tables",
    )
    control.add_argument(
        "--out", type=str, default=None,
        help="also write the JSON report to this path",
    )
    control.add_argument(
        "--actions-out", type=str, default=None,
        help="single-run mode: write the repro-control-v1 action stream "
             "(JSONL) of the demo run to this path",
    )
    return parser


def cmd_analyze(args: argparse.Namespace) -> int:
    config = scaled_router() if args.scaled else reference_router()
    table = Table("Design analysis", ["quantity", "value"])
    table.add("ingress", format_rate(config.io_per_direction_bps))
    table.add("total I/O", format_rate(config.total_io_bps))
    table.add("switches (H)", config.n_switches)
    table.add("per-switch memory I/O", format_rate(config.per_switch_io_bps))
    table.add("frame size K", format_size(config.switch.frame_bytes))
    power = hbm_switch_power(config.switch)
    table.add("power / switch", f"{power.total_w:.0f} W")
    table.add("router power", f"{router_power(config).total_w / 1e3:.2f} kW")
    table.add("router area", f"{router_area(config).total_mm2:.0f} mm^2")
    buffering = router_buffering(config)
    table.add("buffering", f"{format_size(buffering.total_buffer_bytes)} ({buffering.buffer_ms:.1f} ms)")
    table.add("SRAM / switch", f"{sram_sizing(config.switch).total_mb:.1f} MB")
    table.add("vs Cisco 8201-32FH", f"{capacity_vs_reference(config).speedup:.1f}x")
    table.show()
    return 0


def _router_config(n_switches: int):
    """The test-scale router grown to H switches (alpha stays 4)."""
    if n_switches <= 0:
        raise ConfigError(f"--switches must be positive, got {n_switches}")
    return scaled_router(
        fibers_per_ribbon=4 * n_switches, n_switches=n_switches
    )


def _failed_schedule(failed: List[int]):
    """A ``--failed-switches`` list as its degenerate fault schedule (or
    ``None``).  The CLI converts eagerly so nothing downstream touches
    the deprecated ``failed_switches=`` kwarg."""
    if not failed:
        return None
    from .faults import FaultSchedule

    return FaultSchedule.from_failed_switches(failed)


def _write_metrics_dump(dump, path: str) -> None:
    """Write one scenario payload's telemetry dump to ``path``."""
    from .telemetry import MetricsRegistry, write_metrics

    write_metrics(MetricsRegistry.from_dict(dump), path)
    print(f"wrote {path}")


def _write_merged_metrics(dumps, path: str) -> None:
    """Merge per-cell telemetry dumps (in cell order) and write them."""
    from .telemetry import MetricsRegistry, write_metrics

    registry = MetricsRegistry()
    for dump in dumps:
        if dump is not None:
            registry.merge_dict(dump)
    write_metrics(registry, path)
    print(f"wrote {path}")


def cmd_simulate(args: argparse.Namespace) -> int:
    import dataclasses
    import json

    from .runtime import Runtime, router_scenario, switch_scenario

    failed = _parse_int_list(args.failed_switches)
    runtime = Runtime(cache_dir=args.cache_dir)
    want_metrics = bool(args.metrics_out)
    common = dict(
        load=args.load,
        duration_ns=args.duration_us * 1e3,
        seed=args.seed,
        packet_size=args.packet_size,
        process=args.process,
        padding=not args.no_padding,
        bypass=not args.no_bypass,
        telemetry=want_metrics,
        fidelity=args.fidelity,
        workload=args.workload,
    )
    if args.switches > 0 or failed:
        h = args.switches if args.switches > 0 else scaled_router().n_switches
        config = _router_config(h)
        config = dataclasses.replace(
            config,
            switch=dataclasses.replace(config.switch, speedup=args.speedup),
        )
        scenario = router_scenario(
            config, schedule=_failed_schedule(failed), **common
        )
        payload = runtime.run(scenario)
        report = payload["report"]
        if want_metrics:
            _write_metrics_dump(payload["telemetry"], args.metrics_out)
        if args.json:
            document = dict(report)
            document["scenario_digest"] = scenario.digest()
            print(json.dumps(document, indent=2, sort_keys=True))
            return 0
        table = Table("Router simulation", ["metric", "value"])
        table.add("switches (H)", config.n_switches)
        table.add("failed switches", str(report["failed_switches"]) if report["failed_switches"] else "none")
        table.add("offered", format_size(report["offered_bytes"]))
        table.add("failed_offered_bytes", report["failed_offered_bytes"])
        table.add("delivered", f"{report['delivered_fraction']:.2%}")
        table.add("lost", format_size(report["lost_bytes"]))
        table.add("loss fraction", f"{report['loss_fraction']:.4f}")
        table.add("load imbalance", f"{report['load_imbalance']:.3f}")
        table.add("reorderings", report["ordering_violations"])
        table.add("mean latency", format_time(report["latency"]["mean_ns"]))
        table.add("p99 latency", format_time(report["latency"]["p99_ns"]))
        table.show()
        return 0
    config = dataclasses.replace(scaled_router().switch, speedup=args.speedup)
    scenario = switch_scenario(config, **common)
    payload = runtime.run(scenario)
    report = payload["report"]
    if want_metrics:
        _write_metrics_dump(payload["telemetry"], args.metrics_out)
    if args.json:
        document = dict(report)
        document["scenario_digest"] = scenario.digest()
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    table = Table("Switch simulation", ["metric", "value"])
    table.add("offered", format_size(report["offered_bytes"]))
    table.add("delivered", f"{report['delivery_fraction']:.2%}")
    table.add("normalized throughput", f"{report['normalized_throughput']:.3f}")
    table.add("dropped bytes", report["dropped_bytes"])
    table.add("reorderings", report["ordering_violations"])
    table.add("mean latency", format_time(report["latency"]["mean_ns"]))
    table.add("p99 latency", format_time(report["latency"]["p99_ns"]))
    table.add("frames written / read", f"{report['pfi']['frames_written']} / {report['pfi']['frames_read']}")
    table.add("padded / bypassed", f"{report['pfi']['padded_frames']} / {report['pfi']['bypassed_frames']}")
    table.show()
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from .runtime import (
        Runtime,
        execute_scenario,
        parse_shard,
        router_scenario,
        switch_scenario,
    )

    try:
        loads = [float(x) for x in args.loads.split(",") if x.strip()]
    except ValueError:
        print(f"bad --loads value: {args.loads!r}", file=sys.stderr)
        return 2
    failed = _parse_int_list(args.failed_switches)
    shard = parse_shard(args.shard)
    want_metrics = bool(args.metrics_out)
    if want_metrics and (args.cache_dir or shard):
        # The live registry accumulates observations across cells (a
        # running floating-point sum), which recalled payloads cannot
        # replay byte-identically -- so metrics runs execute everything.
        print(
            "--metrics-out shares one live registry across cells; "
            "ignoring --cache-dir/--shard for this run",
            file=sys.stderr,
        )
        shard = None
    runtime = Runtime(
        cache_dir=None if want_metrics else args.cache_dir,
        n_workers=args.workers,
    )
    duration_ns = args.duration_us * 1e3
    router_mode = args.switches > 0 or bool(failed)
    if router_mode:
        h = args.switches if args.switches > 0 else scaled_router().n_switches
        config = _router_config(h)
        schedule = _failed_schedule(failed)
        scenarios = [
            router_scenario(
                config,
                load=load,
                duration_ns=duration_ns,
                seed=args.seed,
                schedule=schedule,
                telemetry=want_metrics,
                fidelity=args.fidelity,
                workload=args.workload,
            )
            for load in loads
        ]
    else:
        config = scaled_router().switch
        scenarios = [
            switch_scenario(
                config,
                load=load,
                duration_ns=duration_ns,
                seed=args.seed,
                telemetry=want_metrics,
                fidelity=args.fidelity,
                workload=args.workload,
            )
            for load in loads
        ]
    from .runtime import open_event_stream

    events = open_event_stream(args.events_out)
    try:
        if want_metrics:
            from .telemetry import MetricsRegistry

            registry = MetricsRegistry()
            if events is not None:
                events.emit(
                    "sweep_start", n_cells=len(scenarios), shard=None
                )
            payloads = []
            for i, scenario in enumerate(scenarios):
                if events is not None:
                    events.emit(
                        "cell_start", index=i, digest=scenario.digest()
                    )
                payloads.append(execute_scenario(scenario, registry=registry))
                if events is not None:
                    events.emit(
                        "cell_finish",
                        index=i,
                        digest=scenario.digest(),
                        status="ok",
                    )
            if events is not None:
                events.emit(
                    "sweep_finish",
                    n_executed=len(scenarios),
                    n_cached=0,
                    n_unresolved=0,
                )
        else:
            payloads = runtime.map(scenarios, shard=shard, events=events)
    finally:
        if events is not None:
            events.close()

    if router_mode:
        table = Table(
            "Router load sweep",
            ["load", "delivered", "failed_offered_bytes", "loss fraction", "p99 latency"],
        )
        for load, payload in zip(loads, payloads):
            if payload is None:
                continue
            report = payload["report"]
            table.add(
                f"{load:.2f}",
                f"{report['delivered_fraction']:.2%}",
                report["failed_offered_bytes"],
                f"{report['loss_fraction']:.4f}",
                format_time(report["latency"]["p99_ns"]),
            )
    else:
        table = Table(
            "Load sweep", ["load", "throughput", "delivered", "mean latency", "p99 latency"]
        )
        for load, payload in zip(loads, payloads):
            if payload is None:
                continue
            report = payload["report"]
            table.add(
                f"{load:.2f}",
                f"{report['normalized_throughput']:.3f}",
                f"{report['delivery_fraction']:.2%}",
                format_time(report["latency"]["mean_ns"]),
                format_time(report["latency"]["p99_ns"]),
            )
    table.show()

    complete = all(p is not None for p in payloads)
    if not complete:
        done = sum(1 for p in payloads if p is not None)
        print(
            f"shard {args.shard}: {done}/{len(payloads)} cells resolved; "
            "rerun without --shard over the same --cache-dir to merge",
            file=sys.stderr,
        )
    if args.out:
        if not complete:
            print(
                "--out skipped: unresolved cells (the merge run writes "
                "the document)",
                file=sys.stderr,
            )
        else:
            document = {
                "schema": "repro-sweep-v1",
                "kind": "router" if router_mode else "switch",
                "loads": loads,
                "seed": args.seed,
                "duration_ns": duration_ns,
                "switches": config.n_switches if router_mode else 0,
                "digests": [s.digest() for s in scenarios],
                "cells": [p["report"] for p in payloads],
            }
            with open(args.out, "w") as fh:
                fh.write(json.dumps(document, indent=2, sort_keys=True) + "\n")
            print(f"wrote {args.out}")
    if want_metrics:
        _write_metrics_dump(registry.to_dict(), args.metrics_out)
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    import json

    from .faults import CampaignParams, DegradationReport, parse_fault_specs
    from .reporting import (
        campaign_table,
        degradation_summary_table,
        degradation_table,
    )
    from .runtime import (
        FaultCampaign,
        Runtime,
        degradation_scenario,
        parse_shard,
    )

    config = _router_config(args.switches)
    schedule = parse_fault_specs(args.fault)
    failed = _parse_int_list(args.failed_switches)
    if failed:
        schedule = schedule.with_failed_switches(failed)
    schedule.validate(config)
    duration_ns = args.duration_us * 1e3
    runtime = Runtime(cache_dir=args.cache_dir, n_workers=args.workers)

    if args.campaign > 0:
        if args.metrics_out:
            print(
                "--metrics-out applies to single runs only; ignoring it "
                "for the campaign",
                file=sys.stderr,
            )
        params = CampaignParams(
            n_scenarios=args.campaign,
            seed=args.seed,
            load=args.load,
            duration_ns=duration_ns,
            n_intervals=args.intervals,
            switch_mtbf_ns=args.switch_mtbf_us * 1e3,
            switch_mttr_ns=args.switch_mttr_us * 1e3,
            channel_mtbf_ns=args.switch_mtbf_us * 1e3,
            channel_mttr_ns=args.switch_mttr_us * 1e3,
            oeo_mtbf_ns=args.switch_mtbf_us * 1e3,
            oeo_mttr_ns=args.switch_mttr_us * 1e3,
        )
        result = runtime.run_campaign(
            FaultCampaign(
                config=config,
                params=params,
                base_schedule=None if schedule.is_empty else schedule,
                fidelity=args.fidelity,
                workload=args.workload,
            ),
            shard=parse_shard(args.shard),
        )
        if result is None:
            print(
                f"shard {args.shard}: partial campaign cached; rerun "
                "without --shard over the same --cache-dir to aggregate",
                file=sys.stderr,
            )
            return 0
        text = json.dumps(result.to_dict(), indent=2, sort_keys=True)
        out = args.out if args.out else "FAULTS_CAMPAIGN.json"
        with open(out, "w") as fh:
            fh.write(text + "\n")
        if args.json:
            print(text)
        else:
            campaign_table(result).show()
            print(
                f"{result.n_faulted}/{params.n_scenarios} scenarios drew faults"
            )
        print(f"wrote {out}")
        return 0

    payload = runtime.run(
        degradation_scenario(
            config,
            load=args.load,
            duration_ns=duration_ns,
            seed=args.seed,
            schedule=None if schedule.is_empty else schedule,
            n_intervals=args.intervals,
            telemetry=bool(args.metrics_out),
            fidelity=args.fidelity,
            workload=args.workload,
        )
    )
    if args.metrics_out:
        _write_metrics_dump(payload["telemetry"], args.metrics_out)
    if args.json or args.out:
        text = json.dumps(payload["report"], indent=2, sort_keys=True)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.out}")
        if args.json:
            print(text)
        if args.json:
            return 0
    report = DegradationReport.from_dict(payload["report"])
    degradation_summary_table(report).show()
    degradation_table(report).show()
    return 0


def _attack_strategy(args: argparse.Namespace):
    from .adversary import (
        BurstSynchronizedAttack,
        KnownAssignmentAttack,
        ObliviousProbeAttack,
        OperatorSkew,
    )

    fraction = {}
    if args.attack_fraction is not None:
        fraction["attack_fraction"] = args.attack_fraction
    if args.strategy == "known-assignment":
        return KnownAssignmentAttack(
            victim=args.victim, oracle=args.oracle, **fraction
        )
    if args.strategy == "oblivious-probe":
        return ObliviousProbeAttack(
            victim=args.victim, probe_rounds=args.probe_rounds, **fraction
        )
    if args.strategy == "operator-skew":
        return OperatorSkew(skew=args.skew, **fraction)
    return BurstSynchronizedAttack(
        victim=args.victim,
        period_ns=args.burst_period_ns,
        duty=args.duty,
        **fraction,
    )


def cmd_attack(args: argparse.Namespace) -> int:
    import json

    from .adversary import (
        AttackCampaignParams,
        compare_splitters,
        seed_sensitivity_sweep,
    )
    from .faults import parse_fault_specs
    from .reporting import (
        attack_campaign_table,
        attack_comparison_table,
        seed_sweep_table,
    )
    from .runtime import AttackCampaign, Runtime

    if args.ribbons <= 0:
        raise ConfigError(f"--ribbons must be positive, got {args.ribbons}")
    if args.switches <= 0:
        raise ConfigError(f"--switches must be positive, got {args.switches}")
    config = scaled_router(
        n_ribbons=args.ribbons,
        fibers_per_ribbon=4 * args.switches,
        n_switches=args.switches,
    )
    strategy = _attack_strategy(args)
    schedule = parse_fault_specs(args.fault)
    failed = _parse_int_list(args.failed_switches)
    duration_ns = args.duration_us * 1e3
    telemetry = bool(args.metrics_out)
    runtime = Runtime(cache_dir=args.cache_dir, n_workers=args.workers)

    if args.splitter == "both":
        comparison = compare_splitters(
            config,
            strategy,
            n_trials=args.trials,
            seed=args.seed,
            load=args.load,
            duration_ns=duration_ns,
            telemetry=telemetry,
            fault_schedule=None if schedule.is_empty else schedule,
            failed_switches=failed or None,
            runtime=runtime,
            fidelity=args.fidelity,
            workload=args.workload,
        )
        campaigns = comparison.pop("_campaigns")
        document = comparison
        tables = [attack_comparison_table(comparison)]
    else:
        params = AttackCampaignParams(
            strategy=strategy,
            splitter=args.splitter,
            n_trials=args.trials,
            seed=args.seed,
            load=args.load,
            duration_ns=duration_ns,
            telemetry=telemetry,
        )
        result = runtime.run_campaign(
            AttackCampaign(
                config=config,
                params=params,
                fault_schedule=None if schedule.is_empty else schedule,
                failed_switches=failed or None,
                fidelity=args.fidelity,
                workload=args.workload,
            )
        )
        campaigns = {args.splitter: result}
        document = result.to_dict()
        tables = [attack_campaign_table(result)]

    if args.seed_sweep > 0:
        sweep = seed_sensitivity_sweep(
            config.fibers_per_ribbon,
            config.n_switches,
            strategy=strategy,
            n_ribbons=config.n_ribbons,
            n_seeds=args.seed_sweep,
            base_seed=args.seed,
        )
        document = dict(document)
        document["seed_sweep"] = sweep
        tables.append(seed_sweep_table(sweep))

    if args.metrics_out:
        # Fixed splitter-kind order keeps the merged dump byte-identical
        # across sequential, parallel and cached campaign runs.
        _write_merged_metrics(
            [campaigns[kind].telemetry for kind in sorted(campaigns)],
            args.metrics_out,
        )

    text = json.dumps(document, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}")
    if args.json:
        print(text)
        return 0
    for table in tables:
        table.show()
    return 0


def _fabric_topology(args: argparse.Namespace):
    from .fabric import (
        ClosTopology,
        DragonflyTopology,
        ExpanderTopology,
        RotationTopology,
    )

    if args.topology == "clos":
        return ClosTopology(k=args.k, stages=2)
    if args.topology == "clos3":
        return ClosTopology(k=args.k, stages=3)
    if args.topology == "expander":
        return ExpanderTopology(
            n_routers=args.routers, degree=args.degree, seed=args.topo_seed
        )
    if args.topology == "rotation":
        return RotationTopology(n_routers=args.routers, slot_ns=args.slot_ns)
    return DragonflyTopology(
        n_groups=args.groups, routers_per_group=args.group_size
    )


def cmd_fabric(args: argparse.Namespace) -> int:
    import json

    from .faults import parse_fault_specs
    from .runtime import Runtime, fabric_scenario

    config = _router_config(args.switches)
    topology = _fabric_topology(args)
    schedule = parse_fault_specs(args.fault)
    want_metrics = bool(args.metrics_out)
    runtime = Runtime(cache_dir=args.cache_dir)
    scenario = fabric_scenario(
        config,
        topology,
        routing=args.routing,
        pattern=args.pattern,
        load=args.load,
        duration_ns=args.duration_us * 1e3,
        seed=args.seed,
        fidelity=args.fidelity,
        schedule=None if schedule.is_empty else schedule,
        link_delay_ns=args.link_delay_ns,
        telemetry=want_metrics,
    )
    payload = runtime.run(scenario)
    report = payload["report"]
    if want_metrics:
        _write_metrics_dump(payload["telemetry"], args.metrics_out)
    if args.json or args.out:
        document = dict(report)
        document["scenario_digest"] = scenario.digest()
        text = json.dumps(document, indent=2, sort_keys=True)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.out}")
        if args.json:
            print(text)
            return 0
    table = Table("Fabric simulation", ["metric", "value"])
    table.add("topology", report["topology"]["kind"])
    table.add("routers", report["n_routers"])
    table.add("per-node H", config.n_switches)
    table.add("routing", report["routing"])
    table.add("pattern", args.pattern)
    table.add("fidelity", report["fidelity"])
    table.add("faults", "; ".join(report["fault_events"]) or "none")
    table.add("offered", format_rate(report["offered_bps"]))
    table.add("delivered", format_rate(report["delivered_bps"]))
    table.add("delivered fraction", f"{report['delivered_fraction']:.2%}")
    table.add("mean hops", f"{report['mean_hops']:.2f}")
    table.add("mean latency", format_time(report["mean_latency_ns"]))
    table.add("max link utilization", f"{report['max_link_utilization']:.3f}")
    table.show()
    routers = Table(
        "Per-router accounting",
        ["router", "offered", "delivered", "down fraction"],
    )
    for row in report["routers"]:
        routers.add(
            row["router"],
            format_rate(row["offered_bps"]),
            f"{row['delivered_fraction']:.2%}",
            f"{row['down_fraction']:.2f}",
        )
    routers.show()
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    from .runtime import execute_scenario, router_scenario
    from .telemetry import MetricsRegistry, stage_summaries, to_jsonl, to_prometheus

    registry = MetricsRegistry()
    config = _router_config(args.switches)
    # Inline execution with a shared registry (and exec-mode hints): the
    # command's whole point is the live registry, so it bypasses the
    # cache -- cached payloads stay pure functions of the scenario.
    payload = execute_scenario(
        router_scenario(
            config,
            load=args.load,
            duration_ns=args.duration_us * 1e3,
            seed=args.seed,
            mode=args.mode,
            workers=args.workers,
        ),
        registry=registry,
    )
    report = payload["report"]
    if args.format == "prom":
        sys.stdout.write(to_prometheus(registry))
    elif args.format == "jsonl":
        sys.stdout.write(to_jsonl(registry))
    else:
        table = Table(
            "Pipeline stage latency",
            ["stage", "count", "mean", "p50", "p99"],
        )
        for stage, summary in stage_summaries(registry).items():
            table.add(
                stage,
                summary["count"],
                format_time(summary["mean_ns"]),
                format_time(summary["p50_ns"]),
                format_time(summary["p99_ns"]),
            )
        table.show()
        totals = Table("Run totals", ["metric", "value"])
        totals.add("switches (H)", config.n_switches)
        totals.add("mode", args.mode)
        totals.add("offered", format_size(report["offered_bytes"]))
        totals.add("delivered", f"{report['delivered_fraction']:.2%}")
        totals.add("series exported", sum(1 for _ in registry))
        totals.show()
    if args.out:
        _write_metrics_dump(registry.to_dict(), args.out)
    return 0


def cmd_experiments(_args: argparse.Namespace) -> int:
    table = Table("Experiment index", ["id", "claim", "bench"])
    for exp_id, claim, bench in EXPERIMENTS:
        table.add(exp_id, claim, bench)
    table.show()
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    if args.events:
        from .reporting import render_pipeline_events
        from .runtime import execute_scenario, switch_scenario
        from .sim.trace import TraceRecorder

        recorder = TraceRecorder()
        execute_scenario(
            switch_scenario(
                scaled_router().switch,
                load=args.load,
                duration_ns=args.duration_us * 1e3,
                seed=args.seed,
            ),
            trace=recorder,
        )
        print(render_pipeline_events(recorder, width=args.width))
        return 0

    from .config import HBMSwitchConfig
    from .hbm import (
        BankGroup,
        HBMTiming,
        Op,
        bank_group_for_frame,
        first_legal_start,
        generate_frame_schedule,
    )
    from .reporting import render_bank_timeline, render_bus_utilisation

    if args.frames <= 0:
        print("--frames must be positive", file=sys.stderr)
        return 2
    config = HBMSwitchConfig()
    timing = HBMTiming()
    commands = []
    start = first_legal_start(timing)
    for i in range(args.frames):
        sched = generate_frame_schedule(
            Op.WR if i % 2 == 0 else Op.RD,
            [0],
            BankGroup(bank_group_for_frame(i, config.n_bank_groups), config.gamma),
            config.segment_bytes,
            row=i,
            data_start=start,
            timing=timing,
            channel_bytes_per_ns=config.stack.channel_bytes_per_ns,
        )
        commands.extend(sched.commands)
        start = sched.data_end
    print(render_bank_timeline(
        commands, timing, channel=0,
        bytes_per_ns=config.stack.channel_bytes_per_ns, width=args.width,
    ))
    print()
    print(render_bus_utilisation(
        commands, timing, channel=0,
        bytes_per_ns=config.stack.channel_bytes_per_ns, width=args.width,
    ))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    import json

    from .perf import run_benchmarks, write_bench_json

    document = run_benchmarks(
        rev=args.rev,
        quick=args.quick,
        n_switches=args.switches,
        n_workers=args.workers,
    )
    out = args.out if args.out else f"BENCH_{args.rev}.json"
    write_bench_json(document, out)
    if args.append:
        with open(args.append, "a") as fh:
            fh.write(
                json.dumps(document, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
    table = Table("Benchmarks", ["bench", "wall", "key metrics"])
    for name, result in document["results"].items():
        metrics = result["metrics"]
        if name == "router_parallel":
            key = (
                f"speedup {metrics['speedup']:.2f}x over {metrics['n_workers']} workers, "
                f"byte_identical={metrics['byte_identical']}"
            )
        elif name == "engine":
            key = f"{metrics['events_per_sec']:,.0f} events/s"
        elif name == "traffic":
            key = f"{metrics['packets_per_sec']:,.0f} packets/s"
        elif name == "traffic_stream":
            key = f"{metrics['blocks_per_sec']:,.0f} blocks/s"
            if "rss_ratio" in metrics:
                key += (
                    f", rss flat {metrics['rss_ratio']:.2f}x, "
                    f"eager {metrics['eager_over_stream']:.1f}x stream"
                )
        elif name == "telemetry_overhead":
            key = (
                f"enabled/disabled {metrics['enabled_over_disabled']:.3f}x, "
                f"{metrics['series_exported']} series"
            )
        elif name == "adversary_campaign":
            key = (
                f"{metrics['trials_per_sec']:.2f} trials/s, "
                f"exposure gap {metrics['exposure_gap']:.1f}x"
            )
        elif name == "sweep_cached":
            key = (
                f"warm speedup {metrics['warm_speedup']:.1f}x over "
                f"{metrics['n_cells']} cells, "
                f"byte_identical={metrics['byte_identical']}"
            )
        elif name == "flow_engine":
            key = (
                f"{metrics['packets_equiv_per_sec']:,.0f} pkt-equiv/s, "
                f"{metrics['speedup_vs_packet']:,.0f}x vs packet"
            )
        elif name == "fabric":
            key = (
                f"{metrics['cells_per_sec']:.2f} cells/s, "
                f"{metrics['n_cells']} cells over "
                f"{metrics['n_routers']} routers"
            )
        elif name == "control":
            key = (
                f"{metrics['ticks_per_sec']:,.0f} ticks/s, "
                f"{metrics['n_state_changes']} state changes over "
                f"{metrics['n_ticks']} ticks"
            )
        else:
            key = f"{metrics['events_per_sec']:,.0f} events/s, {metrics['packets_per_sec']:,.0f} packets/s"
        table.add(name, f"{result['wall_s'] * 1e3:.1f} ms", key)
    table.show()
    print(f"wrote {out}")
    if args.append:
        print(f"appended to {args.append}")
    return 0


def cmd_timeseries(args: argparse.Namespace) -> int:
    from .telemetry import read_jsonl, sparkline
    from .telemetry.export import PrometheusParseError

    try:
        with open(args.path) as fh:
            text = fh.read()
    except OSError as exc:
        print(f"error reading {args.path}: {exc}", file=sys.stderr)
        return 2
    try:
        registry = read_jsonl(text)
    except (PrometheusParseError, ConfigError, ValueError) as exc:
        print(f"error parsing {args.path}: {exc}", file=sys.stderr)
        return 2
    if args.ewma is not None and not 0.0 < args.ewma <= 1.0:
        print(f"--ewma must be in (0, 1], got {args.ewma}", file=sys.stderr)
        return 2
    if args.width < 8:
        print(f"--width must be >= 8, got {args.width}", file=sys.stderr)
        return 2

    series_list = [
        s for s in registry.iter_timeseries()
        if args.name is None or args.name in s.name
    ]
    if not series_list:
        what = f" matching {args.name!r}" if args.name else ""
        print(f"no time series{what} in {args.path}")
        return 0
    table = Table(
        "Time series",
        ["series", "windows", "total", "mean", "peak", "timeline"],
    )
    for series in series_list:
        labels = ",".join(f"{k}={v}" for k, v in series.labels)
        name = f"{series.name}{{{labels}}}" if labels else series.name
        values = series.values()
        shown = values[-args.width:]
        mean = series.mean
        peak = series.peak
        table.add(
            name,
            len(values),
            f"{series.total:g}",
            "-" if mean != mean else f"{mean:g}",
            "-" if peak != peak else f"{peak:g}",
            sparkline(shown),
        )
        if args.ewma is not None and values:
            smoothed = [v for _, v in series.ewma(args.ewma)]
            table.add(
                f"  ewma(alpha={args.ewma:g})",
                "", "", "", "",
                sparkline(smoothed[-args.width:]),
            )
    table.show()
    window_widths = sorted({s.window_ns for s in series_list})
    print(
        f"{len(series_list)} series; window width "
        + ", ".join(f"{w:g} ns" for w in window_widths)
        + (f"; last {args.width} windows shown" if any(
            len(s.values()) > args.width for s in series_list
        ) else "")
    )
    return 0


def cmd_control(args: argparse.Namespace) -> int:
    import json

    from .control import ControlConfig, compare_attack_loops, compare_fault_loops
    from .runtime import Runtime

    config = _router_config(args.switches)
    duration_ns = args.duration_us * 1e3
    control = ControlConfig(tick_ns=args.tick_ns)
    runtime = Runtime(cache_dir=args.cache_dir, n_workers=args.workers)

    if args.compare_open_loop:
        if args.campaign == "fault":
            from .faults import CampaignParams

            params = CampaignParams(
                n_scenarios=args.cells,
                seed=args.seed,
                load=args.load,
                duration_ns=duration_ns,
                switch_mtbf_ns=args.switch_mtbf_us * 1e3,
                switch_mttr_ns=args.switch_mttr_us * 1e3,
                channel_mtbf_ns=args.switch_mtbf_us * 1e3,
                channel_mttr_ns=args.switch_mttr_us * 1e3,
                oeo_mtbf_ns=args.switch_mtbf_us * 1e3,
                oeo_mttr_ns=args.switch_mttr_us * 1e3,
            )
            result = compare_fault_loops(
                config, params, control=control,
                fidelity=args.fidelity, runtime=runtime,
            )
            extra = ("availability", result["availability"])
        else:
            from .adversary import AttackCampaignParams, BurstSynchronizedAttack

            params = AttackCampaignParams(
                strategy=BurstSynchronizedAttack(),
                n_trials=args.cells,
                seed=args.seed,
                load=args.load,
                duration_ns=duration_ns,
            )
            result = compare_attack_loops(
                config, params, control=control,
                fidelity=args.fidelity, runtime=runtime,
            )
            extra = ("victim gain", result["victim_gain"])
        text = json.dumps(result, indent=2, sort_keys=True)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.out}")
        if args.json:
            print(text)
            return 0
        table = Table(
            f"closed vs open loop: {args.campaign} campaign "
            f"({args.cells} cells, fidelity={args.fidelity})",
            ["metric", "open", "closed", "delta", "improved", "regressed"],
        )
        for name, block in (
            ("delivered fraction", result["delivered_fraction"]), extra,
        ):
            table.add(
                name,
                f"{block['open_mean']:.4f}",
                f"{block['closed_mean']:.4f}",
                f"{block['delta_mean']:+.4f}",
                block["n_improved"],
                block["n_regressed"],
            )
        table.show()
        return 0

    # Single-run demo: switch 0 fails for the middle third of the run;
    # the reweight controller sheds its load onto the healthy siblings.
    from .faults import FaultSchedule, SwitchFailure
    from .flow import flow_degradation

    schedule = FaultSchedule(
        [
            SwitchFailure(
                switch=0,
                start_ns=duration_ns / 3.0,
                end_ns=2.0 * duration_ns / 3.0,
            )
        ]
    )
    report = flow_degradation(
        config,
        schedule=schedule,
        load=args.load,
        duration_ns=duration_ns,
        control=control,
    )
    if args.actions_out:
        from .flow import RateComponent, simulate_flow_router, uniform_rate_matrix

        components = [
            RateComponent(
                uniform_rate_matrix(
                    config.n_ribbons,
                    args.load,
                    config.fibers_per_ribbon * config.per_fiber_rate_bps,
                ),
                ((0.0, duration_ns),),
            )
        ]
        result = simulate_flow_router(
            config,
            components,
            duration_ns=duration_ns,
            drain=True,
            schedule=schedule,
            control=control,
        )
        result.control_actions.write(args.actions_out)
        print(f"wrote {args.actions_out}")
    summary = {
        "delivered_fraction": report.delivered_fraction,
        "loss_fraction": report.loss_fraction,
        "availability": report.availability(),
        "control": report.control,
    }
    if args.json or args.out:
        text = json.dumps(summary, indent=2, sort_keys=True)
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.out}")
        if args.json:
            print(text)
            return 0
    ctrl = report.control or {}
    table = Table(
        "closed-loop demo: switch 0 down for the middle third",
        ["metric", "value"],
    )
    table.add("delivered fraction", f"{report.delivered_fraction:.4f}")
    table.add("loss fraction", f"{report.loss_fraction:.4f}")
    table.add("availability", f"{report.availability():.4f}")
    table.add("control ticks", ctrl.get("ticks", 0))
    table.add("state changes", ctrl.get("n_state_changes", 0))
    table.add("throttled bytes", ctrl.get("throttled_bytes", 0))
    table.show()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handler = {
        "analyze": cmd_analyze,
        "simulate": cmd_simulate,
        "sweep": cmd_sweep,
        "metrics": cmd_metrics,
        "faults": cmd_faults,
        "attack": cmd_attack,
        "fabric": cmd_fabric,
        "experiments": cmd_experiments,
        "timeline": cmd_timeline,
        "bench": cmd_bench,
        "timeseries": cmd_timeseries,
        "control": cmd_control,
    }[args.command]
    try:
        return handler(args)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
