"""Bench-regression gate: compare two ``BENCH_<rev>.json`` documents.

The perf harness (:mod:`repro.perf.harness`) tracks a small set of
throughput metrics from revision to revision.  This module compares a
current document against a checked-in baseline and fails (exit 1) when
any tracked metric regresses by more than the threshold -- the CI step
that keeps the simulator's cost centres honest.

Only *relative* metrics are tracked: wall-clock seconds shift with
workload sizes (``--quick``), and parallel speedup depends on the
host's core count, but events/sec and packets/sec measure the same
inner loops on any workload scale, and the cached sweep's warm speedup
compares two runs on the same host.

Usage::

    python -m repro.perf.compare BENCH_1.json BENCH_ci.json [--threshold 0.25]
    python -m repro.perf.compare --history BENCH_HISTORY.jsonl

``--history`` switches to trend mode: the argument is the JSONL bench
history ``repro bench --append`` grows (one full bench document per
line), and the output is one row per tracked metric per revision with
its delta against the previous revision -- the long-horizon view the
two-document gate cannot give.  Trend mode is informational (exit 0
unless the history is unreadable or empty).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Tuple

#: (bench name, metric key) pairs gated by the comparison.  Higher is
#: better for every entry.
TRACKED_METRICS: Tuple[Tuple[str, str], ...] = (
    ("engine", "events_per_sec"),
    ("traffic", "packets_per_sec"),
    ("traffic_stream", "blocks_per_sec"),
    ("switch", "events_per_sec"),
    ("switch", "packets_per_sec"),
    ("adversary_campaign", "trials_per_sec"),
    ("adversary_campaign", "packets_per_sec"),
    ("sweep_cached", "warm_speedup"),
    ("flow_engine", "packets_equiv_per_sec"),
    ("fabric", "cells_per_sec"),
    ("control", "ticks_per_sec"),
)

#: Default allowed fractional drop before the gate fails.
DEFAULT_THRESHOLD = 0.25


def load_bench(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _metric(document: Dict[str, Any], bench: str, key: str) -> Optional[float]:
    try:
        value = document["results"][bench]["metrics"][key]
    except (KeyError, TypeError):
        return None
    return float(value)


def compare_documents(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[Dict[str, Any]]:
    """One row per tracked metric: baseline, current, ratio, verdict.

    A metric missing from either document is reported (``ratio`` None)
    but never fails the gate -- new benches should not break old
    baselines and vice versa.
    """
    rows = []
    for bench, key in TRACKED_METRICS:
        base = _metric(baseline, bench, key)
        cur = _metric(current, bench, key)
        ratio = (cur / base) if (base and cur is not None) else None
        rows.append(
            {
                "bench": bench,
                "metric": key,
                "baseline": base,
                "current": cur,
                "ratio": ratio,
                "regressed": ratio is not None and ratio < 1.0 - threshold,
            }
        )
    return rows


def render_rows(rows: List[Dict[str, Any]], threshold: float) -> str:
    lines = [
        f"bench regression gate (fail below {1.0 - threshold:.2f}x baseline)",
        f"{'bench':<20}{'metric':<20}{'baseline':>14}{'current':>14}{'ratio':>8}  verdict",
    ]
    for row in rows:
        if row["ratio"] is None:
            lines.append(
                f"{row['bench']:<20}{row['metric']:<20}{'-':>14}{'-':>14}{'-':>8}  skipped (missing)"
            )
            continue
        verdict = "REGRESSED" if row["regressed"] else "ok"
        lines.append(
            f"{row['bench']:<20}{row['metric']:<20}"
            f"{row['baseline']:>14,.0f}{row['current']:>14,.0f}"
            f"{row['ratio']:>8.2f}  {verdict}"
        )
    return "\n".join(lines)


def load_history(path: str) -> List[Dict[str, Any]]:
    """Read a ``BENCH_HISTORY.jsonl`` file: one bench document per line."""
    documents = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                documents.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: bad history line: {exc}")
    return documents


def history_rows(documents: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Per-revision trend of every tracked metric.

    One row per (revision, metric) with the value and its fractional
    delta against the *previous revision that had the metric* (``None``
    for the first appearance).
    """
    rows = []
    last: Dict[Tuple[str, str], float] = {}
    for position, document in enumerate(documents):
        rev = str(document.get("rev", position))
        for bench, key in TRACKED_METRICS:
            value = _metric(document, bench, key)
            if value is None:
                continue
            previous = last.get((bench, key))
            rows.append(
                {
                    "rev": rev,
                    "bench": bench,
                    "metric": key,
                    "value": value,
                    "delta": (
                        (value / previous - 1.0) if previous else None
                    ),
                }
            )
            last[(bench, key)] = value
    return rows


def render_history(rows: List[Dict[str, Any]]) -> str:
    lines = [
        "bench history trend (delta vs previous revision)",
        f"{'rev':<12}{'bench':<20}{'metric':<24}{'value':>14}{'delta':>9}",
    ]
    for row in rows:
        delta = (
            f"{row['delta']:+8.1%}" if row["delta"] is not None else f"{'-':>8}"
        )
        lines.append(
            f"{row['rev']:<12}{row['bench']:<20}{row['metric']:<24}"
            f"{row['value']:>14,.0f}{delta:>9}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.perf.compare",
        description="fail when tracked bench metrics regress vs a baseline",
    )
    parser.add_argument(
        "baseline", nargs="?", help="checked-in baseline BENCH_*.json"
    )
    parser.add_argument(
        "current", nargs="?", help="freshly produced BENCH_*.json"
    )
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help="allowed fractional drop (default 0.25 = fail below 75%%)",
    )
    parser.add_argument(
        "--history", type=str, default=None,
        help="trend mode: render per-revision deltas from this "
             "BENCH_HISTORY.jsonl instead of gating two documents",
    )
    args = parser.parse_args(argv)
    if args.history:
        try:
            documents = load_history(args.history)
        except (OSError, ValueError) as exc:
            print(f"error reading bench history: {exc}", file=sys.stderr)
            return 2
        if not documents:
            print(f"empty bench history: {args.history}", file=sys.stderr)
            return 2
        print(render_history(history_rows(documents)))
        return 0
    if not args.baseline or not args.current:
        parser.error("baseline and current are required without --history")
    if not 0.0 < args.threshold < 1.0:
        print(f"threshold must be in (0, 1), got {args.threshold}", file=sys.stderr)
        return 2
    try:
        baseline = load_bench(args.baseline)
        current = load_bench(args.current)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error reading bench documents: {exc}", file=sys.stderr)
        return 2
    rows = compare_documents(baseline, current, args.threshold)
    print(render_rows(rows, args.threshold))
    regressed = [r for r in rows if r["regressed"]]
    if regressed:
        names = ", ".join(f"{r['bench']}.{r['metric']}" for r in regressed)
        print(f"FAIL: {len(regressed)} metric(s) regressed: {names}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
