"""Performance benchmarking harness.

Micro benches (event engine, traffic generation, single-switch run),
the macro sequential-vs-parallel router bench, and the packet-vs-flow
fidelity bench, with JSON export so the repo's performance trajectory
is tracked revision over revision (``BENCH_<rev>.json``).  Run via
``repro bench`` or the pytest smoke benches under ``benchmarks/perf/``.
"""

from .harness import (
    BenchResult,
    bench_adversary_campaign,
    bench_control,
    bench_engine,
    bench_fabric,
    bench_flow_engine,
    bench_router_parallel,
    bench_sweep_cached,
    bench_switch,
    bench_telemetry_overhead,
    bench_traffic,
    bench_traffic_stream,
    run_benchmarks,
    write_bench_json,
)

__all__ = [
    "BenchResult",
    "bench_adversary_campaign",
    "bench_control",
    "bench_engine",
    "bench_fabric",
    "bench_flow_engine",
    "bench_traffic",
    "bench_traffic_stream",
    "bench_switch",
    "bench_sweep_cached",
    "bench_telemetry_overhead",
    "bench_router_parallel",
    "run_benchmarks",
    "write_bench_json",
]

# The regression gate lives in repro.perf.compare; it is kept out of this
# namespace so `python -m repro.perf.compare` runs without a double-import
# warning.
