"""Peak-RSS probe for the streaming traffic substrate.

The bounded-memory claim behind :class:`~repro.traffic.stream.TrafficSource`
is a *process*-level property: a 10x larger offered workload streamed
block by block through one switch must not move the resident set, while
the eager ``materialize()`` path grows linearly with the packet count.
``ru_maxrss`` is a lifetime high-water mark, so two measurements taken
inside one interpreter would only ever see the larger of the two -- each
probe therefore runs in its own subprocess (:func:`measure_rss`) and
reports a small JSON document on stdout.

Run directly for one measurement::

    python -m repro.perf.rss_probe --target-packets 1000000 --mode stream

The probe calibrates the simulated duration from a short generation-only
pilot (packets per nanosecond of the seeded source), so ``--target-packets``
is an offered-count floor, not an estimate.  ``--mode eager`` materializes
the same workload into a list first -- the contrast case; keep its target
small enough for the host.  The per-output latency reservoirs are capped
(:class:`~repro.sim.stats.LatencyRecorder`), otherwise delivered-packet
samples would grow the resident set and mask the substrate's flatness.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from typing import Any, Dict, Optional

#: Packets-per-output retained by the latency reservoir during probes.
#: Large enough for stable percentiles, small enough that sample storage
#: cannot be confused with traffic-substrate growth.
PROBE_LATENCY_CAP = 4096

#: Simulated span of the generation-only calibration pilot.
PILOT_NS = 100_000.0


def peak_rss_bytes() -> int:
    """This process's lifetime peak resident set, in bytes (0 if the
    platform has no ``resource`` module)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return peak if sys.platform == "darwin" else peak * 1024


def run_probe(
    target_packets: int,
    mode: str = "stream",
    workload: str = "pareto",
    load: float = 0.8,
    seed: int = 0,
    block_ns: Optional[float] = None,
) -> Dict[str, Any]:
    """Offer at least ``target_packets`` through one switch; report RSS.

    ``stream`` consumes the source block by block via
    :meth:`~repro.core.hbm_switch.HBMSwitch.run_stream`; ``eager``
    materializes the full packet list first and feeds the classic
    :meth:`run` -- identical simulation, unbounded staging memory.
    """
    from ..config import scaled_router
    from ..core import PFIOptions
    from ..core.hbm_switch import HBMSwitch
    from ..errors import ConfigError
    from ..traffic import DEFAULT_BLOCK_NS, workload_source

    if target_packets <= 0:
        raise ConfigError(
            f"target_packets must be positive, got {target_packets}"
        )
    if mode not in ("stream", "eager"):
        raise ConfigError(f"mode must be stream or eager, got {mode!r}")
    span = block_ns if block_ns is not None else DEFAULT_BLOCK_NS
    config = scaled_router().switch

    def source(duration_ns: float):
        return workload_source(
            workload,
            n_ports=config.n_ports,
            port_rate_bps=config.port_rate_bps,
            load=load,
            seed=seed,
            duration_ns=duration_ns,
        )

    # Generation-only pilot: packets per simulated nanosecond of this
    # exact (workload, load, seed) source, so the calibrated duration
    # offers >= target_packets without materializing anything.
    pilot = sum(len(b) for b in source(PILOT_NS).blocks(PILOT_NS, span))
    if pilot == 0:
        raise ConfigError(
            f"workload {workload!r} generated no packets in the pilot"
        )
    duration_ns = PILOT_NS * (target_packets / pilot) * 1.02

    switch = HBMSwitch(
        config,
        PFIOptions(padding=True, bypass=True),
        latency_sample_cap=PROBE_LATENCY_CAP,
    )
    src = source(duration_ns)
    start = time.perf_counter()
    if mode == "stream":
        report = switch.run_stream(src.blocks(duration_ns, span), duration_ns)
    else:
        report = switch.run(src.materialize(duration_ns), duration_ns)
    wall = time.perf_counter() - start
    return {
        "mode": mode,
        "workload": workload,
        "load": load,
        "seed": seed,
        "block_ns": span,
        "target_packets": target_packets,
        "duration_ns": duration_ns,
        "offered_packets": report.offered_packets,
        "offered_bytes": report.offered_bytes,
        "delivered_bytes": report.delivered_bytes,
        "delivery_fraction": report.delivery_fraction,
        "wall_s": wall,
        "packets_per_sec": report.offered_packets / wall if wall > 0 else 0.0,
        "peak_rss_bytes": peak_rss_bytes(),
    }


def measure_rss(
    target_packets: int,
    mode: str = "stream",
    workload: str = "pareto",
    load: float = 0.8,
    seed: int = 0,
    timeout_s: float = 3600.0,
) -> Dict[str, Any]:
    """Run one probe in a fresh subprocess and return its JSON document.

    A fresh interpreter per measurement keeps ``ru_maxrss`` honest: the
    high-water mark belongs to exactly one workload size.
    """
    cmd = [
        sys.executable,
        "-m",
        "repro.perf.rss_probe",
        "--target-packets",
        str(target_packets),
        "--mode",
        mode,
        "--workload",
        workload,
        "--load",
        str(load),
        "--seed",
        str(seed),
    ]
    proc = subprocess.run(
        cmd, capture_output=True, text=True, timeout=timeout_s
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"rss probe failed (exit {proc.returncode}): "
            f"{proc.stderr.strip()[-500:]}"
        )
    return json.loads(proc.stdout)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        description="peak-RSS probe: one streamed/eager switch run"
    )
    parser.add_argument("--target-packets", type=int, required=True)
    parser.add_argument(
        "--mode", choices=["stream", "eager"], default="stream"
    )
    parser.add_argument("--workload", type=str, default="pareto")
    parser.add_argument("--load", type=float, default=0.8)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--block-ns", type=float, default=None,
        help="block span in ns (default: the substrate default)",
    )
    args = parser.parse_args(argv)
    document = run_probe(
        target_packets=args.target_packets,
        mode=args.mode,
        workload=args.workload,
        load=args.load,
        seed=args.seed,
        block_ns=args.block_ns,
    )
    json.dump(document, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
