"""Micro and macro timing benchmarks with tracked JSON output.

Six benches cover the simulator's cost centres:

- :func:`bench_engine` -- raw event-engine throughput (events/sec) on a
  self-rescheduling workload, the innermost loop of every simulation.
- :func:`bench_traffic` -- packet generation throughput (packets/sec)
  of the vectorized :class:`~repro.traffic.generators.TrafficGenerator`.
- :func:`bench_traffic_stream` -- the streaming substrate: block
  iteration throughput (blocks/sec, packets/sec) of a heavy-tailed
  :class:`~repro.traffic.stream.TrafficSource`, plus subprocess
  peak-RSS probes (:mod:`repro.perf.rss_probe`) asserting that a 10x
  larger streamed workload keeps the resident set flat while the eager
  ``materialize()`` path grows with the packet count.
- :func:`bench_switch` -- one HBM-switch run end to end: wall time,
  events/sec and packets/sec through the full pipeline.
- :func:`bench_telemetry_overhead` -- the same switch run with
  telemetry disabled and enabled; reports the enabled/disabled wall
  ratio so the no-op fast path stays honest.
- :func:`bench_adversary_campaign` -- a multi-trial attack campaign
  through the full pipeline (trials/sec, packets/sec), gating the
  adversary subsystem's cost centres.
- :func:`bench_router_parallel` -- a macro bench: the same H-switch
  router run sequentially and fanned out over a process pool,
  asserting byte-identical delivered/dropped/residual totals and
  reporting the wall-clock speedup (plus a per-worker-count scaling
  series when the host has more than one core).
- :func:`bench_sweep_cached` -- the scenario runtime's cache gate: the
  same load sweep run cold (every cell executes, every result stored)
  and warm (every cell recalled from the content-addressed cache),
  asserting byte-identical payloads and reporting the warm speedup.
- :func:`bench_flow_engine` -- the fidelity gate: the same router
  scenario through the packet engine and the fluid engine
  (:mod:`repro.flow`), reporting packets-equivalent throughput, the
  speedup over the packet engine, and the delivered-fraction parity
  gap; plus a million-packet-scale cell timed at flow fidelity.
- :func:`bench_fabric` -- the fabric gate: a grid of multi-router
  fabric cells (topologies x routing policies) through the hop-round
  composition engine at flow fidelity, reporting cells/sec.
- :func:`bench_control` -- the control-plane gate: one closed-loop
  flow run with a fine control period, reporting controller ticks/sec
  (signal fold + state machines + actuation + action log).

:func:`run_benchmarks` bundles them and :func:`write_bench_json` emits
``BENCH_<rev>.json`` so the perf trajectory is tracked from revision to
revision (compare files, not absolute numbers -- hosts differ; each file
records its CPU count and Python version for context).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from ..config import scaled_router
from ..core import PFIOptions, SplitParallelSwitch
from ..errors import ConfigError
from ..core.hbm_switch import HBMSwitch
from ..sim.engine import Engine
from ..traffic import FixedSize, ImixSize, TrafficGenerator, uniform_matrix


@dataclass
class BenchResult:
    """One bench's measurements, JSON-safe."""

    name: str
    wall_s: float
    metrics: Dict[str, Any] = field(default_factory=dict)


# -- micro: event engine -------------------------------------------------------


def bench_engine(n_events: int = 200_000, n_chains: int = 16) -> BenchResult:
    """Events/sec of the core engine on self-rescheduling chains.

    ``n_chains`` concurrent chains keep the heap realistically mixed
    (pure FIFO scheduling would never exercise sift-down).
    """
    engine = Engine()
    per_chain = n_events // n_chains
    fired = 0

    def make_chain(period: float):
        remaining = per_chain

        def tick() -> None:
            nonlocal remaining, fired
            fired += 1
            remaining -= 1
            if remaining > 0:
                engine.schedule(engine.now + period, tick)

        return tick

    for c in range(n_chains):
        engine.schedule(0.1 * (c + 1), make_chain(1.0 + 0.13 * c))
    start = time.perf_counter()
    engine.run()
    wall = time.perf_counter() - start
    return BenchResult(
        name="engine",
        wall_s=wall,
        metrics={
            "events": fired,
            "events_per_sec": fired / wall if wall > 0 else 0.0,
        },
    )


# -- micro: traffic generation -------------------------------------------------


def bench_traffic(
    n_ports: int = 16,
    load: float = 0.8,
    duration_ns: float = 20_000.0,
    seed: int = 0,
) -> BenchResult:
    """Packets/sec of vectorized traffic generation (IMIX, Poisson)."""
    config = scaled_router().switch
    generator = TrafficGenerator(
        n_ports=n_ports,
        port_rate_bps=config.port_rate_bps,
        matrix=uniform_matrix(n_ports, load),
        size_dist=ImixSize(),
        seed=seed,
    )
    start = time.perf_counter()
    packets = generator.materialize(duration_ns)
    wall = time.perf_counter() - start
    return BenchResult(
        name="traffic",
        wall_s=wall,
        metrics={
            "packets": len(packets),
            "packets_per_sec": len(packets) / wall if wall > 0 else 0.0,
        },
    )


# -- micro: streaming traffic substrate ----------------------------------------


def bench_traffic_stream(
    duration_ns: float = 200_000.0,
    load: float = 0.8,
    seed: int = 0,
    rss_small_packets: int = 200_000,
    rss_big_packets: int = 1_000_000,
    probe_rss: bool = True,
) -> BenchResult:
    """The streaming substrate gate: block throughput plus flat memory.

    The timed section iterates a heavy-tailed Pareto
    :class:`~repro.traffic.stream.TrafficSource` block by block
    (generation only, nothing materialized); ``blocks_per_sec`` is the
    tracked metric.  Three subprocess peak-RSS probes
    (:func:`repro.perf.rss_probe.measure_rss` -- fresh interpreters,
    because ``ru_maxrss`` is a lifetime high-water mark) then pin the
    bounded-memory claim: a streamed run 5x the size of the small one
    must stay within 2x its resident set (``rss_ratio``, asserted --
    the ISSUE's flat-memory acceptance shape), while the eager
    ``materialize()`` run of the *same small workload* rides along as
    the contrast case (``eager_over_stream``).  The 10^7-packet
    acceptance run uses the same probe at full scale (CI's
    ``traffic-smoke`` job); the bench keeps the in-gate sizes small
    enough to run on every revision.
    """
    from ..traffic import workload_source
    from .rss_probe import measure_rss

    config = scaled_router().switch
    source = workload_source(
        "pareto",
        n_ports=config.n_ports,
        port_rate_bps=config.port_rate_bps,
        load=load,
        seed=seed,
        duration_ns=duration_ns,
    )
    n_blocks = 0
    n_packets = 0
    start = time.perf_counter()
    for block in source.blocks(duration_ns):
        n_blocks += 1
        n_packets += len(block)
    gen_wall = time.perf_counter() - start

    metrics: Dict[str, Any] = {
        "blocks": n_blocks,
        "packets": n_packets,
        "blocks_per_sec": n_blocks / gen_wall if gen_wall > 0 else 0.0,
        "packets_per_sec": n_packets / gen_wall if gen_wall > 0 else 0.0,
    }
    probe_wall = 0.0
    if probe_rss:
        small = measure_rss(rss_small_packets, mode="stream", load=load)
        big = measure_rss(rss_big_packets, mode="stream", load=load)
        eager = measure_rss(rss_small_packets, mode="eager", load=load)
        probe_wall = small["wall_s"] + big["wall_s"] + eager["wall_s"]
        ratio = (
            big["peak_rss_bytes"] / small["peak_rss_bytes"]
            if small["peak_rss_bytes"] > 0
            else 0.0
        )
        if small["peak_rss_bytes"] > 0 and ratio > 2.0:
            raise AssertionError(
                f"streamed memory is not flat: {rss_big_packets} packets "
                f"peaked at {big['peak_rss_bytes']} bytes, "
                f"{ratio:.2f}x the {rss_small_packets}-packet run"
            )
        metrics.update(
            {
                "rss_small_packets": small["offered_packets"],
                "rss_big_packets": big["offered_packets"],
                "stream_small_rss_bytes": small["peak_rss_bytes"],
                "stream_big_rss_bytes": big["peak_rss_bytes"],
                "rss_ratio": ratio,
                "eager_small_rss_bytes": eager["peak_rss_bytes"],
                "eager_over_stream": (
                    eager["peak_rss_bytes"] / small["peak_rss_bytes"]
                    if small["peak_rss_bytes"] > 0
                    else 0.0
                ),
                "stream_switch_packets_per_sec": big["packets_per_sec"],
            }
        )
    return BenchResult(
        name="traffic_stream",
        wall_s=gen_wall + probe_wall,
        metrics=metrics,
    )


# -- micro: one switch ---------------------------------------------------------


def bench_switch(
    load: float = 0.8,
    duration_ns: float = 40_000.0,
    seed: int = 0,
) -> BenchResult:
    """One full HBM-switch simulation: wall, events/sec, packets/sec."""
    config = scaled_router().switch
    generator = TrafficGenerator(
        n_ports=config.n_ports,
        port_rate_bps=config.port_rate_bps,
        matrix=uniform_matrix(config.n_ports, load),
        size_dist=FixedSize(1500),
        seed=seed,
    )
    packets = generator.materialize(duration_ns)
    switch = HBMSwitch(config, PFIOptions(padding=True, bypass=True))
    start = time.perf_counter()
    report = switch.run(packets, duration_ns)
    wall = time.perf_counter() - start
    events = switch.engine.events_fired
    return BenchResult(
        name="switch",
        wall_s=wall,
        metrics={
            "events": events,
            "events_per_sec": events / wall if wall > 0 else 0.0,
            "packets": report.offered_packets,
            "packets_per_sec": report.offered_packets / wall if wall > 0 else 0.0,
            "delivery_fraction": report.delivery_fraction,
        },
    )


# -- micro: telemetry overhead -------------------------------------------------


def bench_telemetry_overhead(
    load: float = 0.8,
    duration_ns: float = 40_000.0,
    seed: int = 0,
) -> BenchResult:
    """The same switch run with telemetry off and on.

    Telemetry off is the default everywhere (``self.telemetry is None``
    checks at each call site), so ``enabled_over_disabled`` is the price
    of turning instrumentation on, not a tax on normal runs.  The
    disabled run's packets/sec also feeds the perf gate: a no-op fast
    path that stopped being a no-op shows up as a ``switch``-style
    regression here.
    """
    from ..telemetry import MetricsRegistry, SwitchTelemetry

    config = scaled_router().switch
    generator = TrafficGenerator(
        n_ports=config.n_ports,
        port_rate_bps=config.port_rate_bps,
        matrix=uniform_matrix(config.n_ports, load),
        size_dist=FixedSize(1500),
        seed=seed,
    )
    packets = generator.materialize(duration_ns)

    switch_off = HBMSwitch(config, PFIOptions(padding=True, bypass=True))
    start = time.perf_counter()
    report = switch_off.run(packets, duration_ns)
    disabled_wall = time.perf_counter() - start

    packets = generator.materialize(duration_ns)
    registry = MetricsRegistry()
    telemetry = SwitchTelemetry(registry, config, switch=0)
    switch_on = HBMSwitch(
        config, PFIOptions(padding=True, bypass=True), telemetry=telemetry
    )
    start = time.perf_counter()
    switch_on.run(packets, duration_ns)
    enabled_wall = time.perf_counter() - start

    return BenchResult(
        name="telemetry_overhead",
        wall_s=disabled_wall + enabled_wall,
        metrics={
            "packets": report.offered_packets,
            "packets_per_sec": (
                report.offered_packets / disabled_wall if disabled_wall > 0 else 0.0
            ),
            "disabled_wall_s": disabled_wall,
            "enabled_wall_s": enabled_wall,
            "enabled_over_disabled": (
                enabled_wall / disabled_wall if disabled_wall > 0 else 0.0
            ),
            "series_exported": sum(1 for _ in registry),
        },
    )


# -- micro: adversarial campaign -----------------------------------------------


def bench_adversary_campaign(
    n_switches: int = 8,
    n_trials: int = 4,
    load: float = 0.6,
    duration_ns: float = 4_000.0,
    seed: int = 7,
) -> BenchResult:
    """One attack campaign (known-assignment vs pseudo-random) end to end.

    Covers the adversary subsystem's cost centres -- fiber-weight
    algebra, deterministic weighted fiber assignment, and the per-trial
    SPS runs -- and reports trials/sec for the perf gate.  The exposure
    gap (contiguous analytic gain over pseudo-random) rides along as a
    correctness canary: a gap near 1 means the splitters stopped
    differing and the campaign is measuring nothing.
    """
    from ..adversary import (
        AttackCampaignParams,
        KnownAssignmentAttack,
        attacker_gain,
    )
    from ..core.fiber_split import ContiguousSplitter
    from ..runtime import AttackCampaign, Runtime

    config = scaled_router(
        n_ribbons=8, fibers_per_ribbon=4 * n_switches, n_switches=n_switches
    )
    strategy = KnownAssignmentAttack(victim=0)
    params = AttackCampaignParams(
        strategy=strategy,
        splitter="pseudo-random",
        n_trials=n_trials,
        seed=seed,
        load=load,
        duration_ns=duration_ns,
    )
    start = time.perf_counter()
    result = Runtime().run_campaign(AttackCampaign(config=config, params=params))
    wall = time.perf_counter() - start
    contiguous_gain = attacker_gain(
        ContiguousSplitter(config.fibers_per_ribbon, n_switches),
        strategy,
        config.n_ribbons,
    )
    pseudo_gain = result.victim_gain["mean"]
    n_packets = sum(
        t["sim_offered_bytes"] // 1500 for t in result.trials
    )
    return BenchResult(
        name="adversary_campaign",
        wall_s=wall,
        metrics={
            "n_trials": n_trials,
            "trials_per_sec": n_trials / wall if wall > 0 else 0.0,
            "packets": n_packets,
            "packets_per_sec": n_packets / wall if wall > 0 else 0.0,
            "pseudo_random_gain": pseudo_gain,
            "exposure_gap": (
                contiguous_gain / pseudo_gain if pseudo_gain > 0 else 0.0
            ),
        },
    )


# -- macro: sequential vs parallel router -------------------------------------


def _router_traffic(config, load: float, duration_ns: float, seed: int):
    generator = TrafficGenerator(
        n_ports=config.n_ribbons,
        port_rate_bps=config.fibers_per_ribbon * config.per_fiber_rate_bps,
        matrix=uniform_matrix(config.n_ribbons, load),
        size_dist=FixedSize(1500),
        seed=seed,
        flows_per_pair=256,
    )
    return generator.materialize(duration_ns)


def bench_router_parallel(
    n_switches: int = 8,
    load: float = 0.7,
    duration_ns: float = 40_000.0,
    n_workers: Optional[int] = None,
    seed: int = 0,
) -> BenchResult:
    """Reference-style router run (H >= 8): sequential vs parallel.

    Both modes consume identical traffic; the bench asserts the
    delivered/dropped/residual byte totals match exactly before it
    reports any timing, so a speedup can never be bought with a
    correctness regression.
    """
    if n_switches <= 0:
        raise ConfigError(f"n_switches must be positive, got {n_switches}")
    config = scaled_router(
        fibers_per_ribbon=4 * n_switches, n_switches=n_switches
    )
    options = PFIOptions(padding=True, bypass=True)
    workers = n_workers if n_workers is not None else (os.cpu_count() or 1)

    packets = _router_traffic(config, load, duration_ns, seed)
    sps_seq = SplitParallelSwitch(config, options=options)
    start = time.perf_counter()
    seq = sps_seq.run(packets, duration_ns, mode="sequential")
    seq_wall = time.perf_counter() - start

    packets = _router_traffic(config, load, duration_ns, seed)
    sps_par = SplitParallelSwitch(config, options=options)
    start = time.perf_counter()
    par = sps_par.run(packets, duration_ns, mode="parallel", n_workers=workers)
    par_wall = time.perf_counter() - start

    identical = (
        seq.delivered_bytes == par.delivered_bytes
        and seq.dropped_bytes == par.dropped_bytes
        and seq.offered_bytes == par.offered_bytes
        and [r.residual_bytes for r in seq.switch_reports]
        == [r.residual_bytes for r in par.switch_reports]
    )
    if not identical:
        raise AssertionError(
            "parallel run diverged from sequential: "
            f"delivered {seq.delivered_bytes} vs {par.delivered_bytes}, "
            f"dropped {seq.dropped_bytes} vs {par.dropped_bytes}"
        )

    # Worker-count scaling series: the headline speedup above uses
    # whatever worker count the host (or caller) picked, which on a
    # single-core runner degenerates to 1 worker and a meaningless
    # ~1.0x.  When the host has >= 2 cores, also measure a small ladder
    # of worker counts so the parallel path's scaling is tracked;
    # skipped (empty list) below 2 cores.
    cpu = os.cpu_count() or 1
    scaling_wall = 0.0
    worker_scaling: List[Dict[str, Any]] = []
    if cpu >= 2:
        for w in sorted({2, min(4, cpu), cpu}):
            if w == workers:
                wall_w = par_wall
            else:
                packets = _router_traffic(config, load, duration_ns, seed)
                sps_w = SplitParallelSwitch(config, options=options)
                start = time.perf_counter()
                rep_w = sps_w.run(
                    packets, duration_ns, mode="parallel", n_workers=w
                )
                wall_w = time.perf_counter() - start
                scaling_wall += wall_w
                if rep_w.delivered_bytes != seq.delivered_bytes:
                    raise AssertionError(
                        f"{w}-worker run diverged from sequential: "
                        f"delivered {rep_w.delivered_bytes} "
                        f"vs {seq.delivered_bytes}"
                    )
            worker_scaling.append(
                {
                    "n_workers": w,
                    "parallel_wall_s": wall_w,
                    "speedup": seq_wall / wall_w if wall_w > 0 else 0.0,
                }
            )
    return BenchResult(
        name="router_parallel",
        wall_s=seq_wall + par_wall + scaling_wall,
        metrics={
            "n_switches": n_switches,
            "n_workers": workers,
            "sequential_wall_s": seq_wall,
            "parallel_wall_s": par_wall,
            "speedup": seq_wall / par_wall if par_wall > 0 else 0.0,
            "worker_scaling": worker_scaling,
            "delivered_bytes": seq.delivered_bytes,
            "dropped_bytes": seq.dropped_bytes,
            "offered_bytes": seq.offered_bytes,
            "byte_identical": identical,
        },
    )


# -- macro: cached scenario sweep ----------------------------------------------


def bench_sweep_cached(
    n_loads: int = 4,
    duration_ns: float = 20_000.0,
    seed: int = 0,
) -> BenchResult:
    """The same load sweep run cold and warm through the scenario runtime.

    Cold executes every cell and stores each payload in a fresh
    content-addressed cache; warm runs the identical grid through a new
    :class:`~repro.runtime.Runtime` on the same cache directory and must
    resolve every cell as a hit.  The bench asserts both before timing
    counts: the warm run executed nothing (hits == cells, misses == 0)
    and the recalled payloads are byte-identical to the cold ones.  The
    reported ``warm_speedup`` is the gate that keeps cache recall cheap
    relative to simulation.

    The warm wall is the best of three passes (cache recall is
    sub-millisecond, so a single pass is at the mercy of scheduler
    noise), and the tracked ``warm_speedup`` is capped at 50x: past
    that, recall cost is pure noise relative to execution, and an
    uncapped ratio would make the regression gate flaky.  The uncapped
    value rides along as ``warm_speedup_raw``.
    """
    import shutil
    import tempfile

    from ..runtime import Runtime, switch_scenario

    if n_loads <= 1:
        raise ConfigError(f"n_loads must be at least 2, got {n_loads}")
    config = scaled_router().switch
    scenarios = [
        switch_scenario(
            config,
            load=0.3 + 0.5 * i / (n_loads - 1),
            duration_ns=duration_ns,
            seed=seed,
        )
        for i in range(n_loads)
    ]
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        cold_runtime = Runtime(cache_dir=cache_dir, n_workers=1)
        start = time.perf_counter()
        cold = cold_runtime.map(scenarios)
        cold_wall = time.perf_counter() - start

        warm_walls = []
        for _ in range(3):
            warm_runtime = Runtime(cache_dir=cache_dir, n_workers=1)
            start = time.perf_counter()
            warm = warm_runtime.map(scenarios)
            warm_walls.append(time.perf_counter() - start)

            warm_stats = warm_runtime.cache.stats()
            identical = (
                warm_stats["hits"] == n_loads
                and warm_stats["misses"] == 0
                and json.dumps(cold, sort_keys=True)
                == json.dumps(warm, sort_keys=True)
            )
            if not identical:
                raise AssertionError(
                    f"warm sweep diverged from cold: cache stats {warm_stats}"
                )
        warm_wall = min(warm_walls)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    raw_speedup = cold_wall / warm_wall if warm_wall > 0 else 0.0
    return BenchResult(
        name="sweep_cached",
        wall_s=cold_wall + sum(warm_walls),
        metrics={
            "n_cells": n_loads,
            "cold_wall_s": cold_wall,
            "warm_wall_s": warm_wall,
            "warm_speedup": min(raw_speedup, 50.0),
            "warm_speedup_raw": raw_speedup,
            "warm_hits": warm_stats["hits"],
            "byte_identical": identical,
        },
    )


# -- macro: flow engine vs packet engine ---------------------------------------


def bench_flow_engine(
    n_switches: int = 8,
    load: float = 0.7,
    duration_ns: float = 40_000.0,
    seed: int = 0,
) -> BenchResult:
    """The fidelity gate: one router scenario at both fidelities.

    The packet engine runs the scenario once (sequentially -- the
    per-packet cost is what the flow engine amortises away); the fluid
    engine runs the *same* scenario five times and takes the best wall
    (its runs are sub-millisecond, so a single pass would be scheduler
    noise).  ``packets_equiv_per_sec`` -- the packet run's offered
    packet count over the flow wall -- is the tracked throughput
    metric, and ``speedup_vs_packet`` the headline ratio (target
    >= 100x).  The delivered-fraction gap between the two engines rides
    along as a parity canary for the cross-validation suite.

    A second, million-packet-scale cell (H=16, 64 ribbons, 1 ms of
    traffic -- far beyond what the packet engine can touch) is timed at
    flow fidelity only, demonstrating the internet-scale regime the
    engine unlocks (ROADMAP items 1-2).
    """
    from ..flow import flow_router_report

    if n_switches <= 0:
        raise ConfigError(f"n_switches must be positive, got {n_switches}")
    config = scaled_router(
        fibers_per_ribbon=4 * n_switches, n_switches=n_switches
    )
    options = PFIOptions(padding=True, bypass=True)

    packets = _router_traffic(config, load, duration_ns, seed)
    n_packets = len(packets)
    sps = SplitParallelSwitch(config, options=options)
    start = time.perf_counter()
    packet_report = sps.run(packets, duration_ns, mode="sequential")
    packet_wall = time.perf_counter() - start

    flow_walls = []
    for _ in range(5):
        start = time.perf_counter()
        flow_report = flow_router_report(
            config, load=load, duration_ns=duration_ns
        )
        flow_walls.append(time.perf_counter() - start)
    flow_wall = min(flow_walls)

    packet_rate = n_packets / packet_wall if packet_wall > 0 else 0.0
    flow_rate = n_packets / flow_wall if flow_wall > 0 else 0.0

    big = scaled_router(n_ribbons=64, fibers_per_ribbon=64, n_switches=16)
    start = time.perf_counter()
    big_report = flow_router_report(big, load=load, duration_ns=1_000_000.0)
    big_wall = time.perf_counter() - start
    big_equiv = big_report.offered_bytes / 1500.0

    return BenchResult(
        name="flow_engine",
        wall_s=packet_wall + sum(flow_walls) + big_wall,
        metrics={
            "n_switches": n_switches,
            "packets": n_packets,
            "packet_wall_s": packet_wall,
            "flow_wall_s": flow_wall,
            "packet_packets_per_sec": packet_rate,
            "packets_equiv_per_sec": flow_rate,
            "speedup_vs_packet": (
                flow_rate / packet_rate if packet_rate > 0 else 0.0
            ),
            "delivered_fraction_packet": packet_report.delivered_fraction,
            "delivered_fraction_flow": flow_report.delivered_fraction,
            "parity_gap": abs(
                flow_report.delivered_fraction
                - packet_report.delivered_fraction
            ),
            "million_flow_wall_s": big_wall,
            "million_flow_packets_equiv": big_equiv,
            "million_flow_packets_equiv_per_sec": (
                big_equiv / big_wall if big_wall > 0 else 0.0
            ),
        },
    )


def bench_fabric(
    load: float = 0.6,
    duration_ns: float = 40_000.0,
) -> BenchResult:
    """The fabric gate: a topology x routing grid of fabric cells.

    Runs a small Clos, an expander and a rotation fabric under every
    routing policy they support (direct/vlb everywhere, hoho on the
    rotation), all at flow fidelity -- the configuration the F-bench
    scenario families sweep.  ``cells_per_sec`` is the tracked metric;
    the mean delivered fraction rides along as a determinism canary
    (below 1 is expected: VLB's relay hop halves a fabric's admissible
    load, so the 0.6-load VLB cells shed by design)."""
    from ..fabric import (
        ClosTopology,
        ExpanderTopology,
        RotationTopology,
        simulate_fabric,
    )

    config = scaled_router(fibers_per_ribbon=16, n_switches=4)
    topologies = [
        ClosTopology(k=2, stages=2),
        ExpanderTopology(n_routers=8, degree=3, seed=0),
        RotationTopology(n_routers=8),
    ]
    cells = [
        (topology, routing)
        for topology in topologies
        for routing in ("direct", "vlb")
    ] + [(topologies[2], "hoho")]

    start = time.perf_counter()
    reports = [
        simulate_fabric(
            config, topology, routing=routing, load=load,
            duration_ns=duration_ns, fidelity="flow",
        )
        for topology, routing in cells
    ]
    wall = time.perf_counter() - start

    n_routers = sum(t.n_routers for t in topologies)
    mean_delivered = sum(r.delivered_fraction for r in reports) / len(reports)
    return BenchResult(
        name="fabric",
        wall_s=wall,
        metrics={
            "n_cells": len(cells),
            "n_routers": n_routers,
            "cells_per_sec": len(cells) / wall if wall > 0 else 0.0,
            "mean_delivered_fraction": mean_delivered,
        },
    )


def bench_control(
    duration_ns: float = 40_000.0,
    tick_ns: float = 50.0,
    n_switches: int = 4,
) -> BenchResult:
    """The control-plane gate: closed-loop ticks through the fluid engine.

    One flow-fidelity run with a mid-run switch failure and a control
    period fine enough (hundreds of ticks) that the wall clock is
    dominated by the loop itself -- per-switch signal folds, the four
    state machines, actuation and the action log -- rather than the
    tandem update.  ``ticks_per_sec`` is the tracked metric; the
    delivered fraction rides along as a determinism canary."""
    from ..control import ControlConfig
    from ..faults import FaultSchedule, SwitchFailure
    from ..flow import flow_degradation

    config = scaled_router(fibers_per_ribbon=16, n_switches=n_switches)
    schedule = FaultSchedule(
        [
            SwitchFailure(
                switch=0,
                start_ns=duration_ns / 3.0,
                end_ns=2.0 * duration_ns / 3.0,
            )
        ]
    )
    control = ControlConfig(tick_ns=tick_ns)

    start = time.perf_counter()
    report = flow_degradation(
        config,
        schedule=schedule,
        load=0.6,
        duration_ns=duration_ns,
        control=control,
    )
    wall = time.perf_counter() - start

    ticks = int(report.control["ticks"])
    return BenchResult(
        name="control",
        wall_s=wall,
        metrics={
            "n_ticks": ticks,
            "ticks_per_sec": ticks / wall if wall > 0 else 0.0,
            "n_state_changes": int(report.control["n_state_changes"]),
            "delivered_fraction": report.delivered_fraction,
        },
    )


# -- bundling ------------------------------------------------------------------


def _git_rev() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


def run_benchmarks(
    rev: str = "1",
    quick: bool = False,
    n_switches: int = 8,
    n_workers: Optional[int] = None,
) -> Dict[str, Any]:
    """Run every bench; returns the JSON-safe result document.

    ``quick`` shrinks workloads for CI smoke runs (seconds, not
    minutes) -- the numbers are then only good for "did it run".
    """
    scale = 0.25 if quick else 1.0
    results: List[BenchResult] = [
        bench_engine(n_events=int(200_000 * scale)),
        bench_traffic(duration_ns=20_000.0 * scale),
        bench_traffic_stream(
            duration_ns=200_000.0 * scale,
            rss_small_packets=20_000 if quick else 200_000,
            rss_big_packets=100_000 if quick else 1_000_000,
        ),
        bench_switch(duration_ns=40_000.0 * scale),
        bench_telemetry_overhead(duration_ns=40_000.0 * scale),
        bench_adversary_campaign(
            n_trials=2 if quick else 4,
            duration_ns=4_000.0 * scale,
        ),
        bench_router_parallel(
            n_switches=n_switches,
            duration_ns=40_000.0 * scale,
            n_workers=n_workers,
        ),
        bench_sweep_cached(
            n_loads=3 if quick else 4,
            duration_ns=20_000.0 * scale,
        ),
        bench_flow_engine(
            n_switches=n_switches,
            duration_ns=40_000.0 * scale,
        ),
        bench_fabric(duration_ns=40_000.0 * scale),
        bench_control(duration_ns=40_000.0 * scale),
    ]
    return {
        "schema": "repro-bench-v1",
        "rev": rev,
        "git_rev": _git_rev(),
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "results": {r.name: asdict(r) for r in results},
    }


def write_bench_json(document: Dict[str, Any], path: str) -> str:
    """Write the bench document to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
