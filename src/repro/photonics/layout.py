"""Packaging layout on the 2.5D photonics interposer (Fig. 2).

Fig. 2 sketches the reference floorplan: the N = 16 fiber ribbons
organised as 4 arrays per package edge, the H = 16 HBM switches as a
4 x 4 matrix in the middle, and WDM waveguides fanning out from every
ribbon to every switch.  This module makes the sketch executable:

- it places ribbons and switches on a panel of the configured edge;
- it routes every (ribbon, switch) waveguide bundle as a Manhattan path
  and reports total/maximum waveguide length -- the quantity that decides
  optical loss budgets;
- it checks that the switch matrix plus keep-outs actually fits the
  panel (the executable version of the SS 4 area argument).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from ..config import RouterConfig
from ..constants import PANEL_EDGE_MM
from ..errors import ConfigError

Point = Tuple[float, float]


@dataclass(frozen=True)
class Placement:
    """Positions (mm) of ribbons and switches on the interposer."""

    panel_edge_mm: float
    ribbon_positions: List[Point]
    switch_positions: List[Point]
    switch_pitch_mm: float

    @property
    def n_ribbons(self) -> int:
        return len(self.ribbon_positions)

    @property
    def n_switches(self) -> int:
        return len(self.switch_positions)


def place_reference_layout(
    config: RouterConfig,
    panel_edge_mm: float = PANEL_EDGE_MM,
    switch_edge_mm: float = 40.0,
) -> Placement:
    """The Fig. 2 floorplan: ribbons on 4 edges, switches in a matrix.

    ``switch_edge_mm`` is the keep-out square of one HBM switch
    (chiplet + 4 HBM stacks + controller area; 40 mm comfortably holds
    the ~1,284 mm^2 of silicon plus routing).
    """
    n_ribbons = config.n_ribbons
    n_switches = config.n_switches
    side = math.isqrt(n_switches)
    if side * side != n_switches:
        raise ConfigError(
            f"H = {n_switches} switches do not form a square matrix"
        )
    per_edge, remainder = divmod(n_ribbons, 4)
    if remainder != 0:
        raise ConfigError(f"N = {n_ribbons} ribbons do not split over 4 edges")

    # Switch matrix centred on the panel.
    pitch = switch_edge_mm * 1.5  # half an edge of routing space between
    matrix_span = (side - 1) * pitch
    if matrix_span + switch_edge_mm > panel_edge_mm:
        raise ConfigError(
            f"switch matrix ({matrix_span + switch_edge_mm:.0f} mm) exceeds "
            f"panel edge ({panel_edge_mm:.0f} mm)"
        )
    origin = (panel_edge_mm - matrix_span) / 2.0
    switches = [
        (origin + col * pitch, origin + row * pitch)
        for row in range(side)
        for col in range(side)
    ]

    # Ribbons evenly spaced along each edge: bottom, top, left, right.
    ribbons: List[Point] = []
    step = panel_edge_mm / (per_edge + 1)
    for k in range(per_edge):
        ribbons.append(((k + 1) * step, 0.0))  # bottom
    for k in range(per_edge):
        ribbons.append(((k + 1) * step, panel_edge_mm))  # top
    for k in range(per_edge):
        ribbons.append((0.0, (k + 1) * step))  # left
    for k in range(per_edge):
        ribbons.append((panel_edge_mm, (k + 1) * step))  # right

    return Placement(
        panel_edge_mm=panel_edge_mm,
        ribbon_positions=ribbons,
        switch_positions=switches,
        switch_pitch_mm=pitch,
    )


def manhattan_mm(a: Point, b: Point) -> float:
    """Manhattan distance -- waveguides route on an orthogonal grid."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


@dataclass(frozen=True)
class WaveguideBudget:
    """Waveguide routing statistics for a placement."""

    n_bundles: int
    waveguides_per_bundle: int
    total_length_mm: float
    max_length_mm: float
    mean_length_mm: float

    @property
    def total_waveguide_mm(self) -> float:
        """Length x waveguides: the total drawn waveguide."""
        return self.total_length_mm * self.waveguides_per_bundle


def waveguide_budget(config: RouterConfig, placement: Placement) -> WaveguideBudget:
    """Route every (ribbon, switch) bundle and aggregate lengths.

    Every ribbon sends alpha waveguides to every switch (and receives
    alpha back); the bundle length is the Manhattan distance between
    ribbon landing and switch position.
    """
    lengths = [
        manhattan_mm(r, s)
        for r in placement.ribbon_positions
        for s in placement.switch_positions
    ]
    if not lengths:
        raise ConfigError("placement has no ribbon-switch pairs")
    return WaveguideBudget(
        n_bundles=len(lengths),
        waveguides_per_bundle=2 * config.fibers_per_switch,  # in + out
        total_length_mm=sum(lengths),
        max_length_mm=max(lengths),
        mean_length_mm=sum(lengths) / len(lengths),
    )


def propagation_delay_ns(length_mm: float, group_index: float = 2.0) -> float:
    """Waveguide propagation delay: length / (c / n_g).

    With n_g ~ 2 (silicon nitride waveguides), light covers 150 mm/ns --
    the on-package optical path is nanoseconds, negligible next to the
    frame cycle, which is why the simulator folds it into zero.
    """
    if length_mm < 0:
        raise ConfigError(f"length must be >= 0, got {length_mm}")
    c_mm_per_ns = 299.792458
    return length_mm * group_index / c_mm_per_ns
