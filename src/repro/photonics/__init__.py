"""In-package photonics substrate.

The paper uses optics for three things, all modelled here:

1. **Getting petabits in and out of the package** -- fiber ribbons with
   WDM wavelengths (:mod:`fiber`, :mod:`wavelength`).
2. **Passive spatial splitting** -- couplers map each incoming fiber onto
   an internal waveguide with *no processing and no O/E conversion*
   (:mod:`coupler`, :mod:`waveguide`); this is what makes SPS's one-OEO
   property possible.
3. **O/E and E/O conversion energy** -- the only place photons become
   electrons and back, charged at ~1.15 pJ/bit (:mod:`oeo`).
"""

from .coupler import OpticalCoupler
from .fiber import Fiber, FiberRibbon
from .layout import (
    Placement,
    WaveguideBudget,
    place_reference_layout,
    propagation_delay_ns,
    waveguide_budget,
)
from .oeo import OEOConverter, oeo_power_watts
from .waveguide import Waveguide
from .wavelength import WDMChannel, wavelength_grid_nm

__all__ = [
    "WDMChannel",
    "wavelength_grid_nm",
    "Fiber",
    "FiberRibbon",
    "Waveguide",
    "OpticalCoupler",
    "OEOConverter",
    "oeo_power_watts",
    "Placement",
    "WaveguideBudget",
    "place_reference_layout",
    "waveguide_budget",
    "propagation_delay_ns",
]
