"""Passive optical couplers: the splitter's physical layer.

"At each fiber ribbon, wavelengths coming through the F optical fibers
are passively coupled to the corresponding wavelengths in the F internal
WDM waveguides" (SS 2.2, *Operation*).  A coupler consumes no power and
performs no processing; its only job here is to materialise a fiber-to-
waveguide mapping chosen by the splitter (:mod:`repro.core.fiber_split`)
and let tests assert structural properties (every fiber coupled exactly
once, alpha waveguides per (ribbon, switch) pair).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..errors import ConfigError
from .waveguide import Waveguide


class OpticalCoupler:
    """The passive coupling stage of one ribbon.

    Builds the waveguides for a ribbon given the switch assignment of
    each of its fibers (``assignment[f]`` = switch receiving fiber ``f``).
    """

    def __init__(
        self,
        ribbon: int,
        assignment: Sequence[int],
        n_switches: int,
        n_wavelengths: int,
        rate_bps: float,
    ) -> None:
        if ribbon < 0:
            raise ConfigError(f"ribbon must be >= 0, got {ribbon}")
        if n_switches <= 0:
            raise ConfigError(f"n_switches must be positive, got {n_switches}")
        counts: Dict[int, int] = {}
        self.waveguides: List[Waveguide] = []
        for fiber, switch in enumerate(assignment):
            if not 0 <= switch < n_switches:
                raise ConfigError(
                    f"fiber {fiber} assigned to switch {switch}, "
                    f"valid range is [0, {n_switches})"
                )
            lane = counts.get(switch, 0)
            counts[switch] = lane + 1
            self.waveguides.append(
                Waveguide(
                    ribbon=ribbon,
                    fiber=fiber,
                    switch=switch,
                    lane=lane,
                    n_wavelengths=n_wavelengths,
                    rate_bps=rate_bps,
                )
            )
        self._per_switch = counts

    def waveguides_to(self, switch: int) -> List[Waveguide]:
        """The waveguides this ribbon sends to ``switch`` (alpha of them)."""
        return [w for w in self.waveguides if w.switch == switch]

    def lanes_per_switch(self) -> Dict[int, int]:
        """How many waveguides go to each switch (should all be alpha)."""
        return dict(self._per_switch)

    def fiber_of(self, switch: int, lane: int) -> int:
        """Inverse lookup: which fiber feeds (switch, lane)."""
        for w in self.waveguides:
            if w.switch == switch and w.lane == lane:
                return w.fiber
        raise ConfigError(f"no waveguide for switch {switch} lane {lane}")


def validate_split(coupler: OpticalCoupler, n_switches: int, alpha: int) -> None:
    """Assert the ribbon feeds exactly alpha waveguides to every switch."""
    lanes = coupler.lanes_per_switch()
    for switch in range(n_switches):
        got = lanes.get(switch, 0)
        if got != alpha:
            raise ConfigError(
                f"ribbon feeds {got} waveguides to switch {switch}, expected {alpha}"
            )


def split_pairs(
    couplers: Sequence[OpticalCoupler], n_switches: int
) -> Dict[Tuple[int, int], int]:
    """(ribbon, switch) -> waveguide count across a set of couplers."""
    out: Dict[Tuple[int, int], int] = {}
    for coupler in couplers:
        for switch, count in coupler.lanes_per_switch().items():
            out[(coupler.waveguides[0].ribbon if coupler.waveguides else 0, switch)] = count
    return out
