"""O/E and E/O conversion: where the optical power budget is spent.

SPS's defining property is that every packet crosses exactly **one**
O/E/O conversion pair (inside its HBM switch), versus three for a Clos /
load-balanced organisation and O(sqrt(H)) hops for a mesh.  The energy
model is linear in bits at the cited ~1.15 pJ/bit, so architecture
comparisons reduce to counting conversions -- which is exactly how the
paper argues (SS 2.1 Challenge 3, SS 4 *Power estimate*).
"""

from __future__ import annotations

from ..constants import OEO_ENERGY_PJ_PER_BIT


class OEOConverter:
    """Accumulates O/E + E/O conversion energy over converted bits."""

    def __init__(self, energy_pj_per_bit: float = OEO_ENERGY_PJ_PER_BIT):
        if energy_pj_per_bit < 0:
            raise ValueError(f"energy must be >= 0, got {energy_pj_per_bit}")
        self.energy_pj_per_bit = energy_pj_per_bit
        self._bits = 0.0
        # Optional telemetry counter (attach_telemetry); ``None`` keeps
        # convert() at one extra pointer check.
        self._bits_counter = None

    def attach_telemetry(self, registry) -> None:
        """Mirror converted bits into ``repro_oeo_bits_total``.

        The energy follows linearly (the whole point of the SS 2.1
        conversion-counting argument), so one counter suffices -- the
        exporter side derives joules from the constant.
        """
        self._bits_counter = registry.counter(
            "repro_oeo_bits_total", "bits through O/E + E/O conversion pairs"
        )

    def convert(self, n_bits: float) -> float:
        """Record ``n_bits`` converted; returns the energy spent (J)."""
        if n_bits < 0:
            raise ValueError(f"bits must be >= 0, got {n_bits}")
        self._bits += n_bits
        if self._bits_counter is not None:
            self._bits_counter.inc(n_bits)
        return n_bits * self.energy_pj_per_bit * 1e-12

    @property
    def total_bits(self) -> float:
        return self._bits

    @property
    def total_energy_joules(self) -> float:
        return self._bits * self.energy_pj_per_bit * 1e-12


def oeo_power_watts(
    io_rate_bps: float,
    conversion_stages: int = 1,
    energy_pj_per_bit: float = OEO_ENERGY_PJ_PER_BIT,
) -> float:
    """Steady-state OEO power for a stream of ``io_rate_bps``.

    ``conversion_stages`` counts O/E/O pairs the data crosses: 1 for SPS,
    3 for a three-stage Clos (Challenge 3).  At 81.92 Tb/s of I/O and one
    stage this is the paper's ~94 W per HBM switch.
    """
    if io_rate_bps < 0:
        raise ValueError(f"rate must be >= 0, got {io_rate_bps}")
    if conversion_stages < 0:
        raise ValueError(f"stages must be >= 0, got {conversion_stages}")
    return io_rate_bps * energy_pj_per_bit * 1e-12 * conversion_stages
