"""Internal WDM waveguides.

Inside the package, each incoming fiber's wavelengths are coupled into a
WDM waveguide that propagates the still-optical signal to one HBM switch
(and symmetrically from switches to egress fibers).  A waveguide is a
pure conduit -- it has endpoints and a rate, and nothing else, because
the optical path does no processing (that is the architectural point).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Waveguide:
    """One internal waveguide: (ribbon, fiber) <-> (switch, lane).

    ``lane`` is the waveguide's position among the alpha waveguides that
    connect this ribbon to this switch.
    """

    ribbon: int
    fiber: int
    switch: int
    lane: int
    n_wavelengths: int
    rate_bps: float

    def __post_init__(self) -> None:
        for name in ("ribbon", "fiber", "switch", "lane"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.n_wavelengths <= 0:
            raise ValueError(f"n_wavelengths must be positive, got {self.n_wavelengths}")
        if self.rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {self.rate_bps}")

    @property
    def total_rate_bps(self) -> float:
        """Aggregate WDM rate carried by this waveguide."""
        return self.n_wavelengths * self.rate_bps
