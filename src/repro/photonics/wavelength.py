"""WDM wavelengths.

Each fiber carries ``W`` wavelength-division-multiplexing channels of
``R`` b/s each (W = 16, R = 40 Gb/s in the reference design).  The grid
helper lays channels on a DWDM-style spacing purely for reporting --
nothing downstream depends on the physical wavelength values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class WDMChannel:
    """One wavelength channel on a fiber."""

    index: int
    rate_bps: float
    wavelength_nm: float = 0.0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"channel index must be >= 0, got {self.index}")
        if self.rate_bps <= 0:
            raise ValueError(f"channel rate must be positive, got {self.rate_bps}")


#: C-band DWDM anchor and spacing used for the cosmetic grid.
_GRID_START_NM = 1530.0
_GRID_SPACING_NM = 0.8


def wavelength_grid_nm(n_channels: int) -> List[float]:
    """A C-band-style wavelength grid for ``n_channels`` channels."""
    if n_channels <= 0:
        raise ValueError(f"n_channels must be positive, got {n_channels}")
    return [_GRID_START_NM + i * _GRID_SPACING_NM for i in range(n_channels)]


def make_channels(n_channels: int, rate_bps: float) -> List[WDMChannel]:
    """Build ``n_channels`` channels at ``rate_bps`` on the grid."""
    grid = wavelength_grid_nm(n_channels)
    return [WDMChannel(i, rate_bps, grid[i]) for i in range(n_channels)]
