"""Fibers and fiber-ribbon arrays.

A :class:`FiberRibbon` is one of the N = 16 arrays on the package edge;
it carries F = 64 fibers, each with W input wavelengths and (for better
packaging) a separate set of W output wavelengths (SS 2.2, *Modules*).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .wavelength import WDMChannel, make_channels


@dataclass(frozen=True)
class Fiber:
    """One fiber: W ingress channels and W egress channels."""

    index: int
    ingress: List[WDMChannel] = field(default_factory=list)
    egress: List[WDMChannel] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"fiber index must be >= 0, got {self.index}")

    @property
    def ingress_rate_bps(self) -> float:
        """Aggregate ingress rate: W * R (640 Gb/s in the reference)."""
        return sum(channel.rate_bps for channel in self.ingress)

    @property
    def egress_rate_bps(self) -> float:
        return sum(channel.rate_bps for channel in self.egress)


class FiberRibbon:
    """One ribbon array of F fibers (both ingress and egress)."""

    def __init__(self, index: int, n_fibers: int, n_wavelengths: int, rate_bps: float):
        if index < 0:
            raise ValueError(f"ribbon index must be >= 0, got {index}")
        if n_fibers <= 0:
            raise ValueError(f"n_fibers must be positive, got {n_fibers}")
        self.index = index
        self.fibers: List[Fiber] = [
            Fiber(
                f,
                ingress=make_channels(n_wavelengths, rate_bps),
                egress=make_channels(n_wavelengths, rate_bps),
            )
            for f in range(n_fibers)
        ]

    @property
    def n_fibers(self) -> int:
        return len(self.fibers)

    @property
    def ingress_rate_bps(self) -> float:
        """F * W * R: one ribbon's ingress (40.96 Tb/s in the reference)."""
        return sum(fiber.ingress_rate_bps for fiber in self.fibers)

    @property
    def egress_rate_bps(self) -> float:
        return sum(fiber.egress_rate_bps for fiber in self.fibers)
