"""Flow-level (fluid) fast engine: rates instead of packets.

The packet engine simulates every packet through the SPS -> PFI -> HBM
pipeline on a discrete-event heap -- exact, but ~10^6 events/s.  This
package evolves *byte rates* instead: traffic matrices become
piecewise-constant rate arrays, the fiber splitter becomes a
deterministic H-way rate partition (same assignment math as
:mod:`repro.core.fiber_split`), the SPS/HBM stages become vectorized
capacity constraints, and faults/attacks modulate the rate arrays over
their windows.  Reports come back in the exact same
:class:`~repro.core.hbm_switch.SwitchReport` /
:class:`~repro.core.sps.RouterReport` /
:class:`~repro.faults.report.DegradationReport` shapes, so every
analysis, telemetry summary and golden-report tool downstream works
unchanged.

Select it with ``fidelity="flow"`` on a :class:`~repro.runtime.Scenario`
or ``--fidelity flow`` on the CLI.  The packet engine remains the
ground-truth oracle: ``tests/test_fidelity_parity.py`` cross-validates
delivered/loss fractions on the A/E scenarios, and
``docs/flow_engine.md`` documents the fluid approximations and the
validated tolerances.
"""

from .engine import (
    FlowRouterResult,
    RateComponent,
    buffer_limit_bytes,
    execute_fault_scenario_flow,
    flow_degradation,
    flow_router_report,
    flow_router_result,
    simulate_flow_router,
    simulate_flow_switch,
    uniform_rate_matrix,
)
from .attack import execute_attack_trial_flow

__all__ = [
    "FlowRouterResult",
    "RateComponent",
    "buffer_limit_bytes",
    "execute_attack_trial_flow",
    "execute_fault_scenario_flow",
    "flow_degradation",
    "flow_router_report",
    "flow_router_result",
    "simulate_flow_router",
    "simulate_flow_switch",
    "uniform_rate_matrix",
]
