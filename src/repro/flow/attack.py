"""Attack trials at flow fidelity.

:func:`execute_attack_trial_flow` mirrors
:func:`repro.adversary.campaign.execute_attack_trial` key for key: the
analytic half (fiber weights pushed through the split algebra) is
computed identically, and the simulated half replaces the packet
pipeline with :func:`repro.flow.engine.simulate_flow_router` fed rate
components derived from the strategy:

- the default strategies offer a uniform matrix at ``load`` whose fiber
  spread *is* the strategy's mixed weight vector -- at flow fidelity
  that becomes one always-on :class:`~repro.flow.engine.RateComponent`
  routed with those weights;
- :class:`~repro.adversary.strategies.BurstSynchronizedAttack` becomes a
  background component at ``load - attack_load`` plus an ON-window
  component whose rate reproduces the packet builder's quantisation
  (``per_window`` packets of ``packet_bytes`` over each ON window), so
  the fluid burst carries exactly the bytes the packet burst does.

Like the packet trial, the run uses ``drain=False``: a victim switch
with deep HBM does not drop, it falls behind, and the overload shows up
as undelivered ``sim_residual_bytes``.  The fluid model has no arrival
jitter, so ``traffic_seed`` does not influence the result (recorded in
the summary for shape parity); burst-phase collision effects inside a
window are below its resolution -- the documented place fidelity="flow"
is an approximation (see ``docs/flow_engine.md``).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..adversary.campaign import make_splitter
from ..adversary.strategies import AttackStrategy, BurstSynchronizedAttack
from ..config import RouterConfig
from ..core.fiber_split import (
    overload_loss_fraction,
    per_switch_loads,
    per_switch_port_loads,
    split_imbalance,
)
from ..telemetry import (
    MetricsRegistry,
    record_victim_series,
    tag_attack_window,
)
from ..traffic import uniform_matrix
from ..units import rate_to_bytes_per_ns
from .engine import RateComponent, simulate_flow_router


def _strategy_components(
    strategy: AttackStrategy,
    config: RouterConfig,
    load: float,
    duration_ns: float,
    packet_bytes: float = 1500.0,
) -> List[RateComponent]:
    """Rate components equivalent to ``strategy.build_workload``."""
    n = config.n_ribbons
    ribbon_rate = rate_to_bytes_per_ns(
        config.fibers_per_ribbon * config.per_fiber_rate_bps
    )
    if not isinstance(strategy, BurstSynchronizedAttack):
        # Every non-burst strategy shapes the *split*, not the offered
        # stream: uniform matrix at the full load.
        return [
            RateComponent(
                uniform_matrix(n, load) * ribbon_rate,
                ((0.0, duration_ns),),
            )
        ]
    components: List[RateComponent] = []
    attack_load = strategy.attack_fraction * load
    background_load = load - attack_load
    if background_load > 0:
        components.append(
            RateComponent(
                uniform_matrix(n, background_load) * ribbon_rate,
                ((0.0, duration_ns),),
            )
        )
    on_rate = min(1.0, attack_load / strategy.duty) * ribbon_rate
    if attack_load > 0 and on_rate > 0:
        # Reproduce the packet builder's quantisation: per ON window each
        # ribbon emits per_window packets of packet_bytes, spread
        # uniformly over the ribbon's outputs by the (r + w + k) % N
        # round-robin.
        gap_ns = packet_bytes / on_rate
        on_ns = strategy.duty * strategy.period_ns
        per_window = max(int(on_ns / gap_ns), 1)
        rate = per_window * packet_bytes / on_ns
        matrix = np.full((n, n), rate / n)
        windows: List[Tuple[float, float]] = []
        window = 0
        while window * strategy.period_ns < duration_ns:
            start = window * strategy.period_ns
            windows.append((start, min(start + on_ns, duration_ns)))
            window += 1
        components.append(RateComponent(matrix, tuple(windows)))
    return components


def execute_attack_trial_flow(trial) -> dict:
    """Flow-fidelity twin of ``execute_attack_trial`` (same summary keys)."""
    config = trial.config
    splitter = make_splitter(
        trial.splitter_kind,
        config.fibers_per_ribbon,
        config.n_switches,
        seed=trial.splitter_seed,
    )
    strategy = trial.strategy
    victim = strategy.victim_switch(splitter)

    # Analytic view -- identical to the packet trial.
    weights = strategy.fiber_weights(splitter, config.n_ribbons)
    fiber_loads = [trial.load * w for w in weights]
    switch_loads = per_switch_loads(splitter, fiber_loads)
    total = float(switch_loads.sum())
    uniform_share = total / config.n_switches
    worst = int(np.argmax(switch_loads))
    target = victim if victim is not None else worst
    victim_gain = float(switch_loads[target] / uniform_share)
    port_loads = per_switch_port_loads(splitter, fiber_loads)
    overload = overload_loss_fraction(port_loads, 1.0 / config.n_switches)

    registry = MetricsRegistry() if getattr(trial, "telemetry", False) else None
    if registry is not None:
        tag_attack_window(
            registry,
            strategy=strategy.name,
            splitter=trial.splitter_kind,
            victim=victim,
            start_ns=0.0,
            end_ns=trial.duration_ns,
        )

    # Simulated view -- the fluid tandem on the strategy's rate stream.
    components = _strategy_components(
        strategy, config, trial.load, trial.duration_ns
    )
    control = getattr(trial, "control", None)
    attack_windows = None
    if control is not None:
        from ..control.packet import attack_windows_for

        attack_windows = attack_windows_for(strategy, trial.duration_ns)
    result = simulate_flow_router(
        config,
        components,
        duration_ns=trial.duration_ns,
        drain=False,
        weights=np.stack(weights),
        splitter=splitter,
        schedule=trial.fault_schedule,
        telemetry=registry,
        control=control,
        attack_windows=attack_windows,
    )
    report = result.report
    offered = report.per_switch_offered_bytes
    sim_total = float(sum(offered))
    sim_target = target if victim is not None else (
        int(np.argmax(offered)) if sim_total > 0 else target
    )
    sim_victim_gain = (
        float(offered[sim_target] * config.n_switches / sim_total)
        if sim_total > 0
        else 1.0
    )
    if registry is not None:
        record_victim_series(registry, offered, victim)

    summary = {
        "trial": trial.index,
        "splitter": trial.splitter_kind,
        "splitter_seed": trial.splitter_seed,
        "traffic_seed": trial.traffic_seed,
        "strategy": strategy.describe(),
        "victim_switch": target,
        "victim_gain": victim_gain,
        "split_imbalance": float(split_imbalance(switch_loads)),
        "overload_loss_fraction": overload,
        "sim_victim_switch": sim_target,
        "sim_victim_gain": sim_victim_gain,
        "sim_offered_bytes": int(report.offered_bytes),
        "sim_delivered_fraction": report.delivered_fraction,
        "sim_loss_fraction": report.loss_fraction,
        "sim_residual_bytes": int(report.residual_bytes),
        "fault_events": list(report.fault_events),
        "telemetry": registry.to_dict() if registry is not None else None,
    }
    if result.control is not None:
        summary["control"] = result.control
    return summary
