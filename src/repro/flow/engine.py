"""The vectorized fluid core: piecewise-constant rates over segments.

Model
-----

Time is cut into *segments* at every instant where some rate can change:
traffic-component window edges, fault-event window edges, and the
degradation-report interval edges.  Within a segment every rate is
constant, so the fluid queue update

    ``served = min(backlog + arrival_rate * dt, service_rate * dt)``

is the exact solution of the fluid ODE on that segment -- no
discretisation error accumulates from step size, and the whole engine
is a deterministic function of its inputs (no RNG anywhere, so
``fidelity="flow"`` cells are reproducible byte for byte).

Each HBM switch is a two-stage tandem of fluid queues, mirroring the
packet pipeline's two real bottlenecks:

- **stage 1 (input SRAM + crossbar)**: per-(input, output) byte matrix
  ``Q1``; each input port drains at the port rate P (one batch per
  batch-time over the cyclical crossbar).  Rows are capped at the input
  SRAM capacity (same default as
  :class:`~repro.core.input_port.InputPort`); the excess is dropped as
  ``input-sram-overflow`` -- how overload surfaces in the packet engine
  too.
- **stage 2 (HBM + egress)**: per-output byte vector ``q2`` drained at
  ``P * min(oeo_factor, speedup * channel_fraction, 1)`` -- OEO
  degradations cap the egress line, HBM channel losses stretch PFI
  phases by T/(T-lost), and neither can push the output past its line
  rate.  Occupancy is capped at the switch's HBM share per output.

The fiber split is the deterministic H-way rate partition: ribbon r's
offered rate is weighted over its F fibers (uniform by default, or an
attack strategy's mixed weights) and each switch h receives the summed
weight of the fibers assigned to it -- literally
``assignment_array`` from :mod:`repro.core.fiber_split` applied to
rates instead of packets.  Fault semantics mirror the packet engine:
whole-run-dead switches lose their traffic at the split
(``failed_offered_bytes``, no :class:`SwitchReport`), windowed switch
deaths gate *arrivals only* (``switch-dead`` drops; the pipeline keeps
draining), and active fiber cuts divert their weight share into
``fault_lost_bytes``.

Latency at flow fidelity is approximate by construction: the mean is a
pipeline base (two batch times + two frame-write times) plus the
Little's-law queueing delay ``integral(Q) dt / delivered_bytes``;
p50/p99/max all report that mean.  Delivered/loss *fractions* are the
validated quantities (see ``docs/flow_engine.md``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import HBMSwitchConfig, RouterConfig
from ..core.fiber_split import FiberSplitter, PseudoRandomSplitter
from ..core.hbm_switch import SwitchReport
from ..core.pfi import PFICounters
from ..core.sps import RouterReport
from ..errors import ConfigError
from ..faults.report import DegradationReport, IntervalSample
from ..traffic import uniform_matrix
from ..units import bytes_per_ns_to_rate, rate_to_bytes_per_ns

#: Residual backlog (bytes) below which a drain counts as empty -- less
#: than any packet, so the int rounding in the reports absorbs it.
_DRAIN_EPS = 0.5

#: Latency-breakdown stages of the packet engine's SwitchReport; the
#: fluid model does not resolve them, so each reports 0.0.
_BREAKDOWN_STAGES = ("batch_fill", "frame_fill", "hbm_wait", "egress")

#: Flow-fidelity metric names.  Counters are per-switch byte totals;
#: the window series are the fluid engine's time-resolved view (its
#: piecewise-constant segments land in fixed-width windows).
FLOW_BYTES = "repro_flow_bytes_total"
FLOW_LOST = "repro_flow_lost_bytes_total"
FLOW_WINDOW_BYTES = "repro_flow_window_bytes"
FLOW_WINDOW_QUEUE = "repro_flow_window_queue_bytes"
FLOW_WINDOW_DROPPED = "repro_flow_window_dropped_bytes"


@dataclass(frozen=True)
class RateComponent:
    """One traffic component: an (n, n) rate matrix active in windows.

    ``matrix[i, j]`` is the offered byte rate (bytes/ns) from input i to
    output j while any of the half-open ``windows`` is active.
    Components add; a plain always-on workload is one component with a
    single ``(0, duration)`` window.
    """

    matrix: np.ndarray
    windows: Tuple[Tuple[float, float], ...]

    def active_at(self, t_ns: float) -> bool:
        return any(start <= t_ns < end for start, end in self.windows)


def uniform_rate_matrix(n_ports: int, load: float, port_rate_bps: float) -> np.ndarray:
    """The fluid twin of ``uniform_matrix``: every entry in bytes/ns."""
    return uniform_matrix(n_ports, load) * rate_to_bytes_per_ns(port_rate_bps)


# --------------------------------------------------------------------------
# Segment edges
# --------------------------------------------------------------------------


def _component_edges(components: Sequence[RateComponent]) -> List[float]:
    edges: List[float] = []
    for component in components:
        for start, end in component.windows:
            edges.append(start)
            if math.isfinite(end):
                edges.append(end)
    return edges


def _schedule_edges(schedule) -> List[float]:
    edges: List[float] = []
    if schedule is None:
        return edges
    for event in schedule:
        edges.append(event.start_ns)
        if math.isfinite(event.end_ns):
            edges.append(event.end_ns)
    return edges


def _segments(duration_ns: float, extra_edges: Sequence[float]) -> np.ndarray:
    """Sorted unique edges over ``[0, duration_ns]`` (both ends included)."""
    edges = [0.0, duration_ns]
    edges.extend(e for e in extra_edges if 0.0 < e < duration_ns)
    return np.unique(np.asarray(edges, dtype=np.float64))


# --------------------------------------------------------------------------
# The two-stage fluid tandem (stacked across switches)
# --------------------------------------------------------------------------


class _FluidTandem:
    """L independent two-stage tandems with (N, N) stage-1 state each."""

    def __init__(
        self,
        n_tandems: int,
        n_ports: int,
        port_rate: float,
        input_capacity: float,
        output_capacity: float,
    ) -> None:
        self.n_tandems = n_tandems
        self.n_ports = n_ports
        self.port_rate = port_rate
        self.input_capacity = input_capacity
        self.output_capacity = output_capacity
        self.q1 = np.zeros((n_tandems, n_ports, n_ports))
        self.q2 = np.zeros((n_tandems, n_ports))
        self.delivered = np.zeros(n_tandems)
        self.dropped_sram = np.zeros(n_tandems)
        self.dropped_hbm = np.zeros(n_tandems)
        self.queue_integral = np.zeros(n_tandems)
        self.peak_q1 = np.zeros(n_tandems)
        self.peak_q2 = np.zeros(n_tandems)
        #: Per-tandem deliveries and backlog of the most recent step --
        #: the flow engine's per-segment telemetry reads these instead
        #: of re-deriving them from cumulative counters.
        self.last_delivered = np.zeros(n_tandems)
        self.last_backlog = np.zeros(n_tandems)

    def backlog(self) -> np.ndarray:
        return self.q1.sum(axis=(1, 2)) + self.q2.sum(axis=1)

    def step(self, dt: float, arrivals: np.ndarray, service: np.ndarray) -> float:
        """Advance every tandem by ``dt``.

        ``arrivals`` is the (L, N, N) byte-rate tensor already gated for
        dead windows; ``service`` the (L,) per-output egress rate.
        Returns the total bytes delivered this segment.
        """
        pre = self.backlog()
        avail = self.q1 + arrivals * dt
        row_total = avail.sum(axis=2)
        served1 = np.minimum(row_total, self.port_rate * dt)
        safe_rows = np.where(row_total > 0.0, row_total, 1.0)
        frac = np.where(row_total > 0.0, served1 / safe_rows, 0.0)
        moved = avail * frac[:, :, None]
        q1 = avail - moved
        # Input-SRAM tail drop: a row (one input port) over capacity
        # sheds its excess proportionally over its per-output queues.
        occupancy = q1.sum(axis=2)
        excess = np.maximum(occupancy - self.input_capacity, 0.0)
        safe_occ = np.where(occupancy > 0.0, occupancy, 1.0)
        keep = np.where(occupancy > 0.0, 1.0 - excess / safe_occ, 1.0)
        self.dropped_sram += excess.sum(axis=1)
        self.q1 = q1 * keep[:, :, None]
        inflow = moved.sum(axis=1)
        avail2 = self.q2 + inflow
        served2 = np.minimum(avail2, service[:, None] * dt)
        q2 = avail2 - served2
        over = np.maximum(q2 - self.output_capacity, 0.0)
        self.dropped_hbm += over.sum(axis=1)
        self.q2 = q2 - over
        segment_delivered = served2.sum(axis=1)
        self.delivered += segment_delivered
        self.last_delivered = segment_delivered
        post = self.backlog()
        self.last_backlog = post
        self.queue_integral += 0.5 * (pre + post) * dt
        self.peak_q1 = np.maximum(self.peak_q1, occupancy.max(axis=1, initial=0.0))
        self.peak_q2 = np.maximum(self.peak_q2, self.q2.sum(axis=1))
        return float(segment_delivered.sum())


def _drain(
    tandem: _FluidTandem,
    start_ns: float,
    service_at,
    future_edges: Sequence[float],
    min_step: float,
    on_delivered=None,
) -> None:
    """Analytically drain every tandem after arrivals stop.

    Between fault edges service rates are constant, so stage 1 empties
    in at most ``max_row / P`` and stage 2 in ``max_backlog / s``; the
    loop takes those strides, pausing at each edge where a fault window
    opens or closes.  A tandem whose service rate is zero with no future
    edge left keeps its backlog as residual (mirroring the packet
    engine, where a switch with no surviving HBM channels cannot drain).
    """
    t = start_ns
    edges = sorted(e for e in future_edges if e > start_ns and math.isfinite(e))
    guard = 0
    limit = 8 * (len(edges) + 2) + 64
    while guard < limit:
        guard += 1
        backlog = tandem.backlog()
        if backlog.sum() <= _DRAIN_EPS:
            break
        service = service_at(t + 1e-9)
        stuck = (service <= 0.0) & (backlog > _DRAIN_EPS)
        next_edge = next((e for e in edges if e > t), None)
        if stuck.any() and next_edge is None and not ((service > 0.0) & (backlog > _DRAIN_EPS)).any():
            break  # permanently starved: leave the residual
        strides = [min_step]
        rows = tandem.q1.sum(axis=2)
        if rows.size:
            strides.append(rows.max() / tandem.port_rate)
        active = service > 0.0
        if active.any():
            totals = tandem.q2.sum(axis=1) + tandem.q1.sum(axis=(1, 2))
            strides.append((totals[active] / service[active]).max())
        dt = max(strides)
        if next_edge is not None:
            dt = min(dt, next_edge - t)
        if dt <= 0.0:
            dt = min_step
        delivered = tandem.step(dt, np.zeros_like(tandem.q1), service)
        if on_delivered is not None:
            on_delivered(delivered, t + 0.5 * dt)
        t += dt


# --------------------------------------------------------------------------
# Report assembly
# --------------------------------------------------------------------------


def _rounded_conserved(
    offered: float, delivered: float, drops: Dict[str, float]
) -> Tuple[int, int, Dict[str, int], int]:
    """Round totals to ints while keeping offered = delivered + dropped
    + residual exact (the invariant the packet engine's audit checks)."""
    offered_i = int(round(offered))
    drops_i = {k: int(round(v)) for k, v in drops.items() if round(v) > 0}
    dropped_i = sum(drops_i.values())
    delivered_i = min(int(round(delivered)), offered_i - dropped_i)
    residual_i = offered_i - delivered_i - dropped_i
    if residual_i < 0:  # pragma: no cover - clamped above
        delivered_i += residual_i
        residual_i = 0
    return offered_i, delivered_i, drops_i, residual_i


def _latency_summary(count: float, mean_ns: float) -> Dict[str, float]:
    if count <= 0:
        nan = float("nan")
        return {"count": 0.0, "mean_ns": nan, "p50_ns": nan, "p99_ns": nan, "max_ns": nan}
    return {
        "count": float(count),
        "mean_ns": mean_ns,
        "p50_ns": mean_ns,
        "p99_ns": mean_ns,
        "max_ns": mean_ns,
    }


def _switch_report(
    config: HBMSwitchConfig,
    duration_ns: float,
    offered: float,
    delivered: float,
    drops: Dict[str, float],
    queue_integral: float,
    peak_q1: float,
    peak_q2: float,
    mean_packet_bytes: float,
) -> SwitchReport:
    offered_i, delivered_i, drops_i, residual_i = _rounded_conserved(
        offered, delivered, drops
    )
    frame_bytes = config.frame_bytes
    frames = delivered_i // frame_bytes if frame_bytes > 0 else 0
    delivered_packets = int(round(delivered_i / mean_packet_bytes))
    base_ns = 2.0 * config.batch_time_ns + 2.0 * config.frame_write_time_ns
    queue_delay_ns = queue_integral / delivered if delivered > 0 else 0.0
    return SwitchReport(
        duration_ns=duration_ns,
        offered_bytes=offered_i,
        offered_packets=int(round(offered_i / mean_packet_bytes)),
        delivered_bytes=delivered_i,
        delivered_packets=delivered_packets,
        dropped_bytes=sum(drops_i.values()),
        residual_bytes=residual_i,
        throughput_bps=bytes_per_ns_to_rate(delivered_i / duration_ns)
        if duration_ns > 0
        else 0.0,
        capacity_bps=config.aggregate_port_rate_bps,
        latency=_latency_summary(delivered_packets, base_ns + queue_delay_ns),
        latency_breakdown={stage: 0.0 for stage in _BREAKDOWN_STAGES},
        ordering_violations=0,
        pfi=PFICounters(
            frames_written=frames,
            frames_read=frames,
            payload_written_bytes=delivered_i,
        ),
        input_sram_peak_bytes=int(round(peak_q1)),
        tail_sram_peak_bytes=0,
        head_sram_peak_bytes=0,
        hbm_peak_frames=int(math.ceil(peak_q2 / frame_bytes)) if frame_bytes > 0 else 0,
        drops_by_reason={
            reason: int(round(drops[reason] / mean_packet_bytes))
            for reason in sorted(drops_i)
            if int(round(drops[reason] / mean_packet_bytes)) > 0
        },
    )


# --------------------------------------------------------------------------
# Single-switch simulation (Scenario kind="switch")
# --------------------------------------------------------------------------


def simulate_flow_switch(
    config: HBMSwitchConfig,
    load: float = 0.8,
    duration_ns: float = 50_000.0,
    drain: bool = True,
    mean_packet_bytes: float = 1500.0,
    components: Optional[Sequence[RateComponent]] = None,
    telemetry=None,
) -> SwitchReport:
    """Fluid twin of one :class:`~repro.core.hbm_switch.HBMSwitch` run.

    The default workload is the uniform admissible matrix at ``load``
    (what :func:`repro.runtime.execute_scenario` feeds the packet
    engine); pass ``components`` for a custom rate pattern.  The
    arrival process does not appear: Poisson, deterministic and ON/OFF
    streams all share the same mean rates, which is exactly the fluid
    limit -- burstiness effects are what the packet oracle is for.
    """
    if duration_ns <= 0:
        raise ConfigError(f"duration must be positive, got {duration_ns}")
    n = config.n_ports
    port_rate = rate_to_bytes_per_ns(config.port_rate_bps)
    if components is None:
        components = [
            RateComponent(
                uniform_rate_matrix(n, load, config.port_rate_bps),
                ((0.0, duration_ns),),
            )
        ]
    service = np.array([port_rate * min(1.0, config.speedup)])
    tandem = _FluidTandem(
        n_tandems=1,
        n_ports=n,
        port_rate=port_rate,
        input_capacity=64.0 * n * config.batch_bytes,
        output_capacity=config.memory_capacity_bytes / n,
    )
    win_offered = win_delivered = win_queue = None
    if telemetry is not None:
        win_offered = telemetry.timeseries(
            FLOW_WINDOW_BYTES, "flow bytes per window by crossing point",
            point="offered", switch="0",
        )
        win_delivered = telemetry.timeseries(
            FLOW_WINDOW_BYTES, "flow bytes per window by crossing point",
            point="delivered", switch="0",
        )
        win_queue = telemetry.timeseries(
            FLOW_WINDOW_QUEUE, "fluid backlog high-water per window",
            agg="max", switch="0",
        )
    offered = 0.0
    edges = _segments(duration_ns, _component_edges(components))
    for t0, t1 in zip(edges[:-1], edges[1:]):
        dt = float(t1 - t0)
        if dt <= 0:
            continue
        tm = 0.5 * (t0 + t1)
        matrix = sum(
            (c.matrix for c in components if c.active_at(tm)),
            np.zeros((n, n)),
        )
        offered += matrix.sum() * dt
        tandem.step(dt, matrix[None, :, :], service)
        if telemetry is not None:
            win_offered.observe(tm, float(matrix.sum()) * dt)
            win_delivered.observe(tm, float(tandem.last_delivered[0]))
            win_queue.observe(tm, float(tandem.last_backlog[0]))
    if drain:
        def drain_hook(delivered_bytes: float, t_mid: float) -> None:
            if telemetry is not None and delivered_bytes > 0.0:
                win_delivered.observe(t_mid, delivered_bytes)

        _drain(
            tandem,
            duration_ns,
            lambda t: service,
            (),
            max(config.batch_time_ns, 1.0),
            on_delivered=drain_hook,
        )
    if telemetry is not None:
        telemetry.counter(
            FLOW_BYTES, "flow bytes by crossing point",
            point="offered", switch="0",
        ).inc(int(round(offered)))
        telemetry.counter(
            FLOW_BYTES, "flow bytes by crossing point",
            point="delivered", switch="0",
        ).inc(int(round(float(tandem.delivered[0]))))
        losses = {
            "input-sram-overflow": float(tandem.dropped_sram[0]),
            "hbm-full": float(tandem.dropped_hbm[0]),
        }
        for reason in sorted(losses):
            n_bytes = int(round(losses[reason]))
            if n_bytes > 0:
                telemetry.counter(
                    FLOW_LOST, "flow dropped bytes by reason",
                    reason=reason, switch="0",
                ).inc(n_bytes)
    return _switch_report(
        config,
        duration_ns,
        offered,
        float(tandem.delivered[0]),
        {
            "input-sram-overflow": float(tandem.dropped_sram[0]),
            "hbm-full": float(tandem.dropped_hbm[0]),
        },
        float(tandem.queue_integral[0]),
        float(tandem.peak_q1[0]),
        float(tandem.peak_q2[0]),
        mean_packet_bytes,
    )


# --------------------------------------------------------------------------
# Router simulation (Scenario kinds "router" / "degradation" / "fault_cell")
# --------------------------------------------------------------------------


@dataclass
class FlowRouterResult:
    """A flow-level router run: the report plus optional interval bins.

    Closed-loop runs additionally carry the control loop's compact
    summary (``control``) and its full action log (``control_actions``,
    a :class:`~repro.control.actions.ActionLog`) -- both ``None`` for
    open-loop runs.
    """

    report: RouterReport
    intervals: List[IntervalSample] = field(default_factory=list)
    control: Optional[dict] = None
    control_actions: Optional[object] = None


def buffer_limit_bytes(switch_config: HBMSwitchConfig) -> float:
    """The per-switch buffer ceiling the admission controller guards:
    total input-SRAM capacity (the fluid tandem's per-row cap times the
    N rows) plus the switch's HBM share -- the same limits the tandem
    enforces."""
    n = switch_config.n_ports
    return 64.0 * n * n * switch_config.batch_bytes + float(
        switch_config.memory_capacity_bytes
    )


def simulate_flow_router(
    config: RouterConfig,
    components: Sequence[RateComponent],
    duration_ns: float,
    drain: bool = True,
    weights: Optional[np.ndarray] = None,
    splitter: Optional[FiberSplitter] = None,
    schedule=None,
    n_intervals: Optional[int] = None,
    mean_packet_bytes: float = 1500.0,
    telemetry=None,
    control=None,
    attack_windows: Optional[Sequence[Tuple[float, float]]] = None,
) -> FlowRouterResult:
    """Fluid twin of :meth:`~repro.core.sps.SplitParallelSwitch.run`.

    ``components`` carry (n_ribbons, n_ribbons) matrices in bytes/ns.
    ``weights`` is the (n_ribbons, n_fibers) per-ribbon fiber weight
    array -- uniform 1/F by default (the fluid limit of both ECMP
    hashing and round-robin assignment); attack strategies supply their
    mixed weights.  ``splitter`` maps fibers to switches exactly as the
    packet engine's default (a seeded
    :class:`~repro.core.fiber_split.PseudoRandomSplitter`).

    With ``n_intervals`` the run also bins offered/delivered bytes per
    interval (delivered during the drain tail lands in the last
    interval, as in :func:`repro.faults.report.bin_packets`).

    ``telemetry`` (a :class:`~repro.telemetry.MetricsRegistry`) closes
    the flow-fidelity observability gap: per-switch offered/delivered
    counters and per-reason loss counters, fault-loss attribution in the
    packet engine's shapes, and per-segment window series
    (:data:`FLOW_WINDOW_BYTES` / :data:`FLOW_WINDOW_QUEUE` /
    :data:`FLOW_WINDOW_DROPPED`).  The engine has no RNG and runs in one
    process, so instrumented dumps are byte-reproducible.

    ``control`` (a :class:`~repro.control.ControlConfig`) closes the
    loop: segment edges gain window-boundary ticks every ``tick_ns``,
    each tick folds the previous window's per-switch offered /
    delivered / backlog into the controllers, and the resulting
    actuators apply to the following segments -- the split weights are
    scaled per switch (and renormalised) by the reweight controller,
    and admission throttling removes ``1 - admit`` of each switch's
    post-split arrivals as explicit ``backpressure-throttled`` drops
    (offered bytes are *not* reduced: a throttled byte is an accounted
    loss, never a vanished offer).  ``attack_windows`` gates the
    mitigation controller, mirroring ``repro_attack_active_window``.
    """
    if duration_ns <= 0:
        raise ConfigError(f"duration must be positive, got {duration_ns}")
    n_ribbons = config.n_ribbons
    n_fibers = config.fibers_per_ribbon
    n_switches = config.n_switches
    n_ports = config.switch.n_ports
    if n_ports != n_ribbons:
        raise ConfigError(
            f"switch has {n_ports} ports but the router has {n_ribbons} "
            f"ribbons; the flow engine needs them equal (as the packet "
            f"engine implicitly does)"
        )
    if splitter is None:
        splitter = PseudoRandomSplitter(n_fibers, n_switches)
    if weights is None:
        weights = np.full((n_ribbons, n_fibers), 1.0 / n_fibers)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (n_ribbons, n_fibers):
        raise ConfigError(
            f"weights shape {weights.shape} does not match "
            f"({n_ribbons}, {n_fibers})"
        )
    row_sums = weights.sum(axis=1, keepdims=True)
    weights = np.where(row_sums > 0, weights / np.where(row_sums > 0, row_sums, 1.0), 1.0 / n_fibers)
    if schedule is not None:
        schedule.validate(config)
        if schedule.is_empty:
            schedule = None

    assignment = np.stack(
        [splitter.assignment_array(r) for r in range(n_ribbons)]
    )
    assignment_flat = assignment.ravel()
    ribbon_index_flat = np.repeat(np.arange(n_ribbons), n_fibers)

    dead = set(schedule.whole_run_dead_switches()) if schedule is not None else set()
    live = [h for h in range(n_switches) if h not in dead]
    views = {
        h: schedule.switch_view(h, config.switch.total_channels)
        if schedule is not None
        else None
        for h in live
    }
    cuts = list(schedule.fiber_cuts) if schedule is not None else []

    port_rate = rate_to_bytes_per_ns(config.switch.port_rate_bps)
    speedup = config.switch.speedup
    tandem = _FluidTandem(
        n_tandems=len(live),
        n_ports=n_ports,
        port_rate=port_rate,
        input_capacity=64.0 * n_ports * config.switch.batch_bytes,
        output_capacity=config.switch.memory_capacity_bytes / n_ports,
    )

    def service_at(t_ns: float) -> np.ndarray:
        rates = np.empty(len(live))
        for idx, h in enumerate(live):
            view = views[h]
            if view is None:
                factor = min(1.0, speedup)
            else:
                factor = min(
                    view.oeo_rate_factor(t_ns),
                    speedup * view.channel_fraction(t_ns),
                    1.0,
                )
            rates[idx] = port_rate * max(factor, 0.0)
        return rates

    def shares_at(t_ns: float, base: np.ndarray) -> Tuple[np.ndarray, float]:
        """(n_switches, n_ribbons) weight shares + the cut weight rate
        multiplier per ribbon folded into a scalar-ready vector."""
        if cuts:
            effective = base.copy()
            cut_weight = np.zeros(n_ribbons)
            for cut in cuts:
                if cut.active_at(t_ns):
                    cut_weight[cut.ribbon] += effective[cut.ribbon, cut.fiber]
                    effective[cut.ribbon, cut.fiber] = 0.0
        else:
            effective = base
            cut_weight = None
        shares = np.zeros((n_switches, n_ribbons))
        np.add.at(
            shares, (assignment_flat, ribbon_index_flat), effective.ravel()
        )
        return shares, cut_weight

    loop = None
    if control is not None:
        from ..control.loop import ControlLoop

        loop = ControlLoop(
            control,
            n_switches,
            buffer_limit_bytes(config.switch),
            telemetry=telemetry,
        )

    static_shares = None
    if not cuts and loop is None:
        static_shares, _ = shares_at(0.0, weights)

    per_switch_offered = np.zeros(n_switches)
    live_offered = np.zeros(len(live))
    dropped_dead = np.zeros(len(live))
    dropped_throttled = np.zeros(len(live))
    failed_offered = 0.0
    fault_lost = 0.0

    width = duration_ns / n_intervals if n_intervals else None
    offered_bins = np.zeros(n_intervals) if n_intervals else None
    delivered_bins = np.zeros(n_intervals) if n_intervals else None

    extra_edges = _component_edges(components) + _schedule_edges(schedule)
    if width:
        extra_edges.extend(width * i for i in range(1, n_intervals))
    if loop is not None:
        tick_ns = control.tick_ns
        n_ticks = int(math.ceil(duration_ns / tick_ns - 1e-9))
        extra_edges.extend(tick_ns * i for i in range(1, n_ticks))
        next_tick = tick_ns
        tick_offered = np.zeros(n_switches)
        tick_delivered = np.zeros(n_switches)
        attack_spans = tuple(attack_windows) if attack_windows else ()

        def attack_active_in(start: float, end: float) -> bool:
            return any(s < end and e > start for s, e in attack_spans)

    edges = _segments(duration_ns, extra_edges)

    win_offered = win_delivered = win_queue = win_dropped = None
    if telemetry is not None:
        if schedule is not None:
            from ..telemetry import tag_fault_windows

            tag_fault_windows(telemetry, schedule)
        win_offered = [
            telemetry.timeseries(
                FLOW_WINDOW_BYTES, "flow bytes per window by crossing point",
                point="offered", switch=str(h),
            )
            for h in live
        ]
        win_delivered = [
            telemetry.timeseries(
                FLOW_WINDOW_BYTES, "flow bytes per window by crossing point",
                point="delivered", switch=str(h),
            )
            for h in live
        ]
        win_queue = [
            telemetry.timeseries(
                FLOW_WINDOW_QUEUE, "fluid backlog high-water per window",
                agg="max", switch=str(h),
            )
            for h in live
        ]
        win_dropped = [
            telemetry.timeseries(
                FLOW_WINDOW_DROPPED, "flow dropped bytes per window", switch=str(h)
            )
            for h in live
        ]

    live_array = np.asarray(live, dtype=np.int64)
    for t0, t1 in zip(edges[:-1], edges[1:]):
        dt = float(t1 - t0)
        if dt <= 0:
            continue
        tm = 0.5 * (t0 + t1)
        matrix = sum(
            (c.matrix for c in components if c.active_at(tm)),
            np.zeros((n_ribbons, n_ribbons)),
        )
        row_rates = matrix.sum(axis=1)
        if loop is None:
            base_weights = weights
        else:
            # Reweight actuation: scale each fiber's weight by its
            # switch's multiplier, renormalised per ribbon (rows stay
            # positive -- the controller floor is > 0).
            base_weights = weights * loop.weight[assignment]
            base_sums = base_weights.sum(axis=1, keepdims=True)
            base_weights = base_weights / np.where(base_sums > 0, base_sums, 1.0)
        if cuts:
            shares, cut_weight = shares_at(tm, base_weights)
            fault_lost += float((row_rates * cut_weight).sum()) * dt
        elif static_shares is not None:
            shares = static_shares
        else:
            shares, _ = shares_at(tm, base_weights)
        arrivals_all = shares[:, :, None] * matrix[None, :, :]
        offered_now = arrivals_all.sum(axis=(1, 2))
        per_switch_offered += offered_now * dt
        if dead:
            failed_offered += float(offered_now[sorted(dead)].sum()) * dt
        arrivals = arrivals_all[live_array]
        seg_offered = arrivals.sum(axis=(1, 2)) * dt
        live_offered += seg_offered
        if telemetry is not None:
            drops_before = tandem.dropped_sram + tandem.dropped_hbm
            dead_before = dropped_dead.copy()
            throttled_before = dropped_throttled.copy()
        if loop is not None:
            # Admission/mitigation actuation: throttle at ingress,
            # before loss-of-light gating -- throttled bytes are an
            # explicit drop, never a reduced offer.
            admit_live = loop.admit[live_array]
            dropped_throttled += seg_offered * (1.0 - admit_live)
            arrivals = arrivals * admit_live[:, None, None]
        if schedule is not None:
            for idx, h in enumerate(live):
                view = views[h]
                if view is not None and view.dead_at(tm):
                    dropped_dead[idx] += arrivals[idx].sum() * dt
                    arrivals[idx] = 0.0
        segment_delivered = tandem.step(dt, arrivals, service_at(tm))
        if telemetry is not None:
            seg_dropped = (
                tandem.dropped_sram + tandem.dropped_hbm - drops_before
                + dropped_dead - dead_before
                + dropped_throttled - throttled_before
            )
            for idx in range(len(live)):
                win_offered[idx].observe(tm, float(seg_offered[idx]))
                win_delivered[idx].observe(tm, float(tandem.last_delivered[idx]))
                win_queue[idx].observe(tm, float(tandem.last_backlog[idx]))
                if seg_dropped[idx] > 0.0:
                    win_dropped[idx].observe(tm, float(seg_dropped[idx]))
        if width:
            bin_index = min(int(tm / width), n_intervals - 1)
            offered_bins[bin_index] += matrix.sum() * dt
            delivered_bins[bin_index] += segment_delivered
        if loop is not None:
            tick_offered[live_array] += seg_offered
            if dead:
                tick_offered[sorted(dead)] += offered_now[sorted(dead)] * dt
            tick_delivered[live_array] += tandem.last_delivered
            while next_tick < duration_ns - 1e-9 and t1 >= next_tick - 1e-9:
                backlog_full = np.zeros(n_switches)
                backlog_full[live_array] = tandem.last_backlog
                loop.tick(
                    next_tick,
                    tick_offered,
                    tick_delivered,
                    backlog_full,
                    attack_active=attack_active_in(
                        next_tick - tick_ns, next_tick
                    ),
                )
                tick_offered = np.zeros(n_switches)
                tick_delivered = np.zeros(n_switches)
                next_tick += tick_ns

    if drain:
        def drain_hook(delivered_bytes: float, t_mid: float) -> None:
            if width:
                delivered_bins[-1] += delivered_bytes
            if telemetry is not None:
                for idx in range(len(live)):
                    if tandem.last_delivered[idx] > 0.0:
                        win_delivered[idx].observe(
                            t_mid, float(tandem.last_delivered[idx])
                        )
                    win_queue[idx].observe(t_mid, float(tandem.last_backlog[idx]))

        _drain(
            tandem,
            duration_ns,
            service_at,
            _schedule_edges(schedule),
            max(config.switch.batch_time_ns, 1.0),
            on_delivered=drain_hook,
        )

    if loop is not None:
        loop.throttled_bytes = float(dropped_throttled.sum())
        loop.finish(duration_ns)

    reports = [
        _switch_report(
            config.switch,
            duration_ns,
            float(live_offered[idx]),
            float(tandem.delivered[idx]),
            {
                "switch-dead": float(dropped_dead[idx]),
                "backpressure-throttled": float(dropped_throttled[idx]),
                "input-sram-overflow": float(tandem.dropped_sram[idx]),
                "hbm-full": float(tandem.dropped_hbm[idx]),
            },
            float(tandem.queue_integral[idx]),
            float(tandem.peak_q1[idx]),
            float(tandem.peak_q2[idx]),
            mean_packet_bytes,
        )
        for idx in range(len(live))
    ]
    if telemetry is not None:
        from ..telemetry import record_fault_loss

        for idx, h in enumerate(live):
            label = str(h)
            telemetry.counter(
                FLOW_BYTES, "flow bytes by crossing point",
                point="offered", switch=label,
            ).inc(reports[idx].offered_bytes)
            telemetry.counter(
                FLOW_BYTES, "flow bytes by crossing point",
                point="delivered", switch=label,
            ).inc(reports[idx].delivered_bytes)
            losses = {
                "switch-dead": dropped_dead[idx],
                "backpressure-throttled": dropped_throttled[idx],
                "input-sram-overflow": tandem.dropped_sram[idx],
                "hbm-full": tandem.dropped_hbm[idx],
            }
            for reason in sorted(losses):
                n_bytes = int(round(losses[reason]))
                if n_bytes > 0:
                    telemetry.counter(
                        FLOW_LOST, "flow dropped bytes by reason",
                        reason=reason, switch=label,
                    ).inc(n_bytes)
        for h in sorted(dead):
            n_bytes = int(round(per_switch_offered[h]))
            if n_bytes > 0:
                record_fault_loss(telemetry, "switch", str(h), n_bytes)
        if fault_lost > 0:
            # The fluid split has no per-fiber byte attribution (cut
            # weight folds into one scalar per segment); record the
            # aggregate under the packet engine's counter name.
            record_fault_loss(
                telemetry, "fiber", "aggregate", int(round(fault_lost))
            )
    report = RouterReport(
        switch_reports=reports,
        per_switch_offered_bytes=[int(round(v)) for v in per_switch_offered],
        duration_ns=duration_ns,
        failed_switches=sorted(dead),
        failed_offered_bytes=int(round(failed_offered)),
        fault_lost_bytes=int(round(fault_lost)),
        fault_events=schedule.describe() if schedule is not None else [],
        telemetry=telemetry.to_dict() if telemetry is not None else None,
    )
    intervals: List[IntervalSample] = []
    if n_intervals:
        intervals = [
            IntervalSample(
                start_ns=i * width,
                end_ns=(i + 1) * width,
                offered_bytes=int(round(offered_bins[i])),
                delivered_bytes=int(round(delivered_bins[i])),
            )
            for i in range(n_intervals)
        ]
    return FlowRouterResult(
        report=report,
        intervals=intervals,
        control=loop.summary() if loop is not None else None,
        control_actions=loop.log if loop is not None else None,
    )


def flow_router_result(
    config: RouterConfig,
    load: float = 0.8,
    duration_ns: float = 50_000.0,
    drain: bool = True,
    schedule=None,
    mean_packet_bytes: float = 1500.0,
    telemetry=None,
    control=None,
) -> FlowRouterResult:
    """Uniform-load router run at flow fidelity (Scenario kind="router")."""
    components = [
        RateComponent(
            uniform_rate_matrix(
                config.n_ribbons,
                load,
                config.fibers_per_ribbon * config.per_fiber_rate_bps,
            ),
            ((0.0, duration_ns),),
        )
    ]
    return simulate_flow_router(
        config,
        components,
        duration_ns=duration_ns,
        drain=drain,
        schedule=schedule,
        mean_packet_bytes=mean_packet_bytes,
        telemetry=telemetry,
        control=control,
    )


def flow_router_report(
    config: RouterConfig,
    load: float = 0.8,
    duration_ns: float = 50_000.0,
    drain: bool = True,
    schedule=None,
    mean_packet_bytes: float = 1500.0,
    telemetry=None,
    control=None,
) -> RouterReport:
    """The :class:`FlowRouterResult` report alone, for report-shaped callers."""
    return flow_router_result(
        config,
        load=load,
        duration_ns=duration_ns,
        drain=drain,
        schedule=schedule,
        mean_packet_bytes=mean_packet_bytes,
        telemetry=telemetry,
        control=control,
    ).report


def flow_degradation(
    config: RouterConfig,
    schedule=None,
    load: float = 0.6,
    duration_ns: float = 40_000.0,
    n_intervals: int = 8,
    mean_packet_bytes: float = 1500.0,
    telemetry=None,
    control=None,
) -> DegradationReport:
    """Fluid twin of :func:`repro.faults.report.measure_degradation`."""
    components = [
        RateComponent(
            uniform_rate_matrix(
                config.n_ribbons,
                load,
                config.fibers_per_ribbon * config.per_fiber_rate_bps,
            ),
            ((0.0, duration_ns),),
        )
    ]
    result = simulate_flow_router(
        config,
        components,
        duration_ns=duration_ns,
        drain=True,
        schedule=schedule,
        n_intervals=n_intervals,
        mean_packet_bytes=mean_packet_bytes,
        telemetry=telemetry,
        control=control,
    )
    report = result.report
    return DegradationReport(
        duration_ns=duration_ns,
        intervals=result.intervals,
        offered_bytes=report.offered_bytes,
        delivered_bytes=report.delivered_bytes,
        lost_bytes=report.lost_bytes,
        residual_bytes=report.residual_bytes,
        failed_switches=list(report.failed_switches),
        fault_events=list(report.fault_events),
        control=result.control,
    )


def execute_fault_scenario_flow(scenario) -> dict:
    """Flow twin of :func:`repro.faults.campaign.execute_fault_scenario`
    -- same summary keys, so campaign aggregation works unchanged."""
    report = flow_degradation(
        scenario.config,
        schedule=scenario.schedule,
        load=scenario.load,
        duration_ns=scenario.duration_ns,
        n_intervals=scenario.n_intervals,
        control=getattr(scenario, "control", None),
    )
    summary = {
        "scenario": scenario.index,
        "n_events": len(scenario.schedule),
        "fault_events": scenario.schedule.describe(),
        "delivered_fraction": report.delivered_fraction,
        "loss_fraction": report.loss_fraction,
        "availability": report.availability(),
        "offered_bytes": report.offered_bytes,
        "delivered_bytes": report.delivered_bytes,
        "lost_bytes": report.lost_bytes,
    }
    if report.control is not None:
        summary["control"] = report.control
    return summary
