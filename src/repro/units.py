"""Units and conversions used throughout the package.

Conventions (documented once here, used everywhere):

- **Data sizes** are in **bytes** (``int`` where exact, ``float`` for
  aggregates).  Helpers exist for KB/MB/GB/TB (binary, powers of two,
  matching the paper's usage: a 4 KB batch is 4096 bytes, a 64 GB HBM
  stack is ``64 * 2**30`` bytes).
- **Data rates** are in **bits per second** (``float``).  The paper
  quotes decimal rates (40 Gb/s = ``40e9`` b/s), so rate helpers are
  decimal.
- **Time** is in **nanoseconds** (``float``).
- **Power** is in **watts**, **energy** in **joules**, **area** in
  **mm^2**.

The mixed binary/decimal convention mirrors the paper's own arithmetic
(e.g. 2048 bits * 10 Gb/s = 20.48 Tb/s uses decimal rates, while the
512 KB frame is 2**19 bytes).
"""

from __future__ import annotations

import math

# --------------------------------------------------------------------------
# Data sizes (bytes, binary prefixes)
# --------------------------------------------------------------------------

KB = 2**10
MB = 2**20
GB = 2**30
TB = 2**40


def kilobytes(n: float) -> float:
    """Return ``n`` KiB expressed in bytes."""
    return n * KB


def megabytes(n: float) -> float:
    """Return ``n`` MiB expressed in bytes."""
    return n * MB


def gigabytes(n: float) -> float:
    """Return ``n`` GiB expressed in bytes."""
    return n * GB


def terabytes(n: float) -> float:
    """Return ``n`` TiB expressed in bytes."""
    return n * TB


# --------------------------------------------------------------------------
# Data rates (bits per second, decimal prefixes)
# --------------------------------------------------------------------------

GBPS = 1e9
TBPS = 1e12
PBPS = 1e15


def gbps(n: float) -> float:
    """Return ``n`` Gb/s expressed in bits per second."""
    return n * GBPS


def tbps(n: float) -> float:
    """Return ``n`` Tb/s expressed in bits per second."""
    return n * TBPS


def pbps(n: float) -> float:
    """Return ``n`` Pb/s expressed in bits per second."""
    return n * PBPS


# --------------------------------------------------------------------------
# Time (nanoseconds)
# --------------------------------------------------------------------------

NS = 1.0
US = 1e3
MS = 1e6
S = 1e9


def microseconds(n: float) -> float:
    """Return ``n`` microseconds expressed in nanoseconds."""
    return n * US


def milliseconds(n: float) -> float:
    """Return ``n`` milliseconds expressed in nanoseconds."""
    return n * MS


def seconds(n: float) -> float:
    """Return ``n`` seconds expressed in nanoseconds."""
    return n * S


# --------------------------------------------------------------------------
# Cross-dimension conversions
# --------------------------------------------------------------------------


def rate_to_bytes_per_ns(rate_bps: float) -> float:
    """Convert a rate in bits/second to bytes/nanosecond.

    >>> rate_to_bytes_per_ns(8e9)   # 8 Gb/s = 1 byte per ns
    1.0
    """
    return rate_bps / 8.0 / S


def bytes_per_ns_to_rate(bytes_per_ns: float) -> float:
    """Convert bytes/nanosecond to bits/second (inverse of the above)."""
    return bytes_per_ns * 8.0 * S


def transfer_time_ns(size_bytes: float, rate_bps: float) -> float:
    """Time (ns) to move ``size_bytes`` at ``rate_bps``.

    >>> transfer_time_ns(1.0, 8e9)
    1.0
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    return size_bytes / rate_to_bytes_per_ns(rate_bps)


def buffering_time_ns(capacity_bytes: float, drain_rate_bps: float) -> float:
    """How long (ns) a buffer of ``capacity_bytes`` lasts at ``drain_rate_bps``.

    This is the paper's buffer-depth metric: 4.096 TB drained at
    655.36 Tb/s lasts about 51.2 ms (SS 4, *Router buffer sizing*).
    """
    return transfer_time_ns(capacity_bytes, drain_rate_bps)


# --------------------------------------------------------------------------
# Pretty-printing
# --------------------------------------------------------------------------


def format_rate(rate_bps: float) -> str:
    """Human-readable rate: ``format_rate(655.36e12) == '655.36 Tb/s'``."""
    for unit, name in ((PBPS, "Pb/s"), (TBPS, "Tb/s"), (GBPS, "Gb/s"), (1e6, "Mb/s")):
        if abs(rate_bps) >= unit:
            return f"{rate_bps / unit:.4g} {name}"
    return f"{rate_bps:.4g} b/s"


def format_size(size_bytes: float) -> str:
    """Human-readable size: ``format_size(4096) == '4 KB'``."""
    for unit, name in ((TB, "TB"), (GB, "GB"), (MB, "MB"), (KB, "KB")):
        if abs(size_bytes) >= unit:
            return f"{size_bytes / unit:.4g} {name}"
    return f"{size_bytes:.4g} B"


def format_time(time_ns) -> str:
    """Human-readable duration: ``format_time(51.2e6) == '51.2 ms'``.

    ``None``/NaN (an empty latency recorder's statistics) render as
    ``"n/a"`` rather than ``"nan ns"``.
    """
    if time_ns is None or (isinstance(time_ns, float) and math.isnan(time_ns)):
        return "n/a"
    for unit, name in ((S, "s"), (MS, "ms"), (US, "us")):
        if abs(time_ns) >= unit:
            return f"{time_ns / unit:.4g} {name}"
    return f"{time_ns:.4g} ns"


def format_power(watts: float) -> str:
    """Human-readable power: ``format_power(12700) == '12.7 kW'``."""
    if abs(watts) >= 1e3:
        return f"{watts / 1e3:.4g} kW"
    return f"{watts:.4g} W"
