"""Deterministic fault schedules and their per-switch projections.

A :class:`FaultSchedule` is an immutable, time-sorted collection of
fault events (:mod:`repro.faults.model`).  The router consumes it in two
places:

- :meth:`~repro.core.sps.SplitParallelSwitch.run` filters fiber-cut
  traffic at the passive split and skips switches that are dead for the
  whole run (the degenerate schedule that reproduces the legacy
  ``failed_switches`` path byte for byte);
- every surviving switch receives a :class:`SwitchFaultView` -- the
  picklable projection of the schedule onto that switch -- which the
  :class:`~repro.core.hbm_switch.HBMSwitch`, the PFI engine and the
  output ports query mid-run.

Both the schedule and the views are free of simulation state, so the
same schedule can drive many runs (the Monte-Carlo campaigns of
:mod:`repro.faults.campaign`) and ships to process-pool workers
unchanged.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from .model import (
    FiberCut,
    HBMChannelLoss,
    OEODegradation,
    SwitchFailure,
    event_from_dict,
    event_to_dict,
)


def _sort_key(event) -> Tuple[float, str]:
    return (event.start_ns, event.describe())


class SwitchFaultView:
    """One switch's slice of a fault schedule (picklable, read-only).

    ``total_channels`` is the switch's T, needed to turn an absolute
    channel-loss count into the drain-rate fraction PFI applies.
    """

    __slots__ = (
        "switch",
        "total_channels",
        "failures",
        "channel_losses",
        "oeo_events",
    )

    def __init__(
        self,
        switch: int,
        total_channels: int,
        failures: Sequence[SwitchFailure] = (),
        channel_losses: Sequence[HBMChannelLoss] = (),
        oeo_events: Sequence[OEODegradation] = (),
    ) -> None:
        if total_channels <= 0:
            raise ConfigError(
                f"total_channels must be positive, got {total_channels}"
            )
        self.switch = switch
        self.total_channels = total_channels
        self.failures = tuple(sorted(failures, key=_sort_key))
        self.channel_losses = tuple(sorted(channel_losses, key=_sort_key))
        self.oeo_events = tuple(sorted(oeo_events, key=_sort_key))

    # -- hot-path queries (called per packet / per PFI phase) ----------------

    @property
    def is_trivial(self) -> bool:
        return not (self.failures or self.channel_losses or self.oeo_events)

    @property
    def has_channel_faults(self) -> bool:
        return bool(self.channel_losses)

    @property
    def has_oeo_faults(self) -> bool:
        return bool(self.oeo_events)

    @property
    def dead_whole_run(self) -> bool:
        """Dead from t = 0 with no recovery: the degenerate schedule the
        legacy ``failed_switches`` path maps onto."""
        return any(f.whole_run for f in self.failures)

    def dead_at(self, t_ns: float) -> bool:
        """Whether the switch is down at ``t_ns``."""
        for failure in self.failures:
            if failure.active_at(t_ns):
                return True
        return False

    def channels_lost(self, t_ns: float) -> int:
        """Memory channels unavailable at ``t_ns`` (capped at T)."""
        lost = sum(
            e.n_channels for e in self.channel_losses if e.active_at(t_ns)
        )
        return min(lost, self.total_channels)

    def channel_fraction(self, t_ns: float) -> float:
        """Surviving fraction of the T channels at ``t_ns`` (0.0 .. 1.0)."""
        return (self.total_channels - self.channels_lost(t_ns)) / self.total_channels

    def oeo_rate_factor(self, t_ns: float) -> float:
        """Compound egress-rate factor at ``t_ns`` (1.0 = nominal).

        Concurrent degradations multiply: two independent 80% stages
        give 64% of the nominal line rate.
        """
        factor = 1.0
        for event in self.oeo_events:
            if event.active_at(t_ns):
                factor *= event.rate_factor
        return factor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SwitchFaultView(switch={self.switch}, "
            f"failures={len(self.failures)}, "
            f"channel_losses={len(self.channel_losses)}, "
            f"oeo={len(self.oeo_events)})"
        )


class FaultSchedule:
    """An immutable, time-sorted set of fault events."""

    def __init__(self, events: Iterable = ()) -> None:
        self.events = tuple(sorted(events, key=_sort_key))

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_failed_switches(cls, failed: Iterable[int]) -> "FaultSchedule":
        """The degenerate schedule of the legacy whole-run API: every
        listed switch dead from t = 0 forever."""
        return cls(SwitchFailure(switch=h) for h in failed)

    def with_failed_switches(self, failed: Iterable[int]) -> "FaultSchedule":
        """This schedule plus whole-run deaths for ``failed`` switches."""
        extra = [SwitchFailure(switch=h) for h in failed]
        if not extra:
            return self
        return FaultSchedule(list(self.events) + extra)

    def merged(self, other: "FaultSchedule") -> "FaultSchedule":
        return FaultSchedule(list(self.events) + list(other.events))

    # -- queries --------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def fiber_cuts(self) -> Tuple[FiberCut, ...]:
        return tuple(e for e in self.events if isinstance(e, FiberCut))

    @property
    def has_fiber_cuts(self) -> bool:
        return any(isinstance(e, FiberCut) for e in self.events)

    def fiber_cut_active(self, ribbon: int, fiber: int, t_ns: float) -> bool:
        """Whether traffic on (ribbon, fiber) is lost at ``t_ns``."""
        for cut in self.events:
            if (
                isinstance(cut, FiberCut)
                and cut.ribbon == ribbon
                and cut.fiber == fiber
                and cut.active_at(t_ns)
            ):
                return True
        return False

    def switch_events(self, switch: int) -> List:
        """Every switch-scoped event targeting ``switch``."""
        return [
            e
            for e in self.events
            if isinstance(e, (SwitchFailure, HBMChannelLoss, OEODegradation))
            and e.switch == switch
        ]

    def switch_view(
        self, switch: int, total_channels: int
    ) -> Optional[SwitchFaultView]:
        """The projection onto ``switch``, or ``None`` when it has no
        events (so fault-free switches keep the exact unfaulted path)."""
        failures = []
        losses = []
        oeo = []
        for event in self.events:
            if isinstance(event, SwitchFailure) and event.switch == switch:
                failures.append(event)
            elif isinstance(event, HBMChannelLoss) and event.switch == switch:
                losses.append(event)
            elif isinstance(event, OEODegradation) and event.switch == switch:
                oeo.append(event)
        if not (failures or losses or oeo):
            return None
        return SwitchFaultView(
            switch,
            total_channels,
            failures=failures,
            channel_losses=losses,
            oeo_events=oeo,
        )

    def whole_run_dead_switches(self) -> List[int]:
        """Switches dead from t = 0 with no recovery, sorted."""
        dead = {
            e.switch
            for e in self.events
            if isinstance(e, SwitchFailure) and e.whole_run
        }
        return sorted(dead)

    # -- validation -----------------------------------------------------------

    def validate(self, config) -> None:
        """Check every event against a :class:`~repro.config.RouterConfig`.

        Raises :class:`~repro.errors.ConfigError` on out-of-range scopes
        or overlapping channel-loss windows on one switch (overlaps are
        rejected so the analytic drain stretch and the command-level
        validation agree on which channels are gone).
        """
        from .model import FABRIC_FAULT_TYPES

        h = config.n_switches
        total_channels = config.switch.total_channels
        losses_by_switch = {}
        for event in self.events:
            if isinstance(event, FABRIC_FAULT_TYPES):
                raise ConfigError(
                    f"{event.describe()} is fabric-scoped; it applies to "
                    "fabric scenarios, not a single router"
                )
            if isinstance(event, (SwitchFailure, HBMChannelLoss, OEODegradation)):
                if not 0 <= event.switch < h:
                    raise ConfigError(
                        f"fault targets switch {event.switch}, router has H={h}"
                    )
            if isinstance(event, HBMChannelLoss):
                if event.n_channels > total_channels:
                    raise ConfigError(
                        f"cannot lose {event.n_channels} channels; switch has "
                        f"T={total_channels}"
                    )
                losses_by_switch.setdefault(event.switch, []).append(event)
            if isinstance(event, FiberCut):
                if not 0 <= event.ribbon < config.n_ribbons:
                    raise ConfigError(
                        f"fiber cut targets ribbon {event.ribbon}, router has "
                        f"{config.n_ribbons}"
                    )
                if not 0 <= event.fiber < config.fibers_per_ribbon:
                    raise ConfigError(
                        f"fiber cut targets fiber {event.fiber}, ribbons have "
                        f"{config.fibers_per_ribbon} fibers"
                    )
        for switch, losses in losses_by_switch.items():
            ordered = sorted(losses, key=lambda e: e.start_ns)
            for a, b in zip(ordered, ordered[1:]):
                if b.start_ns < a.end_ns:
                    raise ConfigError(
                        f"overlapping HBM channel losses on switch {switch}: "
                        f"{a.describe()} and {b.describe()}"
                    )

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> dict:
        return {"events": [event_to_dict(e) for e in self.events]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        return cls(event_from_dict(e) for e in data.get("events", ()))

    def describe(self) -> List[str]:
        """One human-readable line per event, in time order."""
        return [e.describe() for e in self.events]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSchedule({len(self.events)} events)"
