"""Seeded Monte-Carlo fault campaigns.

A campaign draws ``n_scenarios`` random fault schedules from MTBF/MTTR
parameters, simulates each faulted router run, and aggregates the
capacity / loss / availability distributions.  Everything is seeded:
scenario ``i`` of a campaign with seed S is drawn from ``default_rng(S,
i)``, so the same (params, config) always produces the same schedules
and -- because each scenario is itself a deterministic sequential
simulation -- the same distributions, no matter how many workers run it.

Scenarios are independent, so the fan-out parallelises *between*
scenarios (each worker simulates its whole faulted router
sequentially), the natural unit here just as the switch is for one run.
Dispatch, caching and sharding live in the scenario runtime
(:mod:`repro.runtime`); this module keeps the domain pieces -- the
MTBF/MTTR drawing recipe, the per-cell executor and the aggregate --
plus a deprecated ``run_campaign`` shim over
:class:`repro.runtime.FaultCampaign`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..config import RouterConfig
from ..errors import ConfigError
from .model import (
    FOREVER_NS,
    FiberCut,
    HBMChannelLoss,
    OEODegradation,
    SwitchFailure,
)
from .report import AVAILABILITY_THRESHOLD, measure_degradation
from .schedule import FaultSchedule


@dataclass(frozen=True)
class CampaignParams:
    """What to draw and how to simulate it.

    MTBF values are per *component* (one switch, one switch's HBM
    subsystem, one switch's OEO stage, one fiber); a component fails
    within the run with probability ``1 - exp(-duration / mtbf)``.
    ``inf`` disables a fault class.  MTTR is the mean of the
    exponential repair time; repairs running past the horizon simply
    never recover within the run.
    """

    n_scenarios: int = 50
    seed: int = 0
    load: float = 0.6
    duration_ns: float = 40_000.0
    n_intervals: int = 8
    switch_mtbf_ns: float = 200_000.0
    switch_mttr_ns: float = 10_000.0
    channel_mtbf_ns: float = 200_000.0
    channel_mttr_ns: float = 10_000.0
    max_channels_lost: int = 4
    oeo_mtbf_ns: float = 200_000.0
    oeo_mttr_ns: float = 10_000.0
    fiber_mtbf_ns: float = float("inf")
    fiber_mttr_ns: float = 10_000.0

    def __post_init__(self) -> None:
        if self.n_scenarios <= 0:
            raise ConfigError(
                f"n_scenarios must be positive, got {self.n_scenarios}"
            )
        if self.duration_ns <= 0:
            raise ConfigError(
                f"duration_ns must be positive, got {self.duration_ns}"
            )
        if self.max_channels_lost < 1:
            raise ConfigError(
                f"max_channels_lost must be >= 1, got {self.max_channels_lost}"
            )
        for name in (
            "switch_mtbf_ns",
            "switch_mttr_ns",
            "channel_mtbf_ns",
            "channel_mttr_ns",
            "oeo_mtbf_ns",
            "oeo_mttr_ns",
            "fiber_mtbf_ns",
            "fiber_mttr_ns",
        ):
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")


def _draw_window(rng, duration_ns: float, mttr_ns: float):
    """A failure window: uniform onset, exponential repair time.

    Repairs that would finish after the horizon are reported as
    permanent (``inf``) -- within this run they never recover, and the
    schedule stays horizon-independent.
    """
    start = float(rng.uniform(0.0, duration_ns))
    end = start + float(rng.exponential(mttr_ns))
    if end >= duration_ns:
        end = FOREVER_NS
    return start, end


def draw_fault_schedule(
    config: RouterConfig, params: CampaignParams, rng
) -> FaultSchedule:
    """One random schedule: every component flips an exponential coin."""
    duration = params.duration_ns
    events: List = []

    def fails(mtbf_ns: float) -> bool:
        if np.isinf(mtbf_ns):
            return False
        return bool(rng.random() < -np.expm1(-duration / mtbf_ns))

    total_channels = config.switch.total_channels
    for h in range(config.n_switches):
        if fails(params.switch_mtbf_ns):
            start, end = _draw_window(rng, duration, params.switch_mttr_ns)
            events.append(SwitchFailure(switch=h, start_ns=start, end_ns=end))
        if fails(params.channel_mtbf_ns):
            start, end = _draw_window(rng, duration, params.channel_mttr_ns)
            lost = int(
                rng.integers(1, min(params.max_channels_lost, total_channels) + 1)
            )
            events.append(
                HBMChannelLoss(
                    switch=h, n_channels=lost, start_ns=start, end_ns=end
                )
            )
        if fails(params.oeo_mtbf_ns):
            start, end = _draw_window(rng, duration, params.oeo_mttr_ns)
            factor = float(rng.uniform(0.5, 0.95))
            events.append(
                OEODegradation(
                    switch=h, rate_factor=factor, start_ns=start, end_ns=end
                )
            )
    for ribbon in range(config.n_ribbons):
        for fiber in range(config.fibers_per_ribbon):
            if fails(params.fiber_mtbf_ns):
                start, end = _draw_window(rng, duration, params.fiber_mttr_ns)
                events.append(
                    FiberCut(
                        ribbon=ribbon, fiber=fiber, start_ns=start, end_ns=end
                    )
                )
    return FaultSchedule(events)


@dataclass(frozen=True)
class FaultScenario:
    """One picklable, self-contained campaign member."""

    index: int
    config: RouterConfig
    schedule: FaultSchedule
    load: float
    duration_ns: float
    seed: int
    n_intervals: int
    #: Optional :class:`~repro.control.ControlConfig`; ``None`` = open
    #: loop (the historical behaviour, byte-identical payloads).
    control: object = None
    #: Optional streaming workload spec
    #: (:func:`~repro.traffic.stream.workload_source`); ``None`` keeps
    #: the historical smooth fixed-size traffic.  Open-loop only.
    workload: Optional[str] = None


def execute_fault_scenario(scenario: FaultScenario) -> dict:
    """Run one scenario; returns its summary dict (module-level so it
    pickles for worker processes)."""
    control = getattr(scenario, "control", None)
    workload = getattr(scenario, "workload", None)
    if control is not None:
        if workload is not None:
            raise ConfigError(
                "workload streaming composes with open-loop fault cells "
                "only (the control prepass materializes the packet list)"
            )
        from ..control.packet import measure_degradation_controlled

        report, _ = measure_degradation_controlled(
            scenario.config,
            control,
            schedule=scenario.schedule,
            load=scenario.load,
            duration_ns=scenario.duration_ns,
            seed=scenario.seed,
            n_intervals=scenario.n_intervals,
        )
    else:
        report = measure_degradation(
            scenario.config,
            schedule=scenario.schedule,
            load=scenario.load,
            duration_ns=scenario.duration_ns,
            seed=scenario.seed,
            n_intervals=scenario.n_intervals,
            workload=workload,
        )
    summary = {
        "scenario": scenario.index,
        "n_events": len(scenario.schedule),
        "fault_events": scenario.schedule.describe(),
        "delivered_fraction": report.delivered_fraction,
        "loss_fraction": report.loss_fraction,
        "availability": report.availability(),
        "offered_bytes": report.offered_bytes,
        "delivered_bytes": report.delivered_bytes,
        "lost_bytes": report.lost_bytes,
    }
    if report.control is not None:
        summary["control"] = report.control
    return summary


def _distribution(values: List[float]) -> dict:
    arr = np.asarray(values, dtype=float)
    return {
        "mean": float(arr.mean()),
        "min": float(arr.min()),
        "p10": float(np.percentile(arr, 10)),
        "p50": float(np.percentile(arr, 50)),
        "p90": float(np.percentile(arr, 90)),
        "max": float(arr.max()),
    }


@dataclass
class CampaignResult:
    """Aggregate of a whole campaign."""

    params: CampaignParams
    scenarios: List[dict] = field(default_factory=list)

    @property
    def delivered_fractions(self) -> List[float]:
        return [s["delivered_fraction"] for s in self.scenarios]

    @property
    def availabilities(self) -> List[float]:
        return [s["availability"] for s in self.scenarios]

    @property
    def n_faulted(self) -> int:
        """Scenarios in which at least one fault was drawn."""
        return sum(1 for s in self.scenarios if s["n_events"] > 0)

    def to_dict(self) -> dict:
        return {
            "n_scenarios": self.params.n_scenarios,
            "seed": self.params.seed,
            "load": self.params.load,
            "duration_ns": self.params.duration_ns,
            "availability_threshold": AVAILABILITY_THRESHOLD,
            "n_faulted_scenarios": self.n_faulted,
            "delivered_fraction": _distribution(self.delivered_fractions),
            "availability": _distribution(self.availabilities),
            "loss_fraction": _distribution(
                [s["loss_fraction"] for s in self.scenarios]
            ),
            "scenarios": self.scenarios,
        }


def run_campaign(
    config: RouterConfig,
    params: CampaignParams,
    base_schedule: Optional[FaultSchedule] = None,
    n_workers: Optional[int] = None,
) -> CampaignResult:
    """Deprecated shim over the scenario runtime.

    Use :class:`repro.runtime.FaultCampaign` with
    :meth:`repro.runtime.Runtime.run_campaign` instead -- same drawing
    recipe (schedules from per-scenario seeded RNGs, drawn up front in
    the parent), same :class:`CampaignResult`, byte-identical output for
    the same ``(config, params, seed)``, plus caching/resume/sharding
    the legacy entrypoint never had.
    """
    warnings.warn(
        "repro.faults.campaign.run_campaign is deprecated; use "
        "repro.runtime.Runtime.run_campaign(repro.runtime.FaultCampaign(...))",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..runtime import FaultCampaign, Runtime

    return Runtime(n_workers=n_workers).run_campaign(
        FaultCampaign(config=config, params=params, base_schedule=base_schedule)
    )
