"""Textual fault specs for the CLI.

Grammar (times in microseconds, window optional and half-open):

- ``switch:H[@S[-E]]``      -- switch H dead from S (default 0) to E
- ``channels:H:N[@S[-E]]``  -- switch H loses N HBM channels
- ``oeo:H:F[@S[-E]]``       -- switch H egress at factor F of nominal
- ``fiber:R:F[@S[-E]]``     -- fiber F of ribbon R cut

Fabric scope (the ``repro fabric`` command; see :mod:`repro.fabric`):

- ``router:R[@S[-E]]``      -- fabric router node R offline
- ``link:U:V[@S[-E]]``      -- inter-package link U--V cut (both ways)

``@5-20`` means active on [5 us, 20 us); ``@5`` and ``@5-`` mean from
5 us with no recovery; no ``@`` at all means the whole run.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..errors import ConfigError
from .model import (
    FOREVER_NS,
    FiberCut,
    HBMChannelLoss,
    LinkCut,
    OEODegradation,
    RouterDown,
    SwitchFailure,
)
from .schedule import FaultSchedule

US_TO_NS = 1e3


def _parse_window(text: str) -> Tuple[float, float]:
    """``S``, ``S-``, or ``S-E`` (microseconds) -> (start_ns, end_ns)."""
    start_text, sep, end_text = text.partition("-")
    try:
        start = float(start_text) * US_TO_NS
        end = float(end_text) * US_TO_NS if sep and end_text else FOREVER_NS
    except ValueError:
        raise ConfigError(f"bad fault window {text!r} (expected S[-E] in us)")
    return start, end


def parse_fault_event(spec: str):
    """One spec string -> one fault event."""
    body, _, window_text = spec.partition("@")
    start, end = _parse_window(window_text) if window_text else (0.0, FOREVER_NS)
    parts = body.split(":")
    kind = parts[0].strip().lower()
    try:
        if kind == "switch" and len(parts) == 2:
            return SwitchFailure(
                switch=int(parts[1]), start_ns=start, end_ns=end
            )
        if kind == "channels" and len(parts) == 3:
            return HBMChannelLoss(
                switch=int(parts[1]),
                n_channels=int(parts[2]),
                start_ns=start,
                end_ns=end,
            )
        if kind == "oeo" and len(parts) == 3:
            return OEODegradation(
                switch=int(parts[1]),
                rate_factor=float(parts[2]),
                start_ns=start,
                end_ns=end,
            )
        if kind == "fiber" and len(parts) == 3:
            return FiberCut(
                ribbon=int(parts[1]),
                fiber=int(parts[2]),
                start_ns=start,
                end_ns=end,
            )
        if kind == "router" and len(parts) == 2:
            return RouterDown(
                router=int(parts[1]), start_ns=start, end_ns=end
            )
        if kind == "link" and len(parts) == 3:
            return LinkCut(
                a=int(parts[1]), b=int(parts[2]), start_ns=start, end_ns=end
            )
    except ValueError:
        raise ConfigError(f"bad fault spec {spec!r}: non-numeric field")
    raise ConfigError(
        f"bad fault spec {spec!r}: expected switch:H, channels:H:N, "
        f"oeo:H:F, fiber:R:F, router:R, or link:U:V "
        f"(optionally @S[-E] in us)"
    )


def parse_fault_specs(specs: Iterable[str]) -> FaultSchedule:
    """Many spec strings (each possibly comma-separated) -> a schedule."""
    events = []
    for spec in specs:
        for piece in spec.split(","):
            piece = piece.strip()
            if piece:
                events.append(parse_fault_event(piece))
    return FaultSchedule(events)
