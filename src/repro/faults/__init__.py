"""Fault injection and graceful degradation (SS 2.2, *Modularity*).

The package turns the paper's reliability story into executable pieces:

- :mod:`~repro.faults.model` -- typed fault events (switch death, HBM
  channel loss, OEO degradation, fiber cut) with time windows;
- :mod:`~repro.faults.schedule` -- deterministic schedules and their
  per-switch projections, consumed by the core simulation;
- :mod:`~repro.faults.report` -- capacity-over-time measurement of one
  faulted run;
- :mod:`~repro.faults.campaign` -- seeded Monte-Carlo campaigns from
  MTBF/MTTR parameters;
- :mod:`~repro.faults.specs` -- the CLI's textual fault grammar.
"""

from .model import (
    FABRIC_FAULT_TYPES,
    FAULT_TYPES,
    FOREVER_NS,
    FiberCut,
    HBMChannelLoss,
    LinkCut,
    OEODegradation,
    RouterDown,
    SwitchFailure,
    event_from_dict,
    event_to_dict,
)
from .schedule import FaultSchedule, SwitchFaultView
from .report import (
    AVAILABILITY_THRESHOLD,
    DegradationReport,
    IntervalSample,
    bin_packets,
    deterministic_fibers,
    measure_degradation,
    router_fault_traffic,
)
from .campaign import (
    CampaignParams,
    CampaignResult,
    FaultScenario,
    draw_fault_schedule,
    execute_fault_scenario,
    run_campaign,
)
from .specs import parse_fault_event, parse_fault_specs

__all__ = [
    "AVAILABILITY_THRESHOLD",
    "CampaignParams",
    "CampaignResult",
    "DegradationReport",
    "FABRIC_FAULT_TYPES",
    "FAULT_TYPES",
    "FOREVER_NS",
    "FaultScenario",
    "FaultSchedule",
    "FiberCut",
    "HBMChannelLoss",
    "IntervalSample",
    "LinkCut",
    "OEODegradation",
    "RouterDown",
    "SwitchFailure",
    "SwitchFaultView",
    "bin_packets",
    "deterministic_fibers",
    "draw_fault_schedule",
    "event_from_dict",
    "event_to_dict",
    "execute_fault_scenario",
    "measure_degradation",
    "parse_fault_event",
    "parse_fault_specs",
    "router_fault_traffic",
    "run_campaign",
]
