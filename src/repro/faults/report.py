"""Graceful-degradation measurement: capacity over time under faults.

The modularity claim (SS 2.2) is quantitative: killing k of the H
share-nothing switches costs exactly k/H of capacity, and nothing else
degrades.  :func:`measure_degradation` turns one faulted router run into
a :class:`DegradationReport` -- offered vs delivered capacity per time
interval -- so the claim (and the softer degradations: channel loss, OEO
aging, fiber cuts) can be read off as a capacity-over-time curve.

Binning: offered bytes are attributed to the interval of each packet's
*arrival*; delivered bytes to the interval of its *departure* (the wire
time of its last byte).  The run is sequential so departures are written
back onto the caller's packet objects; departures during the drain tail
(after ``duration_ns``) land in the last interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..config import RouterConfig
from ..core.pfi import PFIOptions
from ..core.sps import RouterReport, SplitParallelSwitch
from ..errors import ConfigError
from ..traffic import FixedSize, TrafficGenerator, uniform_matrix
from ..units import bytes_per_ns_to_rate
from .schedule import FaultSchedule

#: Default interval-availability threshold: an interval counts as
#: "available" when it delivered at least this fraction of its offer.
AVAILABILITY_THRESHOLD = 0.9


def router_fault_traffic(
    config: RouterConfig,
    load: float = 0.6,
    duration_ns: float = 40_000.0,
    seed: int = 0,
    packet_bytes: int = 1500,
) -> List:
    """Router-level traffic for degradation runs (fixed-size packets so
    per-interval byte counts are smooth)."""
    generator = TrafficGenerator(
        n_ports=config.n_ribbons,
        port_rate_bps=config.fibers_per_ribbon * config.per_fiber_rate_bps,
        matrix=uniform_matrix(config.n_ribbons, load),
        size_dist=FixedSize(packet_bytes),
        seed=seed,
        flows_per_pair=256,
    )
    return generator.materialize(duration_ns)


def deterministic_fibers(packets: Sequence, n_fibers: int) -> List[int]:
    """Per-ribbon round-robin fiber assignment.

    ECMP hashing spreads flows multinomially, which adds O(1/sqrt(n))
    noise to per-switch offered bytes; the closed-form (H-k)/H
    cross-check needs the noise-free spread this gives.  Round-robin is
    kept per ribbon (each ribbon has its own fiber-to-switch map), so
    every ribbon's packets cover its fibers exactly evenly.
    """
    if n_fibers <= 0:
        raise ConfigError(f"n_fibers must be positive, got {n_fibers}")
    counters: dict = {}
    fibers = []
    for packet in packets:
        count = counters.get(packet.input_port, 0)
        fibers.append(count % n_fibers)
        counters[packet.input_port] = count + 1
    return fibers


@dataclass(frozen=True)
class IntervalSample:
    """Offered vs delivered bytes in one ``[start_ns, end_ns)`` slice."""

    start_ns: float
    end_ns: float
    offered_bytes: int
    delivered_bytes: int

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns

    @property
    def offered_bps(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return bytes_per_ns_to_rate(self.offered_bytes / self.duration_ns)

    @property
    def delivered_bps(self) -> float:
        if self.duration_ns <= 0:
            return 0.0
        return bytes_per_ns_to_rate(self.delivered_bytes / self.duration_ns)

    @property
    def delivered_fraction(self) -> float:
        """Delivered over offered (can exceed 1.0 while a backlog or the
        drain tail empties into this interval)."""
        if self.offered_bytes <= 0:
            return 1.0
        return self.delivered_bytes / self.offered_bytes

    def to_dict(self) -> dict:
        return {
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "offered_bytes": self.offered_bytes,
            "delivered_bytes": self.delivered_bytes,
            "offered_bps": self.offered_bps,
            "delivered_bps": self.delivered_bps,
            "delivered_fraction": self.delivered_fraction,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IntervalSample":
        """Inverse of :meth:`to_dict` (derived rates are recomputed)."""
        return cls(
            start_ns=data["start_ns"],
            end_ns=data["end_ns"],
            offered_bytes=data["offered_bytes"],
            delivered_bytes=data["delivered_bytes"],
        )


@dataclass
class DegradationReport:
    """Capacity-over-time view of one faulted router run."""

    duration_ns: float
    intervals: List[IntervalSample]
    offered_bytes: int
    delivered_bytes: int
    lost_bytes: int
    residual_bytes: int
    failed_switches: List[int] = field(default_factory=list)
    fault_events: List[str] = field(default_factory=list)
    #: Closed-loop runs only: the control loop's compact summary
    #: (:meth:`repro.control.ControlLoop.summary`); ``None`` open-loop.
    control: Optional[dict] = None

    @property
    def delivered_fraction(self) -> float:
        if self.offered_bytes <= 0:
            return 1.0
        return self.delivered_bytes / self.offered_bytes

    @property
    def loss_fraction(self) -> float:
        if self.offered_bytes <= 0:
            return 0.0
        return self.lost_bytes / self.offered_bytes

    def availability(self, threshold: float = AVAILABILITY_THRESHOLD) -> float:
        """Fraction of intervals that delivered at least ``threshold``
        of their offered bytes (1.0 = no interval dipped)."""
        if not self.intervals:
            return 1.0
        ok = sum(
            1 for s in self.intervals if s.delivered_fraction >= threshold
        )
        return ok / len(self.intervals)

    def to_dict(self, threshold: float = AVAILABILITY_THRESHOLD) -> dict:
        data = {
            "duration_ns": self.duration_ns,
            "offered_bytes": self.offered_bytes,
            "delivered_bytes": self.delivered_bytes,
            "lost_bytes": self.lost_bytes,
            "residual_bytes": self.residual_bytes,
            "delivered_fraction": self.delivered_fraction,
            "loss_fraction": self.loss_fraction,
            "availability": self.availability(threshold),
            "availability_threshold": threshold,
            "failed_switches": list(self.failed_switches),
            "fault_events": list(self.fault_events),
            "intervals": [s.to_dict() for s in self.intervals],
        }
        if self.control is not None:
            # Conditional so open-loop payloads stay byte-identical to
            # every pre-control release.
            data["control"] = self.control
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "DegradationReport":
        """Inverse of :meth:`to_dict` -- rebuilds the report from a
        cached runtime payload so the CLI tables (which read report
        attributes) render from recalled cells exactly as from fresh
        runs.  Derived fractions/availability are recomputed, so a
        round-trip re-serialises byte-identically."""
        return cls(
            duration_ns=data["duration_ns"],
            intervals=[IntervalSample.from_dict(d) for d in data["intervals"]],
            offered_bytes=data["offered_bytes"],
            delivered_bytes=data["delivered_bytes"],
            lost_bytes=data["lost_bytes"],
            residual_bytes=data["residual_bytes"],
            failed_switches=list(data["failed_switches"]),
            fault_events=list(data["fault_events"]),
            control=data.get("control"),
        )


def bin_packets(
    packets: Sequence,
    duration_ns: float,
    n_intervals: int,
) -> List[IntervalSample]:
    """Attribute offered/delivered bytes to equal time intervals.

    Late departures (the drain tail) land in the last interval; packets
    with ``departure_ns`` unset were lost and contribute offer only.
    """
    if n_intervals <= 0:
        raise ConfigError(f"n_intervals must be positive, got {n_intervals}")
    if duration_ns <= 0:
        raise ConfigError(f"duration_ns must be positive, got {duration_ns}")
    width = duration_ns / n_intervals
    offered = [0] * n_intervals
    delivered = [0] * n_intervals
    last = n_intervals - 1
    for packet in packets:
        offered[min(last, int(packet.arrival_ns / width))] += packet.size_bytes
        if packet.departure_ns is not None:
            delivered[min(last, int(packet.departure_ns / width))] += packet.size_bytes
    return [
        IntervalSample(
            start_ns=i * width,
            end_ns=(i + 1) * width,
            offered_bytes=offered[i],
            delivered_bytes=delivered[i],
        )
        for i in range(n_intervals)
    ]


def measure_degradation(
    config: RouterConfig,
    schedule: Optional[FaultSchedule] = None,
    load: float = 0.6,
    duration_ns: float = 40_000.0,
    seed: int = 0,
    n_intervals: int = 8,
    options: Optional[PFIOptions] = None,
    round_robin_fibers: bool = True,
    packets: Optional[Sequence] = None,
    telemetry=None,
    workload: Optional[str] = None,
) -> DegradationReport:
    """Run one faulted router simulation and bin it over time.

    Sequential execution on purpose: the binning needs per-packet
    departures, which only the sequential path produces.
    ``round_robin_fibers`` (the default) spreads packets
    deterministically over fibers so measured capacity matches the
    (H - k)/H closed form without multinomial hash noise.

    ``workload`` selects a streaming traffic family
    (:func:`~repro.traffic.stream.workload_source` spec, e.g.
    ``"pareto"`` or ``"trace:capture.csv"``) instead of the default
    smooth fixed-size traffic; the run then consumes arrival blocks
    incrementally -- offered bytes are binned as blocks are offered and
    delivered bytes via the per-departure sink, so no packet list is
    ever materialized.  Mutually exclusive with ``packets``.

    ``telemetry`` (a :class:`~repro.telemetry.MetricsRegistry`)
    instruments the run; the fault schedule's windows are tagged onto
    the dump, so per-stage metrics can be read against the injected
    faults.
    """
    if options is None:
        options = PFIOptions(padding=True, bypass=True)
    if workload is not None:
        if packets is not None:
            raise ConfigError("pass either workload= or packets=, not both")
        return _measure_degradation_stream(
            config,
            workload,
            schedule=schedule,
            load=load,
            duration_ns=duration_ns,
            seed=seed,
            n_intervals=n_intervals,
            options=options,
            round_robin_fibers=round_robin_fibers,
            telemetry=telemetry,
        )
    if packets is None:
        packets = router_fault_traffic(
            config, load=load, duration_ns=duration_ns, seed=seed
        )
    fibers = (
        deterministic_fibers(packets, config.fibers_per_ribbon)
        if round_robin_fibers
        else None
    )
    router = SplitParallelSwitch(config, options=options)
    report: RouterReport = router.run(
        packets,
        duration_ns,
        fibers=fibers,
        fault_schedule=schedule,
        mode="sequential",
        telemetry=telemetry,
    )
    return DegradationReport(
        duration_ns=duration_ns,
        intervals=bin_packets(packets, duration_ns, n_intervals),
        offered_bytes=report.offered_bytes,
        delivered_bytes=report.delivered_bytes,
        lost_bytes=report.lost_bytes,
        residual_bytes=report.residual_bytes,
        failed_switches=list(report.failed_switches),
        fault_events=list(report.fault_events),
    )


def _measure_degradation_stream(
    config: RouterConfig,
    workload: str,
    schedule: Optional[FaultSchedule],
    load: float,
    duration_ns: float,
    seed: int,
    n_intervals: int,
    options: PFIOptions,
    round_robin_fibers: bool,
    telemetry,
) -> DegradationReport:
    """The bounded-memory degradation path: bin at the block boundary.

    Offered bytes are attributed per block as it is offered (arrival
    interval); delivered bytes per packet via the output ports'
    departure sink (departure interval, drain tail into the last bin) --
    the same attribution rules as :func:`bin_packets`, without keeping
    packets around.  The round-robin fiber cursor is carried across
    blocks in a closure, so the assignment is identical to the eager
    :func:`deterministic_fibers` on the concatenated stream.
    """
    from ..traffic.stream import workload_source

    if n_intervals <= 0:
        raise ConfigError(f"n_intervals must be positive, got {n_intervals}")
    source = workload_source(
        workload,
        n_ports=config.n_ribbons,
        port_rate_bps=config.fibers_per_ribbon * config.per_fiber_rate_bps,
        load=load,
        seed=seed,
        duration_ns=duration_ns,
    )
    width = duration_ns / n_intervals
    last = n_intervals - 1
    offered = [0] * n_intervals
    delivered = [0] * n_intervals

    def binned_blocks():
        for block in source.blocks(duration_ns):
            for t, size in zip(block.times, block.sizes):
                offered[min(last, int(t / width))] += int(size)
            yield block

    def departure_sink(packet):
        delivered[min(last, int(packet.departure_ns / width))] += (
            packet.size_bytes
        )

    fibers_fn = None
    if round_robin_fibers:
        counters: dict = {}

        def fibers_fn(packets, block):
            fibers = []
            for packet in packets:
                count = counters.get(packet.input_port, 0)
                fibers.append(count % config.fibers_per_ribbon)
                counters[packet.input_port] = count + 1
            return fibers

    router = SplitParallelSwitch(config, options=options)
    report: RouterReport = router.run_stream(
        binned_blocks(),
        duration_ns,
        fibers_fn=fibers_fn,
        fault_schedule=schedule,
        telemetry=telemetry,
        departure_sink=departure_sink,
    )
    return DegradationReport(
        duration_ns=duration_ns,
        intervals=[
            IntervalSample(
                start_ns=i * width,
                end_ns=(i + 1) * width,
                offered_bytes=offered[i],
                delivered_bytes=delivered[i],
            )
            for i in range(n_intervals)
        ],
        offered_bytes=report.offered_bytes,
        delivered_bytes=report.delivered_bytes,
        lost_bytes=report.lost_bytes,
        residual_bytes=report.residual_bytes,
        failed_switches=list(report.failed_switches),
        fault_events=list(report.fault_events),
    )
