"""Typed fault events: what can break, where, and when.

The SPS reliability story (SS 2.2, *Modularity*) is that the H switches
share nothing, so any failure is contained to the capacity it directly
serves.  This module gives that story an executable vocabulary: each
fault is a frozen dataclass with an *injection scope* (which switch,
ribbon/fiber, or memory channels) and a *time window* ``[start_ns,
end_ns)`` during which it is active.  ``end_ns = inf`` models a
permanent failure; a finite window models repair/recovery (MTTR).

Four fault classes cover the package's failure surfaces:

- :class:`SwitchFailure` -- one HBM switch dies (power, HBM stack, or
  logic die): traffic arriving on its fibers while it is down is lost.
- :class:`HBMChannelLoss` -- some of a switch's T memory channels stop
  responding: the interleave stripes over fewer channels, so the PFI
  drain rate shrinks proportionally.
- :class:`OEODegradation` -- a laser/modulator ages or an O/E/O stage
  degrades: the affected switch's egress lanes run at a reduced rate.
- :class:`FiberCut` -- one fiber of one ribbon is severed upstream of
  the passive split: only that fiber's traffic is lost.

Two further classes widen the scope from one package to a *fabric* of
packages (:mod:`repro.fabric`):

- :class:`RouterDown` -- a whole router-in-a-package node of a fabric is
  offline; the fabric engine expands it into per-switch failures inside
  that node's runs.
- :class:`LinkCut` -- an inter-package link (both directions) is severed;
  traffic routed over it during the window is lost.

Fabric-scoped events are ignored by the single-package machinery
(:meth:`~repro.faults.schedule.FaultSchedule.validate` and the per-switch
projections skip them); the fabric engine validates them against its
topology instead.

Events carry no behaviour beyond window arithmetic; the simulation
hooks live in :mod:`repro.faults.schedule` (per-switch projections) and
the core (:class:`~repro.core.sps.SplitParallelSwitch`,
:class:`~repro.core.hbm_switch.HBMSwitch`, the PFI engine and the HBM
controller).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError

#: Sentinel for a fault that never recovers.
FOREVER_NS = math.inf


def _validate_window(start_ns: float, end_ns: float) -> None:
    if start_ns < 0:
        raise ConfigError(f"fault start must be >= 0, got {start_ns}")
    if not end_ns > start_ns:
        raise ConfigError(
            f"fault window must be non-empty: start {start_ns} ns, end {end_ns} ns"
        )


class _Windowed:
    """Window arithmetic shared by every fault event (no fields)."""

    start_ns: float
    end_ns: float

    def active_at(self, t_ns: float) -> bool:
        """Whether the fault is in effect at time ``t_ns`` (half-open)."""
        return self.start_ns <= t_ns < self.end_ns

    @property
    def permanent(self) -> bool:
        """The fault never recovers."""
        return math.isinf(self.end_ns)

    @property
    def whole_run(self) -> bool:
        """Active from t = 0 with no recovery -- the degenerate schedule
        equivalent to the legacy whole-run ``failed_switches`` path."""
        return self.start_ns <= 0.0 and self.permanent


@dataclass(frozen=True)
class SwitchFailure(_Windowed):
    """HBM switch ``switch`` is dead during ``[start_ns, end_ns)``.

    While dead, traffic arriving on the switch's fibers is lost (the
    share-nothing property: nothing else is affected).  A whole-run
    failure (``start_ns = 0``, ``end_ns = inf``) reproduces the legacy
    ``failed_switches=[h]`` behaviour byte for byte.
    """

    switch: int
    start_ns: float = 0.0
    end_ns: float = FOREVER_NS

    def __post_init__(self) -> None:
        if self.switch < 0:
            raise ConfigError(f"switch index must be >= 0, got {self.switch}")
        _validate_window(self.start_ns, self.end_ns)

    def describe(self) -> str:
        return f"switch {self.switch} dead [{self.start_ns:g}, {self.end_ns:g}) ns"


@dataclass(frozen=True)
class HBMChannelLoss(_Windowed):
    """``n_channels`` of switch ``switch``'s T memory channels are lost.

    PFI stripes each frame over all T channels, so losing c of them
    stretches every write/read phase by T / (T - c) -- the drain rate
    degrades linearly, which is what the per-interval capacity report
    measures.  Losing every channel halts the memory (no frames move
    until recovery).
    """

    switch: int
    n_channels: int = 1
    start_ns: float = 0.0
    end_ns: float = FOREVER_NS

    def __post_init__(self) -> None:
        if self.switch < 0:
            raise ConfigError(f"switch index must be >= 0, got {self.switch}")
        if self.n_channels <= 0:
            raise ConfigError(
                f"n_channels must be positive, got {self.n_channels}"
            )
        _validate_window(self.start_ns, self.end_ns)

    def describe(self) -> str:
        return (
            f"switch {self.switch} loses {self.n_channels} HBM channel(s) "
            f"[{self.start_ns:g}, {self.end_ns:g}) ns"
        )


@dataclass(frozen=True)
class OEODegradation(_Windowed):
    """Switch ``switch``'s egress O/E/O runs at ``rate_factor`` of nominal.

    Models laser aging / modulator drift: the switch still forwards, but
    its output ports drain at ``rate_factor * P``.  Under load this
    shows up as growing head-of-line latency and, eventually, input-SRAM
    drops -- degradation rather than outage.
    """

    switch: int
    rate_factor: float = 0.5
    start_ns: float = 0.0
    end_ns: float = FOREVER_NS

    def __post_init__(self) -> None:
        if self.switch < 0:
            raise ConfigError(f"switch index must be >= 0, got {self.switch}")
        if not 0.0 < self.rate_factor <= 1.0:
            raise ConfigError(
                f"rate_factor must be in (0, 1], got {self.rate_factor}"
            )
        _validate_window(self.start_ns, self.end_ns)

    def describe(self) -> str:
        return (
            f"switch {self.switch} egress at {self.rate_factor:.0%} "
            f"[{self.start_ns:g}, {self.end_ns:g}) ns"
        )


@dataclass(frozen=True)
class FiberCut(_Windowed):
    """Fiber ``fiber`` of ribbon ``ribbon`` is cut upstream of the split.

    Lost traffic is exactly that fiber's share (1 / (F * N) of package
    ingress under even spreading); the switch the fiber feeds keeps
    serving its other fibers -- failure granularity *below* a switch.
    """

    ribbon: int
    fiber: int
    start_ns: float = 0.0
    end_ns: float = FOREVER_NS

    def __post_init__(self) -> None:
        if self.ribbon < 0:
            raise ConfigError(f"ribbon index must be >= 0, got {self.ribbon}")
        if self.fiber < 0:
            raise ConfigError(f"fiber index must be >= 0, got {self.fiber}")
        _validate_window(self.start_ns, self.end_ns)

    def describe(self) -> str:
        return (
            f"fiber ({self.ribbon}, {self.fiber}) cut "
            f"[{self.start_ns:g}, {self.end_ns:g}) ns"
        )


@dataclass(frozen=True)
class RouterDown(_Windowed):
    """Fabric scope: router node ``router`` is offline during the window.

    Models a whole package failing (power, cooling, control plane).  The
    fabric engine maps the window onto a :class:`SwitchFailure` for every
    one of the node's H switches, so traffic sourced at, destined to, or
    transiting the node during the window is lost exactly as the
    single-package engines compute it.
    """

    router: int
    start_ns: float = 0.0
    end_ns: float = FOREVER_NS

    def __post_init__(self) -> None:
        if self.router < 0:
            raise ConfigError(f"router index must be >= 0, got {self.router}")
        _validate_window(self.start_ns, self.end_ns)

    def describe(self) -> str:
        return f"router {self.router} down [{self.start_ns:g}, {self.end_ns:g}) ns"


@dataclass(frozen=True)
class LinkCut(_Windowed):
    """Fabric scope: the inter-package link ``a -- b`` is severed.

    The cut is undirected (a fiber bundle carries both directions), so
    traffic routed over the link either way during the window is lost.
    Endpoints are stored sorted so ``LinkCut(2, 5)`` and ``LinkCut(5, 2)``
    are the same event.
    """

    a: int
    b: int
    start_ns: float = 0.0
    end_ns: float = FOREVER_NS

    def __post_init__(self) -> None:
        if self.a < 0 or self.b < 0:
            raise ConfigError(
                f"link endpoints must be >= 0, got ({self.a}, {self.b})"
            )
        if self.a == self.b:
            raise ConfigError(f"link endpoints must differ, got {self.a}")
        if self.a > self.b:
            lo, hi = self.b, self.a
            object.__setattr__(self, "a", lo)
            object.__setattr__(self, "b", hi)
        _validate_window(self.start_ns, self.end_ns)

    def touches(self, u: int, v: int) -> bool:
        """Whether this cut severs the (directed) link ``u -> v``."""
        return (min(u, v), max(u, v)) == (self.a, self.b)

    def describe(self) -> str:
        return (
            f"link {self.a}--{self.b} cut "
            f"[{self.start_ns:g}, {self.end_ns:g}) ns"
        )


#: Every concrete fault type, for isinstance checks and (de)serialisation.
FAULT_TYPES = (
    SwitchFailure,
    HBMChannelLoss,
    OEODegradation,
    FiberCut,
    RouterDown,
    LinkCut,
)

#: The fabric-scoped subset (targets routers/links of a topology, not
#: the internals of one package).
FABRIC_FAULT_TYPES = (RouterDown, LinkCut)


def event_to_dict(event) -> dict:
    """JSON-safe dict of one fault event (``inf`` end becomes ``None``)."""
    import dataclasses

    data = dataclasses.asdict(event)
    data["kind"] = type(event).__name__
    if math.isinf(data["end_ns"]):
        data["end_ns"] = None
    return data


def event_from_dict(data: dict):
    """Inverse of :func:`event_to_dict`."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    by_name = {cls.__name__: cls for cls in FAULT_TYPES}
    if kind not in by_name:
        raise ConfigError(f"unknown fault kind {kind!r}")
    if payload.get("end_ns") is None:
        payload["end_ns"] = FOREVER_NS
    return by_name[kind](**payload)
