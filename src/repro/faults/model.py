"""Typed fault events: what can break, where, and when.

The SPS reliability story (SS 2.2, *Modularity*) is that the H switches
share nothing, so any failure is contained to the capacity it directly
serves.  This module gives that story an executable vocabulary: each
fault is a frozen dataclass with an *injection scope* (which switch,
ribbon/fiber, or memory channels) and a *time window* ``[start_ns,
end_ns)`` during which it is active.  ``end_ns = inf`` models a
permanent failure; a finite window models repair/recovery (MTTR).

Four fault classes cover the package's failure surfaces:

- :class:`SwitchFailure` -- one HBM switch dies (power, HBM stack, or
  logic die): traffic arriving on its fibers while it is down is lost.
- :class:`HBMChannelLoss` -- some of a switch's T memory channels stop
  responding: the interleave stripes over fewer channels, so the PFI
  drain rate shrinks proportionally.
- :class:`OEODegradation` -- a laser/modulator ages or an O/E/O stage
  degrades: the affected switch's egress lanes run at a reduced rate.
- :class:`FiberCut` -- one fiber of one ribbon is severed upstream of
  the passive split: only that fiber's traffic is lost.

Events carry no behaviour beyond window arithmetic; the simulation
hooks live in :mod:`repro.faults.schedule` (per-switch projections) and
the core (:class:`~repro.core.sps.SplitParallelSwitch`,
:class:`~repro.core.hbm_switch.HBMSwitch`, the PFI engine and the HBM
controller).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigError

#: Sentinel for a fault that never recovers.
FOREVER_NS = math.inf


def _validate_window(start_ns: float, end_ns: float) -> None:
    if start_ns < 0:
        raise ConfigError(f"fault start must be >= 0, got {start_ns}")
    if not end_ns > start_ns:
        raise ConfigError(
            f"fault window must be non-empty: start {start_ns} ns, end {end_ns} ns"
        )


class _Windowed:
    """Window arithmetic shared by every fault event (no fields)."""

    start_ns: float
    end_ns: float

    def active_at(self, t_ns: float) -> bool:
        """Whether the fault is in effect at time ``t_ns`` (half-open)."""
        return self.start_ns <= t_ns < self.end_ns

    @property
    def permanent(self) -> bool:
        """The fault never recovers."""
        return math.isinf(self.end_ns)

    @property
    def whole_run(self) -> bool:
        """Active from t = 0 with no recovery -- the degenerate schedule
        equivalent to the legacy whole-run ``failed_switches`` path."""
        return self.start_ns <= 0.0 and self.permanent


@dataclass(frozen=True)
class SwitchFailure(_Windowed):
    """HBM switch ``switch`` is dead during ``[start_ns, end_ns)``.

    While dead, traffic arriving on the switch's fibers is lost (the
    share-nothing property: nothing else is affected).  A whole-run
    failure (``start_ns = 0``, ``end_ns = inf``) reproduces the legacy
    ``failed_switches=[h]`` behaviour byte for byte.
    """

    switch: int
    start_ns: float = 0.0
    end_ns: float = FOREVER_NS

    def __post_init__(self) -> None:
        if self.switch < 0:
            raise ConfigError(f"switch index must be >= 0, got {self.switch}")
        _validate_window(self.start_ns, self.end_ns)

    def describe(self) -> str:
        return f"switch {self.switch} dead [{self.start_ns:g}, {self.end_ns:g}) ns"


@dataclass(frozen=True)
class HBMChannelLoss(_Windowed):
    """``n_channels`` of switch ``switch``'s T memory channels are lost.

    PFI stripes each frame over all T channels, so losing c of them
    stretches every write/read phase by T / (T - c) -- the drain rate
    degrades linearly, which is what the per-interval capacity report
    measures.  Losing every channel halts the memory (no frames move
    until recovery).
    """

    switch: int
    n_channels: int = 1
    start_ns: float = 0.0
    end_ns: float = FOREVER_NS

    def __post_init__(self) -> None:
        if self.switch < 0:
            raise ConfigError(f"switch index must be >= 0, got {self.switch}")
        if self.n_channels <= 0:
            raise ConfigError(
                f"n_channels must be positive, got {self.n_channels}"
            )
        _validate_window(self.start_ns, self.end_ns)

    def describe(self) -> str:
        return (
            f"switch {self.switch} loses {self.n_channels} HBM channel(s) "
            f"[{self.start_ns:g}, {self.end_ns:g}) ns"
        )


@dataclass(frozen=True)
class OEODegradation(_Windowed):
    """Switch ``switch``'s egress O/E/O runs at ``rate_factor`` of nominal.

    Models laser aging / modulator drift: the switch still forwards, but
    its output ports drain at ``rate_factor * P``.  Under load this
    shows up as growing head-of-line latency and, eventually, input-SRAM
    drops -- degradation rather than outage.
    """

    switch: int
    rate_factor: float = 0.5
    start_ns: float = 0.0
    end_ns: float = FOREVER_NS

    def __post_init__(self) -> None:
        if self.switch < 0:
            raise ConfigError(f"switch index must be >= 0, got {self.switch}")
        if not 0.0 < self.rate_factor <= 1.0:
            raise ConfigError(
                f"rate_factor must be in (0, 1], got {self.rate_factor}"
            )
        _validate_window(self.start_ns, self.end_ns)

    def describe(self) -> str:
        return (
            f"switch {self.switch} egress at {self.rate_factor:.0%} "
            f"[{self.start_ns:g}, {self.end_ns:g}) ns"
        )


@dataclass(frozen=True)
class FiberCut(_Windowed):
    """Fiber ``fiber`` of ribbon ``ribbon`` is cut upstream of the split.

    Lost traffic is exactly that fiber's share (1 / (F * N) of package
    ingress under even spreading); the switch the fiber feeds keeps
    serving its other fibers -- failure granularity *below* a switch.
    """

    ribbon: int
    fiber: int
    start_ns: float = 0.0
    end_ns: float = FOREVER_NS

    def __post_init__(self) -> None:
        if self.ribbon < 0:
            raise ConfigError(f"ribbon index must be >= 0, got {self.ribbon}")
        if self.fiber < 0:
            raise ConfigError(f"fiber index must be >= 0, got {self.fiber}")
        _validate_window(self.start_ns, self.end_ns)

    def describe(self) -> str:
        return (
            f"fiber ({self.ribbon}, {self.fiber}) cut "
            f"[{self.start_ns:g}, {self.end_ns:g}) ns"
        )


#: Every concrete fault type, for isinstance checks and (de)serialisation.
FAULT_TYPES = (SwitchFailure, HBMChannelLoss, OEODegradation, FiberCut)


def event_to_dict(event) -> dict:
    """JSON-safe dict of one fault event (``inf`` end becomes ``None``)."""
    import dataclasses

    data = dataclasses.asdict(event)
    data["kind"] = type(event).__name__
    if math.isinf(data["end_ns"]):
        data["end_ns"] = None
    return data


def event_from_dict(data: dict):
    """Inverse of :func:`event_to_dict`."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    by_name = {cls.__name__: cls for cls in FAULT_TYPES}
    if kind not in by_name:
        raise ConfigError(f"unknown fault kind {kind!r}")
    if payload.get("end_ns") is None:
        payload["end_ns"] = FOREVER_NS
    return by_name[kind](**payload)
